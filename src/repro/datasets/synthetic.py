"""Synthetic class-structured image datasets.

The paper evaluates on MNIST and CIFAR-10.  Those datasets cannot be
downloaded in this offline environment, so this module generates the
closest synthetic equivalent that exercises the identical code path:
class-conditional Gaussian prototypes with additive noise, clipped to
[0, 1].  What the watermark pipeline needs from a dataset is

1. learnable class structure (so fine-tuning converges and the activation
   PDF has class-dependent Gaussian-mixture shape -- DeepSigns' working
   assumption), and
2. a stable subset usable as trigger keys (any seeded subset works).

Absolute classification accuracy plays no role in any Table I/II metric;
see DESIGN.md's substitution table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["SyntheticDataset", "make_image_classes", "mnist_like", "cifar10_like"]


@dataclass
class SyntheticDataset:
    """Train/test split of a synthetic classification problem."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    num_classes: int

    @property
    def input_shape(self) -> Tuple[int, ...]:
        return self.x_train.shape[1:]


def _smooth(noise: np.ndarray, passes: int = 2) -> np.ndarray:
    """Cheap spatial smoothing so prototypes look like blobs, not static."""
    out = noise
    for _ in range(passes):
        padded = np.pad(out, [(0, 0)] + [(1, 1)] * (out.ndim - 1), mode="edge")
        acc = np.zeros_like(out)
        if out.ndim == 3:
            for di in range(3):
                for dj in range(3):
                    acc += padded[:, di : di + out.shape[1], dj : dj + out.shape[2]]
            out = acc / 9.0
        else:
            raise ValueError("expected channel-first 3-D arrays")
    return out


def make_image_classes(
    num_train: int,
    num_test: int,
    *,
    shape: Tuple[int, int, int],
    num_classes: int = 10,
    noise: float = 0.35,
    seed: int = 0,
) -> SyntheticDataset:
    """Generate a dataset of noisy class prototypes.

    Each class has a fixed smooth prototype image; samples are prototype +
    Gaussian noise, clipped to [0, 1].  ``noise`` controls task hardness.
    """
    rng = np.random.default_rng(seed)
    channels, height, width = shape
    prototypes = np.stack(
        [
            _smooth(rng.normal(0.5, 0.6, (channels, height, width)))
            for _ in range(num_classes)
        ]
    )
    prototypes = np.clip(prototypes, 0.0, 1.0)

    def sample(count: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, count)
        images = prototypes[labels] + rng.normal(0.0, noise, (count, *shape))
        return np.clip(images, 0.0, 1.0), labels

    x_train, y_train = sample(num_train)
    x_test, y_test = sample(num_test)
    return SyntheticDataset(x_train, y_train, x_test, y_test, num_classes)


def mnist_like(
    num_train: int = 2000,
    num_test: int = 400,
    *,
    image_size: int = 28,
    num_classes: int = 10,
    seed: int = 0,
    flatten: bool = True,
) -> SyntheticDataset:
    """MNIST stand-in: single-channel images, optionally flattened.

    The Table II MLP consumes flat 784-vectors; pass a smaller
    ``image_size`` (e.g. 8 -> 64 inputs) for the scaled benchmark circuits.
    """
    data = make_image_classes(
        num_train,
        num_test,
        shape=(1, image_size, image_size),
        num_classes=num_classes,
        seed=seed,
    )
    if flatten:
        data = SyntheticDataset(
            data.x_train.reshape(num_train, -1),
            data.y_train,
            data.x_test.reshape(num_test, -1),
            data.y_test,
            num_classes,
        )
    return data


def cifar10_like(
    num_train: int = 2000,
    num_test: int = 400,
    *,
    image_size: int = 32,
    num_classes: int = 10,
    seed: int = 0,
) -> SyntheticDataset:
    """CIFAR-10 stand-in: three-channel images, channels first."""
    return make_image_classes(
        num_train,
        num_test,
        shape=(3, image_size, image_size),
        num_classes=num_classes,
        seed=seed,
    )
