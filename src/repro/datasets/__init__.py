"""Synthetic dataset generators (offline MNIST / CIFAR-10 stand-ins)."""

from .synthetic import SyntheticDataset, cifar10_like, make_image_classes, mnist_like

__all__ = ["SyntheticDataset", "cifar10_like", "make_image_classes", "mnist_like"]
