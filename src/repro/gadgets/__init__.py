"""The ZKROWNN gadget library (paper Section III-B).

Each of the paper's individually-benchmarked circuits is a function here:
matrix multiplication, 3-D convolution, ReLU, 2-D averaging, the Chebyshev
sigmoid, hard thresholding, and bit-error-rate checking -- "each circuit
can also be used in a standalone zkSNARK due to our modular design
approach".  The end-to-end extraction circuit in :mod:`repro.zkrownn`
composes them.
"""

from .activation import (
    CHEBYSHEV_COEFFICIENTS,
    sigmoid_chebyshev_float,
    sigmoid_reference,
    zk_relu,
    zk_relu_vector,
    zk_sigmoid,
    zk_sigmoid_vector,
)
from .ber import ZkBerResult, mismatch_budget, zk_ber
from .conv import (
    conv_output_shape,
    flatten_input_patches,
    wire_tensor3,
    wire_tensor4,
    zk_conv1d,
    zk_conv3d,
)
from .linalg import (
    wire_matrix,
    wire_vector,
    zk_average2d,
    zk_average_rows,
    zk_dense,
    zk_matmul,
    zk_matvec,
)
from .pooling import zk_max, zk_max_of, zk_maxpool2d
from .threshold import zk_hard_threshold, zk_hard_threshold_vector

__all__ = [
    "CHEBYSHEV_COEFFICIENTS",
    "sigmoid_chebyshev_float",
    "sigmoid_reference",
    "zk_relu",
    "zk_relu_vector",
    "zk_sigmoid",
    "zk_sigmoid_vector",
    "ZkBerResult",
    "mismatch_budget",
    "zk_ber",
    "conv_output_shape",
    "flatten_input_patches",
    "wire_tensor3",
    "wire_tensor4",
    "zk_conv1d",
    "zk_conv3d",
    "wire_matrix",
    "wire_vector",
    "zk_average2d",
    "zk_average_rows",
    "zk_dense",
    "zk_matmul",
    "zk_matvec",
    "zk_max",
    "zk_max_of",
    "zk_maxpool2d",
    "zk_hard_threshold",
    "zk_hard_threshold_vector",
]
