"""Zero-knowledge convolution (Section III-B.2).

The paper implements 3-D convolution by "flattening the input and kernel
into 1D vectors", grouping input elements by kernel size and stride, then
running a 1-D convolution of inner products and shifts.  That is exactly an
im2col lowering, reproduced here:

* the *index* bookkeeping (which input element lands in which patch) is
  done at circuit-construction time and costs nothing;
* each output element is one fixed-point inner product over a flattened
  patch -- constraints = multiply-accumulates + one truncation.

Shapes follow the paper's benchmark convention: input ``C x H x W``
(channels first), kernels ``O x C x K x K``, stride ``s``, no padding.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..circuit.builder import CircuitBuilder
from ..circuit.fixedpoint import FixedPointFormat
from ..circuit.wire import Wire

__all__ = [
    "conv_output_shape",
    "flatten_input_patches",
    "zk_conv1d",
    "zk_conv3d",
    "wire_tensor3",
    "wire_tensor4",
]

WireTensor3 = List[List[List[Wire]]]  # C x H x W
WireTensor4 = List[WireTensor3]  # O x C x K x K


def wire_tensor3(
    builder: CircuitBuilder,
    name: str,
    values: np.ndarray,
    fmt: FixedPointFormat,
    *,
    private: bool = True,
) -> WireTensor3:
    """Encode a C x H x W numpy array as input wires."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 3:
        raise ValueError(f"expected a 3-D array, got shape {arr.shape}")
    alloc = builder.private_input if private else builder.public_input
    return [
        [
            [
                alloc(f"{name}[{c},{i},{j}]", fmt.encode(float(arr[c, i, j])))
                for j in range(arr.shape[2])
            ]
            for i in range(arr.shape[1])
        ]
        for c in range(arr.shape[0])
    ]


def wire_tensor4(
    builder: CircuitBuilder,
    name: str,
    values: np.ndarray,
    fmt: FixedPointFormat,
    *,
    private: bool = True,
) -> WireTensor4:
    """Encode an O x C x K x K kernel stack as input wires."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 4:
        raise ValueError(f"expected a 4-D array, got shape {arr.shape}")
    return [
        wire_tensor3(builder, f"{name}[{o}]", arr[o], fmt, private=private)
        for o in range(arr.shape[0])
    ]


def conv_output_shape(
    height: int, width: int, kernel: int, stride: int
) -> Tuple[int, int]:
    """Valid-mode output spatial dimensions."""
    if height < kernel or width < kernel:
        raise ValueError("kernel larger than input")
    return ((height - kernel) // stride + 1, (width - kernel) // stride + 1)


def flatten_input_patches(
    x: WireTensor3, kernel: int, stride: int
) -> Tuple[List[List[Wire]], Tuple[int, int]]:
    """im2col: one flattened wire vector per output position.

    Pure index shuffling -- zero constraints; this is the paper's
    "input is grouped and structured based on the size of the kernel and
    stride value into a vector".
    """
    channels = len(x)
    height = len(x[0])
    width = len(x[0][0])
    out_h, out_w = conv_output_shape(height, width, kernel, stride)
    patches: List[List[Wire]] = []
    for i in range(out_h):
        for j in range(out_w):
            patch: List[Wire] = []
            for c in range(channels):
                for di in range(kernel):
                    for dj in range(kernel):
                        patch.append(x[c][i * stride + di][j * stride + dj])
            patches.append(patch)
    return patches, (out_h, out_w)


def zk_conv1d(
    builder: CircuitBuilder,
    fmt: FixedPointFormat,
    signal: Sequence[Wire],
    kernel: Sequence[Wire],
    stride: int = 1,
) -> List[Wire]:
    """1-D valid convolution (cross-correlation): inner product + shift."""
    n, k = len(signal), len(kernel)
    if k > n:
        raise ValueError("kernel longer than signal")
    out: List[Wire] = []
    for start in range(0, n - k + 1, stride):
        window = list(signal[start : start + k])
        out.append(fmt.inner_product(builder, window, list(kernel)))
    return out


def zk_conv3d(
    builder: CircuitBuilder,
    fmt: FixedPointFormat,
    x: WireTensor3,
    kernels: WireTensor4,
    bias: Sequence[Wire],
    stride: int = 1,
) -> WireTensor3:
    """3-D convolution: C x H x W input, O kernels of C x K x K, stride s.

    Lowered to flattened 1-D inner products per the paper.  Returns an
    O x H' x W' wire tensor.
    """
    if len(kernels) != len(bias):
        raise ValueError("one bias per output channel required")
    kernel_size = len(kernels[0][0])
    patches, (out_h, out_w) = flatten_input_patches(x, kernel_size, stride)
    flat_kernels = [
        [w for channel in kern for row in channel for w in row]
        for kern in kernels
    ]
    output: WireTensor3 = []
    for kern_flat, b in zip(flat_kernels, bias):
        channel_out: List[List[Wire]] = []
        idx = 0
        for _ in range(out_h):
            row: List[Wire] = []
            for _ in range(out_w):
                acc = fmt.inner_product_no_rescale(builder, patches[idx], kern_flat)
                acc = acc + b.scale(fmt.scale)
                row.append(fmt.rescale(builder, acc))
                idx += 1
            channel_out.append(row)
        output.append(channel_out)
    return output
