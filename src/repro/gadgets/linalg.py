"""Zero-knowledge linear algebra: matrix multiply, dense layers, averaging.

Reproduces the paper's Section III-B.1 (matrix multiplication) and the
``zkAverage`` step of Algorithm 1.  The paper deliberately avoids
interactive optimizations (Freivalds' algorithm) to preserve
non-interactivity, so these are direct inner-product circuits: one
constraint per multiply-accumulate plus a single fixed-point truncation per
output element.

Matrices are plain nested lists of :class:`~repro.circuit.wire.Wire`
(row-major); helpers convert numpy arrays to wire matrices as public or
private inputs.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..circuit.builder import CircuitBuilder
from ..circuit.fixedpoint import FixedPointFormat
from ..circuit.wire import Wire

__all__ = [
    "wire_vector",
    "wire_matrix",
    "zk_matmul",
    "zk_matvec",
    "zk_dense",
    "zk_average_rows",
    "zk_average2d",
]

WireMatrix = List[List[Wire]]


def wire_vector(
    builder: CircuitBuilder,
    name: str,
    values: np.ndarray,
    fmt: FixedPointFormat,
    *,
    private: bool = True,
) -> List[Wire]:
    """Encode a 1-D numpy array as circuit input wires."""
    encoded = fmt.encode_array(np.asarray(values, dtype=float))
    if private:
        return builder.private_inputs(name, encoded)
    return builder.public_inputs(name, encoded)


def wire_matrix(
    builder: CircuitBuilder,
    name: str,
    values: np.ndarray,
    fmt: FixedPointFormat,
    *,
    private: bool = True,
) -> WireMatrix:
    """Encode a 2-D numpy array as a wire matrix (row-major)."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {arr.shape}")
    return [
        wire_vector(builder, f"{name}[{i}]", arr[i], fmt, private=private)
        for i in range(arr.shape[0])
    ]


def zk_matmul(
    builder: CircuitBuilder,
    fmt: FixedPointFormat,
    a: WireMatrix,
    b: WireMatrix,
) -> WireMatrix:
    """Fixed-point matrix product ``A (M x N) @ B (N x L) -> C (M x L)``.

    Either operand may be public or private wires -- "A or B can be public
    or private, depending on the application" (paper).  One truncation per
    output element (operations combined within the inner loop).
    """
    if not a or not b:
        raise ValueError("empty matrix operand")
    m, n = len(a), len(a[0])
    if len(b) != n:
        raise ValueError(f"inner dimensions differ: {n} vs {len(b)}")
    l = len(b[0])
    b_cols = [[b[k][j] for k in range(n)] for j in range(l)]
    return [
        [fmt.inner_product(builder, a[i], b_cols[j]) for j in range(l)]
        for i in range(m)
    ]


def zk_matvec(
    builder: CircuitBuilder,
    fmt: FixedPointFormat,
    matrix: WireMatrix,
    vector: Sequence[Wire],
) -> List[Wire]:
    """Matrix-vector product ``(M x N) @ (N,) -> (M,)``."""
    if not matrix:
        raise ValueError("empty matrix operand")
    if len(matrix[0]) != len(vector):
        raise ValueError(
            f"dimension mismatch: matrix has {len(matrix[0])} columns, "
            f"vector has {len(vector)} entries"
        )
    return [fmt.inner_product(builder, row, list(vector)) for row in matrix]


def zk_dense(
    builder: CircuitBuilder,
    fmt: FixedPointFormat,
    x: Sequence[Wire],
    weights: WireMatrix,
    bias: Sequence[Wire],
) -> List[Wire]:
    """A fully-connected layer ``W @ x + b`` (weights are M x N).

    The bias is folded into the double-scale accumulator before the single
    truncation, so it costs no extra constraints beyond its input wires.
    """
    if len(weights) != len(bias):
        raise ValueError("bias length must match output dimension")
    outputs: List[Wire] = []
    with builder.scope("zk_dense"):
        for row, b_i in zip(weights, bias):
            acc = fmt.inner_product_no_rescale(builder, row, list(x))
            acc = acc + b_i.scale(fmt.scale)
            outputs.append(fmt.rescale(builder, acc))
    return outputs


def zk_average_rows(
    builder: CircuitBuilder,
    fmt: FixedPointFormat,
    rows: WireMatrix,
) -> List[Wire]:
    """Column-wise mean of a wire matrix: Algorithm 1's ``zkAverage``.

    Sums are free (linear); the division by the row count is a
    quotient-remainder gadget per column.  Used to approximate the Gaussian
    centers from the activations of the trigger-set inputs.
    """
    if not rows:
        raise ValueError("cannot average zero rows")
    count = len(rows)
    width = len(rows[0])
    out: List[Wire] = []
    with builder.scope("zk_average"):
        for j in range(width):
            total = builder.zero()
            for row in rows:
                total = total + row[j]
            out.append(builder.div_floor_const(total, count, fmt.total_bits))
    return out


def zk_average2d(
    builder: CircuitBuilder,
    fmt: FixedPointFormat,
    matrix: WireMatrix,
) -> List[Wire]:
    """Table I's ``Average2D`` benchmark circuit: mean over matrix rows."""
    return zk_average_rows(builder, fmt, matrix)
