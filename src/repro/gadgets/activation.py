"""Zero-knowledge activation functions: ReLU and the Chebyshev sigmoid.

Section III-B.3/4 of the paper:

* ReLU is ``max(0, x)``: one signed-comparison bit plus one multiplication.
* The sigmoid is "very difficult ... in zero-knowledge", so the paper
  evaluates the degree-9 Chebyshev approximation from zk-AuthFeed
  (Wan et al.):

  ``S(x) = 0.5 + 0.2159198015 x - 0.0082176259 x^3 + 0.0001825597 x^5
           - 0.0000018848 x^7 + 0.0000000072 x^9``

  The polynomial is odd apart from the constant, so it is evaluated in
  Horner form over ``y = x^2`` -- 5 fixed-point multiplies + 1 final.

The degree is configurable (3/5/7/9) for the accuracy-vs-constraints
ablation benchmark; :func:`sigmoid_reference` provides the float-side
ground truth the circuit is tested against.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..circuit.builder import CircuitBuilder
from ..circuit.fixedpoint import FixedPointFormat
from ..circuit.wire import Wire

__all__ = [
    "CHEBYSHEV_COEFFICIENTS",
    "zk_relu",
    "zk_relu_vector",
    "zk_sigmoid",
    "zk_sigmoid_vector",
    "sigmoid_chebyshev_float",
    "sigmoid_reference",
]

#: Odd-power coefficients c1, c3, c5, c7, c9 from the paper (Section III-B.3).
CHEBYSHEV_COEFFICIENTS = (
    0.2159198015,
    -0.0082176259,
    0.0001825597,
    -0.0000018848,
    0.0000000072,
)


def zk_relu(builder: CircuitBuilder, fmt: FixedPointFormat, x: Wire) -> Wire:
    """``max(0, x)`` on a signed fixed-point wire.

    ``s = [x >= 0]`` from the top bit of the shifted decomposition, then
    ``relu = s * x`` -- the same structure the hard-thresholding circuit
    reuses (paper, Section III-B.4).
    """
    with builder.scope("zk_relu"):
        sign = builder.is_nonnegative(x, fmt.total_bits)
        return builder.mul(sign, x)


def zk_relu_vector(
    builder: CircuitBuilder, fmt: FixedPointFormat, xs: Sequence[Wire]
) -> List[Wire]:
    return [zk_relu(builder, fmt, x) for x in xs]


def zk_sigmoid(
    builder: CircuitBuilder,
    fmt: FixedPointFormat,
    x: Wire,
    *,
    degree: int = 9,
) -> Wire:
    """Chebyshev-approximated sigmoid on a fixed-point wire.

    Horner evaluation over ``y = x^2`` with a fixed-point truncation after
    every multiplication (the paper's bitwidth-scaling between operations).
    ``degree`` must be odd, 1..9.
    """
    if degree % 2 == 0 or not 1 <= degree <= 9:
        raise ValueError("sigmoid approximation degree must be odd, 1..9")
    n_terms = (degree + 1) // 2
    coeffs = CHEBYSHEV_COEFFICIENTS[:n_terms]
    with builder.scope("zk_sigmoid"):
        y = fmt.mul(builder, x, x)
        # Horner over y: acc = c_{2k+1} + y * acc, highest coefficient first.
        acc = fmt.constant(builder, coeffs[-1])
        for c in reversed(coeffs[:-1]):
            acc = fmt.mul(builder, acc, y) + fmt.encode(c)
        # S(x) = 0.5 + x * acc
        return fmt.mul(builder, x, acc) + fmt.encode(0.5)


def zk_sigmoid_vector(
    builder: CircuitBuilder,
    fmt: FixedPointFormat,
    xs: Sequence[Wire],
    *,
    degree: int = 9,
) -> List[Wire]:
    return [zk_sigmoid(builder, fmt, x, degree=degree) for x in xs]


def sigmoid_chebyshev_float(x: np.ndarray, degree: int = 9) -> np.ndarray:
    """Float-side evaluation of the same approximation polynomial."""
    if degree % 2 == 0 or not 1 <= degree <= 9:
        raise ValueError("sigmoid approximation degree must be odd, 1..9")
    x = np.asarray(x, dtype=float)
    n_terms = (degree + 1) // 2
    coeffs = CHEBYSHEV_COEFFICIENTS[:n_terms]
    y = x * x
    acc = np.full_like(x, coeffs[-1])
    for c in reversed(coeffs[:-1]):
        acc = acc * y + c
    return 0.5 + x * acc


def sigmoid_reference(x: np.ndarray) -> np.ndarray:
    """The exact sigmoid 1 / (1 + exp(-x))."""
    return 1.0 / (1.0 + np.exp(-np.asarray(x, dtype=float)))
