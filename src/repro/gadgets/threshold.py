"""Zero-knowledge hard thresholding (Section III-B.4).

The step function applied to the sigmoid outputs during watermark
extraction:

    f(x) = 1 if x >= beta else 0

Implemented with the same signed-comparison machinery as ReLU ("due to the
similarity between ReLU and hard thresholding, a similar circuit is used
for the two operations").  The output bits concatenate into the extracted
watermark.
"""

from __future__ import annotations

from typing import List, Sequence

from ..circuit.builder import CircuitBuilder
from ..circuit.fixedpoint import FixedPointFormat
from ..circuit.wire import Wire

__all__ = ["zk_hard_threshold", "zk_hard_threshold_vector"]


def zk_hard_threshold(
    builder: CircuitBuilder,
    fmt: FixedPointFormat,
    x: Wire,
    beta: float = 0.5,
) -> Wire:
    """Boolean wire ``[x >= beta]`` for a fixed-point ``x``."""
    with builder.scope("zk_hard_threshold"):
        shifted = x - fmt.encode(beta)
        return builder.is_nonnegative(shifted, fmt.total_bits)


def zk_hard_threshold_vector(
    builder: CircuitBuilder,
    fmt: FixedPointFormat,
    xs: Sequence[Wire],
    beta: float = 0.5,
) -> List[Wire]:
    """Threshold a vector; the result is the extracted watermark bits."""
    return [zk_hard_threshold(builder, fmt, x, beta) for x in xs]
