"""Zero-knowledge max pooling.

Needed for the CIFAR-10 CNN benchmark architecture (Table II includes
``MP(2,1)`` layers).  ``max(a, b)`` is one signed comparison plus one
select; a k x k window folds pairwise.
"""

from __future__ import annotations

from typing import List, Sequence

from ..circuit.builder import CircuitBuilder
from ..circuit.fixedpoint import FixedPointFormat
from ..circuit.wire import Wire
from .conv import WireTensor3, conv_output_shape

__all__ = ["zk_max", "zk_max_of", "zk_maxpool2d"]


def zk_max(builder: CircuitBuilder, fmt: FixedPointFormat, a: Wire, b: Wire) -> Wire:
    """``max(a, b)`` on signed fixed-point wires."""
    with builder.scope("zk_max"):
        a_ge_b = builder.greater_equal(a, b, fmt.total_bits)
        return builder.select(a_ge_b, a, b)


def zk_max_of(
    builder: CircuitBuilder, fmt: FixedPointFormat, xs: Sequence[Wire]
) -> Wire:
    """Maximum of a non-empty wire sequence (left fold)."""
    if not xs:
        raise ValueError("max of empty sequence")
    acc = xs[0]
    for x in xs[1:]:
        acc = zk_max(builder, fmt, acc, x)
    return acc


def zk_maxpool2d(
    builder: CircuitBuilder,
    fmt: FixedPointFormat,
    x: WireTensor3,
    pool: int,
    stride: int,
) -> WireTensor3:
    """Channel-wise max pooling with filter size ``pool`` and ``stride``."""
    height = len(x[0])
    width = len(x[0][0])
    out_h, out_w = conv_output_shape(height, width, pool, stride)
    output: WireTensor3 = []
    for channel in x:
        rows: List[List[Wire]] = []
        for i in range(out_h):
            row: List[Wire] = []
            for j in range(out_w):
                window = [
                    channel[i * stride + di][j * stride + dj]
                    for di in range(pool)
                    for dj in range(pool)
                ]
                row.append(zk_max_of(builder, fmt, window))
            rows.append(row)
        output.append(rows)
    return output
