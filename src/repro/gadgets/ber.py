"""Zero-knowledge bit error rate (Section III-B.5).

The final step of Algorithm 1: compare the private watermark ``wm`` against
the circuit-extracted ``wm_hat`` bit by bit, and output 1 iff the fraction
of differing bits is at most the public threshold ``theta``.

The comparison works on counts to stay in integer arithmetic: with N bits
and threshold theta, the circuit checks ``mismatches <= floor(theta * N)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..circuit.builder import CircuitBuilder
from ..circuit.wire import Wire

__all__ = ["ZkBerResult", "zk_ber", "mismatch_budget"]


def mismatch_budget(num_bits: int, theta: float) -> int:
    """Maximum tolerated mismatching bits: floor(theta * N).

    ``theta = 0`` reproduces DeepSigns' exact-match criterion ("if the BER
    is zero ... the deployed DNN is the IP of the model owner").
    """
    if not 0.0 <= theta <= 1.0:
        raise ValueError("theta must be within [0, 1]")
    return math.floor(theta * num_bits + 1e-9)


@dataclass
class ZkBerResult:
    """Outputs of the BER circuit."""

    valid: Wire  # boolean: BER <= theta
    mismatches: Wire  # integer count of differing bits


def zk_ber(
    builder: CircuitBuilder,
    watermark: Sequence[Wire],
    extracted: Sequence[Wire],
    theta: float,
) -> ZkBerResult:
    """Compare two boolean vectors under a BER threshold.

    Both inputs must already be boolean-constrained (the extraction circuit
    guarantees this for ``extracted``; ``watermark`` inputs are constrained
    by the caller).  Cost: one XOR multiplication per bit plus one signed
    comparison on the count.
    """
    if len(watermark) != len(extracted):
        raise ValueError("watermark and extraction must have equal length")
    if not watermark:
        raise ValueError("empty watermark")
    with builder.scope("zk_ber"):
        mismatches = builder.zero()
        for wm_bit, ex_bit in zip(watermark, extracted):
            mismatches = mismatches + builder.xor_(wm_bit, ex_bit)
        budget = mismatch_budget(len(watermark), theta)
        count_bits = max(len(watermark).bit_length() + 1, 2)
        valid = builder.greater_equal(
            builder.constant(budget), mismatches, count_bits
        )
        return ZkBerResult(valid=valid, mismatches=mismatches)
