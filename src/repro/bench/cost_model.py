"""Analytic constraint-count model for every gadget.

The pure-Python prover cannot run the paper's full-size circuits (the MLP
is 2.09 M constraints), but constraint *counts* are pure combinatorics: a
closed-form function of the gadget dimensions and the fixed-point format.
This module provides those formulas, which are

* property-tested against the real circuit builder at small sizes
  (``tests/test_cost_model.py``), then
* evaluated at the paper's sizes to regenerate the "# Constraints" column
  of Table I at full scale (see ``benchmarks/`` and EXPERIMENTS.md).

All formulas mirror ``repro.circuit.builder`` exactly: a ``to_bits`` of n
bits is n booleanity constraints + 1 recomposition, a truncation is
quotient/remainder range checks + 1 equality, and so on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit.fixedpoint import FixedPointFormat

__all__ = ["GadgetCosts"]


@dataclass(frozen=True)
class GadgetCosts:
    """Constraint-count formulas for a given fixed-point format."""

    fmt: FixedPointFormat

    # -- builder primitives ------------------------------------------------------

    def to_bits(self, bits: int) -> int:
        return bits + 1

    def is_nonnegative(self, bits: int) -> int:
        return self.to_bits(bits)

    def greater_equal(self, bits: int) -> int:
        return self.is_nonnegative(bits + 1)

    def truncate(self, shift: int, range_bits: int) -> int:
        # equality + remainder range + signed quotient range
        return 1 + self.to_bits(shift) + self.to_bits(range_bits)

    def div_floor_const(self, divisor: int) -> int:
        if divisor == 1:
            return 0
        if divisor & (divisor - 1) == 0:
            return self.truncate(divisor.bit_length() - 1, self.fmt.total_bits)
        rem_bits = divisor.bit_length()
        return 1 + 2 * self.to_bits(rem_bits) + self.to_bits(self.fmt.total_bits)

    # -- fixed-point ops ------------------------------------------------------------

    def fp_rescale(self) -> int:
        return self.truncate(self.fmt.frac_bits, self.fmt.total_bits)

    def fp_mul(self) -> int:
        return 1 + self.fp_rescale()

    def inner_product(self, n: int) -> int:
        return n + self.fp_rescale()

    # -- gadgets (Table I rows) ---------------------------------------------------------

    def matmul(self, m: int, n: int, l: int) -> int:
        """A (m x n) @ B (n x l)."""
        return m * l * self.inner_product(n)

    def matvec(self, m: int, n: int) -> int:
        return m * self.inner_product(n)

    def dense(self, out_features: int, in_features: int) -> int:
        """zk_dense: bias folds into the accumulator for free."""
        return out_features * self.inner_product(in_features)

    def relu(self) -> int:
        return self.is_nonnegative(self.fmt.total_bits) + 1

    def relu_vector(self, n: int) -> int:
        return n * self.relu()

    def hard_threshold(self) -> int:
        return self.is_nonnegative(self.fmt.total_bits)

    def hard_threshold_vector(self, n: int) -> int:
        return n * self.hard_threshold()

    def sigmoid(self, degree: int = 9) -> int:
        n_terms = (degree + 1) // 2
        fp_muls = 1 + (n_terms - 1) + 1  # x^2, Horner steps, final by x
        # The first Horner step multiplies by a *constant* accumulator,
        # which the builder folds for free (truncation still paid).
        return fp_muls * self.fp_mul() - 1

    def sigmoid_vector(self, n: int, degree: int = 9) -> int:
        return n * self.sigmoid(degree)

    def average_rows(self, rows: int, width: int) -> int:
        return width * self.div_floor_const(rows)

    def ber(self, num_bits: int) -> int:
        count_bits = max(num_bits.bit_length() + 1, 2)
        return num_bits + self.greater_equal(count_bits)

    def conv3d(
        self,
        channels: int,
        height: int,
        width: int,
        out_channels: int,
        kernel: int,
        stride: int,
    ) -> int:
        out_h = (height - kernel) // stride + 1
        out_w = (width - kernel) // stride + 1
        macs = channels * kernel * kernel
        return out_channels * out_h * out_w * (macs + self.fp_rescale())

    def zk_max(self) -> int:
        return self.greater_equal(self.fmt.total_bits) + 1

    def maxpool2d(
        self, channels: int, height: int, width: int, pool: int, stride: int
    ) -> int:
        out_h = (height - pool) // stride + 1
        out_w = (width - pool) // stride + 1
        per_window = (pool * pool - 1) * self.zk_max()
        return channels * out_h * out_w * per_window

    # -- end-to-end extraction circuits -----------------------------------------------

    def mlp_extraction(
        self,
        input_dim: int,
        hidden: int,
        num_triggers: int,
        wm_bits: int,
        sigmoid_degree: int = 9,
    ) -> int:
        """Algorithm 1 on an MLP, watermark after the first hidden ReLU.

        Feedforward = dense(hidden, input) + relu(hidden), per trigger.
        """
        per_trigger = self.dense(hidden, input_dim) + self.relu_vector(hidden)
        total = num_triggers * per_trigger
        total += self.average_rows(num_triggers, hidden)
        total += wm_bits * self.inner_product(hidden)  # mu @ A
        total += self.sigmoid_vector(wm_bits, sigmoid_degree)
        total += self.hard_threshold_vector(wm_bits)
        total += wm_bits + 1  # wm booleanity + output binding
        total += self.ber(wm_bits)
        return total

    def cnn_extraction(
        self,
        in_channels: int,
        image_size: int,
        out_channels: int,
        kernel: int,
        stride: int,
        num_triggers: int,
        wm_bits: int,
        sigmoid_degree: int = 9,
    ) -> int:
        """Algorithm 1 on a CNN, watermark after the first conv + ReLU."""
        out_h = (image_size - kernel) // stride + 1
        feature_dim = out_channels * out_h * out_h
        per_trigger = self.conv3d(
            in_channels, image_size, image_size, out_channels, kernel, stride
        ) + self.relu_vector(feature_dim)
        total = num_triggers * per_trigger
        total += self.average_rows(num_triggers, feature_dim)
        total += wm_bits * self.inner_product(feature_dim)
        total += self.sigmoid_vector(wm_bits, sigmoid_degree)
        total += self.hard_threshold_vector(wm_bits)
        total += wm_bits + 1
        total += self.ber(wm_bits)
        return total
