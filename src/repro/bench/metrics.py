"""Measurement harness for Table-I style circuit reports.

One :class:`CircuitReport` per benchmark row, with exactly the paper's
columns: constraints, setup runtime, proving-key size, prover runtime,
proof size, verification-key size, verifier runtime.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..circuit.builder import CircuitBuilder
from ..snark.groth16 import prove, setup, verify

__all__ = ["CircuitReport", "measure_circuit", "format_table"]


@dataclass
class CircuitReport:
    """One row of the Table-I reproduction."""

    name: str
    num_constraints: int
    num_public_inputs: int
    setup_seconds: float
    pk_bytes: int
    prove_seconds: float
    proof_bytes: int
    vk_bytes: int
    verify_seconds: float
    verified: bool

    @property
    def pk_megabytes(self) -> float:
        return self.pk_bytes / (1024 * 1024)

    @property
    def vk_kilobytes(self) -> float:
        return self.vk_bytes / 1024

    @property
    def verify_milliseconds(self) -> float:
        return self.verify_seconds * 1000

    def row(self) -> List[str]:
        return [
            self.name,
            f"{self.num_constraints:,}",
            f"{self.setup_seconds:.3f}",
            f"{self.pk_megabytes:.3f}",
            f"{self.prove_seconds:.3f}",
            f"{self.proof_bytes}",
            f"{self.vk_kilobytes:.3f}",
            f"{self.verify_milliseconds:.1f}",
            "ok" if self.verified else "FAIL",
        ]


TABLE_HEADER = [
    "Benchmark",
    "# Constraints",
    "Setup (s)",
    "PK (MB)",
    "Prove (s)",
    "Proof (B)",
    "VK (KB)",
    "Verify (ms)",
    "Check",
]


def measure_circuit(
    name: str,
    build: Callable[[], CircuitBuilder],
    *,
    seed: Optional[int] = 1234,
) -> CircuitReport:
    """Build, set up, prove, and verify a circuit; collect every metric.

    ``build`` must return a fully synthesized :class:`CircuitBuilder`
    (witness included).  The same builder is reused for setup and proving
    -- like the paper, setup and proof generation happen once per circuit.
    """
    builder = build()
    builder.check()
    cs = builder.cs

    t0 = time.perf_counter()
    keypair = setup(cs, seed=seed)
    setup_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    proof = prove(keypair.proving_key, cs, builder.assignment, seed=seed)
    prove_seconds = time.perf_counter() - t0

    public = builder.public_values()
    t0 = time.perf_counter()
    ok = verify(keypair.verifying_key, public, proof)
    verify_seconds = time.perf_counter() - t0

    return CircuitReport(
        name=name,
        num_constraints=cs.num_constraints,
        num_public_inputs=cs.num_public,
        setup_seconds=setup_seconds,
        pk_bytes=keypair.proving_key.size_bytes(),
        prove_seconds=prove_seconds,
        proof_bytes=proof.size_bytes(),
        vk_bytes=keypair.verifying_key.size_bytes(),
        verify_seconds=verify_seconds,
        verified=ok,
    )


def format_table(reports: Sequence[CircuitReport]) -> str:
    """Render reports as an aligned text table (the Table-I layout)."""
    rows = [TABLE_HEADER] + [r.row() for r in reports]
    widths = [max(len(row[i]) for row in rows) for i in range(len(TABLE_HEADER))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
