"""Measurement harness for Table-I style circuit reports.

One :class:`CircuitReport` per benchmark row, with exactly the paper's
columns: constraints, setup runtime, proving-key size, prover runtime,
proof size, verification-key size, verifier runtime.

:func:`measure_circuit` can route the pipeline through a
:class:`~repro.engine.engine.ProvingEngine` (the timings still measure a
cold first pass per row -- each row has its own structure digest);
:func:`measure_amortized` measures what the engine is *for*: first-proof
versus cached-repeat-proof latency for one circuit shape.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..circuit.builder import CircuitBuilder
from ..engine.compiled import CompiledCircuit
from ..engine.engine import ProvingEngine
from ..snark.groth16 import prove, setup, verify

__all__ = [
    "AmortizationReport",
    "CircuitReport",
    "format_table",
    "measure_amortized",
    "measure_circuit",
]


@dataclass
class CircuitReport:
    """One row of the Table-I reproduction."""

    name: str
    num_constraints: int
    num_public_inputs: int
    setup_seconds: float
    pk_bytes: int
    prove_seconds: float
    proof_bytes: int
    vk_bytes: int
    verify_seconds: float
    verified: bool

    @property
    def pk_megabytes(self) -> float:
        return self.pk_bytes / (1024 * 1024)

    @property
    def vk_kilobytes(self) -> float:
        return self.vk_bytes / 1024

    @property
    def verify_milliseconds(self) -> float:
        return self.verify_seconds * 1000

    def row(self) -> List[str]:
        return [
            self.name,
            f"{self.num_constraints:,}",
            f"{self.setup_seconds:.3f}",
            f"{self.pk_megabytes:.3f}",
            f"{self.prove_seconds:.3f}",
            f"{self.proof_bytes}",
            f"{self.vk_kilobytes:.3f}",
            f"{self.verify_milliseconds:.1f}",
            "ok" if self.verified else "FAIL",
        ]


TABLE_HEADER = [
    "Benchmark",
    "# Constraints",
    "Setup (s)",
    "PK (MB)",
    "Prove (s)",
    "Proof (B)",
    "VK (KB)",
    "Verify (ms)",
    "Check",
]


def measure_circuit(
    name: str,
    build: Callable[[], CircuitBuilder],
    *,
    seed: Optional[int] = 1234,
    engine: Optional[ProvingEngine] = None,
) -> CircuitReport:
    """Build, set up, prove, and verify a circuit; collect every metric.

    ``build`` must return a fully synthesized :class:`CircuitBuilder`
    (witness included).  The same builder is reused for setup and proving
    -- like the paper, setup and proof generation happen once per circuit.
    With an ``engine``, the pipeline stages go through its caches (each
    distinct circuit structure still pays a cold first pass, so the
    reported timings keep their Table-I meaning).
    """
    builder = build()
    builder.check()
    cs = builder.cs
    public = builder.public_values()

    if engine is not None:
        compiled = CompiledCircuit.from_builder(builder, name)
        run_setup = lambda: engine.setup(compiled, seed=seed)
        run_prove = lambda kp: engine.prove(compiled, builder.assignment, seed=seed)
        run_verify = lambda kp, pf: engine.verify(compiled, public, pf)
    else:
        run_setup = lambda: setup(cs, seed=seed)
        run_prove = lambda kp: prove(kp.proving_key, cs, builder.assignment,
                                     seed=seed)
        run_verify = lambda kp, pf: verify(kp.verifying_key, public, pf)

    t0 = time.perf_counter()
    keypair = run_setup()
    setup_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    proof = run_prove(keypair)
    prove_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    ok = run_verify(keypair, proof)
    verify_seconds = time.perf_counter() - t0

    return CircuitReport(
        name=name,
        num_constraints=cs.num_constraints,
        num_public_inputs=cs.num_public,
        setup_seconds=setup_seconds,
        pk_bytes=keypair.proving_key.size_bytes(),
        prove_seconds=prove_seconds,
        proof_bytes=proof.size_bytes(),
        vk_bytes=keypair.verifying_key.size_bytes(),
        verify_seconds=verify_seconds,
        verified=ok,
    )


@dataclass
class AmortizationReport:
    """First-proof vs cached-repeat-proof latency for one circuit shape."""

    name: str
    first_seconds: float
    repeat_seconds: List[float]
    first_timings: Dict[str, float]
    repeat_timings: List[Dict[str, float]]
    verified: bool

    @property
    def mean_repeat_seconds(self) -> float:
        return sum(self.repeat_seconds) / len(self.repeat_seconds)

    @property
    def speedup(self) -> float:
        return self.first_seconds / self.mean_repeat_seconds

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "first_seconds": self.first_seconds,
            "repeat_seconds": self.repeat_seconds,
            "mean_repeat_seconds": self.mean_repeat_seconds,
            "speedup": self.speedup,
            "first_timings": self.first_timings,
            "repeat_timings": self.repeat_timings,
            "verified": self.verified,
        }


def measure_amortized(
    name: str,
    synthesize_factory: Callable[[int], Callable],
    *,
    repeats: int = 2,
    seed: Optional[int] = 1234,
    engine: Optional[ProvingEngine] = None,
) -> AmortizationReport:
    """Measure the staged pipeline's amortization for one circuit shape.

    ``synthesize_factory(i)`` must return a synthesis function for the
    i-th proof (0 = first; later indices may vary input values but must
    keep the shape).  The first proof pays compile + setup + prove; each
    repeat pays witness replay + prove only.
    """
    engine = engine or ProvingEngine()

    t0 = time.perf_counter()
    first_job = engine.prove_job(
        name, synthesize_factory(0), seed=seed, setup_seed=seed
    )
    first_seconds = time.perf_counter() - t0
    verified = engine.verify(
        first_job.compiled, first_job.public_values, first_job.proof
    )

    repeat_seconds: List[float] = []
    repeat_timings: List[Dict[str, float]] = []
    for i in range(1, repeats + 1):
        t0 = time.perf_counter()
        job = engine.prove_job(
            name, synthesize_factory(i), seed=None if seed is None else seed + i
        )
        repeat_seconds.append(time.perf_counter() - t0)
        repeat_timings.append(dict(job.timings))
        verified = verified and engine.verify(
            job.compiled, job.public_values, job.proof
        )

    return AmortizationReport(
        name=name,
        first_seconds=first_seconds,
        repeat_seconds=repeat_seconds,
        first_timings=dict(first_job.timings),
        repeat_timings=repeat_timings,
        verified=verified,
    )


def format_table(reports: Sequence[CircuitReport]) -> str:
    """Render reports as an aligned text table (the Table-I layout)."""
    rows = [TABLE_HEADER] + [r.row() for r in reports]
    widths = [max(len(row[i]) for row in rows) for i in range(len(TABLE_HEADER))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
