"""Table I circuit builders and the benchmark runner.

One builder per row of the paper's Table I, at three scales:

* ``paper``  -- the exact dimensions of the paper (2-D ops 128 x 128, 1-D
  ops length 128, Conv3D 32x32x3/32ch/3x3/s2, Table II networks).  Only
  the *constraint counts* are evaluated at this scale (via the validated
  analytic cost model); proving them in pure Python is infeasible.
* ``reduced`` -- the dimensions the full Setup/Prove/Verify pipeline runs
  at on a laptop (16 x 16 matrices, length-32 vectors, 8x8x3 conv).
* ``tiny``   -- test-suite dimensions.

Following the paper: "all individual ... circuits are run with private
inputs and public outputs, for sake of consistency"; circuits with large
output vectors expose them as public outputs, which is what makes their
VK larger (the effect Section IV discusses for sigmoid/averaging).

Run ``python -m repro.bench.table1`` for the full comparison table.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..circuit.builder import CircuitBuilder
from ..circuit.fixedpoint import FixedPointFormat
from ..gadgets.activation import zk_relu_vector, zk_sigmoid_vector
from ..gadgets.ber import zk_ber
from ..gadgets.conv import wire_tensor3, wire_tensor4, zk_conv3d
from ..gadgets.linalg import wire_matrix, zk_average2d, zk_matmul
from ..gadgets.threshold import zk_hard_threshold_vector
from ..nn.architectures import cifar10_cnn_scaled, mnist_mlp_scaled
from ..watermark.keys import WatermarkKeys
from ..zkrownn.circuit import CircuitConfig, build_extraction_circuit
from .cost_model import GadgetCosts
from .metrics import CircuitReport, format_table, measure_circuit

__all__ = [
    "BENCH_FORMAT",
    "SCALES",
    "PAPER_TABLE1",
    "build_matmult",
    "build_conv3d",
    "build_relu",
    "build_average2d",
    "build_sigmoid",
    "build_hardthreshold",
    "build_ber",
    "build_mlp_extraction",
    "build_cnn_extraction",
    "builders_for_scale",
    "paper_scale_constraints",
    "run_table1",
]

#: Fixed-point format used by all Table-I benchmark circuits.
BENCH_FORMAT = FixedPointFormat(frac_bits=16, total_bits=48)


@dataclass(frozen=True)
class Scale:
    """Dimension set for one benchmark scale."""

    name: str
    mat_dim: int  # 2-D ops run with (mat_dim x mat_dim)
    vec_len: int  # 1-D ops run with this length
    conv_image: int  # Conv3D input spatial size (3 channels)
    conv_out_channels: int
    mlp_input: int
    mlp_hidden: int
    cnn_image: int
    cnn_channels: int
    mlp_triggers: int
    cnn_triggers: int
    wm_bits: int


SCALES: Dict[str, Scale] = {
    "paper": Scale(
        name="paper",
        mat_dim=128,
        vec_len=128,
        conv_image=32,
        conv_out_channels=32,
        mlp_input=784,
        mlp_hidden=512,
        cnn_image=32,
        cnn_channels=32,
        # Trigger-set sizes inferred from the paper's constraint counts:
        # 2.09M (MLP) ~ 5 trigger feedforwards at 784x512; 591k (CNN) ~ 1.
        mlp_triggers=5,
        cnn_triggers=1,
        wm_bits=32,
    ),
    "reduced": Scale(
        name="reduced",
        mat_dim=16,
        vec_len=32,
        conv_image=8,
        conv_out_channels=4,
        mlp_input=64,
        mlp_hidden=16,
        cnn_image=12,
        cnn_channels=4,
        mlp_triggers=2,
        cnn_triggers=1,
        wm_bits=8,
    ),
    "tiny": Scale(
        name="tiny",
        mat_dim=4,
        vec_len=8,
        conv_image=5,
        conv_out_channels=2,
        mlp_input=16,
        mlp_hidden=8,
        cnn_image=9,
        cnn_channels=2,
        mlp_triggers=2,
        cnn_triggers=1,
        wm_bits=4,
    ),
}

#: The paper's Table I, for side-by-side reporting
#: (name -> (constraints, setup s, PK MB, prove s, proof B, VK KB, verify ms)).
PAPER_TABLE1 = {
    "MatMult": (1_097_344, 57.3976, 215.6518, 18.6805, 127.375, 0.199, 0.6),
    "Conv3D": (235_899, 13.3621, 46.3793, 4.2081, 127.375, 0.199, 0.6),
    "ReLU": (8_832, 0.6384, 1.7193, 0.1907, 127.375, 5.303, 0.7),
    "Average2D": (545_793, 29.6248, 107.3271, 9.5570, 127.375, 5.303, 0.6),
    "Sigmoid": (454_656, 34.4989, 90.5934, 8.3680, 127.375, 41.031, 0.8),
    "HardThresholding": (8_704, 0.624, 1.6978, 0.1857, 127.375, 5.303, 0.7),
    "BER": (8_832, 0.6423, 1.7526715, 0.1826, 127.375, 0.2389, 0.6),
    "MNIST-MLP": (2_093_648, 68.4456, 280.3859, 45.1208, 127.375, 16_006.343, 29.4),
    "CIFAR10-CNN": (590_624, 32.35, 117.1699, 11.22, 127.375, 34.651, 1.0),
}


def _rng(seed: int = 7) -> np.random.Generator:
    return np.random.default_rng(seed)


# ---------------------------------------------------------------- builders --


def build_matmult(scale: Scale, fmt: FixedPointFormat = BENCH_FORMAT) -> CircuitBuilder:
    """MatMult row: private (n x n) @ (n x n), private output."""
    n = scale.mat_dim
    rng = _rng()
    builder = CircuitBuilder("matmult")
    a = wire_matrix(builder, "A", rng.uniform(-1, 1, (n, n)), fmt)
    b = wire_matrix(builder, "B", rng.uniform(-1, 1, (n, n)), fmt)
    zk_matmul(builder, fmt, a, b)
    return builder


def build_conv3d(scale: Scale, fmt: FixedPointFormat = BENCH_FORMAT) -> CircuitBuilder:
    """Conv3D row: 3-channel image, 3x3 kernels, stride 2 (paper config)."""
    size = scale.conv_image
    out_ch = scale.conv_out_channels
    rng = _rng()
    builder = CircuitBuilder("conv3d")
    x = wire_tensor3(builder, "x", rng.uniform(-1, 1, (3, size, size)), fmt)
    k = wire_tensor4(builder, "k", rng.uniform(-1, 1, (out_ch, 3, 3, 3)), fmt)
    bias = [builder.private_input(f"b{i}", fmt.encode(0.0)) for i in range(out_ch)]
    zk_conv3d(builder, fmt, x, k, bias, stride=2)
    return builder


def build_relu(scale: Scale, fmt: FixedPointFormat = BENCH_FORMAT) -> CircuitBuilder:
    """ReLU row: element-wise on a private vector, public outputs."""
    n = scale.vec_len
    rng = _rng()
    builder = CircuitBuilder("relu")
    outputs = [builder.public_output(f"out{i}") for i in range(n)]
    xs = [
        builder.private_input(f"x{i}", fmt.encode(v))
        for i, v in enumerate(rng.uniform(-2, 2, n))
    ]
    for out, w in zip(outputs, zk_relu_vector(builder, fmt, xs)):
        builder.bind_output(out, w)
    return builder


def build_average2d(scale: Scale, fmt: FixedPointFormat = BENCH_FORMAT) -> CircuitBuilder:
    """Average2D row: column means of a private matrix, public outputs."""
    n = scale.mat_dim
    rng = _rng()
    builder = CircuitBuilder("average2d")
    outputs = [builder.public_output(f"mean{i}") for i in range(n)]
    matrix = wire_matrix(builder, "M", rng.uniform(-1, 1, (n, n)), fmt)
    for out, w in zip(outputs, zk_average2d(builder, fmt, matrix)):
        builder.bind_output(out, w)
    return builder


def build_sigmoid(scale: Scale, fmt: FixedPointFormat = BENCH_FORMAT) -> CircuitBuilder:
    """Sigmoid row: degree-9 Chebyshev on a private vector, public outputs."""
    n = scale.vec_len
    rng = _rng()
    builder = CircuitBuilder("sigmoid")
    outputs = [builder.public_output(f"s{i}") for i in range(n)]
    xs = [
        builder.private_input(f"x{i}", fmt.encode(v))
        for i, v in enumerate(rng.uniform(-4, 4, n))
    ]
    for out, w in zip(outputs, zk_sigmoid_vector(builder, fmt, xs)):
        builder.bind_output(out, w)
    return builder


def build_hardthreshold(
    scale: Scale, fmt: FixedPointFormat = BENCH_FORMAT
) -> CircuitBuilder:
    """HardThresholding row: [x >= 0.5] bits, public outputs."""
    n = scale.vec_len
    rng = _rng()
    builder = CircuitBuilder("hardthreshold")
    outputs = [builder.public_output(f"t{i}") for i in range(n)]
    xs = [
        builder.private_input(f"x{i}", fmt.encode(v))
        for i, v in enumerate(rng.uniform(0, 1, n))
    ]
    for out, w in zip(outputs, zk_hard_threshold_vector(builder, fmt, xs, beta=0.5)):
        builder.bind_output(out, w)
    return builder


def build_ber(scale: Scale, fmt: FixedPointFormat = BENCH_FORMAT) -> CircuitBuilder:
    """BER row: compare two private bit vectors, public validity bit."""
    n = scale.vec_len
    rng = _rng()
    builder = CircuitBuilder("ber")
    out = builder.public_output("valid")
    bits_a = rng.integers(0, 2, n)
    bits_b = bits_a.copy()
    flip = rng.choice(n, size=max(1, n // 16), replace=False)
    bits_b[flip] ^= 1
    # private_bit, not allocate_bit: these are the prover's inputs, not
    # hints the circuit must determine (the auditor enforces the split).
    wm = [builder.private_bit(f"a{i}", int(v)) for i, v in enumerate(bits_a)]
    ext = [builder.private_bit(f"b{i}", int(v)) for i, v in enumerate(bits_b)]
    result = zk_ber(builder, wm, ext, theta=0.125)
    builder.bind_output(out, result.valid)
    return builder


def _random_keys(model, input_shape, scale: Scale, flat: bool) -> WatermarkKeys:
    """Random watermark keys of the right shape (benchmarks measure circuit
    cost, not embedding quality, so theta=1 keeps the output valid)."""
    rng = _rng(13)
    count = scale.mlp_triggers if flat else scale.cnn_triggers
    if flat:
        triggers = rng.uniform(0, 1, (count, input_shape))
    else:
        triggers = rng.uniform(0, 1, (count, *input_shape))
    probe = model.forward_to(triggers[:1], 1)
    feature_dim = int(np.prod(probe.shape[1:]))
    return WatermarkKeys(
        embed_layer=1,
        target_class=0,
        trigger_inputs=triggers,
        projection=rng.standard_normal((feature_dim, scale.wm_bits)),
        signature=rng.integers(0, 2, scale.wm_bits).astype(np.int64),
    )


def build_mlp_extraction(
    scale: Scale, fmt: FixedPointFormat = BENCH_FORMAT
) -> CircuitBuilder:
    """MNIST-MLP row: full Algorithm 1 on the Table II MLP shape."""
    model = mnist_mlp_scaled(
        input_dim=scale.mlp_input, hidden=scale.mlp_hidden, rng=_rng(5)
    )
    keys = _random_keys(model, scale.mlp_input, scale, flat=True)
    config = CircuitConfig(theta=1.0, fixed_point=fmt)
    circuit = build_extraction_circuit(model, keys, config)
    return circuit.builder


def build_cnn_extraction(
    scale: Scale, fmt: FixedPointFormat = BENCH_FORMAT
) -> CircuitBuilder:
    """CIFAR10-CNN row: full Algorithm 1 on the Table II CNN shape."""
    model = cifar10_cnn_scaled(
        image_size=scale.cnn_image, channels=scale.cnn_channels, rng=_rng(5)
    )
    keys = _random_keys(
        model, (3, scale.cnn_image, scale.cnn_image), scale, flat=False
    )
    config = CircuitConfig(theta=1.0, fixed_point=fmt)
    circuit = build_extraction_circuit(model, keys, config)
    return circuit.builder


def builders_for_scale(
    scale_name: str = "reduced", fmt: FixedPointFormat = BENCH_FORMAT
) -> Dict[str, Callable[[], CircuitBuilder]]:
    """All nine Table-I circuits as zero-argument builder thunks."""
    scale = SCALES[scale_name]
    return {
        "MatMult": lambda: build_matmult(scale, fmt),
        "Conv3D": lambda: build_conv3d(scale, fmt),
        "ReLU": lambda: build_relu(scale, fmt),
        "Average2D": lambda: build_average2d(scale, fmt),
        "Sigmoid": lambda: build_sigmoid(scale, fmt),
        "HardThresholding": lambda: build_hardthreshold(scale, fmt),
        "BER": lambda: build_ber(scale, fmt),
        "MNIST-MLP": lambda: build_mlp_extraction(scale, fmt),
        "CIFAR10-CNN": lambda: build_cnn_extraction(scale, fmt),
    }


def paper_scale_constraints(fmt: FixedPointFormat = BENCH_FORMAT) -> Dict[str, int]:
    """Cost-model constraint counts at the paper's exact dimensions."""
    scale = SCALES["paper"]
    costs = GadgetCosts(fmt)
    return {
        "MatMult": costs.matmul(scale.mat_dim, scale.mat_dim, scale.mat_dim),
        "Conv3D": costs.conv3d(3, scale.conv_image, scale.conv_image,
                               scale.conv_out_channels, 3, 2),
        "ReLU": costs.relu_vector(scale.vec_len),
        "Average2D": costs.average_rows(scale.mat_dim, scale.mat_dim),
        "Sigmoid": costs.sigmoid_vector(scale.vec_len),
        "HardThresholding": costs.hard_threshold_vector(scale.vec_len),
        "BER": costs.ber(scale.vec_len),
        "MNIST-MLP": costs.mlp_extraction(
            scale.mlp_input, scale.mlp_hidden, scale.mlp_triggers, scale.wm_bits
        ),
        "CIFAR10-CNN": costs.cnn_extraction(
            3, scale.cnn_image, scale.cnn_channels, 3, 2,
            scale.cnn_triggers, scale.wm_bits,
        ),
    }


def run_table1(
    scale_name: str = "reduced",
    *,
    only: Optional[List[str]] = None,
) -> List[CircuitReport]:
    """Measure every Table-I row at a runnable scale."""
    reports = []
    for name, build in builders_for_scale(scale_name).items():
        if only and name not in only:
            continue
        reports.append(measure_circuit(name, build))
    return reports


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description="Reproduce Table I")
    parser.add_argument("--scale", default="reduced", choices=["tiny", "reduced"])
    parser.add_argument("--only", nargs="*", help="subset of row names")
    args = parser.parse_args(argv)

    print(f"# Table I reproduction at scale {args.scale!r}\n")
    reports = run_table1(args.scale, only=args.only)
    print(format_table(reports))

    print("\n# Paper-scale constraint counts (analytic cost model)\n")
    model_counts = paper_scale_constraints()
    print(f"{'Benchmark':<18} {'cost model':>14} {'paper':>14} {'ratio':>8}")
    for name, count in model_counts.items():
        paper = PAPER_TABLE1[name][0]
        print(f"{name:<18} {count:>14,} {paper:>14,} {count / paper:>8.2f}")


if __name__ == "__main__":
    main()
