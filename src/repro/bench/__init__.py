"""Benchmark harness: Table-I metrics, analytic cost model, runners."""

from .cost_model import GadgetCosts
from .metrics import CircuitReport, format_table, measure_circuit
from .table1 import (
    BENCH_FORMAT,
    PAPER_TABLE1,
    SCALES,
    builders_for_scale,
    paper_scale_constraints,
    run_table1,
)

__all__ = [
    "GadgetCosts",
    "CircuitReport",
    "format_table",
    "measure_circuit",
    "BENCH_FORMAT",
    "PAPER_TABLE1",
    "SCALES",
    "builders_for_scale",
    "paper_scale_constraints",
    "run_table1",
]
