"""A thread-safe, fork-aware metrics registry with Prometheus exposition.

Three metric families -- :class:`Counter` (monotone), :class:`Gauge`
(settable), :class:`Histogram` (fixed log-spaced buckets, cumulative) --
all label-aware, all guarded by one registry lock, rendered by
:meth:`MetricsRegistry.render` in the Prometheus text exposition format
(``# HELP`` / ``# TYPE`` headers, ``_bucket{le=...}`` / ``_sum`` /
``_count`` series for histograms).

The process-global registry (:func:`get_metrics`) is keyed by PID
exactly like ``repro.field.backend.get_field_ops``: the first lookup in
a forked worker discards the parent's registry, so child processes never
double-count into inherited state and a fork-then-scrape never observes
a torn snapshot.

Every mutation checks one module-global flag first: with
:func:`set_obs_enabled` off, ``inc``/``set``/``observe`` return before
touching the lock -- the "cheap no-op when disabled" discipline the
fault-injection hooks established.

Kernel profiling (MSM/NTT duration histograms, bucketed by power-of-two
operand count) is opt-in via ``ZKROWNN_PROFILE_KERNELS`` or
:func:`set_kernel_profiling`; the kernels check
:func:`kernel_profiling_enabled` before even reading a clock.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "KERNEL_PROFILING_ENV",
    "MetricsRegistry",
    "OBS_ENV",
    "get_metrics",
    "kernel_profiling_enabled",
    "obs_enabled",
    "observe_kernel",
    "reinit_metrics_after_fork",
    "set_kernel_profiling",
    "set_obs_enabled",
]

OBS_ENV = "ZKROWNN_OBS"
KERNEL_PROFILING_ENV = "ZKROWNN_PROFILE_KERNELS"

# Log-spaced 1-2.5-5 latency buckets from 1ms to 60s: wide enough for a
# sub-millisecond queue wait and a minutes-long proving batch alike.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 60.0,
)

_OFF_VALUES = ("0", "off", "false", "no", "disabled")

# Process-wide on/off switch for every hook in the codebase.  A module
# global read is the entire disabled-path cost.
_ENABLED: bool = os.environ.get(OBS_ENV, "").strip().lower() not in _OFF_VALUES
_KERNEL_PROFILING: bool = (
    os.environ.get(KERNEL_PROFILING_ENV, "").strip().lower()
    not in ("", *_OFF_VALUES)
)


def obs_enabled() -> bool:
    return _ENABLED


def set_obs_enabled(on: bool) -> bool:
    """Flip the global observability switch; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(on)
    return previous


def kernel_profiling_enabled() -> bool:
    return _KERNEL_PROFILING and _ENABLED


def set_kernel_profiling(on: bool) -> bool:
    """Flip MSM/NTT instrumentation; returns the previous value."""
    global _KERNEL_PROFILING
    previous = _KERNEL_PROFILING
    _KERNEL_PROFILING = bool(on)
    return previous


_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(key: _LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in pairs)
    return "{" + body + "}"


class _Metric:
    """Shared plumbing: one series dict per label set, registry lock."""

    type_name = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.Lock):
        self.name = name
        self.help = help_text
        self._lock = lock
        self._series: Dict[_LabelKey, object] = {}

    def _labelsets(self) -> List[_LabelKey]:
        with self._lock:
            return sorted(self._series)

    def render(self) -> List[str]:
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing count (per label set)."""

    type_name = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if not _ENABLED:
            return
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def render(self) -> List[str]:
        with self._lock:
            series = sorted(self._series.items())
        return [
            f"{self.name}{_render_labels(key)} {_format_value(value)}"
            for key, value in series
        ]


class Gauge(_Metric):
    """A value that can go up and down (queue depth, claims by state)."""

    type_name = "gauge"

    def set(self, value: float, **labels: str) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if not _ENABLED:
            return
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def render(self) -> List[str]:
        with self._lock:
            series = sorted(self._series.items())
        return [
            f"{self.name}{_render_labels(key)} {_format_value(value)}"
            for key, value in series
        ]


class Histogram(_Metric):
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    Each label set owns per-bucket counts plus a running sum and count;
    rendering emits the cumulative ``_bucket{le=...}`` series (always
    ending in ``le="+Inf"``), then ``_sum`` and ``_count``.
    """

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help_text, lock)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets: Tuple[float, ...] = tuple(bounds)

    def observe(self, value: float, **labels: str) -> None:
        if not _ENABLED:
            return
        value = float(value)
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = {
                    "counts": [0] * len(self.buckets),
                    "sum": 0.0,
                    "count": 0,
                }
                self._series[key] = series
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series["counts"][i] += 1
                    break
            series["sum"] += value
            series["count"] += 1

    def snapshot(self, **labels: str) -> Dict[str, object]:
        """Cumulative bucket counts plus sum/count for one label set."""
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return {"buckets": {}, "sum": 0.0, "count": 0}
            counts = list(series["counts"])
            total_sum, total_count = series["sum"], series["count"]
        cumulative: Dict[float, int] = {}
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            cumulative[bound] = running
        cumulative[math.inf] = total_count
        return {"buckets": cumulative, "sum": total_sum, "count": total_count}

    def render(self) -> List[str]:
        with self._lock:
            series = sorted(
                (key, list(s["counts"]), s["sum"], s["count"])
                for key, s in self._series.items()
            )
        lines: List[str] = []
        for key, counts, total_sum, total_count in series:
            running = 0
            for bound, count in zip(self.buckets, counts):
                running += count
                lines.append(
                    f"{self.name}_bucket"
                    f"{_render_labels(key, [('le', _format_value(bound))])} "
                    f"{running}"
                )
            lines.append(
                f"{self.name}_bucket{_render_labels(key, [('le', '+Inf')])} "
                f"{total_count}"
            )
            lines.append(
                f"{self.name}_sum{_render_labels(key)} "
                f"{_format_value(total_sum)}"
            )
            lines.append(f"{self.name}_count{_render_labels(key)} {total_count}")
        return lines


class MetricsRegistry:
    """All metric families of one process, behind one lock.

    ``counter``/``gauge``/``histogram`` are get-or-create (idempotent by
    name), so any component can name a metric without coordinating who
    registers it first; conflicting re-registration (same name, different
    family) is an error rather than a silent shadow.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help_text: str, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help_text, self._lock, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{metric.type_name}, not {cls.type_name}"
                )
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, buckets=buckets
        )

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def render(self) -> str:
        """The registry in Prometheus text exposition format."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: List[str] = []
        for metric in metrics:
            lines.append(f"# HELP {metric.name} {metric.help or metric.name}")
            lines.append(f"# TYPE {metric.name} {metric.type_name}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


# -- process-global registry ---------------------------------------------------
#
# PID-keyed, mirroring repro.field.backend._STATE: forked workers get a
# fresh registry on first use instead of mutating inherited counters.

_STATE: Dict[str, object] = {"pid": os.getpid(), "registry": None}
_STATE_LOCK = threading.Lock()


def get_metrics() -> MetricsRegistry:
    """This process's metrics registry (fork-aware, created on demand)."""
    with _STATE_LOCK:
        if _STATE["pid"] != os.getpid():
            _STATE["pid"] = os.getpid()
            _STATE["registry"] = None
        if _STATE["registry"] is None:
            _STATE["registry"] = MetricsRegistry()
        return _STATE["registry"]  # type: ignore[return-value]


def reinit_metrics_after_fork() -> None:
    """Drop inherited registry state; next use creates a fresh one."""
    with _STATE_LOCK:
        _STATE["pid"] = -1


# -- kernel profiling ----------------------------------------------------------

# Duration buckets for kernels run thousands of times per proof: down to
# 10us, still topping out at minutes for paper-scale MSMs.
KERNEL_BUCKETS: Tuple[float, ...] = (
    0.00001, 0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 60.0,
)


def size_bucket(n: int) -> str:
    """Power-of-two label for an operand count (``1000 -> "2^10"``)."""
    if n <= 0:
        return "0"
    return f"2^{(n - 1).bit_length()}"


def observe_kernel(kind: str, n: int, seconds: float, **labels: str) -> None:
    """Record one kernel invocation (``kind`` in ``{"msm", "ntt"}``).

    Callers gate on :func:`kernel_profiling_enabled` *before* reading
    the clock, so this function only ever runs on the profiled path.
    """
    get_metrics().histogram(
        f"zkrownn_{kind}_seconds",
        f"duration of one {kind.upper()} kernel call, by operand count",
        buckets=KERNEL_BUCKETS,
    ).observe(seconds, n=size_bucket(n), **labels)
