"""Structured JSONL event logging, gated by ``ZKROWNN_LOG_LEVEL``.

One JSON object per line on stderr::

    {"at": 1754630000.123, "level": "info", "component": "server",
     "event": "http.request", "method": "GET", "path": "/health",
     "code": 200}

The default level is ``warning``: tests and benchmarks stay quiet, the
HTTP access log (``info``) exists but is opt-in, and the registry's
corruption warnings still surface.  ``ZKROWNN_LOG_LEVEL=off`` silences
everything.

The output stream is resolved at emit time (default ``sys.stderr``) so
pytest's capture and test-injected ``StringIO`` streams both work.

Every emitted line is also mirrored into stdlib :mod:`logging` under
``zkrownn.<component>`` so existing handlers (and pytest's ``caplog``)
observe the same events; a ``NullHandler`` on the ``zkrownn`` root keeps
the mirror silent when nothing is configured.
"""

from __future__ import annotations

import json
import logging as _stdlib_logging
import os
import sys
import threading
import time
from typing import Dict, IO, Optional

__all__ = ["LEVELS", "LOG_LEVEL_ENV", "Logger", "configure", "get_logger", "log_level"]

LOG_LEVEL_ENV = "ZKROWNN_LOG_LEVEL"

LEVELS: Dict[str, int] = {
    "debug": 10,
    "info": 20,
    "warning": 30,
    "error": 40,
    "off": 100,
}

_DEFAULT_LEVEL = "warning"


def _parse_level(raw: Optional[str]) -> int:
    if not raw:
        return LEVELS[_DEFAULT_LEVEL]
    return LEVELS.get(raw.strip().lower(), LEVELS[_DEFAULT_LEVEL])


_LOCK = threading.Lock()
_THRESHOLD: int = _parse_level(os.environ.get(LOG_LEVEL_ENV))
_STREAM: Optional[IO[str]] = None  # None -> sys.stderr at emit time
_LOGGERS: Dict[str, "Logger"] = {}

# NullHandler: the stdlib mirror never triggers logging.lastResort (which
# would duplicate our stderr line) but still propagates to any handlers
# the embedding application -- or pytest's caplog -- installs on root.
_stdlib_logging.getLogger("zkrownn").addHandler(_stdlib_logging.NullHandler())


def log_level() -> str:
    """The active level name (``"warning"`` by default)."""
    for name, value in LEVELS.items():
        if value == _THRESHOLD:
            return name
    return _DEFAULT_LEVEL


def configure(
    level: Optional[str] = None,
    stream: Optional[IO[str]] = None,
) -> None:
    """Override the level and/or destination stream (tests, CLI).

    ``configure(stream=None)`` leaves the stream as-is; pass
    ``stream=sys.stderr`` explicitly to reset it.
    """
    global _THRESHOLD, _STREAM
    with _LOCK:
        if level is not None:
            if level.strip().lower() not in LEVELS:
                raise ValueError(
                    f"unknown log level {level!r}; one of {sorted(LEVELS)}"
                )
            _THRESHOLD = _parse_level(level)
        if stream is not None:
            _STREAM = stream


class Logger:
    """A named component's handle; emission checks one int threshold."""

    __slots__ = ("component", "_mirror")

    def __init__(self, component: str):
        self.component = component
        self._mirror = _stdlib_logging.getLogger(f"zkrownn.{component}")

    def enabled_for(self, level: str) -> bool:
        return LEVELS.get(level, 0) >= _THRESHOLD

    def _emit(self, level: str, event: str, fields: Dict[str, object]) -> None:
        if LEVELS[level] < _THRESHOLD:
            return
        record = {
            "at": round(time.time(), 6),
            "level": level,
            "component": self.component,
            "event": event,
        }
        record.update(fields)
        line = json.dumps(record, default=str, separators=(",", ":"))
        try:
            self._mirror.log(LEVELS[level], "%s", line)
        except Exception:
            pass  # a broken user handler must never break the service
        with _LOCK:
            stream = _STREAM if _STREAM is not None else sys.stderr
            try:
                stream.write(line + "\n")
                stream.flush()
            except (OSError, ValueError):
                pass  # closed stream at interpreter teardown

    def debug(self, event: str, **fields: object) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields: object) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields: object) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields: object) -> None:
        self._emit("error", event, fields)


def get_logger(component: str) -> Logger:
    with _LOCK:
        logger = _LOGGERS.get(component)
        if logger is None:
            logger = Logger(component)
            _LOGGERS[component] = logger
        return logger
