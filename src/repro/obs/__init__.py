"""Observability for the proof service: traces, metrics, structured logs.

Three stdlib-only layers, threaded client -> server -> scheduler ->
engine -> kernels:

* :mod:`repro.obs.metrics` -- a thread-safe, fork-aware (PID-keyed, like
  ``get_field_ops``) metrics registry with Counter / Gauge / Histogram
  families, rendered in Prometheus text exposition format for
  ``GET /metrics``.  Also home to the opt-in MSM/NTT kernel-profiling
  switch (``ZKROWNN_PROFILE_KERNELS``).
* :mod:`repro.obs.trace` -- a lightweight span tracer: every claim gets
  a trace (``trace_id`` minted client-side and propagated as
  ``X-Trace-Id``) whose spans -- submit, queue-wait, lease-acquire,
  synthesize, prove, persist, verify -- are persisted next to the claim
  record and served at ``GET /claims/<id>/trace``.  Fired
  fault-injection sites attach as events on the active span.
* :mod:`repro.obs.logging` -- structured JSONL event logging gated by
  ``ZKROWNN_LOG_LEVEL`` (default ``warning``: tests stay quiet, the
  HTTP access log exists but is opt-in).

Every hook is a cheap no-op when observability is disabled
(:func:`set_obs_enabled`), the same discipline as
``faults.injected()``: one global read, nothing allocated.
"""

from .logging import configure as configure_logging, get_logger, log_level
from .metrics import (
    MetricsRegistry,
    get_metrics,
    kernel_profiling_enabled,
    obs_enabled,
    reinit_metrics_after_fork,
    set_kernel_profiling,
    set_obs_enabled,
)
from .trace import NULL_SPAN, Span, Tracer, current_span, new_trace_id

__all__ = [
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "configure_logging",
    "current_span",
    "get_logger",
    "get_metrics",
    "kernel_profiling_enabled",
    "log_level",
    "new_trace_id",
    "obs_enabled",
    "reinit_metrics_after_fork",
    "set_kernel_profiling",
    "set_obs_enabled",
]
