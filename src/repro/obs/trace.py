"""Lightweight per-claim span tracing.

A *trace* is the lifecycle of one claim: the client mints a
``trace_id`` (propagated as ``X-Trace-Id``), and every stage the claim
passes through -- submit, queue-wait, lease-acquire, synthesize, prove,
persist, verify -- becomes a :class:`Span` with a wall-clock anchor and
a monotonic duration.  Completed spans are handed to a *sink* (the
claim registry's ``store_trace_span``) so the tree survives restarts
and is served back at ``GET /claims/<id>/trace``.

Spans form a tree via ``parent_id``; a thread-local stack of *active*
spans (:func:`current_span`, :meth:`Tracer.active`) lets deep layers --
notably the fault-injection engine -- attach events to whatever stage
is running without threading a span handle through every signature.

When observability is disabled, or a task carries no trace id, every
entry point returns :data:`NULL_SPAN`, whose methods do nothing: the
scheduler hot path pays one truthiness check and nothing else.
"""

from __future__ import annotations

import re
import secrets
import threading
import time
from typing import Callable, Dict, List, Optional

from . import metrics as _metrics

__all__ = [
    "NULL_SPAN",
    "Span",
    "Tracer",
    "current_span",
    "new_span_id",
    "new_trace_id",
    "record_fault",
    "sanitize_trace_id",
]

_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")


def new_trace_id() -> str:
    return secrets.token_hex(16)


def new_span_id() -> str:
    return secrets.token_hex(8)


def sanitize_trace_id(raw: object) -> str:
    """A safe trace id from untrusted wire input, or ``""`` if invalid."""
    if not isinstance(raw, str):
        return ""
    raw = raw.strip()
    return raw if _TRACE_ID_RE.match(raw) else ""


class Span:
    """One timed stage of a claim's lifecycle.

    ``start_monotonic`` may be supplied to backdate the span (the
    queue-wait span starts at the task's ``submitted_at``, long before
    the worker thread that ends it existed).
    """

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name", "claim_id",
        "start_unix", "_start_mono", "duration_seconds",
        "attrs", "events", "_ended",
    )

    def __init__(
        self,
        trace_id: str,
        name: str,
        *,
        claim_id: str = "",
        parent_id: str = "",
        start_monotonic: Optional[float] = None,
        **attrs: object,
    ):
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.name = name
        self.claim_id = claim_id
        now_mono = time.monotonic()
        self._start_mono = (
            now_mono if start_monotonic is None else float(start_monotonic)
        )
        # Wall-clock anchor consistent with the (possibly backdated)
        # monotonic start, so rendered timelines line up.
        self.start_unix = time.time() - (now_mono - self._start_mono)
        self.duration_seconds: Optional[float] = None
        self.attrs: Dict[str, object] = dict(attrs)
        self.events: List[Dict[str, object]] = []
        self._ended = False

    def event(self, name: str, **attrs: object) -> None:
        self.events.append({
            "name": name,
            "at": round(time.monotonic() - self._start_mono, 9),
            **attrs,
        })

    def end(self, **attrs: object) -> "Span":
        """Close the span (idempotent); later calls are ignored."""
        if not self._ended:
            self._ended = True
            self.duration_seconds = time.monotonic() - self._start_mono
            self.attrs.update(attrs)
        return self

    @property
    def ended(self) -> bool:
        return self._ended

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "name": self.name,
            "start_unix": round(self.start_unix, 6),
        }
        if self.parent_id:
            out["parent_id"] = self.parent_id
        if self.claim_id:
            out["claim_id"] = self.claim_id
        if self.duration_seconds is not None:
            out["duration_seconds"] = round(self.duration_seconds, 9)
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.events:
            out["events"] = list(self.events)
        return out


class _NullSpan:
    """Every method a no-op; truthiness False so hooks can gate on it."""

    __slots__ = ()
    trace_id = ""
    span_id = ""
    parent_id = ""
    name = ""
    claim_id = ""
    duration_seconds = None
    ended = True

    def __bool__(self) -> bool:
        return False

    def event(self, name: str, **attrs: object) -> None:
        pass

    def end(self, **attrs: object) -> "_NullSpan":
        return self

    def as_dict(self) -> Dict[str, object]:
        return {}


NULL_SPAN = _NullSpan()


_ACTIVE = threading.local()


def _stack() -> List[Span]:
    stack = getattr(_ACTIVE, "stack", None)
    if stack is None:
        stack = []
        _ACTIVE.stack = stack
    return stack


def current_span():
    """The innermost active span on this thread, or :data:`NULL_SPAN`."""
    stack = getattr(_ACTIVE, "stack", None)
    return stack[-1] if stack else NULL_SPAN


def record_fault(site: str, kind: str) -> None:
    """Attach a fired fault-injection site to the active span (if any)
    and count it.  Called by ``faults.FaultPlan`` only when a spec
    actually fires, so the disabled path never reaches here.
    """
    if not _metrics.obs_enabled():
        return
    current_span().event("fault-injected", site=site, kind=kind)
    _metrics.get_metrics().counter(
        "zkrownn_faults_injected_total",
        "fault-injection sites fired, by site and kind",
    ).inc(site=site, kind=kind)


class _ActiveContext:
    __slots__ = ("_span", "_end_attrs", "_pushed")

    def __init__(self, span, end: bool):
        self._span = span
        self._end_attrs = end
        self._pushed = False

    def __enter__(self):
        if self._span:
            _stack().append(self._span)
            self._pushed = True
        return self._span

    def __exit__(self, exc_type, exc, tb):
        if self._pushed:
            stack = _stack()
            if stack and stack[-1] is self._span:
                stack.pop()
        return False


class Tracer:
    """Mints spans and persists completed ones through a sink.

    ``sink`` is ``Callable[[claim_id, span_dict], None]`` -- in the
    service, the registry's ``store_trace_span``.  Sink failures are
    swallowed (observability must never fail a proof); stage durations
    are mirrored into the ``zkrownn_stage_seconds`` histogram so traces
    and metrics always agree.
    """

    def __init__(
        self,
        sink: Optional[Callable[[str, Dict[str, object]], None]] = None,
    ):
        self._sink = sink

    def span(
        self,
        trace_id: str,
        name: str,
        *,
        claim_id: str = "",
        parent_id: str = "",
        start_monotonic: Optional[float] = None,
        **attrs: object,
    ):
        """A new live span, or :data:`NULL_SPAN` when untraced/disabled."""
        if not trace_id or not _metrics.obs_enabled():
            return NULL_SPAN
        if not parent_id:
            parent = current_span()
            if parent and parent.trace_id == trace_id:
                parent_id = parent.span_id
        return Span(
            trace_id,
            name,
            claim_id=claim_id,
            parent_id=parent_id,
            start_monotonic=start_monotonic,
            **attrs,
        )

    def active(self, span) -> _ActiveContext:
        """Context manager pushing ``span`` onto this thread's active
        stack, so nested spans parent to it and fired faults attach as
        its events.  Does not end the span on exit.
        """
        return _ActiveContext(span, end=False)

    def finish(self, span, **attrs: object) -> None:
        """End ``span`` (if still open), persist it, record its stage
        duration.  Safe with :data:`NULL_SPAN`.
        """
        if not span:
            return
        if not span.ended:
            span.end(**attrs)
        elif attrs:
            span.attrs.update(attrs)
        if span.duration_seconds is not None:
            _metrics.get_metrics().histogram(
                "zkrownn_stage_seconds",
                "per-claim lifecycle stage latency",
            ).observe(span.duration_seconds, stage=span.name)
        if self._sink is not None and span.claim_id:
            try:
                self._sink(span.claim_id, span.as_dict())
            except OSError:
                pass
