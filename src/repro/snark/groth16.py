"""The Groth16 zkSNARK: Setup / Prove / Verify.

The proof system of the paper (Section II-B): quadratic-arithmetic-program
based, pairing-based, with constant-size proofs (2 G1 + 1 G2) and
verification cost independent of circuit size -- the two properties all of
ZKROWNN's "fast public verification" claims rest on.

Follows Groth's EUROCRYPT 2016 construction exactly:

* ``Setup(C)`` samples toxic waste ``(alpha, beta, gamma, delta, tau)``,
  evaluates the QAP at tau and emits (PK, VK).  The sampled scalars must be
  destroyed; :class:`repro.zkrownn.protocol.TrustedSetupParty` models the
  ceremony.
* ``Prove(PK, C, z)`` commits to the witness with two random blinders
  (r, s), making proofs perfectly zero-knowledge.
* ``Verify(VK, x, proof)`` checks one pairing-product equation via a single
  multi-Miller loop.
"""

from __future__ import annotations

import secrets
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..curves.bn254 import P, R
from ..field.backend import get_field_ops
from ..curves.g1 import (
    G1Point,
    JacobianPoint,
    jac_add,
    jac_scalar_mul,
    jac_to_affine_many,
)
from ..curves.g2 import G2Point
from ..curves.msm import (
    FixedBaseTableG1,
    FixedBaseTableG2,
    msm_g1,
    msm_g1_multi,
    msm_g2,
)
from ..curves.pairing import (
    G2Precomputed,
    final_exponentiation,
    multi_miller_loop,
    multi_pairing,
    precompute_g2,
)
from .errors import UnsatisfiedWitness
from .keys import Proof, ProvingKey, VerifyingKey
from .qap import compute_h, evaluate_qap_at
from .r1cs import ConstraintSystem

__all__ = [
    "BatchGroupResult",
    "Groth16Keypair",
    "PreparedProvingKey",
    "PreparedVerifyingKey",
    "SimulationTrapdoor",
    "setup",
    "setup_with_trapdoor",
    "simulate_proof",
    "prepare_proving_key",
    "prepare_verifying_key",
    "prove",
    "prove_prepared",
    "verify",
    "verify_batch",
    "verify_batch_grouped",
    "verify_batch_prepared",
    "verify_prepared",
    "verify_with_precheck",
]


@dataclass(frozen=True)
class Groth16Keypair:
    proving_key: ProvingKey
    verifying_key: VerifyingKey


@dataclass(frozen=True)
class SimulationTrapdoor:
    """The toxic waste of a Groth16 setup.

    Whoever holds this can forge proofs for arbitrary statements --
    exactly why the ceremony must destroy it.  It is exposed *only* to
    implement the zero-knowledge simulator: the existence of
    :func:`simulate_proof` (valid proofs generated without any witness)
    is what certifies that honest proofs leak nothing about the witness.
    Tests use it; the protocol layer never touches it.
    """

    alpha: int
    beta: int
    gamma: int
    delta: int
    tau: int


_GENERATOR_TABLES: List = []


def _generator_tables() -> Tuple[FixedBaseTableG1, FixedBaseTableG2]:
    """Lazily built, process-wide fixed-base tables for the two generators.

    Both tables depend only on curve constants, so sharing them across
    setups is sound and removes ~0.2 s of per-setup overhead.
    """
    if not _GENERATOR_TABLES:
        g1 = G1Point.generator()
        _GENERATOR_TABLES.append(FixedBaseTableG1((g1.x, g1.y)))
        _GENERATOR_TABLES.append(FixedBaseTableG2(G2Point.generator()))
    return _GENERATOR_TABLES[0], _GENERATOR_TABLES[1]


class _Randomness:
    """Scalar sampler; deterministic when seeded (tests, reproducible runs)."""

    def __init__(self, seed: Optional[int] = None):
        if seed is None:
            self._next = lambda: secrets.randbelow(R - 1) + 1
        else:
            import random

            rng = random.Random(seed)
            self._next = lambda: rng.randrange(1, R)

    def scalar(self) -> int:
        return self._next()


def setup(cs: ConstraintSystem, *, seed: Optional[int] = None) -> Groth16Keypair:
    """Run the (simulated) trusted setup for a circuit.

    ``seed`` makes the toxic waste deterministic -- ONLY for tests and
    benchmarks; a real ceremony must use fresh entropy and destroy it.
    """
    keypair, _ = setup_with_trapdoor(cs, seed=seed)
    return keypair


def _g1_points_from_jacs(jacs: Sequence[JacobianPoint]) -> List[G1Point]:
    """Normalize many Jacobian points to :class:`G1Point` with one inversion."""
    return [
        G1Point.infinity() if aff is None else G1Point(aff[0], aff[1])
        for aff in jac_to_affine_many(jacs)
    ]


def setup_with_trapdoor(
    cs: ConstraintSystem, *, seed: Optional[int] = None
) -> Tuple[Groth16Keypair, SimulationTrapdoor]:
    """Setup that also returns the toxic waste (for the ZK simulator)."""
    rng = _Randomness(seed)
    alpha, beta, gamma, delta, tau = (rng.scalar() for _ in range(5))
    # Scalar bookkeeping runs on the active field backend's natives (the
    # toxic waste itself stays a plain int for the trapdoor dataclass).
    ops_r = get_field_ops(R)
    gamma_inv = ops_r.inv(gamma)
    delta_inv = ops_r.inv(delta)

    qap = evaluate_qap_at(cs, tau)
    m = cs.num_variables
    ell = cs.num_public

    table_g1, table_g2 = _generator_tables()

    # All G1 products are accumulated in Jacobian form and normalized with a
    # single batched inversion at the end -- thousands of points, one pow.
    g1_mul = table_g1.mul

    # Query vectors.
    a_jac = [g1_mul(qap.u[j]) for j in range(m)]
    b_g1_jac = [g1_mul(qap.v[j]) for j in range(m)]
    b_g2_query = table_g2.mul_many([qap.v[j] for j in range(m)])

    # k_j = (beta*u_j + alpha*v_j + w_j) scaled by 1/gamma (public, in VK)
    # or 1/delta (private, in PK).
    def k_scalar(j: int) -> int:
        return (beta * qap.u[j] + alpha * qap.v[j] + qap.w[j]) % R

    ic_jac = [g1_mul(k_scalar(j) * gamma_inv % R) for j in range(ell + 1)]
    k_jac = [g1_mul(k_scalar(j) * delta_inv % R) for j in range(ell + 1, m)]

    # h_query[i] = [tau^i * t(tau) / delta]_1 for i < |H| - 1.
    rn = ops_r.modulus_native
    tau_native = ops_r.wrap(tau)
    t_over_delta = qap.t_at_tau * delta_inv % rn
    h_jac: List[JacobianPoint] = []
    power = t_over_delta
    for _ in range(qap.domain_size - 1):
        h_jac.append(g1_mul(power))
        power = power * tau_native % rn

    all_points = _g1_points_from_jacs(
        a_jac
        + b_g1_jac
        + ic_jac
        + k_jac
        + h_jac
        + [g1_mul(alpha), g1_mul(beta), g1_mul(delta)]
    )
    offset = 0
    a_query = all_points[offset : offset + m]
    offset += m
    b_g1_query = all_points[offset : offset + m]
    offset += m
    ic = all_points[offset : offset + ell + 1]
    offset += ell + 1
    k_query = all_points[offset : offset + len(k_jac)]
    offset += len(k_jac)
    h_query = all_points[offset : offset + len(h_jac)]
    alpha_g1, beta_g1, delta_g1 = all_points[-3:]

    proving_key = ProvingKey(
        alpha_g1=alpha_g1,
        beta_g1=beta_g1,
        beta_g2=table_g2.mul(beta),
        delta_g1=delta_g1,
        delta_g2=table_g2.mul(delta),
        a_query=a_query,
        b_g1_query=b_g1_query,
        b_g2_query=b_g2_query,
        k_query=k_query,
        h_query=h_query,
        num_public=ell,
    )
    verifying_key = VerifyingKey(
        alpha_g1=proving_key.alpha_g1,
        beta_g2=proving_key.beta_g2,
        gamma_g2=table_g2.mul(gamma),
        delta_g2=proving_key.delta_g2,
        ic=ic,
    )
    trapdoor = SimulationTrapdoor(alpha, beta, gamma, delta, tau)
    return Groth16Keypair(proving_key, verifying_key), trapdoor


def simulate_proof(
    trapdoor: SimulationTrapdoor,
    cs: ConstraintSystem,
    public_inputs: Sequence[int],
    *,
    seed: Optional[int] = None,
) -> Proof:
    """Forge a verifying proof for an instance WITHOUT any witness.

    The standard Groth16 zero-knowledge simulator: sample random a, b and
    solve the verification equation for C using the trapdoor::

        C = (a*b - alpha*beta - sum_public z_j (beta u_j + alpha v_j + w_j)) / delta

    Simulated proofs are distributed identically to honest ones, which is
    the formal content of "the proof reveals nothing about the witness".
    """
    if len(public_inputs) != cs.num_public:
        raise ValueError(
            f"instance has {len(public_inputs)} values, circuit expects "
            f"{cs.num_public}"
        )
    rng = _Randomness(seed)
    a, b = rng.scalar(), rng.scalar()
    qap = evaluate_qap_at(cs, trapdoor.tau)
    z = [1] + [v % R for v in public_inputs]
    k_public = 0
    for j, z_j in enumerate(z):
        k_j = (
            trapdoor.beta * qap.u[j]
            + trapdoor.alpha * qap.v[j]
            + qap.w[j]
        ) % R
        k_public = (k_public + z_j * k_j) % R
    c = (
        (a * b - trapdoor.alpha * trapdoor.beta - k_public)
        * pow(trapdoor.delta, -1, R)
    ) % R
    g1 = G1Point.generator()
    g2 = G2Point.generator()
    return Proof(g1 * a, g2 * b, g1 * c)


def _g1_affine(p: G1Point) -> Optional[Tuple[int, int]]:
    return None if p.is_infinity() else (p.x, p.y)


@dataclass(frozen=True)
class PreparedProvingKey:
    """A proving key with its MSM bases pre-converted to affine tuples.

    ``prove`` spends a noticeable slice of each call flattening the query
    vectors from :class:`G1Point` objects into the ``(x, y)`` tuples the
    Pippenger MSM consumes.  A prover issuing many proofs under one key
    (the amortized ZKROWNN lifecycle) does the conversion once; the
    :class:`~repro.engine.engine.ProvingEngine` caches one of these per
    structure digest.  Coordinates are stored as the *field backend's*
    native residues (``mpz`` under gmpy2), so every per-proof MSM runs on
    natives with zero per-call conversions; ``field_backend`` records
    which backend the bases were wrapped for.
    """

    pk: ProvingKey
    points_a: List[Optional[Tuple[int, int]]]
    points_b1: List[Optional[Tuple[int, int]]]
    points_k: List[Optional[Tuple[int, int]]]
    points_h: List[Optional[Tuple[int, int]]]
    field_backend: str = "python"


def prepare_proving_key(pk: ProvingKey) -> PreparedProvingKey:
    ops = get_field_ops(P)
    wrap = ops.wrap

    def affine(p: G1Point) -> Optional[Tuple[int, int]]:
        return None if p.is_infinity() else (wrap(p.x), wrap(p.y))

    return PreparedProvingKey(
        pk=pk,
        points_a=[affine(p) for p in pk.a_query],
        points_b1=[affine(p) for p in pk.b_g1_query],
        points_k=[affine(p) for p in pk.k_query],
        points_h=[affine(p) for p in pk.h_query],
        field_backend=ops.name,
    )


def prove(
    pk: ProvingKey,
    cs: ConstraintSystem,
    assignment: Sequence[int],
    *,
    seed: Optional[int] = None,
) -> Proof:
    """Generate a proof for a full variable assignment.

    The assignment must satisfy ``cs`` (checked up front -- a SNARK proof
    for an unsatisfied system would verify as garbage otherwise).
    """
    return prove_prepared(prepare_proving_key(pk), cs, assignment, seed=seed)


def prove_prepared(
    ppk: PreparedProvingKey,
    cs: ConstraintSystem,
    assignment: Sequence[int],
    *,
    seed: Optional[int] = None,
    backend=None,
) -> Proof:
    """`prove` against a prepared key (MSM bases already affine).

    ``backend`` (a :class:`~repro.parallel.backend.ComputeBackend`) routes
    the large G1 MSMs; ``None`` keeps them on the calling thread.  The
    resulting proof is identical either way.
    """
    pk = ppk.pk
    cs.check_satisfied(assignment)
    if len(pk.a_query) != cs.num_variables:
        raise UnsatisfiedWitness(
            "proving key was generated for a different circuit "
            f"({len(pk.a_query)} variables vs {cs.num_variables})"
        )
    g1_msm = msm_g1 if backend is None else backend.msm_g1
    g1_msm_multi = msm_g1_multi if backend is None else backend.msm_g1_multi
    g2_msm = msm_g2 if backend is None else backend.msm_g2
    rng = _Randomness(seed)
    r, s = rng.scalar(), rng.scalar()

    # Witness residues in backend-native form: one wrap here feeds the
    # A/B1/K MSM scalar paths and the NTT-based h computation alike.
    z = get_field_ops(R).wrap_many(assignment)

    # The A and B1 commitments multiply different bases by the SAME witness
    # vector; the shared-scalar multi-MSM decomposes and recodes z once.
    a_acc, b1_acc = g1_msm_multi([ppk.points_a, ppk.points_b1], z)

    # A = alpha + sum z_j u_j(tau) + r*delta   (in G1)
    a_acc = jac_add(a_acc, pk.alpha_g1.to_jacobian())
    a_acc = jac_add(a_acc, jac_scalar_mul(pk.delta_g1.to_jacobian(), r))

    # B = beta + sum z_j v_j(tau) + s*delta    (in G2, and mirrored in G1)
    proof_b2 = g2_msm(pk.b_g2_query, z) + pk.beta_g2 + pk.delta_g2 * s
    b1_acc = jac_add(b1_acc, pk.beta_g1.to_jacobian())
    b1_acc = jac_add(b1_acc, jac_scalar_mul(pk.delta_g1.to_jacobian(), s))

    # C = sum_private z_j K_j + sum h_i H_i + s*A + r*B1 - r*s*delta
    h_coeffs = compute_h(cs, z)
    private_z = z[pk.num_public + 1 :]
    c_acc = g1_msm(ppk.points_k, private_z)
    c_acc = jac_add(c_acc, g1_msm(ppk.points_h, h_coeffs[: len(pk.h_query)]))
    c_acc = jac_add(c_acc, jac_scalar_mul(a_acc, s))
    c_acc = jac_add(c_acc, jac_scalar_mul(b1_acc, r))
    c_acc = jac_add(
        c_acc, jac_scalar_mul(pk.delta_g1.to_jacobian(), (-r * s) % R)
    )
    # Both G1 proof points normalized with one shared inversion.
    proof_a, proof_c = _g1_points_from_jacs([a_acc, c_acc])

    return Proof(proof_a, proof_b2, proof_c)


def verify(vk: VerifyingKey, public_inputs: Sequence[int], proof: Proof) -> bool:
    """Check the Groth16 pairing equation.

    ``e(A, B) = e(alpha, beta) * e(IC(x), gamma) * e(C, delta)`` rearranged
    into a single product check via one multi-pairing.
    """
    if len(public_inputs) != vk.num_public_inputs:
        return False
    ic_points = [_g1_affine(p) for p in vk.ic]
    scalars = [1] + [x % R for x in public_inputs]
    vk_x = G1Point.from_jacobian(msm_g1(ic_points, scalars))
    return multi_pairing(
        [
            (proof.a, proof.b),
            (-vk_x, vk.gamma_g2),
            (-proof.c, vk.delta_g2),
            (-vk.alpha_g1, vk.beta_g2),
        ]
    ).is_one()


@dataclass(frozen=True)
class PreparedVerifyingKey:
    """A verification key with its fixed G2 points precomputed.

    Three of the four pairings in the Groth16 check use key-fixed G2
    points (beta, gamma, delta); a verifier expecting many proofs
    precomputes their Miller-loop coefficients once and roughly halves
    per-proof pairing time.  Mirrors libsnark's processed key.
    """

    vk: VerifyingKey
    beta_pre: G2Precomputed
    gamma_pre: G2Precomputed
    delta_pre: G2Precomputed


def prepare_verifying_key(vk: VerifyingKey) -> PreparedVerifyingKey:
    return PreparedVerifyingKey(
        vk=vk,
        beta_pre=precompute_g2(vk.beta_g2),
        gamma_pre=precompute_g2(vk.gamma_g2),
        delta_pre=precompute_g2(vk.delta_g2),
    )


def verify_prepared(
    pvk: PreparedVerifyingKey, public_inputs: Sequence[int], proof: Proof
) -> bool:
    """Groth16 verification against a prepared key.

    One live Miller loop (A, B) plus three precomputed ones, a single
    shared final exponentiation.
    """
    vk = pvk.vk
    if len(public_inputs) != vk.num_public_inputs:
        return False
    ic_points = [_g1_affine(p) for p in vk.ic]
    scalars = [1] + [x % R for x in public_inputs]
    vk_x = G1Point.from_jacobian(msm_g1(ic_points, scalars))
    acc = multi_miller_loop(
        [
            (proof.a, proof.b),
            (-vk_x, pvk.gamma_pre),
            (-proof.c, pvk.delta_pre),
            (-vk.alpha_g1, pvk.beta_pre),
        ]
    )
    return final_exponentiation(acc).is_one()


#: Bit width of the batch-verification RLC exponents.  128-bit rhos make
#: the soundness error 2^-128 (instead of ~n/r with full-width scalars)
#: while halving the cost of the per-proof ``rho * A_i`` scalar muls.
_BATCH_RHO_BITS = 128


def _batch_rho_sampler(seed: Optional[int]):
    """Nonzero 128-bit rho exponents for the batch RLC.

    ``seed=None`` draws from :mod:`secrets` -- the safe default, since an
    adversary who predicts the rhos can craft invalid proofs whose errors
    cancel in the combination.  Seeding keeps tests deterministic.
    """
    bound = 1 << _BATCH_RHO_BITS
    if seed is None:
        return lambda: secrets.randbelow(bound - 1) + 1
    import random

    rng = random.Random(seed)
    return lambda: rng.randrange(1, bound)


def _accumulate_batch(vk, batch, next_rho, g1_msm):
    """The RLC accumulation shared by every batch-verification entry point.

    Returns ``(live_pairs, neg_alpha, neg_vkx, neg_c)`` -- the n
    ``(rho_i A_i, B_i)`` pairs plus the three G1 points that pair with the
    key-fixed G2 points -- or ``None`` when some instance has the wrong
    length (the whole batch is then rejected).  All instances share the IC
    points, so their contributions fold into one MSM with combined scalars
    ``sum_i rho_i * z_i[j]``; likewise the per-proof ``rho_i * C_i``
    scalar muls fold into a single MSM over the C points.
    """
    pairs: List[Tuple[G1Point, G2Point]] = []
    rho_total = 0
    ic_points = [_g1_affine(p) for p in vk.ic]
    combined_scalars = [0] * len(vk.ic)
    c_points: List[Optional[Tuple[int, int]]] = []
    c_scalars: List[int] = []
    for public_inputs, proof in batch:
        if len(public_inputs) != vk.num_public_inputs:
            return None
        rho = next_rho()
        rho_total = (rho_total + rho) % R
        pairs.append((proof.a * rho, proof.b))
        combined_scalars[0] = (combined_scalars[0] + rho) % R
        for j, x in enumerate(public_inputs, start=1):
            combined_scalars[j] = (combined_scalars[j] + rho * x) % R
        c_points.append(_g1_affine(proof.c))
        c_scalars.append(rho)
    vkx_acc = g1_msm(ic_points, combined_scalars)
    c_acc = g1_msm(c_points, c_scalars)
    return (
        pairs,
        -(vk.alpha_g1 * rho_total),
        -G1Point.from_jacobian(vkx_acc),
        -G1Point.from_jacobian(c_acc),
    )


def verify_batch(
    vk: VerifyingKey,
    batch: Sequence[Tuple[Sequence[int], Proof]],
    *,
    seed: Optional[int] = None,
) -> bool:
    """Verify many proofs under one key with a single multi-pairing.

    Takes a random linear combination of the verification equations:
    ``prod_i e(rho_i A_i, B_i) = e(alpha, beta)^(sum rho_i)
    * e(sum rho_i IC(x_i), gamma) * e(sum rho_i C_i, delta)``.
    A batch of n proofs costs n + 3 Miller loops sharing ONE squaring
    chain (:func:`~repro.curves.pairing.multi_miller_loop`) and one final
    exponentiation, instead of 4n Miller loops and n final exponentiations
    for n single verifies.

    Soundness: an invalid proof slips through only if the random rhos land
    on a cancellation, probability ``2^-128`` per batch with the 128-bit
    rhos used here (``~n/r`` would need full-width rhos; 128 bits already
    exceeds the 100-bit security of BN254 itself).  ``seed=None`` (the
    default) draws the rhos from :mod:`secrets`; seeding is for tests and
    reproducible runs ONLY -- an adversary who knows the rhos in advance
    can defeat the combination.
    """
    if not batch:
        return True
    acc = _accumulate_batch(vk, batch, _batch_rho_sampler(seed), msm_g1)
    if acc is None:
        return False
    pairs, neg_alpha, neg_vkx, neg_c = acc
    pairs.append((neg_alpha, vk.beta_g2))
    pairs.append((neg_vkx, vk.gamma_g2))
    pairs.append((neg_c, vk.delta_g2))
    return multi_pairing(pairs).is_one()


def verify_batch_prepared(
    pvk: PreparedVerifyingKey,
    batch: Sequence[Tuple[Sequence[int], Proof]],
    *,
    seed: Optional[int] = None,
    backend=None,
) -> bool:
    """:func:`verify_batch` against a prepared key, optionally fanned out.

    The three key-fixed pairings consume the prepared key's captured line
    coefficients (no G2 arithmetic), and the n live ``(rho_i A_i, B_i)``
    Miller loops share one squaring chain.  ``backend`` (a
    :class:`~repro.parallel.backend.ComputeBackend`) routes the live
    Miller product and the folded C/IC MSMs across workers for large
    batches; per-chunk Miller products are combined before the single
    final exponentiation.  Verdicts are identical across backends.

    Same soundness bound and seeding rules as :func:`verify_batch`.
    """
    if not batch:
        return True
    vk = pvk.vk
    g1_msm = msm_g1 if backend is None else backend.msm_g1
    acc = _accumulate_batch(vk, batch, _batch_rho_sampler(seed), g1_msm)
    if acc is None:
        return False
    live_pairs, neg_alpha, neg_vkx, neg_c = acc
    fixed_pairs = [
        (neg_alpha, pvk.beta_pre),
        (neg_vkx, pvk.gamma_pre),
        (neg_c, pvk.delta_pre),
    ]
    if backend is None:
        f = multi_miller_loop(live_pairs + fixed_pairs)
    else:
        f = backend.multi_miller(live_pairs)
        f = f * multi_miller_loop(fixed_pairs)
    return final_exponentiation(f).is_one()


@dataclass(frozen=True)
class BatchGroupResult:
    """Verdict for one same-VK bucket of :func:`verify_batch_grouped`."""

    vk_digest: str
    indices: Tuple[int, ...]
    accepted: bool

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.accepted


def verify_batch_grouped(
    items: Sequence[Tuple[object, Sequence[int], Proof]],
    *,
    seed: Optional[int] = None,
    backend=None,
) -> List[BatchGroupResult]:
    """Batch-verify ``(vk, public_inputs, proof)`` triples across circuits.

    The registry-audit shape: claims of many circuit shapes arrive mixed;
    bucketing by verifying-key digest (SHA-256 of the canonical key bytes)
    yields one batched RLC check per group, so n claims over g shapes cost
    g multi-pairings instead of n.  Each ``vk`` may be a
    :class:`~repro.snark.keys.VerifyingKey` or a
    :class:`PreparedVerifyingKey` (the prepared path is used when given).
    A group's verdict covers all its members -- attribute blame by
    re-verifying the members of a rejected group individually.

    With a ``seed``, group ``k`` (in first-appearance order) uses
    ``seed + k`` so every group still draws distinct deterministic rhos.
    """
    import hashlib

    groups: "OrderedDict[str, Tuple[object, List[int], List[Tuple[Sequence[int], Proof]]]]" = (
        OrderedDict()
    )
    for i, (vk, public_inputs, proof) in enumerate(items):
        plain = vk.vk if isinstance(vk, PreparedVerifyingKey) else vk
        digest = hashlib.sha256(plain.to_bytes()).hexdigest()
        if digest not in groups:
            groups[digest] = (vk, [], [])
        groups[digest][1].append(i)
        groups[digest][2].append((public_inputs, proof))
    results: List[BatchGroupResult] = []
    for k, (digest, (vk, indices, batch)) in enumerate(groups.items()):
        group_seed = None if seed is None else seed + k
        if isinstance(vk, PreparedVerifyingKey):
            ok = verify_batch_prepared(
                vk, batch, seed=group_seed, backend=backend
            )
        else:
            ok = verify_batch(vk, batch, seed=group_seed)
        results.append(BatchGroupResult(digest, tuple(indices), ok))
    return results


def verify_with_precheck(
    vk: VerifyingKey, public_inputs: Sequence[int], proof: Proof
) -> bool:
    """Verification with explicit point validation (for untrusted proofs).

    Raises :class:`MalformedProof` on invalid points rather than silently
    failing the pairing check, to distinguish garbage from a false claim.
    """
    proof.validate_points()
    return verify(vk, public_inputs, proof)
