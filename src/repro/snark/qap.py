"""R1CS -> Quadratic Arithmetic Program reduction.

Groth16 (the paper's proof system) works over a QAP: per-variable
polynomials ``u_j, v_j, w_j`` interpolated over an evaluation domain H (one
point per constraint), such that the witness satisfies the R1CS iff

    u(X) * v(X) - w(X)  =  h(X) * t(X)

for some quotient ``h``, where ``t(X) = X^|H| - 1`` vanishes on H and
``u = sum_j z_j u_j`` etc.

Two operations are needed:

* at *setup*: evaluate every ``u_j, v_j, w_j`` at the toxic-waste point tau
  (:func:`evaluate_qap_at`), done in O(nnz + |H|) via the closed-form
  Lagrange-basis-at-a-point formula and batch inversion;
* at *proving*: compute the coefficients of ``h`` (:func:`compute_h`) via
  NTT on H and pointwise division on a coset (where ``t`` is a non-zero
  constant).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..field.backend import get_field_ops
from ..field.ntt import EvaluationDomain, get_domain, next_power_of_two
from ..field.prime import BN254_R as R
from .r1cs import ConstraintSystem

__all__ = ["QapEvaluation", "evaluate_qap_at", "compute_h", "qap_domain"]


class QapEvaluation:
    """Per-variable QAP polynomial evaluations at a fixed point tau."""

    __slots__ = ("u", "v", "w", "domain_size", "t_at_tau")

    def __init__(
        self,
        u: List[int],
        v: List[int],
        w: List[int],
        domain_size: int,
        t_at_tau: int,
    ):
        self.u = u
        self.v = v
        self.w = w
        self.domain_size = domain_size
        self.t_at_tau = t_at_tau


def qap_domain(cs: ConstraintSystem) -> EvaluationDomain:
    """The evaluation domain for a constraint system.

    One extra slot beyond the constraint count guards the degenerate case of
    a constraint count that is exactly a power of two with h of full degree.
    Served from the process-wide registry, so repeated proofs for circuits
    of one size share the precomputed twiddle and coset-power tables.
    """
    return get_domain(next_power_of_two(max(cs.num_constraints, 2)))


def _lagrange_basis_at(domain: EvaluationDomain, tau: int) -> List[int]:
    """Evaluate all Lagrange basis polynomials L_k at ``tau``.

    Closed form over a multiplicative subgroup:
    ``L_k(tau) = omega^k * (tau^n - 1) / (n * (tau - omega^k))``.
    Falls back to the degenerate case tau in H (one-hot vector).
    """
    n = domain.size
    t_at_tau = domain.vanishing_at(tau)
    points = domain.elements()
    if t_at_tau == 0:
        return [1 if tau % R == pt else 0 for pt in points]
    # Batch-invert all (tau - omega^k) on backend-native residues.
    ops = get_field_ops(R)
    rn = ops.modulus_native
    tau_native = ops.wrap(tau)
    diffs = [(tau_native - pt) % rn for pt in points]
    prefix = []
    acc = ops.wrap(1)
    for d in diffs:
        prefix.append(acc)
        acc = acc * d % rn
    inv = ops.inv(acc)
    inv_diffs = [0] * n
    for i in range(n - 1, -1, -1):
        inv_diffs[i] = inv * prefix[i] % rn
        inv = inv * diffs[i] % rn
    n_inv = pow(n, -1, R)
    scale = t_at_tau * n_inv % rn
    return [points[k] * scale % rn * inv_diffs[k] % rn for k in range(n)]


def evaluate_qap_at(cs: ConstraintSystem, tau: int) -> QapEvaluation:
    """Evaluate u_j(tau), v_j(tau), w_j(tau) for every variable j."""
    domain = qap_domain(cs)
    lagrange = _lagrange_basis_at(domain, tau)
    m = cs.num_variables
    u = [0] * m
    v = [0] * m
    w = [0] * m
    for k, (a, b, c) in enumerate(cs.constraints):
        lk = lagrange[k]
        if lk == 0:
            continue
        for j, coeff in a.terms.items():
            u[j] = (u[j] + coeff * lk) % R
        for j, coeff in b.terms.items():
            v[j] = (v[j] + coeff * lk) % R
        for j, coeff in c.terms.items():
            w[j] = (w[j] + coeff * lk) % R
    return QapEvaluation(u, v, w, domain.size, domain.vanishing_at(tau))


def _assignment_evaluations(
    cs: ConstraintSystem, assignment: Sequence[int], domain: EvaluationDomain
) -> Tuple[List[int], List[int], List[int]]:
    """Evaluate u(X), v(X), w(X) (witness-combined) on the domain H.

    On H, the k-th evaluation of u is simply <A_k, z> (and zero for padding
    rows beyond the constraint count).
    """
    ua = [0] * domain.size
    va = [0] * domain.size
    wa = [0] * domain.size
    for k, (a, b, c) in enumerate(cs.constraints):
        ua[k] = a.evaluate(assignment)
        va[k] = b.evaluate(assignment)
        wa[k] = c.evaluate(assignment)
    return ua, va, wa


def compute_h(cs: ConstraintSystem, assignment: Sequence[int]) -> List[int]:
    """Coefficients of the quotient ``h(X) = (u v - w) / t``.

    Interpolates the witness-combined polynomials from their values on H,
    re-evaluates them on the coset gH where ``t`` is the non-zero constant
    ``g^|H| - 1``, divides pointwise, and interpolates back.  Exact because
    ``deg h <= |H| - 2``.
    """
    domain = qap_domain(cs)
    ua, va, wa = _assignment_evaluations(cs, assignment, domain)
    u_coeffs = domain.ifft(ua)
    v_coeffs = domain.ifft(va)
    w_coeffs = domain.ifft(wa)
    u_coset = domain.coset_fft(u_coeffs)
    v_coset = domain.coset_fft(v_coeffs)
    w_coset = domain.coset_fft(w_coeffs)
    ops = get_field_ops(R)
    rn = ops.modulus_native
    t_inv = ops.inv(domain.vanishing_on_coset())
    h_coset = [
        (u_coset[i] * v_coset[i] - w_coset[i]) % rn * t_inv % rn
        for i in range(domain.size)
    ]
    h_coeffs = domain.coset_ifft(h_coset)
    # deg h <= |H| - 2, so the top coefficient must vanish; a non-zero value
    # means the assignment does not satisfy the R1CS.
    return h_coeffs
