"""Binary serialization of constraint systems.

In a deployment, the circuit travels: the model owner synthesizes the
extraction circuit and ships it to the trusted-setup party; auditors want
to inspect the exact R1CS a verification key belongs to.  This module
provides a compact, versioned binary format for
:class:`~repro.snark.r1cs.ConstraintSystem` (structure only -- witnesses
never leave the prover).

Layout (big-endian):

    magic "R1CS" | u16 version | u32 num_variables | u32 num_public
    | u32 num_constraints
    | per constraint: 3 linear combinations
    | per LC: u32 term count, then (u32 index, 32-byte coefficient) pairs

Version 2 appends a provenance section the circuit auditor consumes:

    | u8 kind code per variable (see _KIND_CODES)
    | u32 expected-boolean count, then u32 variable index each

Version 1 blobs (no provenance) still load; their variables come back
with kind ``unknown``, which makes the auditor skip the passes that need
to distinguish semantic inputs from hints.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Union

from .errors import SnarkError
from .r1cs import ConstraintSystem, LinearCombination

__all__ = ["serialize_r1cs", "deserialize_r1cs", "save_r1cs", "load_r1cs"]

_MAGIC = b"R1CS"
_VERSION = 2

_KIND_CODES = {
    "one": 0,
    "public": 1,
    "output": 2,
    "private": 3,
    "hint": 4,
    "mul": 5,
    "unknown": 6,
}
_KIND_NAMES = {code: name for name, code in _KIND_CODES.items()}


class R1csFormatError(SnarkError):
    """Raised on malformed R1CS bytes."""


def _pack_lc(lc: LinearCombination) -> bytes:
    parts = [struct.pack(">I", len(lc.terms))]
    for index in sorted(lc.terms):
        parts.append(struct.pack(">I", index))
        parts.append(lc.terms[index].to_bytes(32, "big"))
    return b"".join(parts)


def _unpack_lc(data: bytes, offset: int):
    (count,) = struct.unpack_from(">I", data, offset)
    offset += 4
    terms = {}
    for _ in range(count):
        (index,) = struct.unpack_from(">I", data, offset)
        offset += 4
        coeff = int.from_bytes(data[offset : offset + 32], "big")
        offset += 32
        terms[index] = coeff
    return LinearCombination(terms), offset


def serialize_r1cs(cs: ConstraintSystem) -> bytes:
    """Encode a constraint system's structure to bytes."""
    parts = [
        _MAGIC,
        struct.pack(
            ">HIII",
            _VERSION,
            cs.num_variables,
            cs.num_public,
            cs.num_constraints,
        ),
    ]
    for a, b, c in cs.constraints:
        parts.append(_pack_lc(a))
        parts.append(_pack_lc(b))
        parts.append(_pack_lc(c))
    kinds = list(getattr(cs, "variable_kinds", []))
    if len(kinds) != cs.num_variables:
        kinds = ["one"] + ["unknown"] * (cs.num_variables - 1)
    parts.append(bytes(_KIND_CODES.get(kind, _KIND_CODES["unknown"]) for kind in kinds))
    expected = list(getattr(cs, "expected_boolean", []))
    parts.append(struct.pack(">I", len(expected)))
    for index, _site in expected:
        parts.append(struct.pack(">I", index))
    return b"".join(parts)


def deserialize_r1cs(data: bytes) -> ConstraintSystem:
    """Decode bytes back into a constraint system.

    Variable names and allocation sites are not preserved (debugging
    aids); constraint structure, variable counts, the public split, and
    (v2) variable kinds plus expected-boolean notes are.
    """
    if data[:4] != _MAGIC:
        raise R1csFormatError("not an R1CS blob (bad magic)")
    version, num_variables, num_public, num_constraints = struct.unpack_from(
        ">HIII", data, 4
    )
    if version not in (1, _VERSION):
        raise R1csFormatError(f"unsupported R1CS version {version}")
    if num_public >= num_variables:
        raise R1csFormatError("public count must be below variable count")
    offset = 4 + struct.calcsize(">HIII")
    constraints = []
    for _ in range(num_constraints):
        a, offset = _unpack_lc(data, offset)
        b, offset = _unpack_lc(data, offset)
        c, offset = _unpack_lc(data, offset)
        for lc in (a, b, c):
            for index in lc.terms:
                if index >= num_variables:
                    raise R1csFormatError(
                        f"constraint references variable {index} "
                        f"outside the declared {num_variables}"
                    )
        constraints.append((a, b, c))

    if version == 1:
        kinds = ["one"] + ["unknown"] * (num_variables - 1)
        expected: list = []
    else:
        kind_bytes = data[offset : offset + num_variables]
        if len(kind_bytes) != num_variables:
            raise R1csFormatError("truncated variable-kind section")
        offset += num_variables
        kinds = []
        for code in kind_bytes:
            if code not in _KIND_NAMES:
                raise R1csFormatError(f"unknown variable-kind code {code}")
            kinds.append(_KIND_NAMES[code])
        try:
            (expected_count,) = struct.unpack_from(">I", data, offset)
        except struct.error:
            raise R1csFormatError("truncated expected-boolean section") from None
        offset += 4
        expected = []
        for _ in range(expected_count):
            try:
                (index,) = struct.unpack_from(">I", data, offset)
            except struct.error:
                raise R1csFormatError("truncated expected-boolean section") from None
            offset += 4
            if index >= num_variables:
                raise R1csFormatError(
                    f"expected-boolean note references variable {index} "
                    f"outside the declared {num_variables}"
                )
            expected.append((index, ""))
    if offset != len(data):
        raise R1csFormatError("trailing bytes after last constraint")

    cs = ConstraintSystem()
    for i in range(num_public):
        cs.allocate_public(kind=kinds[1 + i])
    for i in range(num_variables - 1 - num_public):
        cs.allocate_private(kind=kinds[1 + num_public + i])
    for a, b, c in constraints:
        cs.enforce(a, b, c)
    cs.expected_boolean = expected
    return cs


def save_r1cs(cs: ConstraintSystem, path: Union[str, Path]) -> None:
    Path(path).write_bytes(serialize_r1cs(cs))


def load_r1cs(path: Union[str, Path]) -> ConstraintSystem:
    return deserialize_r1cs(Path(path).read_bytes())
