"""Rank-1 Constraint Systems.

The circuit representation Groth16 consumes: a list of constraints

    <A_k, z> * <B_k, z> = <C_k, z>

over a variable vector ``z`` whose entry 0 is the constant ONE, entries
``1..num_public`` are the public instance, and the remainder is the private
witness.  Linear combinations are sparse ``{variable_index: coefficient}``
dictionaries with coefficients in Fr.

This module is deliberately value-free: it stores structure only.  Witness
*synthesis* lives in :mod:`repro.circuit.builder`, which builds a
:class:`ConstraintSystem` and an assignment side by side.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..field.prime import BN254_R as R
from .errors import UnsatisfiedWitness

__all__ = [
    "LinearCombination",
    "Constraint",
    "ConstraintSystem",
    "ONE_INDEX",
    "VARIABLE_KINDS",
]

#: Index of the constant-one variable.
ONE_INDEX = 0

#: Allocation kinds a variable can carry (provenance for the circuit
#: auditor).  ``unknown`` marks variables restored from a serialization
#: format that predates provenance.
VARIABLE_KINDS = ("one", "public", "output", "private", "hint", "mul", "unknown")


class LinearCombination:
    """A sparse linear combination of variables with Fr coefficients."""

    __slots__ = ("terms",)

    def __init__(self, terms: Optional[Dict[int, int]] = None):
        self.terms: Dict[int, int] = {}
        if terms:
            for idx, coeff in terms.items():
                c = coeff % R
                if c:
                    self.terms[idx] = c

    @staticmethod
    def variable(index: int, coeff: int = 1) -> "LinearCombination":
        return LinearCombination({index: coeff})

    @staticmethod
    def constant(value: int) -> "LinearCombination":
        return LinearCombination({ONE_INDEX: value})

    def __add__(self, other: "LinearCombination") -> "LinearCombination":
        out = dict(self.terms)
        for idx, coeff in other.terms.items():
            new = (out.get(idx, 0) + coeff) % R
            if new:
                out[idx] = new
            else:
                out.pop(idx, None)
        result = LinearCombination()
        result.terms = out
        return result

    def __sub__(self, other: "LinearCombination") -> "LinearCombination":
        return self + other.scale(R - 1)

    def scale(self, k: int) -> "LinearCombination":
        k %= R
        result = LinearCombination()
        if k:
            result.terms = {i: c * k % R for i, c in self.terms.items()}
        return result

    def evaluate(self, assignment: Sequence[int]) -> int:
        """Inner product with a full variable assignment."""
        total = 0
        for idx, coeff in self.terms.items():
            total += coeff * assignment[idx]
        return total % R

    def is_zero(self) -> bool:
        return not self.terms

    def as_single_variable(self) -> Optional[int]:
        """If this LC is exactly ``1 * v_i``, return ``i``; else ``None``."""
        if len(self.terms) == 1:
            idx, coeff = next(iter(self.terms.items()))
            if coeff == 1:
                return idx
        return None

    def __eq__(self, other) -> bool:
        return isinstance(other, LinearCombination) and self.terms == other.terms

    def __repr__(self) -> str:
        parts = [f"{c}*v{i}" for i, c in sorted(self.terms.items())]
        return "LC(" + " + ".join(parts or ["0"]) + ")"


Constraint = Tuple[LinearCombination, LinearCombination, LinearCombination]


class ConstraintSystem:
    """An R1CS instance: variables, public-input count, and constraints.

    Variable layout (Groth16 convention):

    * index 0: the constant ONE,
    * indices ``1 .. num_public``: public instance variables,
    * the rest: private witness variables.

    Public variables must all be allocated before any private variable so
    the instance occupies a contiguous prefix.
    """

    def __init__(self):
        self.num_variables = 1  # the constant ONE
        self.num_public = 0
        self.constraints: List[Constraint] = []
        self.variable_names: List[str] = ["~one"]
        #: Per-variable allocation kind (see :data:`VARIABLE_KINDS`) --
        #: provenance the circuit auditor needs to tell a semantic input
        #: (the prover's free choice) from a hint that must be pinned down.
        self.variable_kinds: List[str] = ["one"]
        #: Per-variable allocation site (gadget scope path; debugging aid).
        self.variable_sites: List[str] = [""]
        #: ``(variable, site)`` pairs recorded where a boolean-consuming
        #: gadget (``and_``/``or_``/``xor_``/``select``/``not_``) used the
        #: variable.  The auditor checks each has a booleanity constraint.
        self.expected_boolean: List[Tuple[int, str]] = []
        self._private_started = False

    # -- allocation ------------------------------------------------------------

    def allocate_public(
        self, name: str = "", *, kind: str = "public", site: str = ""
    ) -> int:
        if self._private_started:
            raise ValueError(
                "public inputs must be allocated before any private variable"
            )
        index = self.num_variables
        self.num_variables += 1
        self.num_public += 1
        self.variable_names.append(name or f"pub_{index}")
        self.variable_kinds.append(kind)
        self.variable_sites.append(site)
        return index

    def allocate_private(
        self, name: str = "", *, kind: str = "private", site: str = ""
    ) -> int:
        self._private_started = True
        index = self.num_variables
        self.num_variables += 1
        self.variable_names.append(name or f"aux_{index}")
        self.variable_kinds.append(kind)
        self.variable_sites.append(site)
        return index

    def note_expected_boolean(self, index: int, site: str = "") -> None:
        """Record that a gadget consumed ``index`` assuming it is boolean."""
        self.expected_boolean.append((index, site))

    def provenance(self, index: int) -> Dict[str, str]:
        """Name/kind/site metadata for one variable (auditor findings)."""
        return {
            "name": self.variable_names[index],
            "kind": self.variable_kinds[index],
            "site": self.variable_sites[index],
        }

    # -- constraints --------------------------------------------------------------

    def enforce(
        self,
        a: LinearCombination,
        b: LinearCombination,
        c: LinearCombination,
    ) -> None:
        """Add the constraint ``<a, z> * <b, z> = <c, z>``."""
        self.constraints.append((a, b, c))

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_private(self) -> int:
        return self.num_variables - 1 - self.num_public

    # -- satisfaction ---------------------------------------------------------------

    def is_satisfied(self, assignment: Sequence[int]) -> bool:
        try:
            self.check_satisfied(assignment)
        except UnsatisfiedWitness:
            return False
        return True

    def check_satisfied(self, assignment: Sequence[int]) -> None:
        """Raise :class:`UnsatisfiedWitness` on the first failing constraint."""
        if len(assignment) != self.num_variables:
            raise UnsatisfiedWitness(
                f"assignment has {len(assignment)} entries, "
                f"expected {self.num_variables}"
            )
        if assignment[ONE_INDEX] % R != 1:
            raise UnsatisfiedWitness("assignment[0] must be the constant 1")
        for k, (a, b, c) in enumerate(self.constraints):
            lhs = a.evaluate(assignment) * b.evaluate(assignment) % R
            rhs = c.evaluate(assignment)
            if lhs != rhs:
                raise UnsatisfiedWitness(
                    f"constraint {k} violated: "
                    f"<A,z>*<B,z> = {lhs} but <C,z> = {rhs}"
                )

    def public_inputs_of(self, assignment: Sequence[int]) -> List[int]:
        """Extract the public instance (excluding ONE) from an assignment."""
        return [v % R for v in assignment[1 : 1 + self.num_public]]

    # -- diagnostics -------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        nnz = sum(
            len(a.terms) + len(b.terms) + len(c.terms)
            for a, b, c in self.constraints
        )
        return {
            "constraints": self.num_constraints,
            "variables": self.num_variables,
            "public_inputs": self.num_public,
            "private_variables": self.num_private,
            "nonzero_coefficients": nnz,
        }

    def __repr__(self) -> str:
        return (
            f"ConstraintSystem(constraints={self.num_constraints}, "
            f"variables={self.num_variables}, public={self.num_public})"
        )
