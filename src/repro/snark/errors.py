"""Exception types for the SNARK layer."""

__all__ = [
    "SnarkError",
    "ConstraintViolation",
    "UnsatisfiedWitness",
    "MalformedProof",
    "SetupCircuitMismatch",
]


class SnarkError(Exception):
    """Base class for all SNARK-layer failures."""


class ConstraintViolation(SnarkError):
    """A circuit assertion failed while synthesizing the witness."""


class UnsatisfiedWitness(SnarkError):
    """A witness does not satisfy the constraint system it was built for."""


class MalformedProof(SnarkError):
    """Proof bytes or points failed validation before verification."""


class SetupCircuitMismatch(SnarkError):
    """Keys were generated for a different circuit than the one supplied."""
