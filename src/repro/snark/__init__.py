"""The zkSNARK layer: R1CS, QAP reduction, and the Groth16 proof system.

This package is the Python replacement for the paper's libsnark backend.
Typical use goes through :mod:`repro.circuit`, which builds the
:class:`ConstraintSystem` and witness; the functions here then provide

    keypair = setup(cs)
    proof = prove(keypair.proving_key, cs, assignment)
    assert verify(keypair.verifying_key, public_inputs, proof)
"""

from .errors import (
    ConstraintViolation,
    MalformedProof,
    SetupCircuitMismatch,
    SnarkError,
    UnsatisfiedWitness,
)
from .groth16 import (
    BatchGroupResult,
    Groth16Keypair,
    PreparedProvingKey,
    PreparedVerifyingKey,
    SimulationTrapdoor,
    prepare_proving_key,
    prepare_verifying_key,
    prove,
    prove_prepared,
    setup,
    setup_with_trapdoor,
    simulate_proof,
    verify,
    verify_batch,
    verify_batch_grouped,
    verify_batch_prepared,
    verify_prepared,
    verify_with_precheck,
)
from .keys import Proof, ProvingKey, VerifyingKey
from .qap import compute_h, evaluate_qap_at, qap_domain
from .r1cs import ONE_INDEX, Constraint, ConstraintSystem, LinearCombination
from .serialize import deserialize_r1cs, load_r1cs, save_r1cs, serialize_r1cs

__all__ = [
    "ConstraintViolation",
    "MalformedProof",
    "SetupCircuitMismatch",
    "SnarkError",
    "UnsatisfiedWitness",
    "BatchGroupResult",
    "Groth16Keypair",
    "PreparedProvingKey",
    "PreparedVerifyingKey",
    "SimulationTrapdoor",
    "prepare_proving_key",
    "prepare_verifying_key",
    "prove",
    "prove_prepared",
    "setup",
    "setup_with_trapdoor",
    "simulate_proof",
    "verify",
    "verify_batch",
    "verify_batch_grouped",
    "verify_batch_prepared",
    "verify_prepared",
    "verify_with_precheck",
    "Proof",
    "ProvingKey",
    "VerifyingKey",
    "compute_h",
    "evaluate_qap_at",
    "qap_domain",
    "ONE_INDEX",
    "Constraint",
    "ConstraintSystem",
    "LinearCombination",
    "deserialize_r1cs",
    "load_r1cs",
    "save_r1cs",
    "serialize_r1cs",
]
