"""Groth16 key and proof containers with byte serialization.

The paper's Table I reports proving-key size (MB), verification-key size
(KB) and proof size (B); these classes provide the exact byte encodings
those columns are measured from in this reproduction:

* proof: ``A (G1) || B (G2) || C (G1)`` compressed = 32 + 64 + 32 = 128 B
  (the paper reports 127.375 B for libsnark's encoding -- same 2xG1 + 1xG2
  structure, marginally different framing);
* verification key: 1 G1 + 3 G2 + (num_public + 1) G1 IC points, so it
  grows linearly with the public input exactly as Section IV observes;
* proving key: all five query vectors, linear in circuit size.

Serialized vectors are length-prefixed with 4-byte big-endian counts.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Tuple

from ..curves.g1 import G1Point
from ..curves.g2 import G2Point
from ..curves.serialize import (
    g1_from_bytes,
    g1_to_bytes,
    g2_from_bytes,
    g2_to_bytes,
)
from .errors import MalformedProof

__all__ = ["Proof", "VerifyingKey", "ProvingKey"]


def _pack_g1_list(points: List[G1Point]) -> bytes:
    return struct.pack(">I", len(points)) + b"".join(g1_to_bytes(p) for p in points)


def _unpack_g1_list(data: bytes, offset: int) -> Tuple[List[G1Point], int]:
    (count,) = struct.unpack_from(">I", data, offset)
    offset += 4
    points = []
    for _ in range(count):
        points.append(g1_from_bytes(data[offset : offset + 32]))
        offset += 32
    return points, offset


def _pack_g2_list(points: List[G2Point]) -> bytes:
    return struct.pack(">I", len(points)) + b"".join(g2_to_bytes(p) for p in points)


def _unpack_g2_list(data: bytes, offset: int) -> Tuple[List[G2Point], int]:
    (count,) = struct.unpack_from(">I", data, offset)
    offset += 4
    points = []
    for _ in range(count):
        points.append(g2_from_bytes(data[offset : offset + 64]))
        offset += 64
    return points, offset


@dataclass(frozen=True)
class Proof:
    """A Groth16 proof: two G1 points and one G2 point."""

    a: G1Point
    b: G2Point
    c: G1Point

    SERIALIZED_BYTES = 32 + 64 + 32

    def to_bytes(self) -> bytes:
        return g1_to_bytes(self.a) + g2_to_bytes(self.b) + g1_to_bytes(self.c)

    @staticmethod
    def from_bytes(data: bytes) -> "Proof":
        if len(data) != Proof.SERIALIZED_BYTES:
            raise MalformedProof(
                f"proof must be {Proof.SERIALIZED_BYTES} bytes, got {len(data)}"
            )
        try:
            a = g1_from_bytes(data[0:32])
            b = g2_from_bytes(data[32:96])
            c = g1_from_bytes(data[96:128])
        except ValueError as exc:
            raise MalformedProof(str(exc)) from exc
        return Proof(a, b, c)

    def validate_points(self) -> None:
        """Curve/subgroup membership checks (cheap prover-cheating guard)."""
        if not (self.a.is_on_curve() and self.c.is_on_curve()):
            raise MalformedProof("proof G1 point not on curve")
        if self.a.is_infinity() or self.c.is_infinity():
            raise MalformedProof("proof G1 point is the identity")
        if not self.b.is_on_curve():
            raise MalformedProof("proof G2 point not on curve")
        if self.b.is_infinity():
            raise MalformedProof("proof G2 point is the identity")
        if not self.b.in_subgroup():
            raise MalformedProof("proof G2 point outside the order-r subgroup")

    def size_bytes(self) -> int:
        return len(self.to_bytes())


@dataclass(frozen=True)
class VerifyingKey:
    """Everything a third-party verifier needs.

    ``ic`` has one point per public input plus one for the constant ONE;
    its length is what makes large-public-input circuits (the MLP with its
    model weights public) pay in VK size and verification time.
    """

    alpha_g1: G1Point
    beta_g2: G2Point
    gamma_g2: G2Point
    delta_g2: G2Point
    ic: List[G1Point] = field(default_factory=list)

    @property
    def num_public_inputs(self) -> int:
        return len(self.ic) - 1

    def to_bytes(self) -> bytes:
        return (
            g1_to_bytes(self.alpha_g1)
            + g2_to_bytes(self.beta_g2)
            + g2_to_bytes(self.gamma_g2)
            + g2_to_bytes(self.delta_g2)
            + _pack_g1_list(self.ic)
        )

    @staticmethod
    def from_bytes(data: bytes) -> "VerifyingKey":
        alpha = g1_from_bytes(data[0:32])
        beta = g2_from_bytes(data[32:96])
        gamma = g2_from_bytes(data[96:160])
        delta = g2_from_bytes(data[160:224])
        ic, _ = _unpack_g1_list(data, 224)
        return VerifyingKey(alpha, beta, gamma, delta, ic)

    def size_bytes(self) -> int:
        return len(self.to_bytes())


@dataclass(frozen=True)
class ProvingKey:
    """The prover's CRS slice: per-variable query vectors.

    * ``a_query[j] = [u_j(tau)]_1``
    * ``b_g1_query[j] = [v_j(tau)]_1`` and ``b_g2_query[j] = [v_j(tau)]_2``
    * ``k_query[j] = [(beta u_j + alpha v_j + w_j)/delta]_1`` for private j
    * ``h_query[i] = [tau^i t(tau)/delta]_1``
    """

    alpha_g1: G1Point
    beta_g1: G1Point
    beta_g2: G2Point
    delta_g1: G1Point
    delta_g2: G2Point
    a_query: List[G1Point]
    b_g1_query: List[G1Point]
    b_g2_query: List[G2Point]
    k_query: List[G1Point]
    h_query: List[G1Point]
    num_public: int

    def to_bytes(self) -> bytes:
        return (
            g1_to_bytes(self.alpha_g1)
            + g1_to_bytes(self.beta_g1)
            + g2_to_bytes(self.beta_g2)
            + g1_to_bytes(self.delta_g1)
            + g2_to_bytes(self.delta_g2)
            + struct.pack(">I", self.num_public)
            + _pack_g1_list(self.a_query)
            + _pack_g1_list(self.b_g1_query)
            + _pack_g2_list(self.b_g2_query)
            + _pack_g1_list(self.k_query)
            + _pack_g1_list(self.h_query)
        )

    @staticmethod
    def from_bytes(data: bytes) -> "ProvingKey":
        alpha_g1 = g1_from_bytes(data[0:32])
        beta_g1 = g1_from_bytes(data[32:64])
        beta_g2 = g2_from_bytes(data[64:128])
        delta_g1 = g1_from_bytes(data[128:160])
        delta_g2 = g2_from_bytes(data[160:224])
        (num_public,) = struct.unpack_from(">I", data, 224)
        offset = 228
        a_query, offset = _unpack_g1_list(data, offset)
        b_g1_query, offset = _unpack_g1_list(data, offset)
        b_g2_query, offset = _unpack_g2_list(data, offset)
        k_query, offset = _unpack_g1_list(data, offset)
        h_query, offset = _unpack_g1_list(data, offset)
        return ProvingKey(
            alpha_g1,
            beta_g1,
            beta_g2,
            delta_g1,
            delta_g2,
            a_query,
            b_g1_query,
            b_g2_query,
            k_query,
            h_query,
            num_public,
        )

    def size_bytes(self) -> int:
        return len(self.to_bytes())
