"""DeepSigns neural-network watermarking (the paper's Section II-A).

Key generation, embedding into activation-map statistics via regularized
fine-tuning, float-side extraction (the reference the ZK circuit
reproduces), and removal-attack simulations.
"""

from .attacks import (
    finetune_attack,
    overwrite_attack,
    prune_attack,
    quantization_attack,
    weight_noise_attack,
)
from .embed import EmbedConfig, EmbeddingReport, embed_watermark
from .extract import (
    ExtractionResult,
    detect_watermark,
    extract_watermark,
    layer_activations,
)
from .keys import WatermarkKeys, activation_feature_dim, generate_keys

__all__ = [
    "finetune_attack",
    "overwrite_attack",
    "prune_attack",
    "quantization_attack",
    "weight_noise_attack",
    "EmbedConfig",
    "EmbeddingReport",
    "embed_watermark",
    "ExtractionResult",
    "detect_watermark",
    "extract_watermark",
    "layer_activations",
    "WatermarkKeys",
    "activation_feature_dim",
    "generate_keys",
]
