"""Watermark removal attacks.

DeepSigns claims (and the paper repeats) robustness to "watermark
overwriting, model fine-tuning and model-pruning".  These attack
simulations let the test suite and benchmarks check that the reproduced
pipeline inherits that robustness -- and that ZKROWNN's ownership proof
still goes through on an attacked model (the scenario that motivates the
whole framework: prover claims M' was derived from M).

Every attack returns a *new* model; inputs are never mutated.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.model import Sequential, train_classifier
from ..nn.optim import Adam
from .embed import EmbedConfig, embed_watermark
from .keys import generate_keys

__all__ = [
    "finetune_attack",
    "prune_attack",
    "overwrite_attack",
    "quantization_attack",
    "weight_noise_attack",
]


def finetune_attack(
    model: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    *,
    epochs: int = 3,
    learning_rate: float = 1e-3,
    batch_size: int = 32,
    seed: int = 0,
) -> Sequential:
    """Continue task training without the watermark regularizer.

    The classic removal attempt: if the watermark sat in the loss landscape
    only superficially, plain fine-tuning would wash it out.
    """
    attacked = model.copy()
    rng = np.random.default_rng(seed)
    train_classifier(
        attacked,
        x,
        y,
        Adam(learning_rate),
        epochs=epochs,
        batch_size=batch_size,
        rng=rng,
    )
    return attacked


def prune_attack(model: Sequential, fraction: float) -> Sequential:
    """Magnitude pruning: zero the smallest ``fraction`` of each weight matrix."""
    if not 0.0 <= fraction < 1.0:
        raise ValueError("fraction must be in [0, 1)")
    attacked = model.copy()
    for layer in attacked.layers:
        w = layer.params.get("W")
        if w is None or w.size == 0:
            continue
        k = int(fraction * w.size)
        if k == 0:
            continue
        threshold = np.partition(np.abs(w).ravel(), k - 1)[k - 1]
        w[np.abs(w) <= threshold] = 0.0
    return attacked


def weight_noise_attack(
    model: Sequential, scale: float, *, seed: int = 0
) -> Sequential:
    """Additive Gaussian noise on all weights (a crude obfuscation attempt)."""
    attacked = model.copy()
    rng = np.random.default_rng(seed)
    for layer in attacked.layers:
        for name, param in layer.params.items():
            std = float(np.std(param)) or 1.0
            param += rng.normal(0.0, scale * std, param.shape)
    return attacked


def quantization_attack(model: Sequential, bits: int) -> Sequential:
    """Quantize all weights to a ``bits``-bit uniform grid.

    Compression-style obfuscation: per tensor, snap values to
    ``2**bits`` levels across the observed range.  A watermark in the
    activation *statistics* survives moderate quantization because the
    Gaussian centers move by at most half a quantization step.
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    attacked = model.copy()
    levels = (1 << bits) - 1
    for layer in attacked.layers:
        for param in layer.params.values():
            low = float(param.min())
            high = float(param.max())
            span = high - low
            if span == 0.0:
                continue
            param[...] = np.round((param - low) / span * levels) / levels * span + low
    return attacked


def overwrite_attack(
    model: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    *,
    embed_layer: int,
    wm_bits: int = 32,
    config: Optional[EmbedConfig] = None,
    seed: int = 1234,
) -> Sequential:
    """Embed an adversary's own watermark on top of the owner's.

    DeepSigns argues activation-PDF watermarks coexist: the adversary's
    signature occupies different directions of the feature space, so the
    owner's extraction (with the owner's secret keys) still succeeds.
    """
    attacked = model.copy()
    rng = np.random.default_rng(seed)
    adversary_keys = generate_keys(
        attacked,
        x,
        y,
        embed_layer=embed_layer,
        wm_bits=wm_bits,
        rng=rng,
    )
    embed_watermark(
        attacked,
        adversary_keys,
        x,
        y,
        config=config or EmbedConfig(epochs=3, seed=seed),
    )
    return attacked
