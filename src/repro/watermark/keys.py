"""DeepSigns watermark keys (paper Section II-A).

"The WM keys contain three parameters, the chosen Gaussian classes s, the
input triggers, which are basically a subset (1%) of the input training
data (X_key), and the projection matrix A."

Plus the owner's signature: "encoded watermark signatures are Independently
and Identically Distributed (iid) arbitrary binary strings."

Everything in this dataclass is exactly what ZKROWNN keeps *private* inside
the proof: the trigger keys, the projection matrix, the signature bits and
the embedding layer.  Only the model and the BER threshold are public.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..nn.model import Sequential

__all__ = ["WatermarkKeys", "generate_keys", "activation_feature_dim"]


@dataclass
class WatermarkKeys:
    """An owner's secret watermarking material."""

    embed_layer: int  # index into model.layers whose output carries the WM
    target_class: int  # the chosen Gaussian class s
    trigger_inputs: np.ndarray  # X_key: (T, ...) inputs triggering the WM
    projection: np.ndarray  # A: (feature_dim, wm_bits)
    signature: np.ndarray  # b: (wm_bits,) in {0, 1}

    @property
    def num_bits(self) -> int:
        return int(self.signature.size)

    @property
    def num_triggers(self) -> int:
        return int(self.trigger_inputs.shape[0])

    @property
    def feature_dim(self) -> int:
        return int(self.projection.shape[0])

    def validate(self) -> None:
        if self.projection.ndim != 2:
            raise ValueError("projection matrix must be 2-D")
        if self.projection.shape[1] != self.signature.size:
            raise ValueError(
                "projection columns must match signature length: "
                f"{self.projection.shape[1]} vs {self.signature.size}"
            )
        if not np.isin(self.signature, (0, 1)).all():
            raise ValueError("signature must be a binary vector")
        if self.trigger_inputs.shape[0] == 0:
            raise ValueError("at least one trigger input is required")

    # -- persistence ---------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        np.savez(
            Path(path),
            embed_layer=np.array(self.embed_layer),
            target_class=np.array(self.target_class),
            trigger_inputs=self.trigger_inputs,
            projection=self.projection,
            signature=self.signature,
        )

    @staticmethod
    def load(path: Union[str, Path]) -> "WatermarkKeys":
        with np.load(Path(path)) as data:
            keys = WatermarkKeys(
                embed_layer=int(data["embed_layer"]),
                target_class=int(data["target_class"]),
                trigger_inputs=data["trigger_inputs"],
                projection=data["projection"],
                signature=data["signature"],
            )
        keys.validate()
        return keys


def activation_feature_dim(model: Sequential, layer_index: int, input_shape) -> int:
    """Flattened size of the activations at a layer boundary.

    Runs one dummy forward (conv feature dims depend on spatial shape).
    """
    probe = np.zeros((1, *input_shape))
    activation = model.forward_to(probe, layer_index)
    return int(np.prod(activation.shape[1:]))


def generate_keys(
    model: Sequential,
    x_train: np.ndarray,
    y_train: np.ndarray,
    *,
    embed_layer: int,
    wm_bits: int = 32,
    target_class: Optional[int] = None,
    trigger_fraction: float = 0.01,
    min_triggers: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> WatermarkKeys:
    """Generate owner-specific watermark keys for a model.

    Selects the target Gaussian class, samples the trigger set from that
    class's training data (1% by default, as in DeepSigns), and draws the
    projection matrix and signature.
    """
    rng = rng or np.random.default_rng()
    if not 0 <= embed_layer < len(model.layers):
        raise ValueError(f"embed_layer out of range: {embed_layer}")
    if target_class is None:
        target_class = int(rng.integers(0, int(y_train.max()) + 1))
    class_indices = np.flatnonzero(y_train == target_class)
    if class_indices.size == 0:
        raise ValueError(f"no training samples of class {target_class}")
    count = max(min_triggers, int(round(trigger_fraction * x_train.shape[0])))
    count = min(count, class_indices.size)
    chosen = rng.choice(class_indices, size=count, replace=False)
    trigger_inputs = x_train[chosen].copy()

    feature_dim = activation_feature_dim(
        model, embed_layer, x_train.shape[1:]
    )
    projection = rng.standard_normal((feature_dim, wm_bits))
    signature = rng.integers(0, 2, wm_bits).astype(np.int64)

    keys = WatermarkKeys(
        embed_layer=embed_layer,
        target_class=int(target_class),
        trigger_inputs=trigger_inputs,
        projection=projection,
        signature=signature,
    )
    keys.validate()
    return keys
