"""DeepSigns watermark embedding via regularized fine-tuning.

Paper Section II-A: "the owner's DNN is fine tuned and the generated WM
signature is embedded into the pdf distribution of the activation maps of
selected layers" by adding loss terms while fine-tuning:

* a *projection* term -- binary cross-entropy between ``sigmoid(mu_s @ A)``
  and the signature bits, pushing the class-s Gaussian center to encode
  the watermark;
* a *cluster* term -- pulls trigger activations toward their center and
  pushes that center away from other classes' centers, keeping the GMM
  assumption tight so extraction is stable.

The combined gradient is injected at the embedding layer's output and
backpropagated; interleaved task batches keep classification accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..nn.losses import cross_entropy
from ..nn.model import Sequential, evaluate_classifier
from ..nn.optim import Adam, Optimizer
from .extract import extract_watermark
from .keys import WatermarkKeys

__all__ = ["EmbedConfig", "EmbeddingReport", "embed_watermark"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


@dataclass
class EmbedConfig:
    """Hyper-parameters of the embedding fine-tune."""

    epochs: int = 10
    batch_size: int = 32
    learning_rate: float = 1e-3
    lambda_projection: float = 2.0  # weight of the BCE signature term
    lambda_cluster: float = 0.01  # weight of the GMM tightness term
    wm_steps_per_epoch: int = 10**9  # default: inject at every batch
    seed: int = 0


@dataclass
class EmbeddingReport:
    """Outcome of an embedding run."""

    ber_before: float
    ber_after: float
    accuracy_before: float
    accuracy_after: float
    wm_loss_history: List[float] = field(default_factory=list)
    task_loss_history: List[float] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return self.ber_after == 0.0


def _watermark_step(
    model: Sequential,
    keys: WatermarkKeys,
    config: EmbedConfig,
    other_centers: Optional[np.ndarray],
) -> float:
    """One gradient injection of the watermark loss; returns the BCE loss."""
    triggers = keys.trigger_inputs
    acts_raw = model.forward_to(triggers, keys.embed_layer, training=True)
    act_shape = acts_raw.shape
    acts = acts_raw.reshape(act_shape[0], -1)
    t_count, feat = acts.shape
    mu = acts.mean(axis=0)

    # Projection term: BCE(sigmoid(mu @ A), b).
    z = mu @ keys.projection
    g = _sigmoid(z)
    b = keys.signature.astype(float)
    eps = 1e-12
    bce = float(-(b * np.log(g + eps) + (1 - b) * np.log(1 - g + eps)).mean())
    # Sum-form BCE gradient (no /N) so the push per bit does not shrink as
    # the signature grows: d/dz = (g - b);  dz/dmu = A;  dmu/da_i = 1/T.
    grad_mu = keys.projection @ (g - b)
    grad_acts = np.tile(grad_mu / t_count, (t_count, 1))
    grad_acts *= config.lambda_projection

    # Cluster term: pull activations toward mu, push mu from other centers.
    if config.lambda_cluster > 0:
        grad_cluster = 2.0 * (acts - mu) / (t_count * feat)
        if other_centers is not None and len(other_centers):
            push = np.zeros_like(mu)
            for center in other_centers:
                diff = mu - center
                norm = np.linalg.norm(diff) + 1e-9
                push -= diff / norm / len(other_centers)
            grad_cluster += push / t_count / feat
        grad_acts += config.lambda_cluster * grad_cluster

    model.backward_from(grad_acts.reshape(act_shape), keys.embed_layer)
    return bce


def _class_centers(
    model: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    keys: WatermarkKeys,
    sample_per_class: int = 32,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Mean activations of the non-target classes (push targets)."""
    rng = rng or np.random.default_rng(0)
    centers = []
    for cls in np.unique(y):
        if cls == keys.target_class:
            continue
        idx = np.flatnonzero(y == cls)
        if idx.size == 0:
            continue
        take = rng.choice(idx, size=min(sample_per_class, idx.size), replace=False)
        acts = model.forward_to(x[take], keys.embed_layer)
        centers.append(acts.reshape(acts.shape[0], -1).mean(axis=0))
    return np.array(centers)


def embed_watermark(
    model: Sequential,
    keys: WatermarkKeys,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: Optional[np.ndarray] = None,
    y_test: Optional[np.ndarray] = None,
    config: Optional[EmbedConfig] = None,
    optimizer: Optional[Optimizer] = None,
) -> EmbeddingReport:
    """Fine-tune ``model`` in place until it carries the watermark.

    Interleaves task cross-entropy batches with watermark gradient steps.
    Returns a report with before/after BER and accuracy -- the paper's
    "ZKROWNN does not result in any lapses in model accuracy" claim is
    checked against exactly these numbers in the test suite.
    """
    config = config or EmbedConfig()
    optimizer = optimizer or Adam(config.learning_rate)
    rng = np.random.default_rng(config.seed)

    eval_x = x_test if x_test is not None else x_train
    eval_y = y_test if y_test is not None else y_train
    ber_before = extract_watermark(model, keys).ber
    accuracy_before = evaluate_classifier(model, eval_x, eval_y)

    report = EmbeddingReport(
        ber_before=ber_before,
        ber_after=ber_before,
        accuracy_before=accuracy_before,
        accuracy_after=accuracy_before,
    )

    n = x_train.shape[0]
    for _ in range(config.epochs):
        order = rng.permutation(n)
        batch_starts = list(range(0, n, config.batch_size))
        wm_every = max(1, len(batch_starts) // max(config.wm_steps_per_epoch, 1))
        other_centers = _class_centers(model, x_train, y_train, keys, rng=rng)
        epoch_task_losses = []
        for step, start in enumerate(batch_starts):
            idx = order[start : start + config.batch_size]
            logits = model.forward(x_train[idx], training=True)
            loss, grad = cross_entropy(logits, y_train[idx])
            model.backward(grad)
            epoch_task_losses.append(loss)
            if step % wm_every == 0:
                wm_loss = _watermark_step(model, keys, config, other_centers)
                report.wm_loss_history.append(wm_loss)
            optimizer.step(model.layers)
            optimizer.zero_grad(model.layers)
        report.task_loss_history.append(float(np.mean(epoch_task_losses)))

    report.ber_after = extract_watermark(model, keys).ber
    report.accuracy_after = evaluate_classifier(model, eval_x, eval_y)
    return report
