"""DeepSigns watermark extraction (the computation ZKROWNN proves).

Paper Section II-A, extraction phase:

1. query the DNN with the owner-specific trigger keys X_key;
2. approximate the Gaussian centers by the statistical mean of the
   activation maps at the embedding layer;
3. project with A, squash through the sigmoid, hard-threshold at 0.5 to
   recover the signature estimate;
4. compute the bit error rate against the owner's signature.

This float-side implementation is both the reference the ZK circuit is
tested against and the tool the attack suite uses to measure robustness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.model import Sequential
from .keys import WatermarkKeys

__all__ = ["ExtractionResult", "extract_watermark", "detect_watermark", "layer_activations"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


@dataclass
class ExtractionResult:
    """Everything the extraction pipeline computes, step by step."""

    mean_activation: np.ndarray  # mu: statistical mean over trigger inputs
    projected: np.ndarray  # G = sigmoid(mu @ A)
    extracted_bits: np.ndarray  # wm_hat = [G >= 0.5]
    ber: float  # fraction of bits differing from the signature

    def matches(self, theta: float) -> bool:
        return self.ber <= theta + 1e-12


def layer_activations(
    model: Sequential, inputs: np.ndarray, layer_index: int
) -> np.ndarray:
    """Flattened activations at a layer boundary, one row per input."""
    acts = model.forward_to(inputs, layer_index)
    return acts.reshape(acts.shape[0], -1)


def extract_watermark(model: Sequential, keys: WatermarkKeys) -> ExtractionResult:
    """Run DeepSigns extraction against ``model`` with the owner's keys."""
    keys.validate()
    acts = layer_activations(model, keys.trigger_inputs, keys.embed_layer)
    if acts.shape[1] != keys.feature_dim:
        raise ValueError(
            "projection matrix does not match this model's activations: "
            f"{acts.shape[1]} features vs {keys.feature_dim} projection rows"
        )
    mu = acts.mean(axis=0)
    projected = _sigmoid(mu @ keys.projection)
    extracted = (projected >= 0.5).astype(np.int64)
    ber = float((extracted != keys.signature).mean())
    return ExtractionResult(
        mean_activation=mu,
        projected=projected,
        extracted_bits=extracted,
        ber=ber,
    )


def detect_watermark(
    model: Sequential, keys: WatermarkKeys, theta: float = 0.0
) -> bool:
    """DeepSigns' ownership test: BER <= theta (theta = 0 is exact match)."""
    return extract_watermark(model, keys).matches(theta)
