"""Command-line interface: ``zkrownn <subcommand>``.

Subcommands:

* ``demo``   -- train, watermark, prove, and verify a small model end to
  end through the staged proving pipeline; prints the Figure-1 transcript
  and, with ``--repeats``, the amortized repeat-claim latency.
* ``table1`` -- run the Table I reproduction (same as
  ``python -m repro.bench.table1``).
* ``cost``   -- print analytic paper-scale constraint counts.
* ``inspect`` -- decode an ownership-claim file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main"]


def _cmd_demo(args: argparse.Namespace) -> int:
    import numpy as np

    from .circuit import FixedPointFormat
    from .datasets import mnist_like
    from .nn import Adam, mnist_mlp_scaled, train_classifier
    from .watermark import EmbedConfig, embed_watermark, generate_keys
    from .zkrownn import CircuitConfig, run_ownership_protocol

    rng = np.random.default_rng(args.seed)
    print("[1/4] training a small classifier on synthetic data ...")
    data = mnist_like(600, 150, image_size=4, seed=args.seed)
    model = mnist_mlp_scaled(input_dim=16, hidden=16, rng=rng)
    train_classifier(
        model, data.x_train, data.y_train, Adam(0.005), epochs=5, rng=rng
    )

    print("[2/4] generating watermark keys and embedding (DeepSigns) ...")
    keys = generate_keys(
        model, data.x_train, data.y_train,
        embed_layer=1, wm_bits=8, min_triggers=4, rng=rng,
    )
    keys.trigger_inputs = keys.trigger_inputs[:4]
    report = embed_watermark(
        model, keys, data.x_train, data.y_train,
        config=EmbedConfig(epochs=20, seed=args.seed, lambda_projection=5.0),
    )
    print(f"      BER {report.ber_before:.3f} -> {report.ber_after:.3f}, "
          f"accuracy {report.accuracy_before:.3f} -> {report.accuracy_after:.3f}")

    print("[3/4] running the ZKROWNN protocol (setup, prove, verify x3) ...")
    from repro.engine import ProvingEngine

    config = CircuitConfig(
        theta=0.0, fixed_point=FixedPointFormat(frac_bits=14, total_bits=40)
    )
    engine = ProvingEngine(cache_dir=args.cache_dir)
    transcript, claim = run_ownership_protocol(
        model, keys, config=config, num_verifiers=3, seed=args.seed,
        engine=engine,
    )

    print("[4/4] results")
    for key, value in transcript.timings.items():
        print(f"      {key:>22}: {value:8.3f}")
    print(f"      proof size: {len(claim.proof_bytes)} bytes "
          f"(claim: {claim.size_bytes()} bytes)")
    print(f"      all verifiers accepted: {transcript.all_accepted}")

    if args.repeats > 0:
        from repro.zkrownn import prove_ownership_with_engine

        print(f"[+] amortization: {args.repeats} repeat claim(s) through the "
              "shared ProvingEngine (compile + setup cached) ...")
        first = transcript.timings["setup_seconds"] + transcript.timings[
            "prove_seconds"
        ]
        for i in range(args.repeats):
            _, job = prove_ownership_with_engine(
                engine, model, keys, config, seed=args.seed + 1 + i
            )
            repeat = sum(job.timings.values())
            print(f"      claim {i + 2}: {repeat:8.3f} s "
                  f"(first claim incl. setup: {first:8.3f} s, "
                  f"speedup {first / repeat:.1f}x)")
        stats = engine.stats.as_dict()
        print("      engine stats: " +
              ", ".join(f"{k}={v}" for k, v in stats.items() if v))

    return 0 if transcript.all_accepted else 1


def _cmd_table1(args: argparse.Namespace) -> int:
    from .bench.table1 import main as table1_main

    argv = ["--scale", args.scale]
    if args.only:
        argv += ["--only", *args.only]
    table1_main(argv)
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from .zkrownn import OwnershipClaim

    claim = OwnershipClaim.load(args.claim)
    print(f"ownership claim ({claim.size_bytes()} bytes)")
    print(f"  proof:          {len(claim.proof_bytes)} bytes (Groth16, BN254)")
    print(f"  model digest:   {claim.model_sha256}")
    print(f"  BER threshold:  theta = {claim.theta}")
    print(f"  watermark bits: {claim.wm_bits}")
    print(f"  embed layer:    {claim.embed_layer}")
    print(f"  fixed point:    {claim.frac_bits} frac / {claim.total_bits} total bits")
    print(f"  sigmoid degree: {claim.sigmoid_degree}")
    try:
        claim.proof.validate_points()
        print("  proof points:   on curve, in subgroup")
    except Exception as exc:  # noqa: BLE001 - report, do not crash
        print(f"  proof points:   INVALID ({exc})")
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    from .bench.table1 import PAPER_TABLE1, paper_scale_constraints

    counts = paper_scale_constraints()
    print(f"{'Benchmark':<18} {'cost model':>14} {'paper':>14} {'ratio':>8}")
    for name, count in counts.items():
        paper = PAPER_TABLE1[name][0]
        print(f"{name:<18} {count:>14,} {paper:>14,} {count / paper:>8.2f}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="zkrownn",
        description="ZKROWNN: zero-knowledge neural-network ownership proofs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="end-to-end ownership demo")
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument(
        "--repeats", type=int, default=1,
        help="extra claims through the cached pipeline (default 1; 0 disables)",
    )
    demo.add_argument(
        "--cache-dir", default=None,
        help="persist Groth16 keypairs here (skips setup across runs)",
    )
    demo.set_defaults(func=_cmd_demo)

    table1 = sub.add_parser("table1", help="reproduce Table I")
    table1.add_argument("--scale", default="reduced", choices=["tiny", "reduced"])
    table1.add_argument("--only", nargs="*")
    table1.set_defaults(func=_cmd_table1)

    cost = sub.add_parser("cost", help="paper-scale constraint counts")
    cost.set_defaults(func=_cmd_cost)

    inspect = sub.add_parser("inspect", help="inspect an ownership claim file")
    inspect.add_argument("claim", help="path to a claim .json")
    inspect.set_defaults(func=_cmd_inspect)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
