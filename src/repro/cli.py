"""Command-line interface: ``zkrownn <subcommand>``.

Subcommands:

* ``demo``   -- train, watermark, prove, and verify a small model end to
  end through the staged proving pipeline; prints the Figure-1 transcript
  and, with ``--repeats``, the amortized repeat-claim latency.
* ``table1`` -- run the Table I reproduction (same as
  ``python -m repro.bench.table1``).
* ``cost``   -- print analytic paper-scale constraint counts.
* ``inspect`` -- decode an ownership-claim file.

Proof-service subcommands (see ``repro.service``):

* ``serve``  -- run the ownership-claim server over a persistent registry.
* ``submit`` -- submit a claim request to a running server (``--demo``
  trains + watermarks a tiny model first; otherwise pass a wire-encoded
  model file and a watermark-keys ``.npz``).
* ``status`` -- poll one claim's job state.
* ``verify-remote`` -- ask the server to verify a proved claim.
* ``verify-local`` -- trustless verification: fetch the claim and a
  digest-pinned verifying key, check against a local model copy.
* ``audit`` -- sweep every non-revoked registered claim through the
  server's batched ``/verify-batch`` endpoint, grouped by verifying key,
  and report per-claim and per-group verdicts with timing.
* ``audit-circuit`` -- static soundness audit (unconstrained-wire /
  under-constraint detection, see ``repro.analysis``) of named shipped
  circuits, the full catalog (``--all``), or a registered claim's
  circuit (``--claim`` + ``--url``), diffed against an optional
  accepted-findings baseline.
* ``drain`` -- put a running server into drain mode (stop admitting new
  claims, finish in-flight proving) ahead of a restart or upgrade.
* ``trace`` -- print one claim's span timeline (submit -> queue-wait ->
  prove -> persist ...) as recorded by the observability layer.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main"]


def _cmd_demo(args: argparse.Namespace) -> int:
    import numpy as np

    from .circuit import FixedPointFormat
    from .datasets import mnist_like
    from .nn import Adam, mnist_mlp_scaled, train_classifier
    from .watermark import EmbedConfig, embed_watermark, generate_keys
    from .zkrownn import CircuitConfig, run_ownership_protocol

    rng = np.random.default_rng(args.seed)
    print("[1/4] training a small classifier on synthetic data ...")
    data = mnist_like(600, 150, image_size=4, seed=args.seed)
    model = mnist_mlp_scaled(input_dim=16, hidden=16, rng=rng)
    train_classifier(
        model, data.x_train, data.y_train, Adam(0.005), epochs=5, rng=rng
    )

    print("[2/4] generating watermark keys and embedding (DeepSigns) ...")
    keys = generate_keys(
        model, data.x_train, data.y_train,
        embed_layer=1, wm_bits=8, min_triggers=4, rng=rng,
    )
    keys.trigger_inputs = keys.trigger_inputs[:4]
    report = embed_watermark(
        model, keys, data.x_train, data.y_train,
        config=EmbedConfig(epochs=20, seed=args.seed, lambda_projection=5.0),
    )
    print(f"      BER {report.ber_before:.3f} -> {report.ber_after:.3f}, "
          f"accuracy {report.accuracy_before:.3f} -> {report.accuracy_after:.3f}")

    print("[3/4] running the ZKROWNN protocol (setup, prove, verify x3) ...")
    from repro.engine import ProvingEngine

    config = CircuitConfig(
        theta=0.0, fixed_point=FixedPointFormat(frac_bits=14, total_bits=40)
    )
    engine = ProvingEngine(cache_dir=args.cache_dir)
    transcript, claim = run_ownership_protocol(
        model, keys, config=config, num_verifiers=3, seed=args.seed,
        engine=engine,
    )

    print("[4/4] results")
    for key, value in transcript.timings.items():
        print(f"      {key:>22}: {value:8.3f}")
    print(f"      proof size: {len(claim.proof_bytes)} bytes "
          f"(claim: {claim.size_bytes()} bytes)")
    print(f"      all verifiers accepted: {transcript.all_accepted}")

    if args.repeats > 0:
        from repro.zkrownn import prove_ownership_with_engine

        print(f"[+] amortization: {args.repeats} repeat claim(s) through the "
              "shared ProvingEngine (compile + setup cached) ...")
        first = transcript.timings["setup_seconds"] + transcript.timings[
            "prove_seconds"
        ]
        for i in range(args.repeats):
            _, job = prove_ownership_with_engine(
                engine, model, keys, config, seed=args.seed + 1 + i
            )
            repeat = sum(job.timings.values())
            print(f"      claim {i + 2}: {repeat:8.3f} s "
                  f"(first claim incl. setup: {first:8.3f} s, "
                  f"speedup {first / repeat:.1f}x)")
        stats = engine.stats.as_dict()
        print("      engine stats: " +
              ", ".join(f"{k}={v}" for k, v in stats.items() if v))

    return 0 if transcript.all_accepted else 1


def _cmd_table1(args: argparse.Namespace) -> int:
    from .bench.table1 import main as table1_main

    argv = ["--scale", args.scale]
    if args.only:
        argv += ["--only", *args.only]
    table1_main(argv)
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from .zkrownn import OwnershipClaim

    claim = OwnershipClaim.load(args.claim)
    print(f"ownership claim ({claim.size_bytes()} bytes)")
    print(f"  proof:          {len(claim.proof_bytes)} bytes (Groth16, BN254)")
    print(f"  model digest:   {claim.model_sha256}")
    print(f"  BER threshold:  theta = {claim.theta}")
    print(f"  watermark bits: {claim.wm_bits}")
    print(f"  embed layer:    {claim.embed_layer}")
    print(f"  fixed point:    {claim.frac_bits} frac / {claim.total_bits} total bits")
    print(f"  sigmoid degree: {claim.sigmoid_degree}")
    try:
        claim.proof.validate_points()
        print("  proof points:   on curve, in subgroup")
    except Exception as exc:  # noqa: BLE001 - report, do not crash
        print(f"  proof points:   INVALID ({exc})")
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    from .bench.table1 import PAPER_TABLE1, paper_scale_constraints

    counts = paper_scale_constraints()
    print(f"{'Benchmark':<18} {'cost model':>14} {'paper':>14} {'ratio':>8}")
    for name, count in counts.items():
        paper = PAPER_TABLE1[name][0]
        print(f"{name:<18} {count:>14,} {paper:>14,} {count / paper:>8.2f}")
    return 0


def _demo_model_and_keys(seed: int):
    """The tiny trained + watermarked MLP every demo path uses."""
    import numpy as np

    from .datasets import mnist_like
    from .nn import Adam, mnist_mlp_scaled, train_classifier
    from .watermark import EmbedConfig, embed_watermark, generate_keys

    rng = np.random.default_rng(seed)
    data = mnist_like(600, 150, image_size=4, seed=seed)
    model = mnist_mlp_scaled(input_dim=16, hidden=16, rng=rng)
    train_classifier(
        model, data.x_train, data.y_train, Adam(0.005), epochs=5, rng=rng
    )
    keys = generate_keys(
        model, data.x_train, data.y_train,
        embed_layer=1, wm_bits=8, min_triggers=4, rng=rng,
    )
    keys.trigger_inputs = keys.trigger_inputs[:4]
    embed_watermark(
        model, keys, data.x_train, data.y_train,
        config=EmbedConfig(epochs=20, seed=seed, lambda_projection=5.0),
    )
    return model, keys


def _service_config(args: argparse.Namespace):
    from .circuit import FixedPointFormat
    from .zkrownn import CircuitConfig

    return CircuitConfig(
        theta=args.theta,
        fixed_point=FixedPointFormat(
            frac_bits=args.frac_bits, total_bits=args.total_bits
        ),
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .engine import ProvingEngine
    from .parallel import get_backend
    from .service import ClaimRegistry, ProofServer, ProofService

    # The setup cache defaults to living inside the registry root, so a
    # plain `zkrownn serve --registry DIR` is crash-safe end to end: a
    # restarted service recovers queued claims AND re-proves known shapes
    # without re-running Groth16 setup.
    cache_dir = args.cache_dir or str(Path(args.registry) / "engine-cache")
    engine = ProvingEngine(
        cache_dir=cache_dir,
        backend=get_backend(args.backend) if args.backend else None,
    )
    service = ProofService(
        ClaimRegistry(args.registry),
        engine=engine,
        max_batch=args.max_batch,
        scheduler_workers=args.workers,
        max_queue_depth=args.max_queue_depth,
        max_attempts=args.max_attempts,
        prove_budget_seconds=args.prove_budget,
        audit_mode=args.circuit_audit,
    )
    server = ProofServer(service, host=args.host, port=args.port)
    print(f"proof service listening on {server.url}")
    print(f"  registry: {args.registry}  cache: {cache_dir}  "
          f"backend: {engine.backend.name}  max_batch: {args.max_batch}")
    if args.max_queue_depth or args.prove_budget:
        print(f"  max_queue_depth: {args.max_queue_depth}  "
              f"prove_budget: {args.prove_budget}  "
              f"max_attempts: {args.max_attempts}")
    server.serve_forever()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service import ServiceClient, wire
    from .watermark import WatermarkKeys

    if args.demo:
        print("training + watermarking a demo model ...")
        model, keys = _demo_model_and_keys(args.seed if args.seed is not None else 0)
    else:
        if not (args.model and args.keys):
            print("submit needs either --demo or both --model and --keys",
                  file=sys.stderr)
            return 2
        with open(args.model, "rb") as fh:
            model = wire.decode_model(fh.read())
        keys = WatermarkKeys.load(args.keys)

    client = ServiceClient(args.url)
    submitted = client.submit_claim(
        model,
        keys,
        _service_config(args),
        priority=args.priority,
        seed=args.seed,
        setup_seed=args.setup_seed,
    )
    print(f"claim id: {submitted['claim_id']}")
    print(f"state:    {submitted['state']}"
          + (" (resubmission)" if submitted.get("resubmission") else ""))
    if not args.wait:
        return 0
    status = client.wait(submitted["claim_id"], timeout=args.timeout)
    print(f"final:    {status['state']}")
    if status["state"] != "done":
        print(f"error:    {status['error']}")
        return 1
    for key, value in sorted(status.get("timings", {}).items()):
        print(f"  {key:>22}: {value:8.3f}")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    import json as _json

    from .service import ServiceClient

    status = ServiceClient(args.url).status(args.claim_id)
    print(_json.dumps(status, indent=2, sort_keys=True))
    return 0 if status["state"] != "failed" else 1


def _cmd_verify_remote(args: argparse.Namespace) -> int:
    from .service import ServiceClient

    report = ServiceClient(args.url).verify_remote(args.claim_id)
    print(f"accepted: {report['accepted']}")
    print(f"reason:   {report['reason']}")
    return 0 if report["accepted"] else 1


def _cmd_verify_local(args: argparse.Namespace) -> int:
    """Trustless verification: fetch claim + digest-pinned VK, check here."""
    from .service import ServiceClient, wire

    if args.demo:
        print("rebuilding the demo model locally ...")
        model, _ = _demo_model_and_keys(args.seed)
    elif args.model:
        with open(args.model, "rb") as fh:
            model = wire.decode_model(fh.read())
    else:
        print("verify-local needs either --demo or --model", file=sys.stderr)
        return 2

    client = ServiceClient(args.url)
    digest = args.circuit_digest or client.status(args.claim_id).get(
        "circuit_digest", ""
    )
    if not digest:
        print("claim has no circuit digest yet (still queued/proving?)",
              file=sys.stderr)
        return 1
    report = client.verify_local(args.claim_id, model, circuit_digest=digest)
    print(f"pinned circuit: {digest}")
    print(f"accepted:       {report.accepted}")
    print(f"reason:         {report.reason}")
    return 0 if report.accepted else 1


def _cmd_audit(args: argparse.Namespace) -> int:
    """Registry-wide audit sweep via the batched verification endpoint.

    Exit code 0 only if every group's batched pairing check passed and no
    200-status claim was rejected and no stored proof was malformed
    (status 400).  Claims not yet proved (409) are reported as skipped
    and do not fail the audit.
    """
    from .service import ServiceClient

    client = ServiceClient(args.url)
    result = client.audit_registry(seed=args.seed)
    if not result.verdicts:
        print("registry holds no auditable claims")
        return 0

    failed = False
    skipped = 0
    print(f"audited {len(result.verdicts)} claim(s) "
          f"in {len(result.groups)} verification-key group(s)")
    for verdict in result.verdicts:
        if verdict.status == 409:
            mark, skipped = "SKIP", skipped + 1
        elif verdict.accepted:
            mark = "PASS"
        else:
            mark, failed = "FAIL", True
        print(f"  [{mark}] {verdict.claim_id[:16]}...  "
              f"status={verdict.status}  {verdict.reason}")
    for group in result.groups:
        state = "accepted" if group.accepted else "REJECTED"
        if not group.accepted:
            failed = True
        print(f"group {group.circuit_digest[:16]}...: "
              f"{len(group.claim_ids)} claim(s) {state} "
              f"in {group.seconds:.3f}s (batched pairing check)")
    if skipped:
        print(f"{skipped} claim(s) skipped (not yet proved)")
    print("audit result:", "FAILED" if failed else "PASSED")
    return 1 if failed else 0


def _cmd_audit_circuit(args: argparse.Namespace) -> int:
    """Static soundness audit of shipped circuits or a registered claim.

    Exit code 0 when every audited circuit is clean or every finding is
    accepted by the baseline; 1 when any *unbaselined* finding reaches
    ``high`` severity (the same bar CI enforces).
    """
    import json as _json

    from .analysis import (
        AuditBaseline,
        AuditReport,
        audit_named_circuit,
        catalog_names,
        severity_rank,
    )

    if args.claim:
        from .service import ServiceClient

        payload = ServiceClient(args.url).circuit_audit(args.claim)
        if args.json:
            print(_json.dumps(payload, indent=2, sort_keys=True))
        if not payload.get("available"):
            if not args.json:
                print(f"claim {args.claim}: audit unavailable "
                      f"({payload.get('reason', 'unknown')})", file=sys.stderr)
            return 1
        reports = [AuditReport.from_dict(payload["report"])]
    else:
        if args.all:
            names = catalog_names(args.scale)
        elif args.names:
            names = args.names
        else:
            print("audit-circuit needs circuit names, --all, or --claim; "
                  f"catalog: {', '.join(catalog_names(args.scale))}",
                  file=sys.stderr)
            return 2
        try:
            reports = [audit_named_circuit(n, scale=args.scale) for n in names]
        except KeyError as exc:
            print(str(exc.args[0]), file=sys.stderr)
            return 2

    baseline = (
        AuditBaseline.load(args.baseline) if args.baseline else AuditBaseline()
    )
    if args.write_baseline:
        for report in reports:
            if report.findings:
                baseline.add_report(report, args.justification)
        baseline.save(args.write_baseline)
        total = sum(len(r.findings) for r in reports)
        print(f"wrote {args.write_baseline}: {total} finding(s) accepted "
              f"across {len(reports)} circuit(s)")
        return 0

    failed = False
    json_out = []
    for report in reports:
        new, accepted = baseline.split(report.circuit, report.findings)
        blocking = [
            f for f in new if severity_rank(f.severity) >= severity_rank("high")
        ]
        if blocking:
            failed = True
        if args.json:
            json_out.append({
                **report.to_dict(),
                "new_findings": len(new),
                "accepted_findings": len(accepted),
                "blocking_findings": len(blocking),
            })
        else:
            print(report.render(accepted=accepted))
    if args.json and not args.claim:
        print(_json.dumps({"circuits": json_out, "failed": failed},
                          indent=2, sort_keys=True))
    elif not args.json:
        verdict = "FAILED" if failed else "PASSED"
        clean = sum(1 for r in reports if not r.findings)
        print(f"audit {verdict}: {len(reports)} circuit(s), "
              f"{clean} clean, "
              f"{sum(len(r.findings) for r in reports)} finding(s) total")
    return 1 if failed else 0


def _cmd_drain(args: argparse.Namespace) -> int:
    """Drain a running server: reject new claims, finish in-flight work."""
    from .service import ServiceClient

    client = ServiceClient(args.url)
    status = client.drain()
    print(f"drain requested: queue_depth={status.get('queue_depth', '?')}")
    if not args.wait:
        return 0
    import time as _time

    deadline = _time.monotonic() + args.timeout
    while _time.monotonic() < deadline:
        health = client.health()
        if health.get("drained"):
            print("drain complete: all in-flight claims settled")
            return 0
        _time.sleep(0.5)
    print("timed out waiting for drain to complete", file=sys.stderr)
    return 1


def _cmd_trace(args: argparse.Namespace) -> int:
    """Render a claim's span tree as an indented wall-clock timeline."""
    from .service import ServiceClient

    trace = ServiceClient(args.url).trace(args.claim_id)
    spans = trace.get("spans", [])
    print(f"claim:  {trace['claim_id']}")
    print(f"trace:  {trace.get('trace_id') or '(none)'}")
    if not spans:
        print("no spans recorded (observability disabled, or the claim "
              "predates tracing)")
        return 0
    by_id = {s.get("span_id"): s for s in spans if s.get("span_id")}

    def depth(span) -> int:
        d, parent = 0, span.get("parent_id")
        while parent and parent in by_id and d < 16:
            d += 1
            parent = by_id[parent].get("parent_id")
        return d

    base = min(s.get("start_unix", 0.0) for s in spans)
    print(f"{'offset':>10}  {'duration':>10}  span")
    for span in spans:
        offset = span.get("start_unix", 0.0) - base
        duration = span.get("duration_seconds")
        dur = f"{duration * 1000:9.2f}ms" if duration is not None else " " * 11
        indent = "  " * depth(span)
        extras = []
        for key in ("outcome", "attempt", "prior_state", "batch_size"):
            value = span.get("attrs", {}).get(key)
            if value is not None:
                extras.append(f"{key}={value}")
        for event in span.get("events", []):
            extras.append(f"!{event.get('name')}")
        suffix = f"  [{', '.join(extras)}]" if extras else ""
        print(f"{offset * 1000:8.2f}ms  {dur}  {indent}{span['name']}{suffix}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    """Measure this host's performance knobs; persist a machine profile."""
    import json as _json

    from .tuning.profile import default_profile_path
    from .tuning.tuner import Tuner

    tuner = Tuner(
        quick=args.quick,
        repeats=args.repeats,
        log=lambda message: print(message, file=sys.stderr),
    )
    result = tuner.run()
    out = args.out or default_profile_path()
    if args.dry_run:
        print(_json.dumps(result.profile.to_dict(), indent=2, sort_keys=True))
    else:
        path = result.profile.save(out)
        print(f"wrote machine profile: {path}")
    profile = result.profile
    print(f"field backend:  {profile.field_backend}")
    print(
        "compute:        "
        + (profile.compute_backend or "serial")
        + (f" x{profile.workers}" if profile.workers else "")
    )
    print(f"max_batch:      {profile.max_batch}")
    if profile.min_msm_chunk is not None:
        print(f"min_msm_chunk:  {profile.min_msm_chunk}")
    for kind, rows in sorted(profile.pippenger_windows.items()):
        table = ", ".join(f">={n}: c={c}" for n, c in rows)
        print(f"windows ({kind}): {table}")
    if result.baseline_seconds and result.tuned_seconds:
        print(
            f"reference workload: {result.baseline_seconds:.3f}s default -> "
            f"{result.tuned_seconds:.3f}s tuned "
            f"({result.speedup:.2f}x)"
        )
    if args.bench_json:
        payload = {
            "benchmark": "bench_tune",
            "profile": profile.to_dict(),
            "baseline_seconds": result.baseline_seconds,
            "tuned_seconds": result.tuned_seconds,
            "speedup": result.speedup,
        }
        with open(args.bench_json, "w") as fh:
            _json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote before/after delta: {args.bench_json}")
    return 0


def _cmd_bench_report(args: argparse.Namespace) -> int:
    """Aggregate BENCH_*.json artifacts into one trend table."""
    from .tuning.report import render_report

    print(
        render_report(
            args.paths or ["."],
            baseline=args.baseline,
            show_metrics=not args.no_metrics,
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="zkrownn",
        description="ZKROWNN: zero-knowledge neural-network ownership proofs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="end-to-end ownership demo")
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument(
        "--repeats", type=int, default=1,
        help="extra claims through the cached pipeline (default 1; 0 disables)",
    )
    demo.add_argument(
        "--cache-dir", default=None,
        help="persist Groth16 keypairs here (skips setup across runs)",
    )
    demo.set_defaults(func=_cmd_demo)

    table1 = sub.add_parser("table1", help="reproduce Table I")
    table1.add_argument("--scale", default="reduced", choices=["tiny", "reduced"])
    table1.add_argument("--only", nargs="*")
    table1.set_defaults(func=_cmd_table1)

    cost = sub.add_parser("cost", help="paper-scale constraint counts")
    cost.set_defaults(func=_cmd_cost)

    inspect = sub.add_parser("inspect", help="inspect an ownership claim file")
    inspect.add_argument("claim", help="path to a claim .json")
    inspect.set_defaults(func=_cmd_inspect)

    def add_url(p):
        p.add_argument("--url", default="http://127.0.0.1:8080",
                       help="proof-service base URL")

    def add_config(p):
        p.add_argument("--theta", type=float, default=0.0)
        p.add_argument("--frac-bits", type=int, default=14)
        p.add_argument("--total-bits", type=int, default=40)

    serve = sub.add_parser("serve", help="run the ownership-claim proof service")
    serve.add_argument("--registry", required=True,
                       help="directory for the persistent claim registry")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--backend", choices=["serial", "process"], default=None,
                       help="compute backend (default: ZKROWNN_BACKEND or serial)")
    serve.add_argument("--workers", type=int, default=1,
                       help="scheduler proving threads")
    serve.add_argument("--max-batch", type=int, default=8,
                       help="max same-shape claims per proving batch")
    serve.add_argument("--cache-dir", default=None,
                       help="ProvingEngine keypair cache directory "
                            "(default: <registry>/engine-cache)")
    serve.add_argument("--max-queue-depth", type=int, default=None,
                       help="reject new claims with 429 past this queue "
                            "depth (default: unbounded)")
    serve.add_argument("--prove-budget", type=float, default=None,
                       help="wall-clock seconds a proving batch may run "
                            "before the watchdog quarantines it")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="proving attempts before a claim is "
                            "quarantined (default 3)")
    serve.add_argument("--circuit-audit", choices=["off", "warn", "strict"],
                       default=None,
                       help="static circuit-soundness auditing: 'warn' logs "
                            "findings, 'strict' rejects claims whose circuit "
                            "has critical findings (default: engine default, "
                            "ZKROWNN_CIRCUIT_AUDIT or off)")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser("submit", help="submit a claim to a proof service")
    add_url(submit)
    submit.add_argument("--demo", action="store_true",
                        help="train + watermark a tiny model and claim it")
    submit.add_argument("--model", help="wire-encoded model file (.model)")
    submit.add_argument("--keys", help="watermark keys .npz")
    add_config(submit)
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument("--setup-seed", type=int, default=None)
    submit.add_argument("--wait", action="store_true",
                        help="block until the claim is proved")
    submit.add_argument("--timeout", type=float, default=600.0)
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser("status", help="poll a claim's job state")
    add_url(status)
    status.add_argument("claim_id")
    status.set_defaults(func=_cmd_status)

    verify_remote = sub.add_parser(
        "verify-remote", help="server-side verification of a proved claim"
    )
    add_url(verify_remote)
    verify_remote.add_argument("claim_id")
    verify_remote.set_defaults(func=_cmd_verify_remote)

    verify_local = sub.add_parser(
        "verify-local",
        help="trustless verification: fetch claim + digest-pinned VK, "
             "check against a local model copy",
    )
    add_url(verify_local)
    verify_local.add_argument("claim_id")
    verify_local.add_argument("--model", help="wire-encoded model file (.model)")
    verify_local.add_argument("--demo", action="store_true",
                              help="rebuild the demo model locally")
    verify_local.add_argument("--seed", type=int, default=0,
                              help="demo model seed (with --demo)")
    verify_local.add_argument(
        "--circuit-digest", default=None,
        help="pin the verifying key to this circuit digest "
             "(default: the digest the claim record names)",
    )
    verify_local.set_defaults(func=_cmd_verify_local)

    audit = sub.add_parser(
        "audit",
        help="batch-verify every non-revoked registered claim, "
             "grouped by verifying key",
    )
    add_url(audit)
    audit.add_argument(
        "--seed", type=int, default=None,
        help="derandomize the batch combiner (reproducible audits)",
    )
    audit.set_defaults(func=_cmd_audit)

    audit_circuit = sub.add_parser(
        "audit-circuit",
        help="static soundness audit (unconstrained / under-constrained "
             "wires) of shipped circuits or a registered claim's circuit",
    )
    audit_circuit.add_argument(
        "names", nargs="*",
        help="catalog circuit names (case-insensitive); see --all",
    )
    audit_circuit.add_argument(
        "--all", action="store_true",
        help="audit every catalog circuit (Table-I gadgets + architectures)",
    )
    audit_circuit.add_argument(
        "--scale", default="tiny", choices=["tiny", "reduced", "paper"],
        help="catalog build scale (default tiny)",
    )
    audit_circuit.add_argument(
        "--baseline", default=None,
        help="accepted-findings baseline JSON; baselined findings do not "
             "fail the audit",
    )
    audit_circuit.add_argument(
        "--write-baseline", default=None,
        help="write current findings to this baseline file and exit 0",
    )
    audit_circuit.add_argument(
        "--justification", default="accepted by --write-baseline",
        help="justification recorded for every --write-baseline entry",
    )
    audit_circuit.add_argument(
        "--claim", default=None,
        help="audit a registered claim's circuit via the proof service "
             "(with --url) instead of the local catalog",
    )
    add_url(audit_circuit)
    audit_circuit.add_argument(
        "--json", action="store_true", help="machine-readable output",
    )
    audit_circuit.set_defaults(func=_cmd_audit_circuit)

    drain = sub.add_parser(
        "drain",
        help="drain a running proof service ahead of restart/upgrade",
    )
    add_url(drain)
    drain.add_argument("--wait", action="store_true",
                       help="block until all in-flight claims settle")
    drain.add_argument("--timeout", type=float, default=600.0,
                       help="max seconds to wait with --wait")
    drain.set_defaults(func=_cmd_drain)

    trace = sub.add_parser(
        "trace",
        help="print a claim's recorded span timeline",
    )
    add_url(trace)
    trace.add_argument("claim_id")
    trace.set_defaults(func=_cmd_trace)

    tune = sub.add_parser(
        "tune",
        help="measure this host's performance knobs into a machine profile",
    )
    tune.add_argument("--quick", action="store_true",
                      help="small workloads / grids (CI smoke; less accurate)")
    tune.add_argument("--repeats", type=int, default=None,
                      help="timing repetitions per point (default 3, 1 with "
                           "--quick)")
    tune.add_argument("--out", default=None,
                      help="profile path (default ~/.zkrownn/profile.json)")
    tune.add_argument("--dry-run", action="store_true",
                      help="print the profile JSON instead of writing it")
    tune.add_argument("--bench-json", default=None,
                      help="also write a before/after delta JSON here")
    tune.set_defaults(func=_cmd_tune)

    bench_report = sub.add_parser(
        "bench-report",
        help="aggregate BENCH_*.json artifacts into one trend table",
    )
    bench_report.add_argument(
        "paths", nargs="*",
        help="files or directories holding BENCH_*.json (default: .)")
    bench_report.add_argument(
        "--baseline", default=None,
        help="directory of an earlier run; adds a before/after table")
    bench_report.add_argument(
        "--no-metrics", action="store_true",
        help="omit the per-entry key-metric listing")
    bench_report.set_defaults(func=_cmd_bench_report)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
