"""The prover side of ZKROWNN.

The model owner (P in the paper) holds the watermarked model M, private
trigger keys K and watermark parameters W, and claims that a second model
M' carries their watermark.  :class:`OwnershipProver` synthesizes the
Algorithm-1 circuit against M', generates the Groth16 proof, and packages
a publishable :class:`~repro.zkrownn.artifacts.OwnershipClaim`.

Setup and proof generation happen once per circuit; the paper's
amortization argument (Section IV) is exactly this object's lifecycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..snark.errors import ConstraintViolation
from ..snark.groth16 import Groth16Keypair, prove, setup
from ..snark.keys import Proof, ProvingKey
from ..nn.model import Sequential
from ..watermark.keys import WatermarkKeys
from .artifacts import OwnershipClaim, model_digest
from .circuit import CircuitConfig, ExtractionCircuit, build_extraction_circuit

__all__ = ["OwnershipProver", "ProverError"]


class ProverError(Exception):
    """Raised when an ownership proof cannot be generated honestly."""


@dataclass
class OwnershipProver:
    """A model owner generating ownership proofs.

    ``model`` is the *suspect* model M' being proven against (for a
    dispute, the allegedly-stolen network); ``keys`` are the owner's
    private watermark material.
    """

    model: Sequential
    keys: WatermarkKeys
    config: CircuitConfig = CircuitConfig()

    def synthesize(self) -> ExtractionCircuit:
        """Build the extraction circuit + witness against the model.

        Raises :class:`ProverError` if the witness cannot be synthesized
        (e.g. activations overflow the fixed-point range).
        """
        try:
            return build_extraction_circuit(self.model, self.keys, self.config)
        except (ConstraintViolation, OverflowError) as exc:
            # ConstraintViolation: an intermediate value escaped the
            # fixed-point range mid-circuit; OverflowError: an input or
            # weight did not even encode.  Both mean the chosen format is
            # too narrow for this model.
            raise ProverError(f"witness synthesis failed: {exc}") from exc

    def run_trusted_setup(self, *, seed: Optional[int] = None) -> Groth16Keypair:
        """Convenience wrapper: run Groth16 setup for this circuit shape.

        In deployment the setup is run by a neutral party
        (:class:`repro.zkrownn.protocol.TrustedSetupParty`); having the
        prover run it is acceptable only for benchmarks and tests.
        """
        circuit = self.synthesize()
        return setup(circuit.constraint_system, seed=seed)

    def prove_ownership(
        self,
        proving_key: ProvingKey,
        *,
        require_valid: bool = True,
        seed: Optional[int] = None,
    ) -> OwnershipClaim:
        """Generate the ownership proof and wrap it as a claim.

        With ``require_valid`` (default) the prover refuses to publish a
        claim whose circuit output is 0 -- i.e. the watermark did NOT
        extract below the BER threshold.  (The proof would be sound but
        would only convince a verifier that the model is *not* yours.)
        """
        circuit = self.synthesize()
        if require_valid and not circuit.valid:
            raise ProverError(
                "watermark does not extract from this model within theta; "
                "refusing to publish a non-ownership proof"
            )
        proof: Proof = prove(
            proving_key,
            circuit.constraint_system,
            circuit.assignment,
            seed=seed,
        )
        fmt = self.config.fixed_point
        return OwnershipClaim(
            proof_bytes=proof.to_bytes(),
            theta=self.config.theta,
            wm_bits=self.keys.num_bits,
            embed_layer=self.keys.embed_layer,
            model_sha256=model_digest(self.model, self.keys.embed_layer),
            frac_bits=fmt.frac_bits,
            total_bits=fmt.total_bits,
            sigmoid_degree=self.config.sigmoid_degree,
        )
