"""The prover side of ZKROWNN.

The model owner (P in the paper) holds the watermarked model M, private
trigger keys K and watermark parameters W, and claims that a second model
M' carries their watermark.  :class:`OwnershipProver` synthesizes the
Algorithm-1 circuit against M', generates the Groth16 proof, and packages
a publishable :class:`~repro.zkrownn.artifacts.OwnershipClaim`.

Compilation and setup happen once per circuit *shape*; the paper's
amortization argument (Section IV) is realized by routing proofs through
a :class:`~repro.engine.engine.ProvingEngine` (``prove_ownership_cached``
or :func:`prove_ownership_with_engine`): the first claim for a shape
compiles and runs setup, every later claim replays the recorded gadget
trace and proves against the cached prepared key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..engine.engine import ProofJob, ProvingEngine
from ..snark.errors import ConstraintViolation
from ..snark.groth16 import Groth16Keypair, prove, setup
from ..snark.keys import Proof, ProvingKey
from ..nn.model import Sequential
from ..watermark.keys import WatermarkKeys
from .artifacts import OwnershipClaim, model_digest
from .circuit import (
    CircuitConfig,
    ExtractionCircuit,
    build_extraction_circuit,
    extraction_synthesizer,
)
from .planning import extraction_structure_key

__all__ = ["OwnershipProver", "ProverError", "prove_ownership_with_engine"]


class ProverError(Exception):
    """Raised when an ownership proof cannot be generated honestly."""


@dataclass
class OwnershipProver:
    """A model owner generating ownership proofs.

    ``model`` is the *suspect* model M' being proven against (for a
    dispute, the allegedly-stolen network); ``keys`` are the owner's
    private watermark material.  With an ``engine``, repeat proofs for
    one circuit shape skip compilation and setup
    (:meth:`prove_ownership_cached`).
    """

    model: Sequential
    keys: WatermarkKeys
    config: CircuitConfig = CircuitConfig()
    engine: Optional[ProvingEngine] = None

    def synthesize(self) -> ExtractionCircuit:
        """Build the extraction circuit + witness against the model.

        Raises :class:`ProverError` if the witness cannot be synthesized
        (e.g. activations overflow the fixed-point range).
        """
        try:
            return build_extraction_circuit(self.model, self.keys, self.config)
        except (ConstraintViolation, OverflowError) as exc:
            # ConstraintViolation: an intermediate value escaped the
            # fixed-point range mid-circuit; OverflowError: an input or
            # weight did not even encode.  Both mean the chosen format is
            # too narrow for this model.
            raise ProverError(f"witness synthesis failed: {exc}") from exc

    def run_trusted_setup(self, *, seed: Optional[int] = None) -> Groth16Keypair:
        """Convenience wrapper: run Groth16 setup for this circuit shape.

        In deployment the setup is run by a neutral party
        (:class:`repro.zkrownn.protocol.TrustedSetupParty`); having the
        prover run it is acceptable only for benchmarks and tests.
        """
        circuit = self.synthesize()
        return setup(circuit.constraint_system, seed=seed)

    def prove_ownership(
        self,
        proving_key: ProvingKey,
        *,
        require_valid: bool = True,
        seed: Optional[int] = None,
    ) -> OwnershipClaim:
        """Generate the ownership proof and wrap it as a claim.

        With ``require_valid`` (default) the prover refuses to publish a
        claim whose circuit output is 0 -- i.e. the watermark did NOT
        extract below the BER threshold.  (The proof would be sound but
        would only convince a verifier that the model is *not* yours.)
        """
        circuit = self.synthesize()
        if require_valid and not circuit.valid:
            raise ProverError(
                "watermark does not extract from this model within theta; "
                "refusing to publish a non-ownership proof"
            )
        proof: Proof = prove(
            proving_key,
            circuit.constraint_system,
            circuit.assignment,
            seed=seed,
        )
        return _claim_for(self.model, self.keys, self.config, proof)

    def prove_ownership_cached(
        self,
        *,
        require_valid: bool = True,
        seed: Optional[int] = None,
        setup_seed: Optional[int] = None,
    ) -> OwnershipClaim:
        """Generate a claim through the staged pipeline.

        The first call for this circuit shape compiles the circuit and
        runs setup; later calls (same :class:`ProvingEngine`, same shape)
        replay the recorded trace and prove against cached keys.  Uses
        ``self.engine``, creating a private one on first use if none was
        injected.
        """
        if self.engine is None:
            self.engine = ProvingEngine()
        claim, _ = prove_ownership_with_engine(
            self.engine,
            self.model,
            self.keys,
            self.config,
            require_valid=require_valid,
            seed=seed,
            setup_seed=setup_seed,
        )
        return claim


def _claim_for(
    model: Sequential,
    keys: WatermarkKeys,
    config: CircuitConfig,
    proof: Proof,
) -> OwnershipClaim:
    """Package a proof with the public parameters a verifier needs."""
    fmt = config.fixed_point
    return OwnershipClaim(
        proof_bytes=proof.to_bytes(),
        theta=config.theta,
        wm_bits=keys.num_bits,
        embed_layer=keys.embed_layer,
        model_sha256=model_digest(model, keys.embed_layer),
        frac_bits=fmt.frac_bits,
        total_bits=fmt.total_bits,
        sigmoid_degree=config.sigmoid_degree,
    )


def prove_ownership_with_engine(
    engine: ProvingEngine,
    model: Sequential,
    keys: WatermarkKeys,
    config: Optional[CircuitConfig] = None,
    *,
    require_valid: bool = True,
    seed: Optional[int] = None,
    setup_seed: Optional[int] = None,
) -> Tuple[OwnershipClaim, ProofJob]:
    """One ownership claim through the staged proving pipeline.

    Returns the publishable claim plus the underlying
    :class:`~repro.engine.engine.ProofJob` (compiled circuit, keypair,
    per-stage timings, cache-reuse flags) for callers that distribute the
    verification key or report amortization.
    """
    config = config or CircuitConfig()
    shape_key = extraction_structure_key(model, keys, config)

    def check_extracts(synthesis) -> None:
        if require_valid and synthesis.assignment[synthesis.aux.valid_output.index] != 1:
            raise ProverError(
                "watermark does not extract from this model within theta; "
                "refusing to publish a non-ownership proof"
            )

    try:
        job = engine.prove_job(
            shape_key,
            extraction_synthesizer(model, keys, config),
            name="zkrownn-extraction",
            seed=seed,
            setup_seed=setup_seed,
            witness_check=check_extracts,
        )
    except (ConstraintViolation, OverflowError) as exc:
        raise ProverError(f"witness synthesis failed: {exc}") from exc
    return _claim_for(model, keys, config, job.proof), job
