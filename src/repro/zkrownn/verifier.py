"""The verifier side of ZKROWNN.

Any third party (V in the paper -- a court expert, a marketplace, another
vendor) verifies an ownership claim with only:

* the public model M' in question,
* the published verification key for the circuit shape,
* the prover's :class:`~repro.zkrownn.artifacts.OwnershipClaim` (~hundreds
  of bytes).

Crucially the verifier reconstructs the public instance *themselves* from
the model and the claim's public parameters -- the prover never supplies
instance values, so a cheating prover cannot claim against a model other
than the one the verifier holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..circuit.fixedpoint import FixedPointFormat
from ..nn.model import Sequential
from ..snark.errors import MalformedProof
from ..snark.groth16 import (
    PreparedVerifyingKey,
    prepare_verifying_key,
    verify_batch_grouped,
    verify_prepared,
    verify_with_precheck,
)
from ..snark.keys import VerifyingKey
from .artifacts import OwnershipClaim, model_digest
from .circuit import CircuitConfig, public_inputs_for

__all__ = ["OwnershipVerifier", "VerificationReport"]


@dataclass
class VerificationReport:
    """The verifier's decision with its reasoning trail.

    ``malformed`` marks claims whose proof failed point/subgroup
    validation -- garbage bytes rather than a false statement; services
    surface these as 400-class verdicts instead of plain rejections.
    """

    accepted: bool
    reason: str
    malformed: bool = False

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.accepted


@dataclass
class OwnershipVerifier:
    """A third-party verifier for ownership claims.

    ``prepare=True`` precomputes the Miller-loop coefficients of the key's
    fixed G2 points once (the pipeline's cached-verify stage): a verifier
    expecting a stream of *individual* :meth:`verify` calls under one key
    roughly halves per-claim pairing time.  It does not change
    :meth:`verify_many`'s batched happy path (already a single
    multi-pairing), only its per-claim fallback.  One-shot verifiers keep
    the default and pay nothing up front.
    """

    verifying_key: VerifyingKey
    prepare: bool = False
    _prepared: Optional[PreparedVerifyingKey] = field(
        default=None, repr=False, init=False, compare=False
    )

    def _pairing_check(self, instance: Sequence[int], claim: OwnershipClaim) -> bool:
        """Point validation + pairing equation, prepared when requested."""
        if not self.prepare:
            return verify_with_precheck(self.verifying_key, instance, claim.proof)
        if self._prepared is None:
            self._prepared = prepare_verifying_key(self.verifying_key)
        claim.proof.validate_points()
        return verify_prepared(self._prepared, instance, claim.proof)

    def verify(self, model: Sequential, claim: OwnershipClaim) -> VerificationReport:
        """Check an ownership claim against the model the verifier holds."""
        digest = model_digest(model, claim.embed_layer)
        if digest != claim.model_sha256:
            return VerificationReport(
                accepted=False,
                reason="claim was made for a different model "
                f"(digest {claim.model_sha256[:16]}... != {digest[:16]}...)",
            )
        config = CircuitConfig(
            theta=claim.theta,
            fixed_point=FixedPointFormat(
                frac_bits=claim.frac_bits, total_bits=claim.total_bits
            ),
            sigmoid_degree=claim.sigmoid_degree,
        )
        instance = public_inputs_for(
            model, claim.theta, claim.wm_bits, claim.embed_layer, config
        )
        if len(instance) != self.verifying_key.num_public_inputs:
            return VerificationReport(
                accepted=False,
                reason="verification key does not match this circuit shape "
                f"({self.verifying_key.num_public_inputs} public inputs "
                f"expected, instance has {len(instance)})",
            )
        try:
            ok = self._pairing_check(instance, claim)
        except MalformedProof as exc:
            return VerificationReport(
                accepted=False,
                reason=f"malformed proof: {exc}",
                malformed=True,
            )
        if not ok:
            return VerificationReport(
                accepted=False, reason="pairing check failed: proof is invalid"
            )
        return VerificationReport(
            accepted=True,
            reason="watermark extracts from the model within the BER "
            f"threshold theta={claim.theta}",
        )

    def _instance_for(
        self, model: Sequential, claim: OwnershipClaim
    ) -> Optional[List[int]]:
        """Reconstruct the instance; None on a digest/shape precheck failure."""
        if model_digest(model, claim.embed_layer) != claim.model_sha256:
            return None
        config = CircuitConfig(
            theta=claim.theta,
            fixed_point=FixedPointFormat(
                frac_bits=claim.frac_bits, total_bits=claim.total_bits
            ),
            sigmoid_degree=claim.sigmoid_degree,
        )
        instance = public_inputs_for(
            model, claim.theta, claim.wm_bits, claim.embed_layer, config
        )
        if len(instance) != self.verifying_key.num_public_inputs:
            return None
        return instance

    def _batch_key(self):
        """The key object handed to the grouped batch check."""
        if not self.prepare:
            return self.verifying_key
        if self._prepared is None:
            self._prepared = prepare_verifying_key(self.verifying_key)
        return self._prepared

    def verify_many(
        self,
        cases: Sequence[Tuple[Sequential, OwnershipClaim]],
        *,
        seed: Optional[int] = None,
    ) -> List[VerificationReport]:
        """Audit many claims sharing this circuit shape in one batch.

        A marketplace scenario: many models of one architecture, one
        verification key, many ownership claims.  Prechecks (digest,
        instance shape, point validity) run per claim -- malformed proof
        points are flagged as such, not batched; the pairing work then
        routes through :func:`~repro.snark.groth16.verify_batch_grouped`
        (one RLC multi-pairing per key, prepared when this verifier is).
        If the batch fails, claims are re-verified individually to
        attribute blame -- the standard batch-with-fallback pattern.
        """
        reports: List[Optional[VerificationReport]] = [None] * len(cases)
        items = []
        batch_indices = []
        for i, (model, claim) in enumerate(cases):
            instance = self._instance_for(model, claim)
            if instance is None:
                reports[i] = VerificationReport(
                    accepted=False, reason="precheck failed (digest/shape)"
                )
                continue
            try:
                claim.proof.validate_points()
            except (MalformedProof, ValueError) as exc:
                reports[i] = VerificationReport(
                    accepted=False,
                    reason=f"malformed proof: {exc}",
                    malformed=True,
                )
                continue
            items.append((self._batch_key(), instance, claim.proof))
            batch_indices.append(i)
        groups = verify_batch_grouped(items, seed=seed) if items else []
        if all(g.accepted for g in groups):
            for i in batch_indices:
                reports[i] = VerificationReport(
                    accepted=True, reason="accepted (batched pairing check)"
                )
        else:
            for i in batch_indices:
                model, claim = cases[i]
                reports[i] = self.verify(model, claim)
        return [r for r in reports if r is not None]
