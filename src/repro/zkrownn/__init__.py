"""ZKROWNN: zero-knowledge right-of-ownership proofs for neural networks.

The paper's primary contribution, assembled from the substrates below it:

* :func:`build_extraction_circuit` -- Algorithm 1 as an R1CS circuit
  (full build); :func:`extraction_synthesizer` feeds the same gadget
  trace to the staged pipeline in :mod:`repro.engine`;
* :class:`OwnershipProver` / :class:`OwnershipVerifier` -- P and V;
  :func:`prove_ownership_with_engine` is the amortized repeat-claim path;
* :class:`TrustedSetupParty` / :func:`run_ownership_protocol` -- Figure 1;
* :class:`OwnershipClaim` -- the ~hundreds-of-bytes artifact that travels.
"""

from .artifacts import OwnershipClaim, model_digest
from .circuit import (
    CircuitConfig,
    ExtractionCircuit,
    ExtractionOutputs,
    build_extraction_circuit,
    extraction_synthesizer,
    public_inputs_for,
    resynthesize_extraction_witness,
)
from .planning import (
    CircuitCostEstimate,
    estimate_extraction_cost,
    extraction_structure_key,
)
from .prover import OwnershipProver, ProverError, prove_ownership_with_engine
from .protocol import ProtocolTranscript, TrustedSetupParty, run_ownership_protocol
from .verifier import OwnershipVerifier, VerificationReport

__all__ = [
    "OwnershipClaim",
    "model_digest",
    "CircuitConfig",
    "ExtractionCircuit",
    "ExtractionOutputs",
    "build_extraction_circuit",
    "extraction_synthesizer",
    "public_inputs_for",
    "resynthesize_extraction_witness",
    "CircuitCostEstimate",
    "estimate_extraction_cost",
    "extraction_structure_key",
    "OwnershipProver",
    "ProverError",
    "prove_ownership_with_engine",
    "ProtocolTranscript",
    "TrustedSetupParty",
    "run_ownership_protocol",
    "OwnershipVerifier",
    "VerificationReport",
]
