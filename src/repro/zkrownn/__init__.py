"""ZKROWNN: zero-knowledge right-of-ownership proofs for neural networks.

The paper's primary contribution, assembled from the substrates below it:

* :func:`build_extraction_circuit` -- Algorithm 1 as an R1CS circuit;
* :class:`OwnershipProver` / :class:`OwnershipVerifier` -- P and V;
* :class:`TrustedSetupParty` / :func:`run_ownership_protocol` -- Figure 1;
* :class:`OwnershipClaim` -- the ~hundreds-of-bytes artifact that travels.
"""

from .artifacts import OwnershipClaim, model_digest
from .circuit import (
    CircuitConfig,
    ExtractionCircuit,
    build_extraction_circuit,
    public_inputs_for,
)
from .planning import CircuitCostEstimate, estimate_extraction_cost
from .prover import OwnershipProver, ProverError
from .protocol import ProtocolTranscript, TrustedSetupParty, run_ownership_protocol
from .verifier import OwnershipVerifier, VerificationReport

__all__ = [
    "OwnershipClaim",
    "model_digest",
    "CircuitConfig",
    "ExtractionCircuit",
    "build_extraction_circuit",
    "public_inputs_for",
    "CircuitCostEstimate",
    "estimate_extraction_cost",
    "OwnershipProver",
    "ProverError",
    "ProtocolTranscript",
    "TrustedSetupParty",
    "run_ownership_protocol",
    "OwnershipVerifier",
    "VerificationReport",
]
