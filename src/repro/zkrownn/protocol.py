"""The full Figure-1 protocol: setup party, prover, verifiers, transcripts.

Simulates the paper's deployment story end to end:

1. a :class:`TrustedSetupParty` runs Groth16 setup for the circuit shape
   and publishes the verification key ("a trusted third party or V run a
   setup procedure"); the toxic waste is destroyed with the party object;
2. the model owner proves once;
3. any number of independent verifiers check the same claim -- public
   verifiability, the property the paper contrasts against interactive ZK.

The :class:`ProtocolTranscript` records who sent how many bytes to whom;
the Figure-1 benchmark regenerates the paper's communication accounting
(<= 16 MB setup->verifier, 128 B prover->verifier) from it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..nn.model import Sequential
from ..snark.groth16 import Groth16Keypair, setup
from ..snark.keys import ProvingKey, VerifyingKey
from ..watermark.keys import WatermarkKeys
from .artifacts import OwnershipClaim
from .circuit import CircuitConfig, build_extraction_circuit
from .prover import OwnershipProver
from .verifier import OwnershipVerifier, VerificationReport

__all__ = ["TrustedSetupParty", "ProtocolTranscript", "run_ownership_protocol"]


@dataclass
class Message:
    """One protocol message, for communication accounting."""

    sender: str
    receiver: str
    description: str
    num_bytes: int


@dataclass
class ProtocolTranscript:
    """Everything that happened in one protocol run."""

    messages: List[Message] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)
    reports: List[VerificationReport] = field(default_factory=list)

    def record(self, sender: str, receiver: str, description: str, num_bytes: int):
        self.messages.append(Message(sender, receiver, description, num_bytes))

    def bytes_between(self, sender: str, receiver: str) -> int:
        return sum(
            m.num_bytes
            for m in self.messages
            if m.sender == sender and m.receiver == receiver
        )

    def total_bytes(self) -> int:
        return sum(m.num_bytes for m in self.messages)

    @property
    def all_accepted(self) -> bool:
        return bool(self.reports) and all(r.accepted for r in self.reports)


class TrustedSetupParty:
    """Runs the one-time Groth16 ceremony for a circuit shape.

    The sampled toxic waste lives only inside :func:`repro.snark.setup`'s
    stack frame; this object retains only the public outputs.  ``seed``
    exists for reproducible tests -- a real ceremony must not use it.
    """

    def __init__(self, name: str = "setup-party"):
        self.name = name
        self._keypair: Optional[Groth16Keypair] = None

    def run_ceremony(
        self,
        model: Sequential,
        keys: WatermarkKeys,
        config: Optional[CircuitConfig] = None,
        *,
        seed: Optional[int] = None,
    ) -> Groth16Keypair:
        """Setup for the extraction circuit of (model shape, key shape)."""
        circuit = build_extraction_circuit(model, keys, config or CircuitConfig())
        self._keypair = setup(circuit.constraint_system, seed=seed)
        return self._keypair

    @property
    def proving_key(self) -> ProvingKey:
        if self._keypair is None:
            raise RuntimeError("ceremony has not been run")
        return self._keypair.proving_key

    @property
    def verifying_key(self) -> VerifyingKey:
        if self._keypair is None:
            raise RuntimeError("ceremony has not been run")
        return self._keypair.verifying_key


def run_ownership_protocol(
    suspect_model: Sequential,
    owner_keys: WatermarkKeys,
    *,
    config: Optional[CircuitConfig] = None,
    num_verifiers: int = 3,
    seed: Optional[int] = None,
) -> Tuple[ProtocolTranscript, OwnershipClaim]:
    """Run the complete Figure-1 flow and return its transcript.

    One setup, one proof, ``num_verifiers`` independent verifications of
    the same claim (the non-interactivity the paper emphasizes: "the proof
    is generated once and can be verified by third parties without further
    interaction").
    """
    config = config or CircuitConfig()
    transcript = ProtocolTranscript()

    # 1. Trusted setup (once per circuit).
    party = TrustedSetupParty()
    t0 = time.perf_counter()
    party.run_ceremony(suspect_model, owner_keys, config, seed=seed)
    transcript.timings["setup_seconds"] = time.perf_counter() - t0
    pk_bytes = party.proving_key.size_bytes()
    vk_bytes = party.verifying_key.size_bytes()
    transcript.record(party.name, "prover", "proving key", pk_bytes)

    # 2. The owner proves once.
    prover = OwnershipProver(suspect_model, owner_keys, config)
    t0 = time.perf_counter()
    claim = prover.prove_ownership(party.proving_key, seed=seed)
    transcript.timings["prove_seconds"] = time.perf_counter() - t0

    # 3. Verifiers: each receives the VK (from the setup party) and the
    #    claim (from the prover), then checks independently.
    verify_times = []
    for v in range(num_verifiers):
        verifier_name = f"verifier-{v}"
        transcript.record(party.name, verifier_name, "verification key", vk_bytes)
        transcript.record("prover", verifier_name, "ownership claim", claim.size_bytes())
        verifier = OwnershipVerifier(party.verifying_key)
        t0 = time.perf_counter()
        report = verifier.verify(suspect_model, claim)
        verify_times.append(time.perf_counter() - t0)
        transcript.reports.append(report)
    transcript.timings["verify_seconds_mean"] = sum(verify_times) / len(verify_times)
    return transcript, claim
