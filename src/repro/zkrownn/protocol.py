"""The full Figure-1 protocol: setup party, prover, verifiers, transcripts.

Simulates the paper's deployment story end to end, on top of the staged
proving pipeline (``compile -> setup -> synthesize -> prove -> verify``):

1. a :class:`TrustedSetupParty` compiles the circuit shape and runs the
   Groth16 ceremony for it, publishing the verification key ("a trusted
   third party or V run a setup procedure"); the toxic waste is destroyed
   with the party object;
2. the model owner proves -- the first claim for a shape pays witness
   synthesis only (the compiled circuit is replayed, never rebuilt), and
   later claims through the same :class:`~repro.engine.engine.ProvingEngine`
   also skip setup entirely, which is the paper's Section-IV amortization
   argument realized in code;
3. any number of independent verifiers check the same claim -- public
   verifiability, the property the paper contrasts against interactive ZK.

The :class:`ProtocolTranscript` records who sent how many bytes to whom;
the Figure-1 benchmark regenerates the paper's communication accounting
(<= 16 MB setup->verifier, 128 B prover->verifier) from it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..engine.engine import ProvingEngine
from ..nn.model import Sequential
from ..snark.groth16 import Groth16Keypair
from ..snark.keys import ProvingKey, VerifyingKey
from ..watermark.keys import WatermarkKeys
from .artifacts import OwnershipClaim
from .circuit import CircuitConfig, extraction_synthesizer
from .planning import extraction_structure_key
from .prover import prove_ownership_with_engine
from .verifier import OwnershipVerifier, VerificationReport

__all__ = ["TrustedSetupParty", "ProtocolTranscript", "run_ownership_protocol"]


@dataclass
class Message:
    """One protocol message, for communication accounting."""

    sender: str
    receiver: str
    description: str
    num_bytes: int


@dataclass
class ProtocolTranscript:
    """Everything that happened in one protocol run."""

    messages: List[Message] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)
    reports: List[VerificationReport] = field(default_factory=list)
    reused_circuit: bool = False
    reused_keypair: bool = False

    def record(self, sender: str, receiver: str, description: str, num_bytes: int):
        self.messages.append(Message(sender, receiver, description, num_bytes))

    def bytes_between(self, sender: str, receiver: str) -> int:
        return sum(
            m.num_bytes
            for m in self.messages
            if m.sender == sender and m.receiver == receiver
        )

    def total_bytes(self) -> int:
        return sum(m.num_bytes for m in self.messages)

    @property
    def all_accepted(self) -> bool:
        return bool(self.reports) and all(r.accepted for r in self.reports)


class TrustedSetupParty:
    """Runs the one-time Groth16 ceremony for a circuit shape.

    The party owns a :class:`~repro.engine.engine.ProvingEngine` (or
    shares one injected by the protocol): repeat ceremonies for a shape it
    has already served are cache hits, not new ceremonies.  The sampled
    toxic waste lives only inside :func:`repro.snark.setup`'s stack frame;
    this object retains only the public outputs.  ``seed`` exists for
    reproducible tests -- a real ceremony must not use it.
    """

    def __init__(self, name: str = "setup-party", engine: Optional[ProvingEngine] = None):
        self.name = name
        self.engine = engine or ProvingEngine()
        self._keypair: Optional[Groth16Keypair] = None

    def run_ceremony(
        self,
        model: Sequential,
        keys: WatermarkKeys,
        config: Optional[CircuitConfig] = None,
        *,
        seed: Optional[int] = None,
    ) -> Groth16Keypair:
        """Setup for the extraction circuit of (model shape, key shape)."""
        config = config or CircuitConfig()
        shape_key = extraction_structure_key(model, keys, config)
        compiled, _ = self.engine.synthesize(
            shape_key,
            extraction_synthesizer(model, keys, config),
            name="zkrownn-extraction",
        )
        self._keypair = self.engine.setup(compiled, seed=seed)
        return self._keypair

    @property
    def proving_key(self) -> ProvingKey:
        if self._keypair is None:
            raise RuntimeError("ceremony has not been run")
        return self._keypair.proving_key

    @property
    def verifying_key(self) -> VerifyingKey:
        if self._keypair is None:
            raise RuntimeError("ceremony has not been run")
        return self._keypair.verifying_key


def run_ownership_protocol(
    suspect_model: Sequential,
    owner_keys: WatermarkKeys,
    *,
    config: Optional[CircuitConfig] = None,
    num_verifiers: int = 3,
    seed: Optional[int] = None,
    engine: Optional[ProvingEngine] = None,
) -> Tuple[ProtocolTranscript, OwnershipClaim]:
    """Run the complete Figure-1 flow and return its transcript.

    One setup, one proof, ``num_verifiers`` independent verifications of
    the same claim (the non-interactivity the paper emphasizes: "the proof
    is generated once and can be verified by third parties without further
    interaction").

    The setup party and prover share one :class:`ProvingEngine` (a fresh
    one per call unless ``engine`` is passed), so within a run the prover
    replays the circuit the ceremony compiled instead of rebuilding it --
    and across runs with a shared engine, setup and compilation are
    skipped outright (the amortized repeat-claim path; see the
    ``bench_amortization`` benchmark).
    """
    config = config or CircuitConfig()
    engine = engine or ProvingEngine()
    transcript = ProtocolTranscript()

    # 1. Trusted setup (once per circuit shape; a cache hit if this
    #    engine has already served the shape).
    party = TrustedSetupParty(engine=engine)
    t0 = time.perf_counter()
    party.run_ceremony(suspect_model, owner_keys, config, seed=seed)
    transcript.timings["setup_seconds"] = time.perf_counter() - t0
    pk_bytes = party.proving_key.size_bytes()
    vk_bytes = party.verifying_key.size_bytes()
    transcript.record(party.name, "prover", "proving key", pk_bytes)

    # 2. The owner proves (witness replay + prove; compile/setup cached).
    t0 = time.perf_counter()
    claim, job = prove_ownership_with_engine(
        engine, suspect_model, owner_keys, config, seed=seed
    )
    transcript.timings["prove_seconds"] = time.perf_counter() - t0
    transcript.timings["witness_seconds"] = job.timings.get(
        "synthesize_seconds", job.timings.get("compile_seconds", 0.0)
    )
    transcript.reused_circuit = job.reused_circuit
    transcript.reused_keypair = job.reused_keypair

    # 3. Verifiers: each receives the VK (from the setup party) and the
    #    claim (from the prover), then checks independently.
    verify_times = []
    for v in range(num_verifiers):
        verifier_name = f"verifier-{v}"
        transcript.record(party.name, verifier_name, "verification key", vk_bytes)
        transcript.record("prover", verifier_name, "ownership claim", claim.size_bytes())
        verifier = OwnershipVerifier(party.verifying_key)
        t0 = time.perf_counter()
        report = verifier.verify(suspect_model, claim)
        verify_times.append(time.perf_counter() - t0)
        transcript.reports.append(report)
    transcript.timings["verify_seconds_mean"] = sum(verify_times) / len(verify_times)
    return transcript, claim
