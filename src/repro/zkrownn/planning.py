"""Pre-setup planning for extraction circuits: cost estimates and cache keys.

The Groth16 trusted setup is the expensive, coordinated step of the
protocol (per Table I: minutes of compute and hundreds of MB of proving
key at paper scale).  Before asking a setup party to run a ceremony, a
model owner wants to know what the circuit for *their* model will cost.

:func:`estimate_extraction_cost` walks a model's layers with the same
logic as :func:`repro.zkrownn.circuit.build_extraction_circuit`, but
evaluates the analytic cost formulas instead of allocating wires --
O(layers) instead of O(constraints).  The estimate is exact (asserted
against real builds in ``tests/test_zkrownn_planning.py``).

:func:`extraction_structure_key` condenses the same shape walk into the
:class:`~repro.engine.engine.ProvingEngine` cache key: everything that
determines the circuit *structure* (architecture up to the embedding
layer, trigger/watermark shape, circuit config) without any weight or key
values, so the key is O(layers) to compute and stable across models of
one shape.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple


from ..bench.cost_model import GadgetCosts
from ..nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sigmoid
from ..nn.model import Sequential
from ..watermark.keys import WatermarkKeys
from .circuit import CircuitConfig, _model_weights_in_order

__all__ = [
    "CircuitCostEstimate",
    "estimate_extraction_cost",
    "extraction_structure_key",
]


@dataclass(frozen=True)
class CircuitCostEstimate:
    """Predicted size of an extraction circuit."""

    num_constraints: int
    num_public_inputs: int
    num_private_weights: int

    @property
    def estimated_vk_bytes(self) -> int:
        """VK = alpha + 3 G2 points + (public inputs + 1) IC points."""
        return 32 + 3 * 64 + 32 * (self.num_public_inputs + 1)

    @property
    def estimated_proof_bytes(self) -> int:
        return 128  # always


def _flat_feedforward_cost(
    costs: GadgetCosts, layers, current_dim: int
) -> Tuple[int, int]:
    """(constraints, output feature dim) for a flat layer stack."""
    total = 0
    for layer in layers:
        if isinstance(layer, Dense):
            total += costs.dense(layer.out_features, layer.in_features)
            current_dim = layer.out_features
        elif isinstance(layer, ReLU):
            total += costs.relu_vector(current_dim)
        elif isinstance(layer, Sigmoid):
            total += costs.sigmoid_vector(current_dim)
        elif isinstance(layer, Flatten):
            continue
        else:
            raise TypeError(
                f"unsupported layer for flat feedforward: {type(layer).__name__}"
            )
    return total, current_dim


def _spatial_feedforward_cost(
    costs: GadgetCosts, layers, shape: Tuple[int, int, int]
) -> Tuple[int, int]:
    """(constraints, flattened output dim) for a conv layer stack."""
    channels, height, width = shape
    total = 0
    flat_dim: Optional[int] = None
    for layer in layers:
        if isinstance(layer, Conv2D):
            total += costs.conv3d(
                channels, height, width, layer.out_channels, layer.kernel,
                layer.stride,
            )
            height = (height - layer.kernel) // layer.stride + 1
            width = (width - layer.kernel) // layer.stride + 1
            channels = layer.out_channels
        elif isinstance(layer, MaxPool2D):
            total += costs.maxpool2d(
                channels, height, width, layer.pool, layer.stride
            )
            height = (height - layer.pool) // layer.stride + 1
            width = (width - layer.pool) // layer.stride + 1
        elif isinstance(layer, ReLU):
            dim = flat_dim if flat_dim is not None else channels * height * width
            total += costs.relu_vector(dim)
        elif isinstance(layer, Sigmoid):
            dim = flat_dim if flat_dim is not None else channels * height * width
            total += costs.sigmoid_vector(dim)
        elif isinstance(layer, Flatten):
            flat_dim = channels * height * width
        elif isinstance(layer, Dense):
            if flat_dim is None:
                flat_dim = channels * height * width
            total += costs.dense(layer.out_features, layer.in_features)
            flat_dim = layer.out_features
        else:
            raise TypeError(
                f"unsupported layer for spatial feedforward: "
                f"{type(layer).__name__}"
            )
    if flat_dim is None:
        flat_dim = channels * height * width
    return total, flat_dim


def extraction_structure_key(
    model: Sequential,
    keys: WatermarkKeys,
    config: Optional[CircuitConfig] = None,
) -> str:
    """Shape key for the proving-engine caches, cheap to compute.

    Two (model, keys, config) triples with the same key synthesize the
    same gadget trace, so they share a compiled circuit and Groth16
    keypair; the engine double-checks via the structure digest after the
    first full build.  Conservatively includes every
    :class:`CircuitConfig` field -- ``theta`` only moves a public-input
    *value*, but a changed config should read as a changed circuit.
    """
    config = config or CircuitConfig()
    h = hashlib.sha256()
    h.update(b"zkrownn-extraction|v1|")
    for i, layer in enumerate(model.layers[: keys.embed_layer + 1]):
        h.update(f"{i}:{type(layer).__name__}".encode())
        for name in sorted(layer.params):
            h.update(f":{name}{tuple(layer.params[name].shape)}".encode())
        for attr in ("stride", "pool", "kernel"):
            if hasattr(layer, attr):
                h.update(f":{attr}={getattr(layer, attr)}".encode())
        h.update(b";")
    h.update(
        f"triggers={tuple(keys.trigger_inputs.shape)}"
        f"|proj={tuple(keys.projection.shape)}"
        f"|bits={keys.num_bits}|layer={keys.embed_layer}".encode()
    )
    h.update(
        f"|theta={config.theta}|frac={config.fixed_point.frac_bits}"
        f"|total={config.fixed_point.total_bits}"
        f"|sigmoid={config.sigmoid_degree}"
        f"|public={config.weights_public}".encode()
    )
    return h.hexdigest()


def estimate_extraction_cost(
    model: Sequential,
    keys: WatermarkKeys,
    config: Optional[CircuitConfig] = None,
) -> CircuitCostEstimate:
    """Predict the exact size of ``build_extraction_circuit``'s output.

    Walks layers ``0..keys.embed_layer`` with the validated cost model;
    matches the real builder constraint-for-constraint.
    """
    config = config or CircuitConfig()
    costs = GadgetCosts(config.fixed_point)
    layers = model.layers[: keys.embed_layer + 1]
    spatial = keys.trigger_inputs.ndim == 4

    if spatial:
        shape = tuple(keys.trigger_inputs.shape[1:])
        per_trigger, feature_dim = _spatial_feedforward_cost(costs, layers, shape)
    else:
        input_dim = int(keys.trigger_inputs.shape[1])
        per_trigger, feature_dim = _flat_feedforward_cost(costs, layers, input_dim)

    total = keys.num_triggers * per_trigger
    total += costs.average_rows(keys.num_triggers, feature_dim)
    total += keys.num_bits * costs.inner_product(feature_dim)  # mu @ A
    total += costs.sigmoid_vector(keys.num_bits, config.sigmoid_degree)
    total += costs.hard_threshold_vector(keys.num_bits)
    total += keys.num_bits + 1  # wm booleanity + output binding
    total += costs.ber(keys.num_bits)

    num_weights = sum(
        arr.size for _, arr in _model_weights_in_order(model, keys.embed_layer)
    )
    if config.weights_public:
        num_public = 2 + num_weights  # valid + budget + weights
        private_weights = 0
    else:
        num_public = 2
        private_weights = num_weights
    return CircuitCostEstimate(
        num_constraints=total,
        num_public_inputs=num_public,
        num_private_weights=private_weights,
    )
