"""The end-to-end ZKROWNN watermark-extraction circuit (Algorithm 1).

    Public values:  model M, target BER theta
    Private input:  trigger keys X_key, B-bit watermark wm,
                    projection matrix A, embedded layer l_wm
    Circuit:
        check = 1
        zkFeedForward(M) on input X_key until layer l_wm
        extract activation maps a at layer l_wm
        mu    = zkAverage(a)
        G     = zkSigmoid(mu x A)
        wm^   = zkHardThresholding(G, 0.5)
        valid = zkBER(wm, wm^, theta)
        return check AND valid

Composition of the gadget library over the layers of a
:class:`~repro.nn.model.Sequential` model.  The model weights are *public
inputs* (the verifier independently encodes the claimed-stolen model M'
into the instance, so a prover cannot substitute a different network); the
trigger keys, watermark, and projection stay private, which is the entire
point of the paper.

The embedding layer is private in the sense that the circuit does not
reveal *why* the feedforward stops where it does; its depth is visible in
the circuit structure (as in the paper, where the circuit is fixed per
model and "the watermark is embedded in a specific layer, which is only
known to the original model owner" -- the proven statement fixes one
layer without revealing which semantic layer of the watermark scheme).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.builder import CircuitBuilder, PublicOutput
from ..circuit.fixedpoint import FixedPointFormat
from ..circuit.wire import Wire
from ..engine.compiled import CompiledCircuit, SynthesisResult, resynthesize
from ..gadgets.activation import zk_relu_vector, zk_sigmoid_vector
from ..gadgets.ber import mismatch_budget
from ..gadgets.conv import WireTensor3, zk_conv3d
from ..gadgets.linalg import zk_average_rows, zk_dense
from ..gadgets.pooling import zk_maxpool2d
from ..gadgets.threshold import zk_hard_threshold_vector
from ..nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sigmoid
from ..nn.model import Sequential
from ..watermark.keys import WatermarkKeys

__all__ = ["CircuitConfig", "ExtractionCircuit", "ExtractionOutputs",
           "build_extraction_circuit", "extraction_synthesizer",
           "public_inputs_for", "resynthesize_extraction_witness"]

DEFAULT_EXTRACTION_FORMAT = FixedPointFormat(frac_bits=16, total_bits=48)


@dataclass(frozen=True)
class CircuitConfig:
    """Build-time parameters of the extraction circuit."""

    theta: float = 0.0
    fixed_point: FixedPointFormat = DEFAULT_EXTRACTION_FORMAT
    sigmoid_degree: int = 9
    weights_public: bool = True


@dataclass
class ExtractionCircuit:
    """A synthesized Algorithm-1 circuit with its witness."""

    builder: CircuitBuilder
    config: CircuitConfig
    valid_output: PublicOutput
    num_weights: int
    extracted_bits: List[int] = field(default_factory=list)

    @property
    def constraint_system(self):
        return self.builder.cs

    @property
    def assignment(self) -> List[int]:
        return self.builder.assignment

    @property
    def public_inputs(self) -> List[int]:
        return self.builder.public_values()

    @property
    def valid(self) -> bool:
        return self.builder.assignment[self.valid_output.index] == 1


def _model_weights_in_order(
    model: Sequential, upto_layer: int
) -> List[Tuple[str, np.ndarray]]:
    """Deterministic (name, array) list of public weight tensors."""
    out: List[Tuple[str, np.ndarray]] = []
    for i, layer in enumerate(model.layers[: upto_layer + 1]):
        for name in sorted(layer.params):
            out.append((f"layer{i}.{name}", layer.params[name]))
    return out


def public_inputs_for(
    model: Sequential,
    theta: float,
    wm_bits: int,
    upto_layer: int,
    config: Optional[CircuitConfig] = None,
) -> List[int]:
    """The public-instance vector a verifier derives independently.

    Layout (must match :func:`build_extraction_circuit` exactly):
    ``[valid=1] ++ [mismatch budget] ++ encode(weights of layers 0..l_wm)``.
    The verifier encodes the *claimed* model themselves -- the prover never
    supplies the instance.
    """
    config = config or CircuitConfig(theta=theta)
    fmt = config.fixed_point
    values: List[int] = [1, mismatch_budget(wm_bits, theta)]
    if config.weights_public:
        for _, weights in _model_weights_in_order(model, upto_layer):
            values.extend(fmt.encode_array(weights))
    return values


def _feedforward_flat(
    builder: CircuitBuilder,
    fmt: FixedPointFormat,
    layers: Sequence,
    weight_wires: dict,
    x: List[Wire],
) -> List[Wire]:
    """Feed a flat wire vector through dense/ReLU/sigmoid layers.

    Sigmoid activations use the same Chebyshev circuit as the extraction
    head -- the paper's "we provide the capability of using sigmoid, at
    the cost of potentially lower model accuracy".
    """
    for i, layer in enumerate(layers):
        if isinstance(layer, Dense):
            w, b = weight_wires[i]
            x = zk_dense(builder, fmt, x, w, b)
        elif isinstance(layer, ReLU):
            x = zk_relu_vector(builder, fmt, x)
        elif isinstance(layer, Sigmoid):
            x = zk_sigmoid_vector(builder, fmt, x)
        elif isinstance(layer, Flatten):
            continue
        else:
            raise TypeError(
                f"unsupported layer for flat feedforward: {type(layer).__name__}"
            )
    return x


def _feedforward_spatial(
    builder: CircuitBuilder,
    fmt: FixedPointFormat,
    layers: Sequence,
    weight_wires: dict,
    x: WireTensor3,
) -> List[Wire]:
    """Feed a C x H x W wire tensor through conv/pool/ReLU/dense layers."""
    flat: Optional[List[Wire]] = None
    for i, layer in enumerate(layers):
        if isinstance(layer, Conv2D):
            if flat is not None:
                raise TypeError("convolution after flatten is unsupported")
            kernels, bias = weight_wires[i]
            x = zk_conv3d(builder, fmt, x, kernels, bias, stride=layer.stride)
        elif isinstance(layer, MaxPool2D):
            x = zk_maxpool2d(builder, fmt, x, layer.pool, layer.stride)
        elif isinstance(layer, ReLU):
            if flat is None:
                x = [
                    [zk_relu_vector(builder, fmt, row) for row in channel]
                    for channel in x
                ]
            else:
                flat = zk_relu_vector(builder, fmt, flat)
        elif isinstance(layer, Flatten):
            flat = [w for channel in x for row in channel for w in row]
        elif isinstance(layer, Dense):
            if flat is None:
                flat = [w for channel in x for row in channel for w in row]
            w, b = weight_wires[i]
            flat = zk_dense(builder, fmt, flat, w, b)
        else:
            raise TypeError(
                f"unsupported layer for spatial feedforward: {type(layer).__name__}"
            )
    if flat is None:
        flat = [w for channel in x for row in channel for w in row]
    return flat


def _allocate_weight_wires(
    builder: CircuitBuilder,
    fmt: FixedPointFormat,
    model: Sequential,
    upto_layer: int,
    public: bool,
) -> dict:
    """Allocate wires for every weight tensor (public by default).

    Returns ``{layer_index: (W wires, b wires)}`` with W as a nested list
    matching the layer type (matrix for Dense, 4-D for Conv2D).
    Allocation order must match :func:`public_inputs_for`.
    """
    alloc = builder.public_input if public else builder.private_input
    wires: dict = {}
    for i, layer in enumerate(model.layers[: upto_layer + 1]):
        if isinstance(layer, Dense):
            w_arr = layer.params["W"]
            b_arr = layer.params["b"]
            w = [
                [
                    alloc(f"layer{i}.W[{r},{c}]", fmt.encode(float(w_arr[r, c])))
                    for c in range(w_arr.shape[1])
                ]
                for r in range(w_arr.shape[0])
            ]
            b = [
                alloc(f"layer{i}.b[{r}]", fmt.encode(float(b_arr[r])))
                for r in range(b_arr.shape[0])
            ]
            wires[i] = (w, b)
        elif isinstance(layer, Conv2D):
            w_arr = layer.params["W"]
            b_arr = layer.params["b"]
            w = [
                [
                    [
                        [
                            alloc(
                                f"layer{i}.W[{o},{c},{u},{v}]",
                                fmt.encode(float(w_arr[o, c, u, v])),
                            )
                            for v in range(w_arr.shape[3])
                        ]
                        for u in range(w_arr.shape[2])
                    ]
                    for c in range(w_arr.shape[1])
                ]
                for o in range(w_arr.shape[0])
            ]
            b = [
                alloc(f"layer{i}.b[{o}]", fmt.encode(float(b_arr[o])))
                for o in range(b_arr.shape[0])
            ]
            wires[i] = (w, b)
    return wires


@dataclass(frozen=True)
class ExtractionOutputs:
    """What one synthesis pass of Algorithm 1 yields beyond the witness."""

    valid_output: PublicOutput
    extracted_bits: List[int]
    num_weights: int


def _synthesize_extraction(
    builder: CircuitBuilder,
    model: Sequential,
    keys: WatermarkKeys,
    config: CircuitConfig,
) -> ExtractionOutputs:
    """Drive Algorithm 1 through a builder (full build or witness replay).

    This is the single definition of the extraction circuit's gadget
    trace; ``builder`` decides the pipeline stage.  A
    :class:`~repro.circuit.builder.CircuitBuilder` records constraints and
    witness (the compile stage); a
    :class:`~repro.circuit.trace.WitnessSynthesizer` replays the recorded
    trace with this call's input values only (the synthesize stage).
    """
    fmt = config.fixed_point
    keys.validate()
    layers = model.layers[: keys.embed_layer + 1]

    # -- public phase: output placeholder, BER budget, model weights.
    valid_out = builder.public_output("valid")
    budget_wire = builder.public_input(
        "ber_budget", mismatch_budget(keys.num_bits, config.theta)
    )
    weight_wires = _allocate_weight_wires(
        builder, fmt, model, keys.embed_layer, config.weights_public
    )

    # -- private phase: Algorithm 1's private inputs.
    trigger_wires: List[List[Wire]] = []
    spatial = keys.trigger_inputs.ndim == 4  # (T, C, H, W)
    for t in range(keys.num_triggers):
        trig = keys.trigger_inputs[t]
        if spatial:
            channels, height, width = trig.shape
            tensor = [
                [
                    [
                        builder.private_input(
                            f"xkey{t}[{c},{i},{j}]", fmt.encode(float(trig[c, i, j]))
                        )
                        for j in range(width)
                    ]
                    for i in range(height)
                ]
                for c in range(channels)
            ]
            trigger_wires.append(tensor)  # type: ignore[arg-type]
        else:
            trigger_wires.append(
                [
                    builder.private_input(f"xkey{t}[{k}]", fmt.encode(float(v)))
                    for k, v in enumerate(trig)
                ]
            )
    # The watermark signature is the owner's *input*, not a hint the
    # circuit derives -- private_bit records that provenance so the
    # auditor's determinism pass treats it as the prover's free choice.
    wm_bits = [
        builder.private_bit(f"wm[{j}]", int(b)) for j, b in enumerate(keys.signature)
    ]
    # Projection matrix A, stored transposed: rows of A^T are per-bit vectors.
    proj_t = [
        [
            builder.private_input(
                f"A[{r},{j}]", fmt.encode(float(keys.projection[r, j]))
            )
            for r in range(keys.feature_dim)
        ]
        for j in range(keys.num_bits)
    ]

    # -- zkFeedForward per trigger, collecting activation maps at l_wm.
    activation_rows: List[List[Wire]] = []
    for t in range(keys.num_triggers):
        if spatial:
            acts = _feedforward_spatial(
                builder, fmt, layers, weight_wires, trigger_wires[t]
            )
        else:
            acts = _feedforward_flat(
                builder, fmt, layers, weight_wires, trigger_wires[t]
            )
        activation_rows.append(acts)

    # -- mu = zkAverage(a)
    mu = zk_average_rows(builder, fmt, activation_rows)

    # -- G = zkSigmoid(mu x A)
    projected = [
        fmt.inner_product(builder, mu, proj_t[j]) for j in range(keys.num_bits)
    ]
    g = zk_sigmoid_vector(builder, fmt, projected, degree=config.sigmoid_degree)

    # -- wm^ = zkHardThresholding(G, 0.5)
    extracted = zk_hard_threshold_vector(builder, fmt, g, beta=0.5)

    # -- valid_BER = zkBER(wm, wm^, theta), with the budget a public input.
    mismatches = builder.zero()
    for wm_bit, ex_bit in zip(wm_bits, extracted):
        mismatches = mismatches + builder.xor_(wm_bit, ex_bit)
    count_bits = max(keys.num_bits.bit_length() + 1, 2)
    valid_ber = builder.greater_equal(budget_wire, mismatches, count_bits)

    # -- return check AND valid (check == 1 when synthesis succeeded).
    check = builder.one()
    result = builder.and_(valid_ber, check)
    builder.bind_output(valid_out, result)

    return ExtractionOutputs(
        valid_output=valid_out,
        extracted_bits=[w.value for w in extracted],
        num_weights=sum(
            arr.size for _, arr in _model_weights_in_order(model, keys.embed_layer)
        ),
    )


def build_extraction_circuit(
    model: Sequential,
    keys: WatermarkKeys,
    config: Optional[CircuitConfig] = None,
) -> ExtractionCircuit:
    """Synthesize Algorithm 1 for a model + owner keys (full build).

    The circuit is fixed by (architecture up to l_wm, trigger count,
    watermark width, theta); re-synthesizing with different key *values*
    reuses existing Groth16 keys (same structure digest).  Repeat proofs
    should go through :class:`~repro.engine.engine.ProvingEngine`, which
    replaces this full build with a witness-only trace replay.
    """
    config = config or CircuitConfig()
    builder = CircuitBuilder("zkrownn-extraction")
    outputs = _synthesize_extraction(builder, model, keys, config)
    return ExtractionCircuit(
        builder=builder,
        config=config,
        valid_output=outputs.valid_output,
        num_weights=outputs.num_weights,
        extracted_bits=outputs.extracted_bits,
    )


def extraction_synthesizer(
    model: Sequential,
    keys: WatermarkKeys,
    config: Optional[CircuitConfig] = None,
):
    """Algorithm 1 as a synthesis function for the proving engine.

    Returns a closure over (model, keys, config) suitable for
    :meth:`ProvingEngine.synthesize` /:meth:`ProvingEngine.prove_job`;
    its auxiliary result is an :class:`ExtractionOutputs`.
    """
    resolved = config or CircuitConfig()

    def synthesize(builder: CircuitBuilder) -> ExtractionOutputs:
        return _synthesize_extraction(builder, model, keys, resolved)

    return synthesize


def resynthesize_extraction_witness(
    compiled: CompiledCircuit,
    model: Sequential,
    keys: WatermarkKeys,
    config: Optional[CircuitConfig] = None,
) -> SynthesisResult:
    """Witness-only pass: new input values over an already-compiled circuit.

    Raises :class:`~repro.circuit.trace.TraceDivergence` if (model, keys)
    do not match the compiled shape.
    """
    return resynthesize(compiled, extraction_synthesizer(model, keys, config))
