"""Serializable protocol artifacts: claims and proof bundles.

What actually travels between the parties of Figure 1:

* the trusted-setup party publishes the verification key (and hands the
  proving key to the prover);
* the prover publishes an :class:`OwnershipClaim` -- proof bytes plus the
  public parameters a verifier needs to reconstruct the instance (theta,
  watermark width, embedding depth, and a commitment to the model);
* any verifier combines claim + model + VK and checks.

Byte sizes of these artifacts are the communication numbers reported in
the Table I reproduction.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Union

import numpy as np

from ..nn.model import Sequential
from ..snark.keys import Proof

__all__ = ["ClaimFormatError", "OwnershipClaim", "model_digest"]


class ClaimFormatError(ValueError):
    """Raised on malformed ownership-claim bytes."""


def model_digest(model: Sequential, upto_layer: int) -> str:
    """SHA-256 over the public weight tensors of layers ``0..upto_layer``.

    Binds a claim to one specific model: the verifier recomputes this from
    the model they were handed and rejects mismatched claims early, before
    any pairing work.
    """
    h = hashlib.sha256()
    for i, layer in enumerate(model.layers[: upto_layer + 1]):
        for name in sorted(layer.params):
            arr = np.ascontiguousarray(layer.params[name], dtype=np.float64)
            h.update(f"{i}:{name}:{arr.shape}".encode())
            h.update(arr.tobytes())
    return h.hexdigest()


@dataclass
class OwnershipClaim:
    """A prover's public ownership assertion for a model."""

    proof_bytes: bytes
    theta: float
    wm_bits: int
    embed_layer: int
    model_sha256: str
    frac_bits: int
    total_bits: int
    sigmoid_degree: int = 9

    @property
    def proof(self) -> Proof:
        return Proof.from_bytes(self.proof_bytes)

    def size_bytes(self) -> int:
        """Bytes a verifier must receive beyond the (public) model + VK."""
        return len(self.to_json().encode())

    # -- serialization -------------------------------------------------------

    def to_json(self) -> str:
        data = asdict(self)
        data["proof_bytes"] = self.proof_bytes.hex()
        return json.dumps(data, sort_keys=True)

    @staticmethod
    def from_json(payload: str) -> "OwnershipClaim":
        data = json.loads(payload)
        data["proof_bytes"] = bytes.fromhex(data["proof_bytes"])
        return OwnershipClaim(**data)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    @staticmethod
    def load(path: Union[str, Path]) -> "OwnershipClaim":
        return OwnershipClaim.from_json(Path(path).read_text())

    # -- canonical binary form (the service wire protocol's payload) ---------

    def to_bytes(self) -> bytes:
        """Canonical binary encoding: byte-exact round trip, no JSON float
        or key-order ambiguity.  The proof keeps its compressed-point
        encoding from :mod:`repro.curves.serialize`; the model digest
        travels as raw 32 bytes.  This is what the service registry stores
        and what :func:`content_id` below hashes.
        """
        try:
            digest = bytes.fromhex(self.model_sha256)
        except ValueError as exc:
            raise ClaimFormatError(f"model digest is not hex: {exc}") from exc
        if len(digest) != 32:
            raise ClaimFormatError("model digest must be 32 bytes of hex")
        return (
            struct.pack(">I", len(self.proof_bytes))
            + self.proof_bytes
            + struct.pack(
                ">dII32sHHH",
                self.theta,
                self.wm_bits,
                self.embed_layer,
                digest,
                self.frac_bits,
                self.total_bits,
                self.sigmoid_degree,
            )
        )

    @staticmethod
    def from_bytes(data: bytes) -> "OwnershipClaim":
        if len(data) < 4:
            raise ClaimFormatError("claim blob truncated before proof length")
        (proof_len,) = struct.unpack_from(">I", data, 0)
        tail = struct.calcsize(">dII32sHHH")
        if len(data) != 4 + proof_len + tail:
            raise ClaimFormatError(
                f"claim blob is {len(data)} bytes, expected {4 + proof_len + tail}"
            )
        proof_bytes = data[4 : 4 + proof_len]
        theta, wm_bits, embed_layer, digest, frac, total, sigmoid = (
            struct.unpack_from(">dII32sHHH", data, 4 + proof_len)
        )
        return OwnershipClaim(
            proof_bytes=proof_bytes,
            theta=theta,
            wm_bits=wm_bits,
            embed_layer=embed_layer,
            model_sha256=digest.hex(),
            frac_bits=frac,
            total_bits=total,
            sigmoid_degree=sigmoid,
        )

    def content_id(self) -> str:
        """SHA-256 of the canonical bytes: the claim's content address."""
        return hashlib.sha256(self.to_bytes()).hexdigest()
