"""Serializable protocol artifacts: claims and proof bundles.

What actually travels between the parties of Figure 1:

* the trusted-setup party publishes the verification key (and hands the
  proving key to the prover);
* the prover publishes an :class:`OwnershipClaim` -- proof bytes plus the
  public parameters a verifier needs to reconstruct the instance (theta,
  watermark width, embedding depth, and a commitment to the model);
* any verifier combines claim + model + VK and checks.

Byte sizes of these artifacts are the communication numbers reported in
the Table I reproduction.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Union

import numpy as np

from ..nn.model import Sequential
from ..snark.keys import Proof

__all__ = ["OwnershipClaim", "model_digest"]


def model_digest(model: Sequential, upto_layer: int) -> str:
    """SHA-256 over the public weight tensors of layers ``0..upto_layer``.

    Binds a claim to one specific model: the verifier recomputes this from
    the model they were handed and rejects mismatched claims early, before
    any pairing work.
    """
    h = hashlib.sha256()
    for i, layer in enumerate(model.layers[: upto_layer + 1]):
        for name in sorted(layer.params):
            arr = np.ascontiguousarray(layer.params[name], dtype=np.float64)
            h.update(f"{i}:{name}:{arr.shape}".encode())
            h.update(arr.tobytes())
    return h.hexdigest()


@dataclass
class OwnershipClaim:
    """A prover's public ownership assertion for a model."""

    proof_bytes: bytes
    theta: float
    wm_bits: int
    embed_layer: int
    model_sha256: str
    frac_bits: int
    total_bits: int
    sigmoid_degree: int = 9

    @property
    def proof(self) -> Proof:
        return Proof.from_bytes(self.proof_bytes)

    def size_bytes(self) -> int:
        """Bytes a verifier must receive beyond the (public) model + VK."""
        return len(self.to_json().encode())

    # -- serialization -------------------------------------------------------

    def to_json(self) -> str:
        data = asdict(self)
        data["proof_bytes"] = self.proof_bytes.hex()
        return json.dumps(data, sort_keys=True)

    @staticmethod
    def from_json(payload: str) -> "OwnershipClaim":
        data = json.loads(payload)
        data["proof_bytes"] = bytes.fromhex(data["proof_bytes"])
        return OwnershipClaim(**data)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    @staticmethod
    def load(path: Union[str, Path]) -> "OwnershipClaim":
        return OwnershipClaim.from_json(Path(path).read_text())
