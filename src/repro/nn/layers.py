"""Neural-network layers with forward and backward passes (pure numpy).

The substrate the watermarking pipeline runs on.  The paper benchmarks
DeepSigns-watermarked models (an MLP and a CNN, Table II); embedding a
DeepSigns watermark requires *fine-tuning with a regularized loss*, so the
layers here implement full backpropagation, not just inference.

Conventions: batch-first everywhere -- ``(batch, features)`` for dense
layers, ``(batch, channels, height, width)`` for convolutional ones.
Each layer caches what its backward pass needs during ``forward``; calling
``backward`` consumes the cache of the most recent forward.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "Sigmoid",
    "Conv2D",
    "MaxPool2D",
    "Flatten",
    "im2col",
    "col2im",
]


class Layer:
    """Base class: parameters, gradients, forward/backward."""

    def __init__(self):
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def accumulate_grad(self, name: str, grad: np.ndarray) -> None:
        """Add to a parameter gradient (losses from several heads combine).

        The DeepSigns embedding injects the watermark-loss gradient in the
        middle of the network while the task loss arrives from the top, so
        gradients must accumulate rather than overwrite.
        """
        existing = self.grads.get(name)
        self.grads[name] = grad if existing is None else existing + grad

    def has_params(self) -> bool:
        return bool(self.params)

    def output_name(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Dense(Layer):
    """Fully connected layer: ``y = x @ W.T + b`` with W of shape (out, in)."""

    def __init__(self, in_features: int, out_features: int, *, rng=None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        rng = rng or np.random.default_rng()
        limit = np.sqrt(6.0 / (in_features + out_features))
        self.params["W"] = rng.uniform(-limit, limit, (out_features, in_features))
        self.params["b"] = np.zeros(out_features)
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._x = x
        return x @ self.params["W"].T + self.params["b"]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before a training forward")
        self.accumulate_grad("W", grad_out.T @ self._x)
        self.accumulate_grad("b", grad_out.sum(axis=0))
        return grad_out @ self.params["W"]

    def __repr__(self) -> str:
        return f"Dense({self.in_features}, {self.out_features})"


class ReLU(Layer):
    def __init__(self):
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a training forward")
        return grad_out * self._mask


class Sigmoid(Layer):
    def __init__(self):
        super().__init__()
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = 1.0 / (1.0 + np.exp(-x))
        if training:
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before a training forward")
        return grad_out * self._out * (1.0 - self._out)


def im2col(
    x: np.ndarray, kernel: int, stride: int
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Extract sliding patches: (B, C, H, W) -> (B, OH*OW, C*K*K)."""
    batch, channels, height, width = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    cols = np.empty((batch, out_h * out_w, channels * kernel * kernel), dtype=x.dtype)
    idx = 0
    for i in range(out_h):
        for j in range(out_w):
            patch = x[:, :, i * stride : i * stride + kernel,
                      j * stride : j * stride + kernel]
            cols[:, idx, :] = patch.reshape(batch, -1)
            idx += 1
    return cols, (out_h, out_w)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
) -> np.ndarray:
    """Scatter-add patches back: inverse of :func:`im2col` for gradients."""
    batch, channels, height, width = x_shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    x = np.zeros(x_shape, dtype=cols.dtype)
    idx = 0
    for i in range(out_h):
        for j in range(out_w):
            patch = cols[:, idx, :].reshape(batch, channels, kernel, kernel)
            x[:, :, i * stride : i * stride + kernel,
              j * stride : j * stride + kernel] += patch
            idx += 1
    return x


class Conv2D(Layer):
    """2-D convolution over channel stacks (the paper's Conv3D operation).

    The paper calls this "Convolution3d" because kernels span all input
    channels; weights have shape ``(out_channels, in_channels, K, K)``.
    Valid padding, square kernels, im2col lowering.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        *,
        rng=None,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        rng = rng or np.random.default_rng()
        fan_in = in_channels * kernel * kernel
        fan_out = out_channels * kernel * kernel
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        self.params["W"] = rng.uniform(
            -limit, limit, (out_channels, in_channels, kernel, kernel)
        )
        self.params["b"] = np.zeros(out_channels)
        self._cols: Optional[np.ndarray] = None
        self._x_shape: Optional[Tuple[int, int, int, int]] = None
        self._out_hw: Optional[Tuple[int, int]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        cols, (out_h, out_w) = im2col(x, self.kernel, self.stride)
        w_flat = self.params["W"].reshape(self.out_channels, -1)
        out = cols @ w_flat.T + self.params["b"]
        out = out.transpose(0, 2, 1).reshape(x.shape[0], self.out_channels, out_h, out_w)
        if training:
            self._cols = cols
            self._x_shape = x.shape
            self._out_hw = (out_h, out_w)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None or self._out_hw is None:
            raise RuntimeError("backward called before a training forward")
        batch = grad_out.shape[0]
        out_h, out_w = self._out_hw
        grad_flat = grad_out.reshape(batch, self.out_channels, out_h * out_w)
        grad_flat = grad_flat.transpose(0, 2, 1)  # (B, OH*OW, O)
        w_flat = self.params["W"].reshape(self.out_channels, -1)
        grad_w = np.einsum("bpo,bpk->ok", grad_flat, self._cols)
        self.accumulate_grad("W", grad_w.reshape(self.params["W"].shape))
        self.accumulate_grad("b", grad_flat.sum(axis=(0, 1)))
        grad_cols = grad_flat @ w_flat
        return col2im(grad_cols, self._x_shape, self.kernel, self.stride)

    def __repr__(self) -> str:
        return (
            f"Conv2D({self.in_channels}, {self.out_channels}, "
            f"kernel={self.kernel}, stride={self.stride})"
        )


class MaxPool2D(Layer):
    """Max pooling with filter size ``pool`` and ``stride`` (Table II MP)."""

    def __init__(self, pool: int, stride: int):
        super().__init__()
        self.pool = pool
        self.stride = stride
        self._argmax: Optional[np.ndarray] = None
        self._x_shape: Optional[Tuple[int, int, int, int]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        batch, channels, height, width = x.shape
        out_h = (height - self.pool) // self.stride + 1
        out_w = (width - self.pool) // self.stride + 1
        out = np.empty((batch, channels, out_h, out_w), dtype=x.dtype)
        argmax = np.empty((batch, channels, out_h, out_w), dtype=np.int64)
        for i in range(out_h):
            for j in range(out_w):
                window = x[:, :, i * self.stride : i * self.stride + self.pool,
                           j * self.stride : j * self.stride + self.pool]
                flat = window.reshape(batch, channels, -1)
                arg = flat.argmax(axis=2)
                out[:, :, i, j] = np.take_along_axis(
                    flat, arg[:, :, None], axis=2
                )[:, :, 0]
                argmax[:, :, i, j] = arg
        if training:
            self._argmax = argmax
            self._x_shape = x.shape
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._argmax is None or self._x_shape is None:
            raise RuntimeError("backward called before a training forward")
        grad_in = np.zeros(self._x_shape, dtype=grad_out.dtype)
        batch, channels, out_h, out_w = grad_out.shape
        for i in range(out_h):
            for j in range(out_w):
                arg = self._argmax[:, :, i, j]
                di, dj = np.unravel_index(arg, (self.pool, self.pool))
                bi = np.arange(batch)[:, None]
                ci = np.arange(channels)[None, :]
                grad_in[bi, ci, i * self.stride + di, j * self.stride + dj] += (
                    grad_out[:, :, i, j]
                )
        return grad_in

    def __repr__(self) -> str:
        return f"MaxPool2D(pool={self.pool}, stride={self.stride})"


class Flatten(Layer):
    def __init__(self):
        super().__init__()
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before a training forward")
        return grad_out.reshape(self._shape)
