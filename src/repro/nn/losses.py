"""Loss functions with gradients.

Cross-entropy for the classification task, binary cross-entropy for the
DeepSigns watermark regularizer (the "embedding regularizer, which uses
binary cross entropy loss" of the paper's Section II-A), and MSE for
cluster-tightness terms.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "softmax",
    "cross_entropy",
    "binary_cross_entropy",
    "mean_squared_error",
    "accuracy",
]

_EPS = 1e-12


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilized."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Softmax cross-entropy; returns (mean loss, gradient wrt logits)."""
    probs = softmax(logits)
    batch = logits.shape[0]
    loss = -np.log(probs[np.arange(batch), labels] + _EPS).mean()
    grad = probs.copy()
    grad[np.arange(batch), labels] -= 1.0
    return float(loss), grad / batch


def binary_cross_entropy(
    probs: np.ndarray, targets: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Element-wise BCE; returns (mean loss, gradient wrt probs)."""
    probs = np.clip(probs, _EPS, 1.0 - _EPS)
    loss = -(targets * np.log(probs) + (1 - targets) * np.log(1 - probs)).mean()
    grad = (probs - targets) / (probs * (1 - probs)) / probs.size
    return float(loss), grad


def mean_squared_error(
    predictions: np.ndarray, targets: np.ndarray
) -> Tuple[float, np.ndarray]:
    """MSE; returns (mean loss, gradient wrt predictions)."""
    diff = predictions - targets
    loss = float((diff**2).mean())
    return loss, 2.0 * diff / diff.size


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    return float((logits.argmax(axis=-1) == labels).mean())
