"""The paper's benchmark architectures (Table II) and scaled variants.

Table II:

* MNIST:    784 - FC(512) - FC(512) - FC(10)
* CIFAR-10: 3x32x32 - C(32,3,2) - C(32,3,1) - MP(2,1) - C(64,3,1)
            - C(64,3,1) - MP(2,1) - FC(512) - FC(10)

The paper-scale builders produce exactly these (used by the analytic cost
model and architecture tests).  The pure-Python Groth16 prover cannot run
2-million-constraint circuits in reasonable time, so each has a ``scaled``
companion with the same *shape* -- same layer types, same depth, same
watermark position -- at reduced width, which the end-to-end benchmarks
prove against (see EXPERIMENTS.md for the scaling discussion).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from .model import Sequential

__all__ = [
    "mnist_mlp",
    "cifar10_cnn",
    "mnist_mlp_scaled",
    "cifar10_cnn_scaled",
]


def mnist_mlp(rng: Optional[np.random.Generator] = None) -> Sequential:
    """Table II MNIST architecture: 784 - FC(512) - FC(512) - FC(10)."""
    rng = rng or np.random.default_rng()
    return Sequential(
        [
            Dense(784, 512, rng=rng),
            ReLU(),
            Dense(512, 512, rng=rng),
            ReLU(),
            Dense(512, 10, rng=rng),
        ],
        name="mnist-mlp",
    )


def cifar10_cnn(rng: Optional[np.random.Generator] = None) -> Sequential:
    """Table II CIFAR-10 architecture (channels-first 3x32x32 input)."""
    rng = rng or np.random.default_rng()
    return Sequential(
        [
            Conv2D(3, 32, kernel=3, stride=2, rng=rng),
            ReLU(),
            Conv2D(32, 32, kernel=3, stride=1, rng=rng),
            ReLU(),
            MaxPool2D(pool=2, stride=1),
            Conv2D(32, 64, kernel=3, stride=1, rng=rng),
            ReLU(),
            Conv2D(64, 64, kernel=3, stride=1, rng=rng),
            ReLU(),
            MaxPool2D(pool=2, stride=1),
            Flatten(),
            Dense(64 * 7 * 7, 512, rng=rng),
            ReLU(),
            Dense(512, 10, rng=rng),
        ],
        name="cifar10-cnn",
    )


def mnist_mlp_scaled(
    input_dim: int = 64,
    hidden: int = 16,
    classes: int = 10,
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """Width-reduced MNIST MLP with the Table II shape (two hidden FCs)."""
    rng = rng or np.random.default_rng()
    return Sequential(
        [
            Dense(input_dim, hidden, rng=rng),
            ReLU(),
            Dense(hidden, hidden, rng=rng),
            ReLU(),
            Dense(hidden, classes, rng=rng),
        ],
        name="mnist-mlp-scaled",
    )


def cifar10_cnn_scaled(
    image_size: int = 12,
    channels: int = 4,
    hidden: int = 16,
    classes: int = 10,
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """Width-reduced CIFAR-10 CNN with the Table II shape.

    Keeps the layer sequence (two conv blocks with max-pooling, then two
    dense layers) and the stride-2 first convolution that Table I's Conv3D
    benchmark highlights.
    """
    rng = rng or np.random.default_rng()
    after_first = (image_size - 3) // 2 + 1  # stride-2 conv
    after_second = after_first - 3 + 1  # stride-1 conv
    after_pool = after_second - 2 + 1  # 2x2 pool, stride 1
    flat = channels * after_pool * after_pool
    if after_pool < 1:
        raise ValueError("image_size too small for the scaled CNN shape")
    return Sequential(
        [
            Conv2D(3, channels, kernel=3, stride=2, rng=rng),
            ReLU(),
            Conv2D(channels, channels, kernel=3, stride=1, rng=rng),
            ReLU(),
            MaxPool2D(pool=2, stride=1),
            Flatten(),
            Dense(flat, hidden, rng=rng),
            ReLU(),
            Dense(hidden, classes, rng=rng),
        ],
        name="cifar10-cnn-scaled",
    )
