"""Optimizers: SGD with momentum, and Adam.

Operate on the ``params``/``grads`` dictionaries of
:class:`repro.nn.layers.Layer`; stateless across models (state is keyed by
layer identity and parameter name).
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from .layers import Layer

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer over an iterable of layers."""

    def step(self, layers: Iterable[Layer]) -> None:
        for layer in layers:
            if not layer.has_params():
                continue
            for name, param in layer.params.items():
                grad = layer.grads.get(name)
                if grad is None:
                    continue
                self._update(layer, name, param, grad)

    def _update(
        self, layer: Layer, name: str, param: np.ndarray, grad: np.ndarray
    ) -> None:
        raise NotImplementedError

    def zero_grad(self, layers: Iterable[Layer]) -> None:
        for layer in layers:
            layer.grads.clear()


class SGD(Optimizer):
    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0):
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: Dict[Tuple[int, str], np.ndarray] = {}

    def _update(self, layer, name, param, grad):
        if self.momentum:
            key = (id(layer), name)
            v = self._velocity.get(key)
            v = grad if v is None else self.momentum * v + grad
            self._velocity[key] = v
            param -= self.learning_rate * v
        else:
            param -= self.learning_rate * grad


class Adam(Optimizer):
    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: Dict[Tuple[int, str], np.ndarray] = {}
        self._v: Dict[Tuple[int, str], np.ndarray] = {}
        self._t: Dict[Tuple[int, str], int] = {}

    def _update(self, layer, name, param, grad):
        key = (id(layer), name)
        t = self._t.get(key, 0) + 1
        m = self._m.get(key, np.zeros_like(param))
        v = self._v.get(key, np.zeros_like(param))
        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad * grad
        self._m[key], self._v[key], self._t[key] = m, v, t
        m_hat = m / (1 - self.beta1**t)
        v_hat = v / (1 - self.beta2**t)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
