"""Model weight persistence (.npz).

Stores the flat weight list of a :class:`~repro.nn.model.Sequential`; the
architecture itself is code, so loading requires constructing the same
architecture first (the usual numpy-checkpoint convention).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from .model import Sequential

__all__ = ["save_weights", "load_weights"]


def save_weights(model: Sequential, path: Union[str, Path]) -> None:
    """Write all model parameters to an ``.npz`` file."""
    arrays = {f"param_{i}": w for i, w in enumerate(model.get_weights())}
    np.savez(Path(path), **arrays)


def load_weights(model: Sequential, path: Union[str, Path]) -> Sequential:
    """Load parameters saved by :func:`save_weights` into ``model``."""
    with np.load(Path(path)) as data:
        weights = [data[f"param_{i}"] for i in range(len(data.files))]
    model.set_weights(weights)
    return model
