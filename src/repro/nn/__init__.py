"""Pure-numpy neural network substrate.

Layers with full backpropagation (DeepSigns embedding fine-tunes models),
a :class:`Sequential` container exposing intermediate activations (the
watermark lives in activation statistics), training helpers, and the
paper's Table II benchmark architectures.
"""

from .architectures import (
    cifar10_cnn,
    cifar10_cnn_scaled,
    mnist_mlp,
    mnist_mlp_scaled,
)
from .io import load_weights, save_weights
from .layers import (
    Conv2D,
    Dense,
    Flatten,
    Layer,
    MaxPool2D,
    ReLU,
    Sigmoid,
    col2im,
    im2col,
)
from .losses import (
    accuracy,
    binary_cross_entropy,
    cross_entropy,
    mean_squared_error,
    softmax,
)
from .model import Sequential, evaluate_classifier, train_classifier
from .optim import Adam, Optimizer, SGD

__all__ = [
    "cifar10_cnn",
    "cifar10_cnn_scaled",
    "mnist_mlp",
    "mnist_mlp_scaled",
    "load_weights",
    "save_weights",
    "Conv2D",
    "Dense",
    "Flatten",
    "Layer",
    "MaxPool2D",
    "ReLU",
    "Sigmoid",
    "col2im",
    "im2col",
    "accuracy",
    "binary_cross_entropy",
    "cross_entropy",
    "mean_squared_error",
    "softmax",
    "Sequential",
    "evaluate_classifier",
    "train_classifier",
    "Adam",
    "Optimizer",
    "SGD",
]
