"""Sequential model container with partial forward/backward.

Two capabilities beyond a plain layer stack matter for this reproduction:

* :meth:`Sequential.forward_collect` returns the activations at every
  layer boundary -- DeepSigns embeds its watermark "into the pdf
  distribution of the activation maps" of a chosen layer, so both
  embedding and extraction need to read intermediate activations;
* :meth:`Sequential.backward_from` injects a gradient *at* a layer
  boundary and propagates it to the input -- the watermark regularizer's
  gradient enters the network in the middle, not at the loss.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .layers import Layer
from .losses import accuracy, cross_entropy
from .optim import Optimizer

__all__ = ["Sequential", "train_classifier", "evaluate_classifier"]


class Sequential:
    """An ordered stack of layers."""

    def __init__(self, layers: Sequence[Layer], name: str = "model"):
        self.layers: List[Layer] = list(layers)
        self.name = name

    # -- inference -----------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x).argmax(axis=-1)

    def forward_collect(
        self, x: np.ndarray, training: bool = False
    ) -> List[np.ndarray]:
        """Forward pass returning activations after every layer.

        ``result[i]`` is the output of ``self.layers[i]``; the final entry
        is the model output.
        """
        activations: List[np.ndarray] = []
        for layer in self.layers:
            x = layer.forward(x, training=training)
            activations.append(x)
        return activations

    def forward_to(
        self, x: np.ndarray, layer_index: int, training: bool = False
    ) -> np.ndarray:
        """Forward only through ``layers[: layer_index + 1]``."""
        for layer in self.layers[: layer_index + 1]:
            x = layer.forward(x, training=training)
        return x

    # -- training --------------------------------------------------------------

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def backward_from(self, grad: np.ndarray, layer_index: int) -> np.ndarray:
        """Backpropagate a gradient injected at the output of a layer."""
        for layer in reversed(self.layers[: layer_index + 1]):
            grad = layer.backward(grad)
        return grad

    # -- parameters ----------------------------------------------------------------

    def parameters(self) -> List[Tuple[Layer, str, np.ndarray]]:
        out = []
        for layer in self.layers:
            for name, param in layer.params.items():
                out.append((layer, name, param))
        return out

    def num_parameters(self) -> int:
        return sum(p.size for _, _, p in self.parameters())

    def copy(self) -> "Sequential":
        """Deep copy (used by attack simulations that mutate weights)."""
        import copy

        return copy.deepcopy(self)

    def get_weights(self) -> List[np.ndarray]:
        return [p.copy() for _, _, p in self.parameters()]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        params = self.parameters()
        if len(weights) != len(params):
            raise ValueError(
                f"expected {len(params)} arrays, got {len(weights)}"
            )
        for (_, _, param), new in zip(params, weights):
            if param.shape != new.shape:
                raise ValueError(
                    f"shape mismatch: {param.shape} vs {new.shape}"
                )
            param[...] = new

    def __repr__(self) -> str:
        inner = ", ".join(repr(l) for l in self.layers)
        return f"Sequential({self.name!r}, [{inner}])"


def train_classifier(
    model: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    optimizer: Optimizer,
    *,
    epochs: int = 5,
    batch_size: int = 32,
    rng: Optional[np.random.Generator] = None,
    callback: Optional[Callable[[int, float], None]] = None,
) -> List[float]:
    """Minibatch cross-entropy training; returns per-epoch mean losses."""
    rng = rng or np.random.default_rng()
    history: List[float] = []
    n = x.shape[0]
    for epoch in range(epochs):
        order = rng.permutation(n)
        losses = []
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            logits = model.forward(x[idx], training=True)
            loss, grad = cross_entropy(logits, y[idx])
            model.backward(grad)
            optimizer.step(model.layers)
            optimizer.zero_grad(model.layers)
            losses.append(loss)
        epoch_loss = float(np.mean(losses))
        history.append(epoch_loss)
        if callback is not None:
            callback(epoch, epoch_loss)
    return history


def evaluate_classifier(
    model: Sequential, x: np.ndarray, y: np.ndarray
) -> float:
    """Classification accuracy on a held-out set."""
    return accuracy(model.forward(x), y)
