"""Pluggable field-arithmetic backends: the substrate under every kernel.

Every hot loop in this codebase bottoms out in modular multiplication over
one of the two BN254 primes.  This module makes that substrate swappable:

* :class:`PythonFieldOps` -- the pure-stdlib default.  Canonical residues
  (plain ``int``), ``a * b % p`` multiplication, plus a full complement of
  cached Montgomery machinery (R, R^2 mod p, n' = -p^-1 mod R) exposed as
  first-class operations (:meth:`~PythonFieldOps.to_mont`,
  :meth:`~PythonFieldOps.mont_mul`, ...).
* :class:`MontgomeryFieldOps` -- same element-level API, but flags the
  curve layer to run its batch-affine MSM inner loops in Montgomery form
  (all explicit ``%`` reductions replaced by shift-and-mask REDC).
* :class:`Gmpy2FieldOps` -- GMP-backed residues (``gmpy2.mpz``), gated
  behind ``importlib``: selecting it without gmpy2 installed is an error,
  and the ``auto`` backend falls back to ``python`` silently.
* :class:`NumpyFieldOps` -- same element-level semantics as the stdlib
  backend (plain ``int`` residues), but flags the MSM and NTT layers to
  run their batch kernels over contiguous multi-limb ``uint64`` arrays
  (:mod:`repro.field.limb`): whole Pippenger bucket rounds and NTT
  butterfly stages advance as a few wide numpy passes instead of one
  CPython big-int operation per element.  Gated behind ``importlib``
  like gmpy2.

Selection mirrors the compute-backend convention: the
``ZKROWNN_FIELD_BACKEND`` environment variable (``python`` | ``montgomery``
| ``gmpy2`` | ``numpy`` | ``auto``), overridable per process via
:func:`set_field_backend`.  The default is ``auto``: the machine
profile's measured winner when one is loaded (``zkrownn tune``), else
gmpy2 when importable, else stdlib -- so the pure-Python path never
needs a new dependency.

Design note (measured, CPython 3.11, x86-64): a Montgomery multiply in
pure Python costs three big-int multiplications (``a*b``, ``lo*n'``,
``m*p``) against one multiplication plus one C-level ``divmod`` for
``a * b % p``, and lands ~15% *slower* per operation -- CPython's big-int
division is simply good at 254 bits.  That is why the *default* stdlib
backend keeps canonical residues and the Montgomery form is a selectable
backend rather than the default: it exists as the honest ablation point
(``bench_msm_kernels.py``), is property-tested for exact agreement, and is
the representation a future C/limb-vectorized kernel would want.  gmpy2,
where available, is the real fast path: GMP multiplies these operand sizes
several times faster than CPython, and every kernel in the repo is written
against *native* residues, so ``mpz`` coordinates flow through MSM, NTT,
tower and pairing arithmetic without per-operation conversions.

Fork safety: backend state is keyed by PID.  A worker process created by
``multiprocessing`` (fork or spawn) re-resolves its backend from the
environment on first use, so gmpy2 state never silently crosses a
``fork`` and ``ZKROWNN_FIELD_BACKEND`` changes in the parent are picked
up by fresh pools (see ``repro.parallel.workers``).
"""

from __future__ import annotations

import importlib.util
import os
from typing import Dict, List, Optional, Sequence

__all__ = [
    "FIELD_BACKEND_ENV",
    "FieldOps",
    "PythonFieldOps",
    "MontgomeryFieldOps",
    "Gmpy2FieldOps",
    "NumpyFieldOps",
    "available_field_backends",
    "gmpy2_available",
    "numpy_available",
    "resolve_field_backend",
    "active_field_backend",
    "set_field_backend",
    "get_field_ops",
    "reinit_field_backend_after_fork",
    "invmod",
]

FIELD_BACKEND_ENV = "ZKROWNN_FIELD_BACKEND"


class FieldOps:
    """Element-level modular arithmetic over one prime modulus.

    ``wrap``/``unwrap`` convert between canonical Python ints and the
    backend's *native* residue type at subsystem boundaries (key
    preparation, serialization); everything between boundaries operates on
    natives, which for every backend support the standard numeric
    operators -- the kernels in ``curves/`` and ``field/`` are written
    polymorphically against exactly that contract.
    """

    name = "abstract"
    #: True when the MSM layer should route its batch-affine inner loops
    #: through the Montgomery-form kernels.
    montgomery_kernels = False
    #: True when the MSM and NTT layers should route their batch kernels
    #: through the vectorized limb arrays of :mod:`repro.field.limb`.
    numpy_kernels = False

    def __init__(self, modulus: int):
        if modulus < 2:
            raise ValueError("modulus must be a prime >= 2")
        self.modulus = modulus
        #: The modulus in native form, for ``x % ops.modulus_native`` loops.
        self.modulus_native = modulus

    # -- boundary conversions ------------------------------------------------

    def wrap(self, value):
        """Canonical native residue of ``value`` (any int-like)."""
        raise NotImplementedError

    def wrap_many(self, values: Sequence) -> List:
        wrap = self.wrap
        return [wrap(v) for v in values]

    def unwrap(self, value) -> int:
        """Canonical Python int in ``[0, modulus)``."""
        return int(value % self.modulus_native)

    def unwrap_many(self, values: Sequence) -> List[int]:
        unwrap = self.unwrap
        return [unwrap(v) for v in values]

    # -- arithmetic ----------------------------------------------------------

    def mulmod(self, a, b):
        return a * b % self.modulus_native

    def addmod(self, a, b):
        return (a + b) % self.modulus_native

    def submod(self, a, b):
        return (a - b) % self.modulus_native

    def negmod(self, a):
        return -a % self.modulus_native

    def exp(self, a, e: int):
        raise NotImplementedError

    def inv(self, a):
        """Multiplicative inverse; raises ``ZeroDivisionError`` on zero."""
        raise NotImplementedError

    def batch_inverse(self, values: Sequence) -> List:
        """Invert many residues with one inversion (Montgomery's trick)."""
        n = len(values)
        if n == 0:
            return []
        m = self.modulus_native
        prefix = [0] * n
        acc = self.wrap(1)
        for i, v in enumerate(values):
            if not v:
                raise ZeroDivisionError("batch_inverse saw a zero element")
            prefix[i] = acc
            acc = acc * v % m
        inv = self.inv(acc)
        out = [0] * n
        for i in range(n - 1, -1, -1):
            out[i] = inv * prefix[i] % m
            inv = inv * values[i] % m
        return out

    def __repr__(self) -> str:
        return f"{type(self).__name__}(bits={self.modulus.bit_length()})"


class PythonFieldOps(FieldOps):
    """Pure-stdlib residues (plain ``int``) with cached Montgomery constants.

    The Montgomery domain uses ``R = 2^mont_bits`` with ``4p < R`` (so
    lazily-reduced sums of two residues still feed REDC safely) and byte
    alignment for readable serialization of the constants.  All Montgomery
    entry points produce *canonical* representatives in ``[0, p)`` -- the
    MSM kernels rely on exact equality of x-coordinates to detect the
    doubling case, so the cheap conditional subtraction is not optional.
    """

    name = "python"

    def __init__(self, modulus: int):
        super().__init__(modulus)
        bits = modulus.bit_length() + 2
        bits += (-bits) % 8
        self.mont_bits = bits
        self.mont_r = 1 << bits
        self.mont_mask = self.mont_r - 1
        self.mont_r2 = self.mont_r * self.mont_r % modulus
        # n' = -p^-1 mod R: the REDC folding constant.
        self.mont_nprime = (-pow(modulus, -1, self.mont_r)) % self.mont_r
        self.mont_one = self.mont_r % modulus

    # -- canonical residues --------------------------------------------------

    def wrap(self, value):
        return value % self.modulus

    def wrap_many(self, values):
        m = self.modulus
        return [v % m for v in values]

    def unwrap(self, value) -> int:
        return int(value % self.modulus)

    def exp(self, a, e: int):
        return pow(a, e, self.modulus)

    def inv(self, a):
        if a % self.modulus == 0:
            raise ZeroDivisionError("inverse of zero residue")
        return pow(a, -1, self.modulus)

    # -- Montgomery domain ---------------------------------------------------

    def redc(self, t) -> int:
        """Montgomery reduction: ``t * R^-1 mod p``, canonical output.

        Accepts any ``t`` with ``|t| < R*p`` (products of canonical or
        singly-lazy operands, including negative chords from the affine
        formulas); the shift is exact because ``t + m*p = 0 (mod R)``.
        """
        m = ((t & self.mont_mask) * self.mont_nprime) & self.mont_mask
        t = (t + m * self.modulus) >> self.mont_bits
        if t >= self.modulus:
            return t - self.modulus
        if t < 0:
            return t + self.modulus
        return t

    def to_mont(self, value: int) -> int:
        """Canonical residue -> Montgomery form (``v * R mod p``)."""
        return self.redc((value % self.modulus) * self.mont_r2)

    def from_mont(self, value: int) -> int:
        """Montgomery form -> canonical residue."""
        return self.redc(value)

    def mont_mul(self, a: int, b: int) -> int:
        """Product of two Montgomery-form residues, in Montgomery form."""
        return self.redc(a * b)

    def mont_exp(self, a: int, e: int) -> int:
        """``a^e`` for Montgomery-form ``a`` (result in Montgomery form)."""
        return self.to_mont(pow(self.from_mont(a), e, self.modulus))

    def mont_inv(self, a: int) -> int:
        """Inverse of a Montgomery-form residue, in Montgomery form."""
        plain = self.from_mont(a)
        if plain == 0:
            raise ZeroDivisionError("inverse of zero residue")
        return self.to_mont(pow(plain, -1, self.modulus))


class MontgomeryFieldOps(PythonFieldOps):
    """Stdlib backend that runs the MSM inner loops in Montgomery form.

    Element-level semantics (wrap/unwrap/mulmod/...) are identical to
    :class:`PythonFieldOps` -- conversions happen inside the kernels at
    their own boundaries -- so proofs are byte-identical by construction
    and the backends differ only in how the bucket arithmetic is carried.
    """

    name = "montgomery"
    montgomery_kernels = True


class Gmpy2FieldOps(FieldOps):
    """GMP-backed residues: every native value is a ``gmpy2.mpz``.

    GMP's multiplication and division at 254-bit operand sizes run several
    times faster than CPython's; because all kernels operate on natives,
    wrapping key material and witness scalars once at the boundary
    accelerates MSM, NTT, tower and pairing arithmetic wholesale.  No
    Montgomery form: GMP's tuned ``mpn`` division leaves nothing for REDC
    to win at these sizes.
    """

    name = "gmpy2"

    def __init__(self, modulus: int):
        import gmpy2  # ImportError here = backend explicitly unavailable

        super().__init__(modulus)
        self._gmpy2 = gmpy2
        self._mpz = gmpy2.mpz
        self.modulus_native = gmpy2.mpz(modulus)

    def wrap(self, value):
        return self._mpz(value) % self.modulus_native

    def wrap_many(self, values):
        mpz = self._mpz
        m = self.modulus_native
        return [mpz(v) % m for v in values]

    def exp(self, a, e: int):
        return self._gmpy2.powmod(self._mpz(a), e, self.modulus_native)

    def inv(self, a):
        a = self._mpz(a) % self.modulus_native
        if not a:
            raise ZeroDivisionError("inverse of zero residue")
        return self._gmpy2.invert(a, self.modulus_native)


class NumpyFieldOps(PythonFieldOps):
    """Stdlib-int residues whose batch kernels run on numpy limb arrays.

    Element-level semantics (wrap/unwrap/mulmod/...) are identical to
    :class:`PythonFieldOps` -- scalar chains in the tower, pairing and
    setup code gain nothing from vectorization -- so proofs are
    byte-identical by construction.  What changes is the batch layer:
    ``numpy_kernels`` routes Pippenger bucket accumulation (``msm_g1``)
    and NTT butterfly stages (``field.ntt``) through
    :mod:`repro.field.limb`, which carries whole rounds as contiguous
    ``(limbs, lanes)`` ``uint64`` arrays in Montgomery form.
    """

    name = "numpy"
    numpy_kernels = True

    def __init__(self, modulus: int):
        if not numpy_available():
            raise ImportError("NumpyFieldOps requires numpy")
        super().__init__(modulus)


_BACKEND_CLASSES = {
    "python": PythonFieldOps,
    "montgomery": MontgomeryFieldOps,
    "gmpy2": Gmpy2FieldOps,
    "numpy": NumpyFieldOps,
}


def available_field_backends() -> List[str]:
    """Backend names selectable on this interpreter."""
    names = ["python", "montgomery"]
    if gmpy2_available():
        names.append("gmpy2")
    if numpy_available():
        names.append("numpy")
    return names


def gmpy2_available() -> bool:
    return importlib.util.find_spec("gmpy2") is not None


def numpy_available() -> bool:
    return importlib.util.find_spec("numpy") is not None


_IMPORT_GATES = {"gmpy2": gmpy2_available, "numpy": numpy_available}


def resolve_field_backend(name: Optional[str] = None) -> str:
    """Resolve a backend name (or the environment/default) to a concrete one.

    ``auto`` consults the persisted machine profile first (``zkrownn
    tune`` records the measured winner for this host), then falls back to
    the static preference order: gmpy2 when importable, else stdlib.
    Naming ``gmpy2``/``numpy`` explicitly without the library installed
    is an error rather than a silent downgrade.
    """
    if name is None:
        name = os.environ.get(FIELD_BACKEND_ENV) or "auto"
    name = name.strip().lower()
    if name == "auto":
        from ..tuning.profile import profile_field_backend

        preferred = profile_field_backend()
        if preferred is not None:
            preferred = preferred.strip().lower()
            gate = _IMPORT_GATES.get(preferred)
            if preferred in _BACKEND_CLASSES and (gate is None or gate()):
                return preferred
        return "gmpy2" if gmpy2_available() else "python"
    if name not in _BACKEND_CLASSES:
        raise ValueError(
            f"unknown field backend {name!r}: expected one of "
            f"'python', 'montgomery', 'gmpy2', 'numpy', 'auto'"
        )
    gate = _IMPORT_GATES.get(name)
    if gate is not None and not gate():
        raise ValueError(
            f"field backend {name!r} requested but {name} is not importable; "
            "install it with `pip install zkrownn-repro[fast]` or select "
            "'python'/'auto'"
        )
    return name


# Process-local backend state.  ``pid`` makes the registry fork-aware:
# the first lookup in a child process discards inherited ops instances and
# re-resolves the backend from the environment.
_STATE: Dict[str, object] = {"pid": os.getpid(), "name": None, "ops": {}}


def _ensure_fresh() -> None:
    pid = os.getpid()
    if _STATE["pid"] != pid:
        _STATE["pid"] = pid
        _STATE["name"] = None
        _STATE["ops"] = {}


def active_field_backend() -> str:
    """The name of the backend currently serving :func:`get_field_ops`."""
    _ensure_fresh()
    if _STATE["name"] is None:
        _STATE["name"] = resolve_field_backend()
    return _STATE["name"]  # type: ignore[return-value]


def set_field_backend(name: Optional[str]) -> Optional[str]:
    """Pin the process-wide backend; returns the previous pin (for restore).

    ``None`` unpins, returning selection to ``ZKROWNN_FIELD_BACKEND`` /
    ``auto`` on next use.  Cached per-modulus ops instances are dropped so
    the switch takes effect everywhere at once (the NTT domain registry is
    keyed by backend name and needs no invalidation).
    """
    _ensure_fresh()
    previous = _STATE["name"]
    _STATE["name"] = resolve_field_backend(name) if name is not None else None
    _STATE["ops"] = {}
    return previous  # type: ignore[return-value]


def get_field_ops(modulus: int) -> FieldOps:
    """The active backend's :class:`FieldOps` for ``modulus`` (cached)."""
    _ensure_fresh()
    name = active_field_backend()
    ops_by_modulus: Dict[int, FieldOps] = _STATE["ops"]  # type: ignore[assignment]
    ops = ops_by_modulus.get(modulus)
    if ops is None or ops.name != name:
        ops = _BACKEND_CLASSES[name](modulus)
        ops_by_modulus[modulus] = ops
    return ops


def reinit_field_backend_after_fork() -> None:
    """Drop inherited backend state; next use re-resolves from the env.

    Called by worker initializers in ``repro.parallel.workers``; also
    implied by the PID check on every lookup, so even untracked forks
    never reuse a parent's gmpy2 state.  The numpy backend's limb-context
    registry is dropped alongside (its arrays are plain fork-safe data,
    but it follows the same PID discipline so every backend has one
    re-init story).
    """
    _STATE["pid"] = -1
    _ensure_fresh()
    from .limb import reset_limb_contexts

    reset_limb_contexts()


def invmod(value, modulus: int):
    """Backend-routed modular inverse (``gmpy2.invert`` when active)."""
    return get_field_ops(modulus).inv(value)
