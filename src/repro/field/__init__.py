"""Finite-field arithmetic for the BN254 pairing stack.

Public surface:

* :class:`~repro.field.prime.PrimeField` / :class:`~repro.field.prime.FieldElement`
  with the concrete fields :data:`Fp` (base) and :data:`Fr` (scalar).
* The pairing tower :class:`Fp2Element`, :class:`Fp6Element`,
  :class:`Fp12Element`.
* NTT utilities (:class:`EvaluationDomain`) and dense :class:`Polynomial`.
"""

from .backend import (
    FIELD_BACKEND_ENV,
    FieldOps,
    Gmpy2FieldOps,
    MontgomeryFieldOps,
    PythonFieldOps,
    active_field_backend,
    available_field_backends,
    get_field_ops,
    gmpy2_available,
    resolve_field_backend,
    set_field_backend,
)
from .prime import (
    BN254_P,
    BN254_R,
    BN254_X,
    FieldElement,
    Fp,
    Fr,
    PrimeField,
    batch_inverse,
    tonelli_shanks,
)
from .tower import FROB_GAMMA, XI, Fp2Element, Fp6Element, Fp12Element
from .ntt import EvaluationDomain, intt, next_power_of_two, ntt
from .poly import Polynomial

__all__ = [
    "FIELD_BACKEND_ENV",
    "FieldOps",
    "Gmpy2FieldOps",
    "MontgomeryFieldOps",
    "PythonFieldOps",
    "active_field_backend",
    "available_field_backends",
    "get_field_ops",
    "gmpy2_available",
    "resolve_field_backend",
    "set_field_backend",
    "BN254_P",
    "BN254_R",
    "BN254_X",
    "FieldElement",
    "Fp",
    "Fr",
    "PrimeField",
    "batch_inverse",
    "tonelli_shanks",
    "FROB_GAMMA",
    "XI",
    "Fp2Element",
    "Fp6Element",
    "Fp12Element",
    "EvaluationDomain",
    "intt",
    "next_power_of_two",
    "ntt",
    "Polynomial",
]
