"""Number-theoretic transform over the BN254 scalar field.

The QAP reduction in Groth16 interpolates/evaluates polynomials over a
power-of-two multiplicative subgroup of Fr.  BN254's scalar field has
2-adicity 28, so domains up to 2^28 are available -- far beyond what the
pure-Python prover ever touches.

All functions work on lists of raw integers modulo ``Fr.modulus`` (the hot
path for proving); :class:`EvaluationDomain` is the stateful wrapper that
caches twiddle factors for a fixed domain size.
"""

from __future__ import annotations

from typing import List, Sequence

from .prime import BN254_R as R
from .prime import Fr

__all__ = ["EvaluationDomain", "ntt", "intt", "next_power_of_two"]


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= max(n, 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def _bit_reverse_permute(values: List[int]) -> None:
    n = len(values)
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j ^= bit
            bit >>= 1
        j |= bit
        if i < j:
            values[i], values[j] = values[j], values[i]


def ntt(values: Sequence[int], omega: int) -> List[int]:
    """In-order radix-2 NTT of ``values`` using primitive root ``omega``.

    ``len(values)`` must be a power of two and ``omega`` a primitive root of
    unity of exactly that order.
    """
    n = len(values)
    if n & (n - 1):
        raise ValueError("NTT size must be a power of two")
    out = [v % R for v in values]
    _bit_reverse_permute(out)
    length = 2
    while length <= n:
        w_len = pow(omega, n // length, R)
        half = length // 2
        for start in range(0, n, length):
            w = 1
            for k in range(start, start + half):
                even = out[k]
                odd = out[k + half] * w % R
                out[k] = (even + odd) % R
                out[k + half] = (even - odd) % R
                w = w * w_len % R
        length <<= 1
    return out


def intt(values: Sequence[int], omega: int) -> List[int]:
    """Inverse NTT: recovers coefficients from evaluations."""
    n = len(values)
    out = ntt(values, pow(omega, -1, R))
    n_inv = pow(n, -1, R)
    return [v * n_inv % R for v in out]


class EvaluationDomain:
    """A multiplicative subgroup of Fr of power-of-two order.

    Provides forward/inverse NTT on the subgroup H = {omega^k} and on the
    coset gH (needed to divide by the vanishing polynomial, which is zero on
    H itself).
    """

    def __init__(self, size: int):
        size = next_power_of_two(size)
        self.size = size
        self.omega = Fr.root_of_unity(size).value if size > 1 else 1
        self.omega_inv = pow(self.omega, -1, R) if size > 1 else 1
        # Coset shift: any element outside H works; a quadratic non-residue
        # can never be a 2-power root of unity.
        self.coset_shift = Fr.multiplicative_generator().value
        self.coset_shift_inv = pow(self.coset_shift, -1, R)

    # -- plain domain -----------------------------------------------------------

    def fft(self, coefficients: Sequence[int]) -> List[int]:
        """Evaluate a polynomial (coefficient form) on every domain point."""
        coeffs = list(coefficients) + [0] * (self.size - len(coefficients))
        if len(coeffs) > self.size:
            raise ValueError("polynomial degree exceeds domain size")
        if self.size == 1:
            return [coeffs[0] % R]
        return ntt(coeffs, self.omega)

    def ifft(self, evaluations: Sequence[int]) -> List[int]:
        """Interpolate: evaluations on the domain -> coefficient form."""
        if len(evaluations) != self.size:
            raise ValueError("need exactly one evaluation per domain point")
        if self.size == 1:
            return [evaluations[0] % R]
        return intt(evaluations, self.omega)

    # -- coset domain -------------------------------------------------------------

    def coset_fft(self, coefficients: Sequence[int]) -> List[int]:
        """Evaluate on the coset g*H (where the vanishing poly is non-zero)."""
        coeffs = list(coefficients) + [0] * (self.size - len(coefficients))
        shifted = []
        power = 1
        for c in coeffs:
            shifted.append(c * power % R)
            power = power * self.coset_shift % R
        if self.size == 1:
            return [shifted[0]]
        return ntt(shifted, self.omega)

    def coset_ifft(self, evaluations: Sequence[int]) -> List[int]:
        """Inverse of :meth:`coset_fft`."""
        if self.size == 1:
            coeffs = [evaluations[0] % R]
        else:
            coeffs = intt(evaluations, self.omega)
        power = 1
        out = []
        for c in coeffs:
            out.append(c * power % R)
            power = power * self.coset_shift_inv % R
        return out

    # -- vanishing polynomial -----------------------------------------------------

    def vanishing_at(self, point: int) -> int:
        """t(x) = x^|H| - 1 evaluated at ``point``."""
        return (pow(point, self.size, R) - 1) % R

    def vanishing_on_coset(self) -> int:
        """t(x) on the coset is the constant g^|H| - 1 (same for all points)."""
        return (pow(self.coset_shift, self.size, R) - 1) % R

    def elements(self) -> List[int]:
        """All domain points omega^0 .. omega^(n-1)."""
        out = []
        acc = 1
        for _ in range(self.size):
            out.append(acc)
            acc = acc * self.omega % R
        return out

    def __repr__(self) -> str:
        return f"EvaluationDomain(size={self.size})"
