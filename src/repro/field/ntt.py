"""Number-theoretic transform over the BN254 scalar field.

The QAP reduction in Groth16 interpolates/evaluates polynomials over a
power-of-two multiplicative subgroup of Fr.  BN254's scalar field has
2-adicity 28, so domains up to 2^28 are available -- far beyond what the
pure-Python prover ever touches.

All functions work on lists of raw integers modulo ``Fr.modulus`` (the hot
path for proving).  Every per-size constant is precomputed and cached:

* stage twiddle tables (one list per butterfly stage, derived from the
  top stage by stride-2 subsampling), so the NTT inner loop is a table
  lookup instead of a sequential ``w *= w_len`` multiply chain;
* bit-reversal permutation indices;
* coset-shift power vectors for :meth:`EvaluationDomain.coset_fft` /
  :meth:`~EvaluationDomain.coset_ifft`, replacing the per-call ``pow``
  chains.

:class:`EvaluationDomain` instances are themselves cached per size in a
process-wide registry (:func:`get_domain`) -- repeated proofs for circuits
of the same domain size (the ZKROWNN amortized lifecycle) never recompute
roots of unity or tables.

All tables and butterfly values are *backend-native* residues (plain ints
on the stdlib backend, ``mpz`` under gmpy2), and both the twiddle cache
and the domain registry are keyed by the active field backend's name, so
switching ``ZKROWNN_FIELD_BACKEND`` mid-process can never mix native
types inside one transform.
"""

from __future__ import annotations

import functools
import os
import time
from typing import Any, Dict, List, Sequence, Tuple

from ..obs import metrics as _obs_metrics
from .backend import get_field_ops
from .prime import BN254_R as R
from .prime import Fr

__all__ = ["EvaluationDomain", "get_domain", "ntt", "intt", "next_power_of_two"]


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= max(n, 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


_BITREV_CACHE: Dict[int, List[Tuple[int, int]]] = {}


def _bitrev_swaps(n: int) -> List[Tuple[int, int]]:
    """The ``i < j`` swap pairs of the bit-reversal permutation of size n."""
    swaps = _BITREV_CACHE.get(n)
    if swaps is None:
        swaps = []
        j = 0
        for i in range(1, n):
            bit = n >> 1
            while j & bit:
                j ^= bit
                bit >>= 1
            j |= bit
            if i < j:
                swaps.append((i, j))
        _BITREV_CACHE[n] = swaps
    return swaps


_TWIDDLE_CACHE: Dict[Tuple[str, int, int], List[List[int]]] = {}


def _stage_twiddles(n: int, omega: int, ops) -> List[List[int]]:
    """Twiddle tables for every butterfly stage, smallest stage first.

    Stage for block length ``L`` uses ``w_L = omega^(n/L)`` and needs
    ``w_L^j`` for ``j < L/2``.  The top stage (``L = n``) table is built
    once by iterated multiplication; every smaller stage is its stride-2
    subsampling, so the whole cache costs ``n/2`` multiplications.
    Entries are backend-native residues, cached per (backend, size, root).
    """
    key = (ops.name, n, int(omega))
    tables = _TWIDDLE_CACHE.get(key)
    if tables is None:
        r = ops.modulus_native
        top = [ops.wrap(1)] * (n // 2)
        w = ops.wrap(omega)
        acc = top[0]
        for j in range(1, n // 2):
            acc = acc * w % r
            top[j] = acc
        tables = []
        length = 2
        while length < n:
            tables.append(top[:: n // length][: length // 2])
            length <<= 1
        tables.append(top)
        _TWIDDLE_CACHE[key] = tables
    return tables


#: Minimum size for the stage-at-a-time numpy butterflies.  Honest
#: numbers from the dev box: the vectorized stages measured *slower*
#: than the plain loop at every size tried (0.66x at 16k, 0.85x at 64k,
#: 0.78x at 256k) -- CPython's big-int mulmod is hard to beat when each
#: butterfly is one multiply, unlike the MSM's add chains -- but the
#: ratio improves with size (the limb kernels are bandwidth-bound), so
#: the route stays at the size where wider-vector hosts plausibly cross
#: over rather than being deleted.  Results are byte-identical either
#: way; tests pin the threshold down to exercise the path.
NUMPY_NTT_MIN_SIZE = 65536

# Tiled Montgomery-domain twiddle arrays per (pid, size, root): one
# (L, n/2) array per stage, ready to multiply a whole stage's odd lanes
# in one call.  PID-keyed like the limb-context registry so forked
# workers rebuild instead of sharing.
_NUMPY_TWIDDLE_CACHE: Dict[Tuple[int, int, int], List[Any]] = {}


def _numpy_stage_twiddles(ctx, n: int, omega: int, ops) -> List[Any]:
    key = (os.getpid(), n, int(omega))
    tables = _NUMPY_TWIDDLE_CACHE.get(key)
    if tables is None:
        for stale in [k for k in _NUMPY_TWIDDLE_CACHE if k[0] != key[0]]:
            del _NUMPY_TWIDDLE_CACHE[stale]
        np = ctx.np
        tables = []
        for stage in _stage_twiddles(n, omega, ops):
            half = len(stage)
            blocks = n // (2 * half)
            mont = ctx.to_mont(ctx.to_limbs([int(w) for w in stage]))
            tables.append(np.tile(mont, blocks))
        _NUMPY_TWIDDLE_CACHE[key] = tables
    return tables


_BITREV_PERM_CACHE: Dict[int, Any] = {}


def _bitrev_perm(n: int, np) -> Any:
    perm = _BITREV_PERM_CACHE.get(n)
    if perm is None:
        idx = list(range(n))
        for i, j in _bitrev_swaps(n):
            idx[i], idx[j] = idx[j], idx[i]
        perm = np.asarray(idx, dtype=np.int64)
        _BITREV_PERM_CACHE[n] = perm
    return perm


def _ntt_numpy(values: Sequence[int], omega: int, n: int, ops) -> List[int]:
    """Radix-2 NTT with each stage's butterflies as one limb-array pass.

    Residues convert once into Montgomery-domain ``(L, n)`` limb arrays;
    every stage then runs as a single tiled twiddle multiply plus one
    add/sub pair over all ``n/2`` butterflies (versus ``n/2`` sequential
    big-int multiplies).  Outputs are the same canonical ints as the
    scalar path -- the transform is exact, so results are byte-identical.
    """
    from .limb import get_limb_context

    ctx = get_limb_context(R)
    np = ctx.np
    a = ctx.to_mont(ctx.to_limbs([int(v) % R for v in values]))
    a = np.ascontiguousarray(a[:, _bitrev_perm(n, np)])
    L = a.shape[0]
    length = 2
    for twiddles in _numpy_stage_twiddles(ctx, n, omega, ops):
        half = length >> 1
        blocks = n // length
        a3 = a.reshape(L, blocks, length)
        even = np.ascontiguousarray(a3[:, :, :half]).reshape(L, n // 2)
        odd = np.ascontiguousarray(a3[:, :, half:]).reshape(L, n // 2)
        # Stage 1's twiddles are all one; Montgomery mul by the canonical
        # one is the identity, so the multiply is skipped exactly.
        t = odd if half == 1 else ctx.mont_mul(odd, twiddles)
        a3[:, :, :half] = ctx.addmod(even, t).reshape(L, blocks, half)
        a3[:, :, half:] = ctx.submod(even, t).reshape(L, blocks, half)
        length <<= 1
    return ctx.from_limbs(ctx.from_mont(a))


def _profiled_ntt(direction: str):
    """Opt-in duration profiling for a transform entry point.

    Off (default): one module-global read per call.  On
    (``ZKROWNN_PROFILE_KERNELS``): the call lands in
    ``zkrownn_ntt_seconds`` bucketed by size.  An ``inv`` observation
    includes the forward transform it runs internally (which is *also*
    observed as ``fwd``) -- durations nest, counts do not dedupe.
    """
    def wrap(fn):
        @functools.wraps(fn)
        def wrapper(values, omega):
            if not _obs_metrics.kernel_profiling_enabled():
                return fn(values, omega)
            t0 = time.perf_counter()
            out = fn(values, omega)
            _obs_metrics.observe_kernel(
                "ntt", len(values), time.perf_counter() - t0,
                direction=direction,
            )
            return out
        return wrapper
    return wrap


@_profiled_ntt("fwd")
def ntt(values: Sequence[int], omega: int) -> List[int]:
    """In-order radix-2 NTT of ``values`` using primitive root ``omega``.

    ``len(values)`` must be a power of two and ``omega`` a primitive root of
    unity of exactly that order.  Twiddle tables and the bit-reversal
    permutation are cached per ``(backend, size, omega)``; outputs are
    backend-native residues (canonical, so plain-int consumers are
    unaffected on the stdlib backend).
    """
    n = len(values)
    if n & (n - 1):
        raise ValueError("NTT size must be a power of two")
    ops = get_field_ops(R)
    if ops.numpy_kernels and n >= NUMPY_NTT_MIN_SIZE:
        return _ntt_numpy(values, omega, n, ops)
    out = ops.wrap_many(values)
    if n <= 1:
        return out
    for i, j in _bitrev_swaps(n):
        out[i], out[j] = out[j], out[i]
    r = ops.modulus_native
    length = 2
    for twiddles in _stage_twiddles(n, omega, ops):
        half = length >> 1
        for start in range(0, n, length):
            k = start
            for w in twiddles:
                kh = k + half
                odd = out[kh] * w % r
                even = out[k]
                out[k] = (even + odd) % r
                out[kh] = (even - odd) % r
                k += 1
        length <<= 1
    return out


@_profiled_ntt("inv")
def intt(values: Sequence[int], omega: int) -> List[int]:
    """Inverse NTT: recovers coefficients from evaluations."""
    n = len(values)
    ops = get_field_ops(R)
    out = ntt(values, pow(int(omega), -1, R))
    n_inv = ops.wrap(pow(n, -1, R))
    r = ops.modulus_native
    return [v * n_inv % r for v in out]


class EvaluationDomain:
    """A multiplicative subgroup of Fr of power-of-two order.

    Provides forward/inverse NTT on the subgroup H = {omega^k} and on the
    coset gH (needed to divide by the vanishing polynomial, which is zero on
    H itself).  Prefer :func:`get_domain` over direct construction -- the
    registry shares one instance (and its precomputed tables) per size.
    """

    def __init__(self, size: int):
        size = next_power_of_two(size)
        self.size = size
        self.ops = get_field_ops(R)
        #: Field backend this domain's native tables were built under.
        self.backend = self.ops.name
        self.omega = Fr.root_of_unity(size).value if size > 1 else 1
        self.omega_inv = pow(self.omega, -1, R) if size > 1 else 1
        self._size_inv = pow(size, -1, R)
        # Coset shift: any element outside H works; a quadratic non-residue
        # can never be a 2-power root of unity.
        self.coset_shift = Fr.multiplicative_generator().value
        self.coset_shift_inv = pow(self.coset_shift, -1, R)
        rn = self.ops.modulus_native
        self._coset_powers = _powers(self.ops.wrap(self.coset_shift), size, rn)
        # Fold the 1/n interpolation scale into the inverse-shift powers so
        # coset_ifft is one elementwise multiply.
        self._coset_inv_powers = [
            p * self._size_inv % rn
            for p in _powers(self.ops.wrap(self.coset_shift_inv), size, rn)
        ]
        self._elements: List[int] = []

    # -- plain domain -----------------------------------------------------------

    def fft(self, coefficients: Sequence[int]) -> List[int]:
        """Evaluate a polynomial (coefficient form) on every domain point."""
        coeffs = list(coefficients) + [0] * (self.size - len(coefficients))
        if len(coeffs) > self.size:
            raise ValueError("polynomial degree exceeds domain size")
        if self.size == 1:
            return [coeffs[0] % R]
        return ntt(coeffs, self.omega)

    def ifft(self, evaluations: Sequence[int]) -> List[int]:
        """Interpolate: evaluations on the domain -> coefficient form."""
        if len(evaluations) != self.size:
            raise ValueError("need exactly one evaluation per domain point")
        if self.size == 1:
            return [evaluations[0] % R]
        n_inv = self._size_inv
        rn = self.ops.modulus_native
        return [v * n_inv % rn for v in ntt(evaluations, self.omega_inv)]

    # -- coset domain -------------------------------------------------------------

    def coset_fft(self, coefficients: Sequence[int]) -> List[int]:
        """Evaluate on the coset g*H (where the vanishing poly is non-zero)."""
        coeffs = list(coefficients) + [0] * (self.size - len(coefficients))
        if len(coeffs) > self.size:
            raise ValueError("polynomial degree exceeds domain size")
        rn = self.ops.modulus_native
        shifted = [c * g % rn for c, g in zip(coeffs, self._coset_powers)]
        if self.size == 1:
            return shifted
        return ntt(shifted, self.omega)

    def coset_ifft(self, evaluations: Sequence[int]) -> List[int]:
        """Inverse of :meth:`coset_fft`."""
        if len(evaluations) != self.size:
            raise ValueError("need exactly one evaluation per domain point")
        if self.size == 1:
            coeffs = [evaluations[0] % R]
            return coeffs
        coeffs = ntt(evaluations, self.omega_inv)
        # _coset_inv_powers carries the 1/n factor of the inverse NTT.
        rn = self.ops.modulus_native
        return [c * g % rn for c, g in zip(coeffs, self._coset_inv_powers)]

    # -- vanishing polynomial -----------------------------------------------------

    def vanishing_at(self, point: int) -> int:
        """t(x) = x^|H| - 1 evaluated at ``point``."""
        return (pow(point, self.size, R) - 1) % R

    def vanishing_on_coset(self) -> int:
        """t(x) on the coset is the constant g^|H| - 1 (same for all points)."""
        return (pow(self.coset_shift, self.size, R) - 1) % R

    def elements(self) -> List[int]:
        """All domain points omega^0 .. omega^(n-1) (cached; returns a copy)."""
        if not self._elements:
            self._elements = _powers(self.omega, self.size)
        return list(self._elements)

    def __repr__(self) -> str:
        return f"EvaluationDomain(size={self.size})"


def _powers(base, count: int, modulus=R) -> List:
    out = [1] * count
    acc = 1
    for i in range(1, count):
        acc = acc * base % modulus
        out[i] = acc
    return out


_DOMAIN_CACHE: Dict[Tuple[str, int], EvaluationDomain] = {}


def get_domain(size: int) -> EvaluationDomain:
    """The process-wide :class:`EvaluationDomain` for ``size`` (rounded up).

    Domains are immutable once built; sharing them across proofs removes
    the root-of-unity search, twiddle-table build and coset power chains
    from every ``prove`` call after the first for a given circuit size.
    The registry is keyed by the active field backend as well as the
    size: a domain built under one backend holds that backend's native
    tables and is never served to another.
    """
    from .backend import active_field_backend

    size = next_power_of_two(size)
    key = (active_field_backend(), size)
    domain = _DOMAIN_CACHE.get(key)
    if domain is None:
        domain = EvaluationDomain(size)
        _DOMAIN_CACHE[key] = domain
    return domain
