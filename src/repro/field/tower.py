"""BN254 extension-field tower: Fp2 -> Fp6 -> Fp12.

The optimal-Ate pairing used by Groth16 takes values in Fp12, built as the
standard tower for BN curves:

* ``Fp2  = Fp[u]  / (u^2 + 1)``
* ``Fp6  = Fp2[v] / (v^3 - xi)`` with the non-residue ``xi = 9 + u``
* ``Fp12 = Fp6[w] / (w^2 - v)``

Elements store raw Python integers (Fp2) or tuples of lower-tower elements,
kept immutable.  Frobenius-map coefficients are *computed at import time*
from first principles (powers of ``xi``) rather than hard-coded, which keeps
the module self-verifying: a typo in a constant would break the bilinearity
property tests immediately.
"""

from __future__ import annotations

from typing import Tuple

from .backend import get_field_ops
from .prime import BN254_P as P

__all__ = [
    "Fp2Element",
    "Fp6Element",
    "Fp12Element",
    "XI",
    "FROB_GAMMA",
    "fp2_batch_inverse",
    "fp2_wrap",
    "fp2_unwrap",
]


class Fp2Element:
    """Element ``c0 + c1*u`` of Fp2 with ``u^2 = -1``."""

    __slots__ = ("c0", "c1")

    def __init__(self, c0: int, c1: int):
        self.c0 = c0 % P
        self.c1 = c1 % P

    # -- constructors -------------------------------------------------------

    @staticmethod
    def zero() -> "Fp2Element":
        return Fp2Element(0, 0)

    @staticmethod
    def one() -> "Fp2Element":
        return Fp2Element(1, 0)

    @staticmethod
    def from_int(n: int) -> "Fp2Element":
        return Fp2Element(n, 0)

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: "Fp2Element") -> "Fp2Element":
        return Fp2Element(self.c0 + other.c0, self.c1 + other.c1)

    def __sub__(self, other: "Fp2Element") -> "Fp2Element":
        return Fp2Element(self.c0 - other.c0, self.c1 - other.c1)

    def __neg__(self) -> "Fp2Element":
        return Fp2Element(-self.c0, -self.c1)

    def __mul__(self, other: "Fp2Element") -> "Fp2Element":
        # Karatsuba: 3 base-field multiplications.
        a0, a1, b0, b1 = self.c0, self.c1, other.c0, other.c1
        t0 = a0 * b0
        t1 = a1 * b1
        t2 = (a0 + a1) * (b0 + b1)
        return Fp2Element(t0 - t1, t2 - t0 - t1)

    def scale(self, k: int) -> "Fp2Element":
        """Multiply by a base-field integer."""
        return Fp2Element(self.c0 * k, self.c1 * k)

    def square(self) -> "Fp2Element":
        # (a0 + a1 u)^2 = (a0+a1)(a0-a1) + 2 a0 a1 u
        a0, a1 = self.c0, self.c1
        return Fp2Element((a0 + a1) * (a0 - a1), 2 * a0 * a1)

    def inverse(self) -> "Fp2Element":
        a0, a1 = self.c0, self.c1
        norm = (a0 * a0 + a1 * a1) % P
        if norm == 0:
            raise ZeroDivisionError("inverse of zero in Fp2")
        # The single base-field inversion under every Fp2 (and transitively
        # Fp6/Fp12) inverse is routed through the active field backend.
        inv = get_field_ops(P).inv(norm)
        return Fp2Element(a0 * inv, -a1 * inv)

    def conjugate(self) -> "Fp2Element":
        """Frobenius on Fp2 (p-th power): ``c0 - c1*u``."""
        return Fp2Element(self.c0, -self.c1)

    def mul_by_xi(self) -> "Fp2Element":
        """Multiply by the Fp6 non-residue ``xi = 9 + u``."""
        a0, a1 = self.c0, self.c1
        return Fp2Element(9 * a0 - a1, 9 * a1 + a0)

    def pow(self, exponent: int) -> "Fp2Element":
        result = Fp2Element.one()
        base = self
        e = exponent
        while e > 0:
            if e & 1:
                result = result * base
            base = base.square()
            e >>= 1
        return result

    # -- plumbing --------------------------------------------------------------

    def is_zero(self) -> bool:
        return self.c0 == 0 and self.c1 == 0

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Fp2Element)
            and self.c0 == other.c0
            and self.c1 == other.c1
        )

    def __hash__(self) -> int:
        return hash((self.c0, self.c1))

    def __repr__(self) -> str:
        return f"Fp2({self.c0}, {self.c1})"


def fp2_batch_inverse(elements) -> list:
    """Invert many Fp2 elements with one base-field inversion.

    Montgomery's trick works over any field; here each product step costs
    one Fp2 multiplication and the single inversion at the end is an
    :meth:`Fp2Element.inverse`.  Used by batch-affine G2 table building.
    """
    n = len(elements)
    if n == 0:
        return []
    prefix = [None] * n
    acc = Fp2Element.one()
    for i, e in enumerate(elements):
        prefix[i] = acc
        acc = acc * e
    inv = acc.inverse()
    out = [None] * n
    for i in range(n - 1, -1, -1):
        out[i] = inv * prefix[i]
        inv = inv * elements[i]
    return out


def fp2_wrap(e: "Fp2Element", ops) -> "Fp2Element":
    """``e`` with both coefficients as the backend's native residues.

    Boundary helper: tower arithmetic is written polymorphically over the
    coefficient type, so wrapping the inputs of a pairing (or a G2 kernel)
    once makes every intermediate product run on backend natives.
    """
    return Fp2Element(ops.wrap(e.c0), ops.wrap(e.c1))


def fp2_unwrap(e: "Fp2Element") -> "Fp2Element":
    """``e`` with both coefficients canonicalized to plain ints."""
    return Fp2Element(int(e.c0), int(e.c1))


#: The Fp6/Fp12 tower non-residue.
XI = Fp2Element(9, 1)


class Fp6Element:
    """Element ``a0 + a1*v + a2*v^2`` of Fp6 with ``v^3 = xi``."""

    __slots__ = ("a0", "a1", "a2")

    def __init__(self, a0: Fp2Element, a1: Fp2Element, a2: Fp2Element):
        self.a0 = a0
        self.a1 = a1
        self.a2 = a2

    @staticmethod
    def zero() -> "Fp6Element":
        return Fp6Element(Fp2Element.zero(), Fp2Element.zero(), Fp2Element.zero())

    @staticmethod
    def one() -> "Fp6Element":
        return Fp6Element(Fp2Element.one(), Fp2Element.zero(), Fp2Element.zero())

    def __add__(self, other: "Fp6Element") -> "Fp6Element":
        return Fp6Element(self.a0 + other.a0, self.a1 + other.a1, self.a2 + other.a2)

    def __sub__(self, other: "Fp6Element") -> "Fp6Element":
        return Fp6Element(self.a0 - other.a0, self.a1 - other.a1, self.a2 - other.a2)

    def __neg__(self) -> "Fp6Element":
        return Fp6Element(-self.a0, -self.a1, -self.a2)

    def __mul__(self, other: "Fp6Element") -> "Fp6Element":
        a0, a1, a2 = self.a0, self.a1, self.a2
        b0, b1, b2 = other.a0, other.a1, other.a2
        t0 = a0 * b0
        t1 = a1 * b1
        t2 = a2 * b2
        c0 = ((a1 + a2) * (b1 + b2) - t1 - t2).mul_by_xi() + t0
        c1 = (a0 + a1) * (b0 + b1) - t0 - t1 + t2.mul_by_xi()
        c2 = (a0 + a2) * (b0 + b2) - t0 - t2 + t1
        return Fp6Element(c0, c1, c2)

    def square(self) -> "Fp6Element":
        return self * self

    def mul_by_v(self) -> "Fp6Element":
        """Multiply by ``v`` (shifts coefficients, wrapping through xi)."""
        return Fp6Element(self.a2.mul_by_xi(), self.a0, self.a1)

    def scale_fp2(self, k: Fp2Element) -> "Fp6Element":
        return Fp6Element(self.a0 * k, self.a1 * k, self.a2 * k)

    def mul_sparse(self, b0: Fp2Element, b1: Fp2Element) -> "Fp6Element":
        """Multiply by the sparse element ``b0 + b1*v`` (pairing line values)."""
        a0, a1, a2 = self.a0, self.a1, self.a2
        t0 = a0 * b0
        t1 = a1 * b1
        c0 = ((a1 + a2) * b1 - t1).mul_by_xi() + t0
        c1 = (a0 + a1) * (b0 + b1) - t0 - t1
        c2 = a2 * b0 + t1
        return Fp6Element(c0, c1, c2)

    def inverse(self) -> "Fp6Element":
        a0, a1, a2 = self.a0, self.a1, self.a2
        c0 = a0.square() - (a1 * a2).mul_by_xi()
        c1 = a2.square().mul_by_xi() - a0 * a1
        c2 = a1.square() - a0 * a2
        norm = a0 * c0 + (a2 * c1 + a1 * c2).mul_by_xi()
        inv = norm.inverse()
        return Fp6Element(c0 * inv, c1 * inv, c2 * inv)

    def frobenius(self) -> "Fp6Element":
        """The p-power Frobenius map on Fp6.

        ``v^p = xi^((p-1)/3) * v``, so the ``v^i`` coefficient picks up
        ``xi^(i*(p-1)/3) = FROB_GAMMA[2i]`` after conjugating.
        """
        return Fp6Element(
            self.a0.conjugate(),
            self.a1.conjugate() * FROB_GAMMA[2],
            self.a2.conjugate() * FROB_GAMMA[4],
        )

    def is_zero(self) -> bool:
        return self.a0.is_zero() and self.a1.is_zero() and self.a2.is_zero()

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Fp6Element)
            and self.a0 == other.a0
            and self.a1 == other.a1
            and self.a2 == other.a2
        )

    def __hash__(self) -> int:
        return hash((self.a0, self.a1, self.a2))

    def __repr__(self) -> str:
        return f"Fp6({self.a0!r}, {self.a1!r}, {self.a2!r})"


# Frobenius coefficients gamma_i = xi^(i*(p-1)/6), i = 1..5, computed from
# first principles at import.  gamma_2 = xi^((p-1)/3) and gamma_3 =
# xi^((p-1)/2) double as the G2 untwist-Frobenius-twist constants.
FROB_GAMMA: Tuple[Fp2Element, ...] = tuple(
    XI.pow(i * (P - 1) // 6) for i in range(6)
)


class Fp12Element:
    """Element ``b0 + b1*w`` of Fp12 with ``w^2 = v``."""

    __slots__ = ("b0", "b1")

    def __init__(self, b0: Fp6Element, b1: Fp6Element):
        self.b0 = b0
        self.b1 = b1

    @staticmethod
    def zero() -> "Fp12Element":
        return Fp12Element(Fp6Element.zero(), Fp6Element.zero())

    @staticmethod
    def one() -> "Fp12Element":
        return Fp12Element(Fp6Element.one(), Fp6Element.zero())

    def __add__(self, other: "Fp12Element") -> "Fp12Element":
        return Fp12Element(self.b0 + other.b0, self.b1 + other.b1)

    def __sub__(self, other: "Fp12Element") -> "Fp12Element":
        return Fp12Element(self.b0 - other.b0, self.b1 - other.b1)

    def __neg__(self) -> "Fp12Element":
        return Fp12Element(-self.b0, -self.b1)

    def __mul__(self, other: "Fp12Element") -> "Fp12Element":
        # Karatsuba over Fp6: 3 Fp6 multiplications.
        a0, a1 = self.b0, self.b1
        c0, c1 = other.b0, other.b1
        t0 = a0 * c0
        t1 = a1 * c1
        mid = (a0 + a1) * (c0 + c1)
        return Fp12Element(t0 + t1.mul_by_v(), mid - t0 - t1)

    def square(self) -> "Fp12Element":
        # Complex squaring: (a0 + a1 w)^2 with w^2 = v.
        a0, a1 = self.b0, self.b1
        t = a0 * a1
        c0 = (a0 + a1) * (a0 + a1.mul_by_v()) - t - t.mul_by_v()
        return Fp12Element(c0, t + t)

    def inverse(self) -> "Fp12Element":
        a0, a1 = self.b0, self.b1
        norm = a0.square() - a1.square().mul_by_v()
        inv = norm.inverse()
        return Fp12Element(a0 * inv, -(a1 * inv))

    def conjugate(self) -> "Fp12Element":
        """The map ``b0 - b1*w`` (p^6-power Frobenius).

        For elements in the cyclotomic subgroup -- pairing values after the
        easy part of the final exponentiation -- this equals the inverse.
        """
        return Fp12Element(self.b0, -self.b1)

    def frobenius(self) -> "Fp12Element":
        """The p-power Frobenius map on Fp12.

        ``w^(p-1) = xi^((p-1)/6) = FROB_GAMMA[1]`` scales the ``w``
        coefficient after the Fp6 Frobenius is applied to both halves.
        """
        return Fp12Element(
            self.b0.frobenius(),
            self.b1.frobenius().scale_fp2(FROB_GAMMA[1]),
        )

    def frobenius_n(self, n: int) -> "Fp12Element":
        out = self
        for _ in range(n % 12):
            out = out.frobenius()
        return out

    def pow(self, exponent: int) -> "Fp12Element":
        if exponent < 0:
            return self.inverse().pow(-exponent)
        result = Fp12Element.one()
        base = self
        e = exponent
        while e > 0:
            if e & 1:
                result = result * base
            base = base.square()
            e >>= 1
        return result

    def mul_by_line(
        self, c0: Fp2Element, c3: Fp2Element, c4: Fp2Element
    ) -> "Fp12Element":
        """Multiply by the sparse line value ``c0 + c3*w + c4*(v*w)``.

        Miller-loop line functions for the D-type BN twist only have these
        three non-zero Fp2 coefficients (the constant term, the ``w`` term
        and the ``v*w`` term); exploiting the sparsity roughly halves the
        cost of a Miller step compared to a general Fp12 multiply.
        """
        a0, a1 = self.b0, self.b1
        # Karatsuba with L0 = (c0, 0, 0) and L1 = (c3, c4, 0).
        t0 = a0.scale_fp2(c0)
        t1 = a1.mul_sparse(c3, c4)
        mid = (a0 + a1).mul_sparse(c0 + c3, c4)
        return Fp12Element(t0 + t1.mul_by_v(), mid - t0 - t1)

    def is_one(self) -> bool:
        return self == Fp12Element.one()

    def is_zero(self) -> bool:
        return self.b0.is_zero() and self.b1.is_zero()

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Fp12Element)
            and self.b0 == other.b0
            and self.b1 == other.b1
        )

    def __hash__(self) -> int:
        return hash((self.b0, self.b1))

    def __repr__(self) -> str:
        return f"Fp12({self.b0!r}, {self.b1!r})"
