"""Dense univariate polynomials over the BN254 scalar field.

A small, well-tested polynomial ring used by the QAP layer and its tests.
Coefficients are raw integers mod r, lowest degree first.  The zero
polynomial is represented by the empty list and has degree -1.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .backend import invmod
from .prime import BN254_R as R

__all__ = ["Polynomial"]


def _trim(coeffs: List[int]) -> List[int]:
    while coeffs and coeffs[-1] == 0:
        coeffs.pop()
    return coeffs


class Polynomial:
    """Immutable dense polynomial over Fr."""

    __slots__ = ("coeffs",)

    def __init__(self, coefficients: Iterable[int] = ()):
        self.coeffs: List[int] = _trim([c % R for c in coefficients])

    # -- constructors -------------------------------------------------------

    @staticmethod
    def zero() -> "Polynomial":
        return Polynomial()

    @staticmethod
    def one() -> "Polynomial":
        return Polynomial([1])

    @staticmethod
    def x() -> "Polynomial":
        return Polynomial([0, 1])

    @staticmethod
    def monomial(degree: int, coefficient: int = 1) -> "Polynomial":
        return Polynomial([0] * degree + [coefficient])

    @staticmethod
    def interpolate(xs: Sequence[int], ys: Sequence[int]) -> "Polynomial":
        """Lagrange interpolation through the points ``(xs[i], ys[i])``.

        O(n^2); used for small domains and as a reference implementation that
        the NTT-based interpolation is property-tested against.
        """
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have equal length")
        if len(set(x % R for x in xs)) != len(xs):
            raise ValueError("interpolation points must be distinct")
        total = Polynomial.zero()
        for i, (xi, yi) in enumerate(zip(xs, ys)):
            basis = Polynomial([1])
            denom = 1
            for j, xj in enumerate(xs):
                if i == j:
                    continue
                basis = basis * Polynomial([-xj, 1])
                denom = denom * (xi - xj) % R
            scale = yi * int(invmod(denom, R)) % R
            total = total + basis.scale(scale)
        return total

    # -- ring operations -------------------------------------------------------

    @property
    def degree(self) -> int:
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        return not self.coeffs

    def __add__(self, other: "Polynomial") -> "Polynomial":
        n = max(len(self.coeffs), len(other.coeffs))
        a = self.coeffs + [0] * (n - len(self.coeffs))
        b = other.coeffs + [0] * (n - len(other.coeffs))
        return Polynomial([x + y for x, y in zip(a, b)])

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        n = max(len(self.coeffs), len(other.coeffs))
        a = self.coeffs + [0] * (n - len(self.coeffs))
        b = other.coeffs + [0] * (n - len(other.coeffs))
        return Polynomial([x - y for x, y in zip(a, b)])

    def __neg__(self) -> "Polynomial":
        return Polynomial([-c for c in self.coeffs])

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        if self.is_zero() or other.is_zero():
            return Polynomial.zero()
        out = [0] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                out[i + j] = (out[i + j] + a * b) % R
        return Polynomial(out)

    def scale(self, k: int) -> "Polynomial":
        return Polynomial([c * k for c in self.coeffs])

    def divmod(self, divisor: "Polynomial") -> tuple:
        """Euclidean division: returns ``(quotient, remainder)``."""
        if divisor.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        remainder = list(self.coeffs)
        quotient = [0] * max(0, len(remainder) - len(divisor.coeffs) + 1)
        lead_inv = int(invmod(divisor.coeffs[-1], R))
        d = len(divisor.coeffs)
        for i in range(len(quotient) - 1, -1, -1):
            q = remainder[i + d - 1] * lead_inv % R
            quotient[i] = q
            if q:
                for j, c in enumerate(divisor.coeffs):
                    remainder[i + j] = (remainder[i + j] - q * c) % R
        return Polynomial(quotient), Polynomial(remainder)

    def __floordiv__(self, other: "Polynomial") -> "Polynomial":
        return self.divmod(other)[0]

    def __mod__(self, other: "Polynomial") -> "Polynomial":
        return self.divmod(other)[1]

    # -- evaluation ----------------------------------------------------------------

    def __call__(self, point: int) -> int:
        """Horner evaluation at ``point`` (returns an int mod r)."""
        acc = 0
        for c in reversed(self.coeffs):
            acc = (acc * point + c) % R
        return acc

    # -- plumbing -------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        return isinstance(other, Polynomial) and self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash(tuple(self.coeffs))

    def __repr__(self) -> str:
        if self.is_zero():
            return "Polynomial(0)"
        terms = []
        for i, c in enumerate(self.coeffs):
            if c:
                terms.append(f"{c}*x^{i}" if i else f"{c}")
        return "Polynomial(" + " + ".join(terms) + ")"
