"""Vectorized multi-limb field arithmetic over numpy ``uint64`` arrays.

The numpy field backend (``ZKROWNN_FIELD_BACKEND=numpy``) keeps scalar
field elements as plain ints -- identical to the stdlib backend -- and
switches only the two hottest batch kernels (Pippenger bucket
accumulation, NTT butterflies) onto the vectorized routines in this
module.  A batch of ``N`` field elements is a contiguous ``(L, N)``
``uint64`` array of radix-``2^32`` limbs (``L = 8`` for the 254-bit BN254
moduli); one numpy ufunc pass then advances all ``N`` lanes of a limb at
once instead of dispatching ``N`` CPython big-int operations.

Why radix ``2^32`` inside ``uint64`` storage: limb products of operands
below ``2^32`` fit exactly in ``uint64`` (no double-rounding games), the
lo/hi halves of each product are split with one mask and one shift, and
column sums of up to ``2L+1`` 32-bit terms stay far below ``2^64``, so
carries can be deferred to one propagation sweep per multiplication
(``~2^37`` worst-case column magnitude).  Multiplication is Montgomery:
a schoolbook column product followed by a single non-interleaved REDC
whose ``m = (t mod R) * n' mod R`` factor is a *truncated* low product
(terms with ``i + j >= L`` vanish mod ``R = 2^(32L)``).

All outputs are canonical (``[0, p)``): the batch-affine kernel detects
coordinate collisions by limb equality, which lazy reduction would break
-- the same correctness condition the scalar Montgomery backend
documents.  Cache residency dominates throughput (measured ~0.6 us per
multiply at 2k lanes vs ~1.5 us at 50k on the dev box), so wide
multiplies are tiled to ``TILE``-column blocks.

Contexts are cached per ``(pid, modulus)``:
:func:`reset_limb_contexts` drops them in forked workers (fork-safety
parity with the gmpy2 backend's registry reset).
"""

from __future__ import annotations

import importlib.util
import os
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "numpy_available",
    "LimbContext",
    "get_limb_context",
    "reset_limb_contexts",
]


def numpy_available() -> bool:
    """True when numpy is importable (checked without importing it)."""
    return importlib.util.find_spec("numpy") is not None


_np = None


def _numpy():
    global _np
    if _np is None:
        import numpy

        _np = numpy
    return _np


class LimbContext:
    """Vectorized Montgomery arithmetic for one odd modulus.

    Batches are ``(L, N)`` ``uint64`` arrays, limb ``k`` holding bits
    ``[32k, 32k+32)`` of each lane; every public method returns canonical
    residues.  Montgomery-domain values use ``R = 2^(32 L)``.
    """

    #: Column-block width for tiled multiplies.  Large enough to amortize
    #: numpy ufunc dispatch (~1000 slab ops per multiply), small enough
    #: that the ~(3L+2)-row working set stays in last-level cache;
    #: measured optimum on the dev box (286 ns/lane vs 429 at 8k and 834
    #: at 1k).  The tuner can override per machine via the profile.
    TILE = 16384

    #: Below this width the batch-inversion product tree hands off to a
    #: sequential python Montgomery-trick pass: narrow numpy calls are
    #: dispatch-bound, and 3 CPython multiplies per lane beat a dozen
    #: sub-millisecond kernel launches.
    INV_TAIL = 2048

    def __init__(self, modulus: int):
        if modulus % 2 == 0 or modulus < 3:
            raise ValueError("LimbContext requires an odd modulus >= 3")
        np = _numpy()
        self.np = np
        self.modulus = modulus
        self.limbs = L = (modulus.bit_length() + 31) // 32
        self.mont_bits = 32 * L
        self.R = 1 << self.mont_bits
        self.r2 = (self.R * self.R) % modulus
        self.one_mont = self.R % modulus
        nprime = (-pow(modulus, -1, self.R)) % self.R
        mask32 = (1 << 32) - 1
        self._p_scalars = [
            np.uint64((modulus >> (32 * i)) & mask32) for i in range(L)
        ]
        self._np_scalars = [
            np.uint64((nprime >> (32 * i)) & mask32) for i in range(L)
        ]
        self._mask32 = np.uint64(mask32)
        self._shift32 = np.uint64(32)
        self._two32 = np.uint64(1) << self._shift32
        self._one_u64 = np.uint64(1)
        self._r2_col = self.to_limbs([self.r2])  # (L, 1)
        self._one_col = self.to_limbs([1])  # (L, 1): plain integer one
        self._one_mont_col = self.to_limbs([self.one_mont])
        self._p_col = self.to_limbs([modulus])
        # Reusable per-width scratch for _mont_mul_block: allocation (and
        # the page faults behind it) costs as much as the arithmetic at
        # these widths -- reuse cuts the multiply to ~2/3 (measured).
        self._ws: Dict[int, tuple] = {}

    def _workspace(self, n: int) -> tuple:
        ws = self._ws.get(n)
        if ws is None:
            if len(self._ws) > 16:
                self._ws.clear()
            np = self.np
            L = self.limbs
            ws = (
                np.zeros((2 * L + 1, n), dtype=np.uint64),  # cols
                np.zeros((L, n), dtype=np.uint64),  # m
                np.empty(n, dtype=np.uint64),  # prod
                np.empty(n, dtype=np.uint64),  # tmp
                np.empty(n, dtype=np.uint64),  # borrow
            )
            self._ws[n] = ws
        return ws

    # -- int <-> limb conversions ---------------------------------------------

    def to_limbs(self, values: Sequence[int]):
        """Pack canonical ints into an ``(L, N)`` uint64 limb array."""
        np = self.np
        nb = self.limbs * 4
        buf = b"".join(v.to_bytes(nb, "little") for v in values)
        arr = np.frombuffer(buf, dtype="<u4").reshape(len(values), self.limbs)
        return np.ascontiguousarray(arr.T).astype(np.uint64)

    def from_limbs(self, arr) -> List[int]:
        """Unpack an ``(L, N)`` limb array back to canonical python ints."""
        nb = self.limbs * 4
        buf = arr.T.astype("<u4").tobytes()
        return [
            int.from_bytes(buf[i * nb : (i + 1) * nb], "little")
            for i in range(arr.shape[1])
        ]

    # -- Montgomery multiplication --------------------------------------------

    def mont_mul(self, a, b):
        """Vectorized REDC product ``a * b / R mod p`` (canonical output).

        ``b`` may be ``(L, 1)`` to broadcast one constant across all of
        ``a``'s lanes.  Wide inputs are processed in ``TILE``-column
        blocks so the column accumulator stays cache-resident.
        """
        np = self.np
        n = a.shape[1]
        if n <= self.TILE:
            return self._mont_mul_block(a, b)
        out = np.empty((self.limbs, n), dtype=np.uint64)
        broadcast = b.shape[1] == 1
        for s in range(0, n, self.TILE):
            e = min(s + self.TILE, n)
            out[:, s:e] = self._mont_mul_block(
                a[:, s:e], b if broadcast else b[:, s:e]
            )
        return out

    def _mont_mul_block(self, a, b):
        np = self.np
        L = self.limbs
        mask32 = self._mask32
        shift32 = self._shift32
        n = a.shape[1]
        cols, _, prod, tmp, _ = self._workspace(n)
        cols[...] = 0
        # Schoolbook column product with lo/hi split.  Operand limbs are
        # < 2^32 so each uint64 product is exact; each column gathers at
        # most 2L+1 32-bit terms (< 2^37), so carries wait until the end.
        for i in range(L):
            ai = a[i]
            for j in range(L):
                np.multiply(ai, b[j], out=prod)
                np.bitwise_and(prod, mask32, out=tmp)
                cols[i + j] += tmp
                np.right_shift(prod, shift32, out=tmp)
                cols[i + j + 1] += tmp
        for k in range(2 * L):
            np.right_shift(cols[k], shift32, out=tmp)
            cols[k + 1] += tmp
            cols[k] &= mask32
        return self._redc_cols(cols)

    def _redc_cols(self, cols):
        """Finish REDC on a carried column array ``t`` (``2L+1`` rows).

        Requires ``t < p * R`` with rows ``0 .. 2L-1`` already reduced to
        32 bits.  Computes ``m = (t mod R) n' mod R`` as a truncated low
        product (terms with ``i + j >= L`` vanish mod ``R``), folds
        ``m p`` into the columns, and returns the high half conditionally
        reduced into ``[0, p)``.  ``cols`` must be (or alias) the
        workspace column buffer for its width.
        """
        np = self.np
        L = self.limbs
        mask32 = self._mask32
        shift32 = self._shift32
        n = cols.shape[1]
        _, m, prod, tmp, borrow = self._workspace(n)
        m[...] = 0
        np_scalars = self._np_scalars
        for i in range(L):
            ti = cols[i]
            for j in range(L - i):
                np.multiply(ti, np_scalars[j], out=prod)
                np.bitwise_and(prod, mask32, out=tmp)
                m[i + j] += tmp
                if i + j + 1 < L:
                    np.right_shift(prod, shift32, out=tmp)
                    m[i + j + 1] += tmp
        for k in range(L - 1):
            np.right_shift(m[k], shift32, out=tmp)
            m[k + 1] += tmp
            m[k] &= mask32
        m[L - 1] &= mask32
        p_scalars = self._p_scalars
        for i in range(L):
            mi = m[i]
            for j in range(L):
                np.multiply(mi, p_scalars[j], out=prod)
                np.bitwise_and(prod, mask32, out=tmp)
                cols[i + j] += tmp
                np.right_shift(prod, shift32, out=tmp)
                cols[i + j + 1] += tmp
        for k in range(2 * L):
            np.right_shift(cols[k], shift32, out=tmp)
            cols[k + 1] += tmp
            cols[k] &= mask32
        # t + m p is divisible by R: rows 0..L-1 are now zero and the
        # result r = rows L..2L satisfies r < 2p.  Subtract p once where
        # r >= p (borrow-select keeps everything branch-free).
        out = np.empty((L, n), dtype=np.uint64)
        two32 = self._two32
        one = self._one_u64
        borrow[...] = 0
        for k in range(L):
            np.add(cols[L + k], two32, out=prod)
            prod -= p_scalars[k]
            prod -= borrow
            np.bitwise_and(prod, mask32, out=out[k])
            np.right_shift(prod, shift32, out=borrow)
            np.subtract(one, borrow, out=borrow)
        keep = cols[2 * L] < borrow  # top limb 0 and low half < p
        for k in range(L):
            np.copyto(out[k], cols[L + k], where=keep)
        return out

    # -- Montgomery domain conversions ----------------------------------------

    def to_mont(self, a):
        return self.mont_mul(a, self._r2_col)

    def from_mont(self, a):
        """REDC of canonical limbs: ``a / R mod p`` (inverse of to_mont)."""
        np = self.np
        L = self.limbs
        n = a.shape[1]
        if n > self.TILE:
            out = np.empty((L, n), dtype=np.uint64)
            for s in range(0, n, self.TILE):
                e = min(s + self.TILE, n)
                out[:, s:e] = self.from_mont(a[:, s:e])
            return out
        cols = self._workspace(n)[0]
        cols[...] = 0
        cols[:L] = a
        return self._redc_cols(cols)

    # -- modular add/sub/neg (domain-agnostic, canonical in/out) ---------------

    def addmod(self, a, b):
        np = self.np
        L = self.limbs
        mask32 = self._mask32
        shift32 = self._shift32
        n = a.shape[1]
        out = np.empty((L, n), dtype=np.uint64)
        carry = np.zeros(n, dtype=np.uint64)
        for k in range(L):
            s = a[k] + b[k] + carry
            out[k] = s & mask32
            carry = s >> shift32
        # a + b < 2p; subtract p once where (carry, out) >= p.
        sub = np.empty((L, n), dtype=np.uint64)
        two32 = self._two32
        one = self._one_u64
        p_scalars = self._p_scalars
        borrow = np.zeros(n, dtype=np.uint64)
        for k in range(L):
            d = out[k] + two32 - p_scalars[k] - borrow
            sub[k] = d & mask32
            borrow = one - (d >> shift32)
        take = carry >= borrow  # carry limb absorbs the final borrow
        for k in range(L):
            np.copyto(out[k], sub[k], where=take)
        return out

    def submod(self, a, b):
        np = self.np
        L = self.limbs
        mask32 = self._mask32
        shift32 = self._shift32
        n = a.shape[1]
        out = np.empty((L, n), dtype=np.uint64)
        two32 = self._two32
        one = self._one_u64
        borrow = np.zeros(n, dtype=np.uint64)
        for k in range(L):
            d = a[k] + two32 - b[k] - borrow
            out[k] = d & mask32
            borrow = one - (d >> shift32)
        # Where a < b the difference wrapped mod 2^(32L): add p back (the
        # final carry out cancels the borrow and is dropped).
        p_scalars = self._p_scalars
        carry = np.zeros(n, dtype=np.uint64)
        for k in range(L):
            s = out[k] + p_scalars[k] * borrow + carry
            out[k] = s & mask32
            carry = s >> shift32
        return out

    def negmod(self, a):
        """``p - a`` with ``-0 = 0`` (valid in either domain)."""
        np = self.np
        zero = ~a.any(axis=0)
        out = self.submod(np.broadcast_to(self._p_col, a.shape).copy(), a)
        for k in range(self.limbs):
            np.copyto(out[k], a[k], where=zero)
        return out

    def is_zero(self, a):
        """Boolean lane mask: which columns are exactly zero."""
        return ~a.any(axis=0)

    # -- batch inversion --------------------------------------------------------

    def batch_inv_mont(self, a):
        """Lane-wise Montgomery-domain inverses of nonzero lanes.

        Product-tree batch inversion: the up-sweep pairs lanes and
        multiplies (``~N`` multiplies in ``log N`` vectorized passes),
        the single root inverse runs through python ``pow``, and the
        down-sweep peels per-lane inverses back out (``~2N`` multiplies).
        Same 3-multiplies-per-element amortized cost as Montgomery's
        sequential trick, but every pass is a wide vector op.  All lanes
        must be nonzero.
        """
        np = self.np
        levels = []
        cur = a
        while cur.shape[1] > self.INV_TAIL:
            w = cur.shape[1]
            half = w // 2
            prod = self.mont_mul(cur[:, 0 : 2 * half : 2], cur[:, 1 : 2 * half : 2])
            if w & 1:
                prod = np.concatenate([prod, cur[:, -1:]], axis=1)
            levels.append(cur)
            cur = prod
        inv = self.to_limbs(self._batch_inv_small(self.from_limbs(cur)))
        for level in reversed(levels):
            w = level.shape[1]
            half = w // 2
            par = inv[:, :half]
            # One merged multiply per level: [inv(l*r)*r, inv(l*r)*l]
            # yields both children's inverses in a single kernel call.
            stacked = np.concatenate(
                [level[:, 1 : 2 * half : 2], level[:, 0 : 2 * half : 2]], axis=1
            )
            pars = np.concatenate([par, par], axis=1)
            res = self.mont_mul(stacked, pars)
            new = np.empty((self.limbs, w), dtype=np.uint64)
            new[:, 0 : 2 * half : 2] = res[:, :half]
            new[:, 1 : 2 * half : 2] = res[:, half:]
            if w & 1:
                new[:, -1:] = inv[:, half : half + 1]
            inv = new
        return inv

    def _batch_inv_small(self, values: List[int]) -> List[int]:
        """Sequential Montgomery-trick inverses of Montgomery-form ints.

        For each nonzero ``v = x R mod p`` returns ``x^(-1) R mod p``:
        seeding the peel accumulator with ``R^2`` hands every peeled
        inverse exactly the one extra ``R^2`` factor that maps
        ``v^(-1) = x^(-1) R^(-1)`` back into the Montgomery domain, so
        the whole pass stays at 3 multiplies per lane.
        """
        p = self.modulus
        prefix = []
        acc = 1
        for v in values:
            prefix.append(acc)
            acc = acc * v % p
        if acc == 0:
            raise ZeroDivisionError("batch_inv_mont requires nonzero lanes")
        inv = pow(acc, -1, p) * self.r2 % p
        out = [0] * len(values)
        for i in range(len(values) - 1, -1, -1):
            out[i] = inv * prefix[i] % p
            inv = inv * values[i] % p
        return out


# -- short-Weierstrass batch addition (a = 0 curves: BN254 G1) -----------------


#: Lane tile for one batch-addition pass.  A tile's intermediates (den,
#: num, slope, x3, y3 at 8 limbs x 8 bytes each) must stay cache-resident
#: across the ~15 elementwise passes of the add; past ~32k lanes every
#: pass streams from DRAM and the vectorization win evaporates (measured
#: 1.30x at 32k lanes vs 0.99x at 98k on the dev box).
ADD_TILE = 32768


def batch_affine_add_limbs(ctx: LimbContext, x1, y1, x2, y2):
    """Lane-wise affine ``(x1,y1) + (x2,y2)`` on ``y^2 = x^3 + b`` over Fp.

    All coordinates are canonical Montgomery-domain ``(L, N)`` limb
    arrays of *finite* points.  Returns ``(x3, y3, inf)`` where ``inf``
    marks lanes whose sum is the point at infinity (their ``x3, y3`` are
    garbage).  Chord/tangent selection mirrors ``_batch_affine_add``:
    equal ``x`` with ``y1 + y2 = 0`` is a cancellation, equal points take
    the tangent slope (odd group order keeps ``y`` nonzero there), and
    cancelled lanes get a unit denominator so one shared batch inversion
    serves the whole round.  Wide rounds process in :data:`ADD_TILE`-lane
    tiles (each with its own shared inversion) to stay cache-resident.
    """
    np = ctx.np
    n = x1.shape[1]
    if n > ADD_TILE:
        xs, ys, infs = [], [], []
        for lo in range(0, n, ADD_TILE):
            hi = min(lo + ADD_TILE, n)
            tx, ty, ti = _batch_affine_add_tile(
                ctx,
                np.ascontiguousarray(x1[:, lo:hi]),
                np.ascontiguousarray(y1[:, lo:hi]),
                np.ascontiguousarray(x2[:, lo:hi]),
                np.ascontiguousarray(y2[:, lo:hi]),
            )
            xs.append(tx)
            ys.append(ty)
            infs.append(ti)
        return (
            np.concatenate(xs, axis=1),
            np.concatenate(ys, axis=1),
            np.concatenate(infs),
        )
    return _batch_affine_add_tile(ctx, x1, y1, x2, y2)


def _batch_affine_add_tile(ctx: LimbContext, x1, y1, x2, y2):
    np = ctx.np
    den = ctx.submod(x2, x1)
    num = ctx.submod(y2, y1)
    collide = ctx.is_zero(den)
    if collide.any():
        cancel = collide & ctx.is_zero(ctx.addmod(y1, y2))
        dbl = collide & ~cancel
        if dbl.any():
            idx = np.flatnonzero(dbl)
            xs = x1[:, idx]
            ys = y1[:, idx]
            xsq = ctx.mont_mul(xs, xs)
            num[:, idx] = ctx.addmod(ctx.addmod(xsq, xsq), xsq)
            den[:, idx] = ctx.addmod(ys, ys)
        if cancel.any():
            idx = np.flatnonzero(cancel)
            den[:, idx] = ctx._one_mont_col
    else:
        cancel = np.zeros(x1.shape[1], dtype=bool)
    inv = ctx.batch_inv_mont(den)
    slope = ctx.mont_mul(num, inv)
    x3 = ctx.submod(ctx.submod(ctx.mont_mul(slope, slope), x1), x2)
    y3 = ctx.submod(ctx.mont_mul(slope, ctx.submod(x1, x3)), y1)
    return x3, y3, cancel


def reduce_bucket_grid(
    ctx: LimbContext,
    x,
    y,
    bucket_ids,
    n_buckets: int,
    *,
    min_pairs: int = 0,
    tail_reduce=None,
) -> List[Optional[Tuple[int, int]]]:
    """Sum scattered points per bucket; fully vectorized tree reduction.

    ``x, y`` are Montgomery-domain ``(L, M)`` limb arrays of finite
    points and ``bucket_ids`` an ``(M,)`` integer array assigning each
    point to a flat bucket.  Each round sorts lanes by bucket, pairs
    consecutive lanes within every bucket, and performs the whole
    round's additions as one :func:`batch_affine_add_limbs` call -- the
    vectorized twin of ``_reduce_buckets``'s shared-inversion rounds.
    Returns one canonical plain-int affine point (or ``None``) per
    bucket.  Point addition is exact and associative-commutative on the
    bucket sum, so intra-bucket pairing order cannot change results.

    Vectorized rounds stop paying once they narrow: when a round would
    perform fewer than ``min_pairs`` additions and ``tail_reduce`` is
    given, the remaining lanes convert to plain ints (the same
    conversion the exit path performs anyway) and ``tail_reduce`` --
    a ``List[List[point]] -> List[Optional[point]]`` over ``n_buckets``
    buckets -- finishes the narrow rounds scalar-side.
    """
    np = ctx.np
    bid = np.asarray(bucket_ids, dtype=np.int64)
    while bid.shape[0] > 1:
        order = np.argsort(bid, kind="stable")
        bid = bid[order]
        x = x[:, order]
        y = y[:, order]
        m = bid.shape[0]
        starts = np.flatnonzero(np.concatenate(([True], bid[1:] != bid[:-1])))
        counts = np.diff(np.append(starts, m))
        if counts.max() <= 1:
            break
        rank = np.arange(m, dtype=np.int64) - np.repeat(starts, counts)
        lane_count = np.repeat(counts, counts)
        first = (rank & 1) == 0
        paired = first & (rank + 1 < lane_count)
        i1 = np.flatnonzero(paired)
        if tail_reduce is not None and i1.shape[0] < min_pairs:
            buckets: List[List[Tuple[int, int]]] = [
                [] for _ in range(n_buckets)
            ]
            xs = ctx.from_limbs(ctx.from_mont(x))
            ys = ctx.from_limbs(ctx.from_mont(y))
            for b, px, py in zip(bid.tolist(), xs, ys):
                buckets[b].append((px, py))
            return tail_reduce(buckets)
        i2 = i1 + 1
        leftover = np.flatnonzero(first & (rank + 1 >= lane_count))
        x3, y3, inf = batch_affine_add_limbs(
            ctx, x[:, i1], y[:, i1], x[:, i2], y[:, i2]
        )
        keep = ~inf
        bid = np.concatenate([bid[leftover], bid[i1][keep]])
        x = np.concatenate([x[:, leftover], x3[:, keep]], axis=1)
        y = np.concatenate([y[:, leftover], y3[:, keep]], axis=1)
    out: List[Optional[Tuple[int, int]]] = [None] * n_buckets
    if bid.shape[0]:
        xs = ctx.from_limbs(ctx.from_mont(x))
        ys = ctx.from_limbs(ctx.from_mont(y))
        for b, px, py in zip(bid.tolist(), xs, ys):
            out[b] = (px, py)
    return out


# -- per-process context registry ----------------------------------------------

_CTX_CACHE: Dict[Tuple[int, int], LimbContext] = {}


def get_limb_context(modulus: int) -> LimbContext:
    """Process-wide :class:`LimbContext` for ``modulus`` (PID-keyed).

    Keyed by pid so forked workers build their own contexts -- the arrays
    themselves are plain data and fork-safe, but keeping the registry
    discipline identical to the field-backend registry means
    ``reinit_field_backend_after_fork`` has one story for every backend.
    """
    pid = os.getpid()
    key = (pid, modulus)
    ctx = _CTX_CACHE.get(key)
    if ctx is None:
        for stale in [k for k in _CTX_CACHE if k[0] != pid]:
            del _CTX_CACHE[stale]
        ctx = LimbContext(modulus)
        _CTX_CACHE[key] = ctx
    return ctx


def reset_limb_contexts() -> None:
    """Drop all cached contexts (called after fork / backend switches)."""
    _CTX_CACHE.clear()
