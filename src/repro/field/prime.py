"""Prime field arithmetic.

This module provides the two fields every other layer of the stack is built
on:

* :data:`Fp` -- the BN254 *base* field (coordinates of curve points).
* :data:`Fr` -- the BN254 *scalar* field (circuit values, witnesses, QAP
  polynomials).

The paper's implementation uses libsnark's ``alt_bn128`` curve (which it
calls BN128); the parameters below are exactly that curve's, so field/curve
sizes -- and therefore proof and key sizes -- match the paper's setting.

Elements are immutable wrappers around Python integers.  Hot inner loops
elsewhere (curve arithmetic, NTT) work on raw integers for speed; this class
is the readable public face used by circuits, the SNARK layer, and tests.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence, Union

from .backend import FieldOps, get_field_ops

__all__ = [
    "PrimeField",
    "FieldElement",
    "Fp",
    "Fr",
    "BN254_P",
    "BN254_R",
    "BN254_X",
    "batch_inverse",
    "batch_inverse_ints",
    "tonelli_shanks",
]

# BN254 ("alt_bn128") parameters.  The curve family is parameterised by
# x = 4965661367192848881; see Groth16 / libsnark documentation.
BN254_X = 4965661367192848881
BN254_P = 21888242871839275222246405745257275088696311157297823662689037894645226208583
BN254_R = 21888242871839275222246405745257275088548364400416034343698204186575808495617


class FieldElement:
    """An element of a prime field, supporting natural operator syntax."""

    __slots__ = ("field", "value")

    def __init__(self, field: "PrimeField", value: int):
        self.field = field
        self.value = value % field.modulus

    # -- arithmetic ---------------------------------------------------------

    def _coerce(self, other: Union["FieldElement", int]) -> int:
        if isinstance(other, FieldElement):
            if other.field is not self.field:
                raise ValueError(
                    f"cannot mix elements of {self.field.name} and {other.field.name}"
                )
            return other.value
        if isinstance(other, int):
            return other % self.field.modulus
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.value + v)

    __radd__ = __add__

    def __sub__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.value - v)

    def __rsub__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, v - self.value)

    def __mul__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.value * v)

    __rmul__ = __mul__

    def __neg__(self):
        return FieldElement(self.field, -self.value)

    def __truediv__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.value * pow(v, -1, self.field.modulus))

    def __rtruediv__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, v * pow(self.value, -1, self.field.modulus))

    def __pow__(self, exponent: int):
        return FieldElement(self.field, pow(self.value, exponent, self.field.modulus))

    def inverse(self) -> "FieldElement":
        """Multiplicative inverse; raises ``ZeroDivisionError`` on zero."""
        if self.value == 0:
            raise ZeroDivisionError("inverse of zero field element")
        return FieldElement(self.field, pow(self.value, -1, self.field.modulus))

    def square(self) -> "FieldElement":
        return FieldElement(self.field, self.value * self.value)

    # -- predicates and conversions ----------------------------------------

    def is_zero(self) -> bool:
        return self.value == 0

    def legendre(self) -> int:
        """Legendre symbol: 1 if QR, -1 if non-residue, 0 if zero."""
        if self.value == 0:
            return 0
        s = pow(self.value, (self.field.modulus - 1) // 2, self.field.modulus)
        return 1 if s == 1 else -1

    def sqrt(self) -> "FieldElement":
        """A square root, via Tonelli-Shanks; raises ``ValueError`` if none."""
        root = tonelli_shanks(self.value, self.field.modulus)
        if root is None:
            raise ValueError("element is not a quadratic residue")
        return FieldElement(self.field, root)

    def to_int(self) -> int:
        return self.value

    def signed(self) -> int:
        """Value lifted to the symmetric range ``(-p/2, p/2]``.

        Fixed-point circuit values encode negative numbers as field elements
        above ``p/2``; this is the decoding map.
        """
        half = self.field.modulus // 2
        return self.value - self.field.modulus if self.value > half else self.value

    # -- dunder plumbing -----------------------------------------------------

    def __eq__(self, other) -> bool:
        if isinstance(other, FieldElement):
            return self.field is other.field and self.value == other.value
        if isinstance(other, int):
            return self.value == other % self.field.modulus
        return NotImplemented

    def __hash__(self) -> int:
        return hash((id(self.field), self.value))

    def __repr__(self) -> str:
        return f"{self.field.name}({self.value})"

    def __int__(self) -> int:
        return self.value

    def __bool__(self) -> bool:
        return self.value != 0


class PrimeField:
    """A prime field GF(p); call the instance to make elements."""

    def __init__(self, modulus: int, name: str = "F"):
        if modulus < 2:
            raise ValueError("modulus must be a prime >= 2")
        self.modulus = modulus
        self.name = name
        self.zero = FieldElement(self, 0)
        self.one = FieldElement(self, 1)

    def __call__(self, value: Union[int, FieldElement]) -> FieldElement:
        if isinstance(value, FieldElement):
            if value.field is not self:
                raise ValueError("element belongs to a different field")
            return value
        return FieldElement(self, value)

    def __repr__(self) -> str:
        return f"PrimeField({self.name}, bits={self.modulus.bit_length()})"

    @property
    def ops(self) -> FieldOps:
        """The active field-arithmetic backend for this modulus.

        Hot layers (curves, NTT, SNARK key preparation) pull native
        residues and kernel constants from here; this class remains the
        readable ``int``-valued public face.
        """
        return get_field_ops(self.modulus)

    def __contains__(self, element: object) -> bool:
        return isinstance(element, FieldElement) and element.field is self

    # -- element constructors -------------------------------------------------

    def random(self, rng) -> FieldElement:
        """Uniform element using ``rng`` (``random.Random`` or compatible)."""
        return FieldElement(self, rng.randrange(self.modulus))

    def random_nonzero(self, rng) -> FieldElement:
        while True:
            e = self.random(rng)
            if not e.is_zero():
                return e

    def from_bytes(self, data: bytes) -> FieldElement:
        return FieldElement(self, int.from_bytes(data, "big"))

    def hash_to_field(self, data: bytes, domain: bytes = b"repro") -> FieldElement:
        """Deterministic hash-to-field (used for seeded test vectors)."""
        digest = hashlib.sha512(domain + b"|" + data).digest()
        return FieldElement(self, int.from_bytes(digest, "big"))

    def element_byte_length(self) -> int:
        return (self.modulus.bit_length() + 7) // 8

    # -- roots of unity --------------------------------------------------------

    def two_adicity(self) -> int:
        """Largest s with 2^s dividing p-1 (NTT-supported domain size log)."""
        n = self.modulus - 1
        s = 0
        while n % 2 == 0:
            n //= 2
            s += 1
        return s

    def root_of_unity(self, order: int) -> FieldElement:
        """A primitive ``order``-th root of unity; ``order`` a power of two."""
        if order & (order - 1):
            raise ValueError("order must be a power of two")
        s = self.two_adicity()
        if order > (1 << s):
            raise ValueError(
                f"field supports 2-adic orders up to 2^{s}, asked for {order}"
            )
        # Find a generator of the full 2^s subgroup by trial: g^((p-1)/2^s)
        # has order exactly 2^s iff squaring it s-1 times is not 1.
        for candidate in range(2, 1000):
            w = pow(candidate, (self.modulus - 1) >> s, self.modulus)
            if pow(w, 1 << (s - 1), self.modulus) != 1:
                break
        else:  # pragma: no cover - unreachable for real primes
            raise ArithmeticError("no 2-adic generator found")
        # Reduce from order 2^s to the requested order.
        w = pow(w, (1 << s) // order, self.modulus)
        return FieldElement(self, w)

    def multiplicative_generator(self) -> FieldElement:
        """A small non-residue, usable as a coset shift off the NTT domain.

        A quadratic non-residue cannot lie in the index-2 subgroup, hence it
        is never a 2-power root of unity; that is all the coset trick needs.
        """
        for candidate in range(2, 1000):
            if pow(candidate, (self.modulus - 1) // 2, self.modulus) != 1:
                return FieldElement(self, candidate)
        raise ArithmeticError("no generator found")  # pragma: no cover


def tonelli_shanks(n: int, p: int) -> Union[int, None]:
    """Square root of ``n`` modulo prime ``p``; ``None`` if no root exists."""
    n %= p
    if n == 0:
        return 0
    if pow(n, (p - 1) // 2, p) != 1:
        return None
    if p % 4 == 3:
        return pow(n, (p + 1) // 4, p)
    # Write p-1 = q * 2^s with q odd.
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    # Find a non-residue z.
    z = 2
    while pow(z, (p - 1) // 2, p) != p - 1:
        z += 1
    m, c, t, r = s, pow(z, q, p), pow(n, q, p), pow(n, (q + 1) // 2, p)
    while t != 1:
        t2 = t
        i = 0
        for i in range(1, m):
            t2 = t2 * t2 % p
            if t2 == 1:
                break
        b = pow(c, 1 << (m - i - 1), p)
        m, c = i, b * b % p
        t, r = t * c % p, r * b % p
    return r


def batch_inverse_ints(values: Sequence[int], modulus: int) -> List[int]:
    """Invert many raw residues mod ``modulus`` with one modular inversion.

    Montgomery's trick on raw (backend-native) residues: the hot form used
    by the curve layer (batch-affine MSM buckets, point normalization),
    where wrapping every coordinate in a :class:`FieldElement` would
    dominate the savings.  Routed through the active field backend, so the
    chain multiplications and the single inversion run on gmpy2 natives
    when that backend is selected.
    """
    return get_field_ops(modulus).batch_inverse(values)


def batch_inverse(elements: Sequence[FieldElement]) -> List[FieldElement]:
    """Invert many elements with one modular inversion (Montgomery's trick)."""
    if not elements:
        return []
    field = elements[0].field
    raw = batch_inverse_ints([e.value for e in elements], field.modulus)
    # Backend natives (e.g. mpz) are canonicalized so FieldElement.value
    # stays a plain int regardless of the active backend.
    return [FieldElement(field, int(v)) for v in raw]


#: BN254 base field (curve coordinates live here).
Fp = PrimeField(BN254_P, "Fp")

#: BN254 scalar field (witness values, QAP polynomials live here).
Fr = PrimeField(BN254_R, "Fr")
