"""Named shipped circuits the CLI and CI audit against the baseline.

The catalog is the Table-I builder set (:func:`repro.bench.table1.
builders_for_scale`): every gadget circuit and both architecture
extraction circuits.  Names are matched case-insensitively so
``zkrownn audit-circuit ber`` works.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .circuit_audit import audit_compiled
from .findings import AuditReport

__all__ = ["catalog_names", "audit_named_circuit", "resolve_circuit_name"]


def _builders(scale: str) -> Dict[str, Callable]:
    from ..bench.table1 import builders_for_scale

    return builders_for_scale(scale)


def catalog_names(scale: str = "tiny") -> List[str]:
    """Every auditable named circuit (Table-I gadgets + architectures)."""
    return list(_builders(scale))


def resolve_circuit_name(name: str, scale: str = "tiny") -> Optional[str]:
    """Case-insensitive catalog lookup; None when unknown."""
    lowered = name.lower()
    for canonical in catalog_names(scale):
        if canonical.lower() == lowered:
            return canonical
    return None


def audit_named_circuit(name: str, *, scale: str = "tiny") -> AuditReport:
    """Build one catalog circuit at ``scale`` and audit it."""
    from ..engine.compiled import CompiledCircuit

    canonical = resolve_circuit_name(name, scale)
    if canonical is None:
        raise KeyError(
            f"unknown circuit {name!r}; catalog: {', '.join(catalog_names(scale))}"
        )
    builder = _builders(scale)[canonical]()
    compiled = CompiledCircuit.from_builder(builder, name=canonical)
    return audit_compiled(compiled)
