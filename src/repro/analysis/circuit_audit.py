"""The audit driver: severity-ranked static passes over one R1CS.

Passes, in the order run (each contributes findings tagged with its
``pass_id``):

``unbound-public`` (critical)
    A public *input* variable appearing in no constraint: the statement
    being proven does not depend on it, so a verifier checking it checks
    nothing.
``unbound-output`` (critical)
    A public output placeholder never bound to a computed wire: the
    prover may publish any value for it.
``unconstrained-hint`` (high)
    An ``alloc_hint`` variable appearing in no constraint at all.
``unconstrained-wire`` (warning)
    Any other allocated-but-unused variable (dead private input).
``unsatisfiable-constraint`` (critical) / ``degenerate-constraint`` (info)
    Constant-only constraints: ``a*b != c`` can never be satisfied;
    ``0*0=0``-style tautologies are dead weight.
``duplicate-constraint`` (info)
    Byte-identical constraints (A*B commuted counts as identical).
``missing-boolean`` (high)
    A wire consumed by a boolean gadget (``and_``/``or_``/``xor_``/
    ``not_``/``select``) with no booleanity constraint anywhere.
``underconstrained-hint`` (high) / ``underconstrained-output`` (critical)
    The Picus-style determinism pass (:mod:`repro.analysis.determinism`)
    could not prove the wire is uniquely determined by the circuit's
    inputs -- a probable forgeable witness.  The determined set is
    seeded with the *semantic* inputs only (``public_input`` and
    ``private_input`` allocations); public outputs are prover-published,
    so both hints and outputs must come out determined.

Passes that need allocation provenance (hint vs. semantic input) are
skipped with a recorded reason when the constraint system carries
``unknown`` kinds (e.g. restored from a v1 serialization).

The audit runs in two tiers.  The **deep** tier (default) runs every
pass and is what the CLI, the CI baseline job, strict-mode engines, and
on-demand service audits use.  The **fast** tier (``deep=False``) is
what ``audit="warn"`` runs inline on the engine's cold compile path: the
single-sweep structural passes only, skipping the determinism fixpoint
and the duplicate scan so warn mode stays well under 10% of compile
time.  Skipped passes are recorded in ``passes_skipped`` and the report
carries ``deep`` so a cached fast report is upgraded on the first deep
request.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..snark.r1cs import ONE_INDEX, ConstraintSystem, LinearCombination
from .determinism import analyze_determinism, boolean_constrained_vars
from .findings import AuditReport, Finding

__all__ = [
    "CircuitAuditError",
    "audit_compiled",
    "audit_constraint_system",
    "MAX_FINDINGS_PER_PASS",
]

#: Cap per pass so a badly broken circuit yields a readable report, not
#: ten thousand findings; an overflow note records the truncation.
MAX_FINDINGS_PER_PASS = 100


class CircuitAuditError(ValueError):
    """A strict-mode audit rejected a circuit.

    Subclasses :class:`ValueError` deliberately: the service scheduler
    already maps ``ValueError`` during synthesis to a failed claim, so
    strict mode rejects claims without new plumbing.
    """

    def __init__(self, report: AuditReport, *, threshold: str = "critical"):
        self.report = report
        worst = report.worst() or "none"
        flagged = report.at_least(threshold)
        detail = "; ".join(f.render() for f in flagged[:3])
        more = f" (+{len(flagged) - 3} more)" if len(flagged) > 3 else ""
        super().__init__(
            f"circuit audit rejected {report.circuit!r}: "
            f"{len(flagged)} finding(s) at severity >= {threshold} "
            f"(worst {worst}): {detail}{more}"
        )


def _kinds(cs: ConstraintSystem) -> List[str]:
    kinds = list(getattr(cs, "variable_kinds", []))
    if len(kinds) != cs.num_variables:
        return ["one"] + ["unknown"] * (cs.num_variables - 1)
    return kinds


def _names(cs: ConstraintSystem) -> List[str]:
    names = list(getattr(cs, "variable_names", []))
    if len(names) != cs.num_variables:
        return [f"v{i}" for i in range(cs.num_variables)]
    return names


def _sites(cs: ConstraintSystem) -> List[str]:
    sites = list(getattr(cs, "variable_sites", []))
    if len(sites) != cs.num_variables:
        return [""] * cs.num_variables
    return sites


def _is_constant(lc: LinearCombination) -> bool:
    # A constant LC is empty or the single entry {ONE_INDEX: k}.
    terms = lc.terms
    return not terms or (len(terms) == 1 and ONE_INDEX in terms)


class _Auditor:
    def __init__(
        self, cs: ConstraintSystem, name: str, digest: str, deep: bool = True
    ):
        self.cs = cs
        self.name = name
        self.digest = digest
        self.deep = deep
        self.kinds = _kinds(cs)
        self.names = _names(cs)
        self.sites = _sites(cs)
        self.has_provenance = "unknown" not in self.kinds
        self.findings: List[Finding] = []
        self.passes_run: List[str] = []
        self.passes_skipped: Dict[str, str] = {}
        self._per_pass: Dict[str, int] = {}

    def _emit(
        self,
        pass_id: str,
        severity: str,
        message: str,
        wire: Optional[int] = None,
    ) -> None:
        count = self._per_pass.get(pass_id, 0)
        self._per_pass[pass_id] = count + 1
        if count == MAX_FINDINGS_PER_PASS:
            self.findings.append(
                Finding(
                    pass_id=pass_id,
                    severity="info",
                    message=(
                        f"further {pass_id} findings suppressed after "
                        f"{MAX_FINDINGS_PER_PASS}"
                    ),
                )
            )
            return
        if count > MAX_FINDINGS_PER_PASS:
            return
        if wire is not None:
            self.findings.append(
                Finding(
                    pass_id=pass_id,
                    severity=severity,
                    message=message,
                    wire=wire,
                    wire_name=self.names[wire],
                    kind=self.kinds[wire],
                    site=self.sites[wire],
                )
            )
        else:
            self.findings.append(
                Finding(pass_id=pass_id, severity=severity, message=message)
            )

    # ---------------------------------------------------------------- passes --

    def pass_unconstrained(self) -> None:
        self.passes_run += [
            "unbound-public",
            "unbound-output",
            "unconstrained-hint",
            "unconstrained-wire",
        ]
        appears: set = set()
        for a, b, c in self.cs.constraints:
            appears.update(a.terms)
            appears.update(b.terms)
            appears.update(c.terms)
        for v in range(1, self.cs.num_variables):
            if v in appears:
                continue
            kind = self.kinds[v]
            is_public = v <= self.cs.num_public
            if kind == "output":
                self._emit(
                    "unbound-output",
                    "critical",
                    "public output placeholder is never bound: the prover "
                    "may publish any value for it",
                    wire=v,
                )
            elif is_public:
                self._emit(
                    "unbound-public",
                    "critical",
                    "public input appears in no constraint: the proof does "
                    "not depend on it",
                    wire=v,
                )
            elif kind == "hint":
                self._emit(
                    "unconstrained-hint",
                    "high",
                    "hint wire appears in no constraint: the prover may set "
                    "it freely",
                    wire=v,
                )
            else:
                self._emit(
                    "unconstrained-wire",
                    "warning",
                    "variable appears in no constraint (dead allocation)",
                    wire=v,
                )

    def pass_degenerate(self) -> None:
        self.passes_run += ["degenerate-constraint", "unsatisfiable-constraint"]
        modulus = _bn254_r()
        for k, (a, b, c) in enumerate(self.cs.constraints):
            if not (_is_constant(a) and _is_constant(b) and _is_constant(c)):
                continue
            av = a.terms.get(ONE_INDEX, 0)
            bv = b.terms.get(ONE_INDEX, 0)
            cv = c.terms.get(ONE_INDEX, 0)
            if av * bv % modulus == cv % modulus:
                self._emit(
                    "degenerate-constraint",
                    "info",
                    f"constraint {k} is a constant tautology "
                    f"({av} * {bv} = {cv})",
                )
            else:
                self._emit(
                    "unsatisfiable-constraint",
                    "critical",
                    f"constraint {k} can never be satisfied "
                    f"({av} * {bv} != {cv})",
                )

    def pass_duplicates(self) -> None:
        self.passes_run.append("duplicate-constraint")
        seen: Dict[Tuple, int] = {}
        for k, (a, b, c) in enumerate(self.cs.constraints):
            a_key = frozenset(a.terms.items())
            b_key = frozenset(b.terms.items())
            # The outer frozenset makes A*B order irrelevant (commutes).
            key = (frozenset((a_key, b_key)), frozenset(c.terms.items()))
            if key in seen:
                self._emit(
                    "duplicate-constraint",
                    "info",
                    f"constraint {k} duplicates constraint {seen[key]} "
                    "(dead weight in setup and proving)",
                )
            else:
                seen[key] = k

    def pass_missing_boolean(self, boolean_vars: set) -> None:
        self.passes_run.append("missing-boolean")
        expected = getattr(self.cs, "expected_boolean", [])
        flagged = set()
        for v, site in expected:
            if v in boolean_vars or v in flagged or v == ONE_INDEX:
                continue
            flagged.add(v)
            where = f" (consumed at {site})" if site else ""
            self._emit(
                "missing-boolean",
                "high",
                "wire is consumed by a boolean gadget but has no "
                f"booleanity constraint{where}: values outside {{0,1}} "
                "break the gadget's semantics",
                wire=v,
            )

    def pass_determinism(self, boolean_vars: set) -> None:
        if not self.has_provenance:
            self.passes_skipped["underconstrained-hint"] = (
                "no allocation provenance (circuit restored from a "
                "pre-provenance serialization)"
            )
            return
        self.passes_run += ["underconstrained-hint", "underconstrained-output"]
        # Semantic inputs only: public outputs are published BY the
        # prover, so they must be determined, not assumed.
        inputs = {
            v
            for v in range(1, self.cs.num_variables)
            if self.kinds[v] in ("public", "private")
        }
        suspects = [
            v
            for v in range(1, self.cs.num_variables)
            if self.kinds[v] in ("hint", "output")
        ]
        result = analyze_determinism(
            self.cs,
            inputs=inputs,
            suspects=suspects,
            boolean_vars=boolean_vars,
        )
        for v in result.free:
            if self.kinds[v] == "output":
                self._emit(
                    "underconstrained-output",
                    "critical",
                    "public output is not provably determined by the "
                    "circuit's inputs: a dishonest prover can likely "
                    "publish a different result for the same inputs",
                    wire=v,
                )
            else:
                self._emit(
                    "underconstrained-hint",
                    "high",
                    "hint wire is not provably determined by the circuit's "
                    "inputs: a dishonest prover can likely substitute "
                    "another value and still satisfy every constraint",
                    wire=v,
                )

    # ------------------------------------------------------------------ run --

    def run(self) -> AuditReport:
        t0 = time.perf_counter()
        if self.deep:
            # The determinism pass needs the full booleanity set.
            boolean_vars = boolean_constrained_vars(self.cs)
        else:
            # The fast tier only needs the wires boolean gadgets consume.
            targets = {
                v for v, _ in getattr(self.cs, "expected_boolean", [])
            }
            boolean_vars = boolean_constrained_vars(self.cs, targets)
        self.pass_unconstrained()
        self.pass_degenerate()
        self.pass_missing_boolean(boolean_vars)
        if self.deep:
            self.pass_duplicates()
            self.pass_determinism(boolean_vars)
        else:
            reason = (
                "fast tier (deep=False): run `zkrownn audit-circuit` or a "
                "strict-mode engine for the full analysis"
            )
            self.passes_skipped["duplicate-constraint"] = reason
            self.passes_skipped["underconstrained-hint"] = reason
        return AuditReport(
            circuit=self.name,
            digest=self.digest,
            num_constraints=self.cs.num_constraints,
            num_variables=self.cs.num_variables,
            findings=self.findings,
            passes_run=self.passes_run,
            passes_skipped=self.passes_skipped,
            audit_seconds=time.perf_counter() - t0,
            deep=self.deep,
        )


def _bn254_r() -> int:
    from ..field.prime import BN254_R

    return BN254_R


def audit_constraint_system(
    cs: ConstraintSystem, *, name: str = "circuit", digest: str = "", deep: bool = True
) -> AuditReport:
    """Run the audit passes over one constraint system.

    ``deep=True`` (the default; CLI, CI, strict mode) runs everything.
    ``deep=False`` is the fast tier the engine's warn mode runs inline on
    the cold compile path: the single-sweep structural passes -- which
    include every *structural* critical detector (unbound publics and
    outputs, unsatisfiable constraints) plus the high-severity
    unconstrained-hint and missing-boolean checks -- while the GF(p)
    determinism fixpoint and the duplicate scan are deferred (recorded in
    ``passes_skipped``).
    """
    return _Auditor(cs, name, digest, deep=deep).run()


def audit_compiled(compiled, *, deep: bool = True) -> AuditReport:
    """Audit a :class:`~repro.engine.compiled.CompiledCircuit`."""
    return audit_constraint_system(
        compiled.cs, name=compiled.name, digest=compiled.digest, deep=deep
    )
