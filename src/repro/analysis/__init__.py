"""Static analysis over compiled circuits (the circuit soundness auditor).

ZKROWNN's ownership guarantee is only as strong as the soundness of its
hand-built constraint systems: one unconstrained hint wire lets a
malicious prover forge a witness that verifies.  This package hunts that
bug class statically -- the same ground circomspect and Picus cover for
circom -- over this repo's R1CS:

* :mod:`repro.analysis.findings` -- severity-ranked findings, reports,
  and the checked-in CI baseline format;
* :mod:`repro.analysis.linear` -- sparse Gauss-Jordan elimination over
  GF(p), the engine of the determinism pass;
* :mod:`repro.analysis.determinism` -- the Picus-style pass proving each
  hint wire is uniquely determined by the circuit's inputs;
* :mod:`repro.analysis.circuit_audit` -- the pass driver producing an
  :class:`AuditReport` for a :class:`ConstraintSystem`;
* :mod:`repro.analysis.catalog` -- named shipped circuits (gadget and
  architecture) the CLI and CI audit against the baseline.
"""

from .catalog import audit_named_circuit, catalog_names, resolve_circuit_name
from .circuit_audit import (
    CircuitAuditError,
    audit_compiled,
    audit_constraint_system,
)
from .findings import (
    SEVERITIES,
    AuditBaseline,
    AuditReport,
    Finding,
    severity_rank,
)

__all__ = [
    "AuditBaseline",
    "AuditReport",
    "CircuitAuditError",
    "Finding",
    "SEVERITIES",
    "audit_compiled",
    "audit_constraint_system",
    "audit_named_circuit",
    "catalog_names",
    "resolve_circuit_name",
    "severity_rank",
]
