"""Picus-style determinism analysis: is every hint wire pinned down?

``alloc_hint`` gives the prover a witness variable it may set freely;
the surrounding gadget is supposed to add constraints that make the hint
the *only* value consistent with the circuit's inputs.  When a gadget
forgets, a malicious prover substitutes any value it likes and the proof
still verifies -- the classic under-constrained-circuit soundness hole.

This pass proves, per hint wire, that its value is uniquely determined
by the circuit's semantic inputs (the instance plus ``private_input``
variables, which *are* the prover's free choice).  Wires it cannot prove
determined come back as residual free wires -- probable
under-constraints the auditor reports.

The engine is a worklist fixpoint over four propagation rules, with a
sparse GF(p) Gauss-Jordan fallback (:mod:`repro.analysis.linear`) for
whatever linear structure the cheap rules miss:

* **substitution** -- a linear equation with one undetermined variable
  determines it;
* **multiplication** -- ``<A,z> * <B,z> = <C,z>`` with A and B fully
  determined and one undetermined variable in C determines it;
* **bit decomposition** -- a linear equation whose undetermined
  variables are all boolean-constrained with (scaled) distinct
  power-of-two coefficients summing below p determines all of them
  (subset sums of distinct powers of two are injective);
* **stride** -- ``d*q + rem = known`` with ``|rem| `` ranging over an
  interval of width <= |d| and ``|d|*width(q) + width(rem) < p``
  determines both (Euclidean division is unique) -- this is what proves
  ``truncate``/``div_floor_const`` quotient/remainder pairs sound.

Interval bounds feeding the stride rule come from a small abstract
interpretation: booleanity constraints give ``[0, 1]``, and linear
equations propagate interval arithmetic (which is how a bit
decomposition of a remainder yields ``rem in [0, 2**s - 1]``).

Everything is parameterized on the field modulus so the property tests
can cross-check against brute force over small primes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..snark.r1cs import ONE_INDEX, ConstraintSystem, LinearCombination
from .linear import LinearSystem

__all__ = ["DeterminismResult", "analyze_determinism", "boolean_constrained_vars"]

# Interval endpoints beyond this magnitude are useless for the stride
# rule (and risk giant-int blowups); drop them.
_MAX_BOUND = 1 << 200

# Rounds of interval propagation.  The shipped gadgets converge in 2
# (bits -> remainders -> shifted quotients); a couple spare for nesting.
_INTERVAL_ROUNDS = 4


@dataclass
class DeterminismResult:
    """Outcome of the determinism fixpoint."""

    determined: Set[int]
    #: Suspect variables (the caller's hint set) not provably determined.
    free: List[int]
    #: Variables with a derived value interval (diagnostics).
    intervals: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: Which rules fired how often (diagnostics, report rendering).
    rule_counts: Dict[str, int] = field(default_factory=dict)


def boolean_constrained_vars(
    cs: ConstraintSystem, targets: Optional[Set[int]] = None
) -> Set[int]:
    """Variables with a booleanity constraint ``v * (v - 1) = 0``.

    With ``targets``, the search is restricted to that set and stops as
    soon as every target is found -- the fast audit tier only needs the
    handful of wires consumed by boolean gadgets, not the full sweep.
    """
    minus_one = _modulus() - 1
    out: Set[int] = set()
    remaining = None if targets is None else set(targets)
    if remaining is not None and not remaining:
        return out
    for a, b, c in cs.constraints:
        if c.terms:
            continue
        for first, second in ((a, b), (b, a)):
            terms = first.terms
            if len(terms) != 1:
                continue
            v = next(iter(terms))
            if v == ONE_INDEX:
                continue
            if remaining is not None and v not in remaining:
                continue
            if terms[v] != 1:
                continue
            if second.terms == {v: 1, ONE_INDEX: minus_one}:
                out.add(v)
                if remaining is not None:
                    remaining.discard(v)
                    if not remaining:
                        return out
    return out


def _modulus() -> int:
    from ..field.prime import BN254_R

    return BN254_R


def _signed(value: int, modulus: int) -> int:
    """Symmetric representative of a field element."""
    value %= modulus
    return value if value <= modulus // 2 else value - modulus


def _is_constant(lc: LinearCombination) -> bool:
    # A constant LC is empty or the single entry {ONE_INDEX: k}.
    terms = lc.terms
    return not terms or (len(terms) == 1 and ONE_INDEX in terms)


class _Analysis:
    def __init__(
        self,
        cs: ConstraintSystem,
        inputs: Set[int],
        boolean_vars: Set[int],
        modulus: int,
    ):
        self.modulus = modulus
        self.boolean_vars = boolean_vars
        self.determined: Set[int] = set(inputs) | {ONE_INDEX}
        self.rule_counts: Dict[str, int] = {
            "substitution": 0,
            "multiplication": 0,
            "decomposition": 0,
            "stride": 0,
            "elimination": 0,
        }

        # Linear equations sum(c_v * v) + k = 0 (mod p), ONE folded into k.
        self.eqs: List[Dict[int, int]] = []
        self.eq_consts: List[int] = []
        # Mul constraints as (vars(A) | vars(B), vars(C)).
        self.muls: List[Tuple[Set[int], Set[int]]] = []
        for a, b, c in cs.constraints:
            a_const = _is_constant(a)
            b_const = _is_constant(b)
            if a_const or b_const:
                const_lc, var_lc = (a, b) if a_const else (b, a)
                scale = const_lc.terms.get(ONE_INDEX, 0)
                if scale == 1:
                    # The common enforce(ONE, lc, c) shape: coefficients
                    # are already reduced, so a dict copy suffices.
                    coeffs: Dict[int, int] = dict(var_lc.terms)
                    k = coeffs.pop(ONE_INDEX, 0)
                else:
                    coeffs = {}
                    k = 0
                    for idx, coeff in var_lc.terms.items():
                        term = coeff * scale % modulus
                        if idx == ONE_INDEX:
                            k = (k + term) % modulus
                        else:
                            coeffs[idx] = term
                for idx, coeff in c.terms.items():
                    if idx == ONE_INDEX:
                        k = (k - coeff) % modulus
                    else:
                        new = (coeffs.get(idx, 0) - coeff) % modulus
                        if new:
                            coeffs[idx] = new
                        else:
                            coeffs.pop(idx, None)
                if coeffs:
                    self.eqs.append(coeffs)
                    self.eq_consts.append(k)
            else:
                ab = set(a.terms)
                ab.update(b.terms)
                ab.discard(ONE_INDEX)
                cvars = set(c.terms)
                cvars.discard(ONE_INDEX)
                self.muls.append((ab, cvars))

        determined = self.determined
        self.eq_undet: List[Set[int]] = [
            eq.keys() - determined for eq in self.eqs
        ]
        self.mul_ab_undet: List[Set[int]] = [
            ab - determined for ab, _ in self.muls
        ]
        self.mul_c_undet: List[Set[int]] = [
            cvars - determined for _, cvars in self.muls
        ]
        self.var_to_eqs: Dict[int, List[int]] = {}
        for i, eq in enumerate(self.eqs):
            for v in eq:
                self.var_to_eqs.setdefault(v, []).append(i)
        self.var_to_muls: Dict[int, List[int]] = {}
        for i, (ab, cvars) in enumerate(self.muls):
            for v in ab | cvars:
                self.var_to_muls.setdefault(v, []).append(i)

        self.intervals: Dict[int, Tuple[int, int]] = {
            v: (0, 1) for v in boolean_vars
        }
        self._queue: List[int] = []

    # ------------------------------------------------------------- intervals --

    def _narrow(self, v: int, lo: int, hi: int) -> None:
        if hi - lo >= _MAX_BOUND:
            return
        old = self.intervals.get(v)
        if old is not None:
            lo, hi = max(lo, old[0]), min(hi, old[1])
            if (lo, hi) == old or lo > hi:
                return
        self.intervals[v] = (lo, hi)

    def propagate_intervals(self) -> None:
        """Interval arithmetic over the linear equations, a few rounds.

        For an equation ``sum(c_v * v) + k = 0`` and a target variable
        ``x`` whose co-variables all carry intervals, ``x`` is congruent
        mod p to an integer in a computable interval; when that interval
        is narrow the congruence class pins a genuine integer range,
        which is exactly what the stride rule needs.
        """
        p = self.modulus
        intervals = self.intervals
        pending: Sequence[int] = range(len(self.eqs))
        for _ in range(_INTERVAL_ROUNDS):
            changed_vars: Set[int] = set()
            for i in pending:
                eq = self.eqs[i]
                missing = [v for v in eq if v not in intervals]
                if len(missing) > 1:
                    continue
                if missing:
                    targets = missing
                else:
                    # Every variable already has an interval; re-deriving
                    # one already at width <= 2 cannot help the stride
                    # rule, so only wide intervals are worth revisiting.
                    targets = [
                        v
                        for v in eq
                        if intervals[v][1] - intervals[v][0] > 1
                    ]
                k = self.eq_consts[i]
                for x in targets:
                    inv = pow(eq[x], -1, p)
                    lo = hi = -_signed(k * inv % p, p)
                    ok = True
                    for v, coeff in eq.items():
                        if v == x:
                            continue
                        r = _signed(coeff * inv % p, p)
                        if abs(r) >= _MAX_BOUND:
                            ok = False
                            break
                        vlo, vhi = intervals[v]
                        if r >= 0:
                            lo -= r * vhi
                            hi -= r * vlo
                        else:
                            lo -= r * vlo
                            hi -= r * vhi
                    if not ok:
                        continue
                    before = intervals.get(x)
                    self._narrow(x, lo, hi)
                    if intervals.get(x) != before:
                        changed_vars.add(x)
            if not changed_vars:
                break
            # Later rounds only revisit equations adjacent to a changed
            # interval -- any other equation would reproduce its previous
            # result exactly.
            pending = sorted(
                {
                    j
                    for v in changed_vars
                    for j in self.var_to_eqs.get(v, ())
                }
            )

    def _width(self, v: int) -> Optional[int]:
        interval = self.intervals.get(v)
        if interval is None:
            return None
        return interval[1] - interval[0] + 1

    # ------------------------------------------------------------- worklist --

    def _determine(self, v: int, rule: str) -> None:
        if v in self.determined:
            return
        self.determined.add(v)
        self.rule_counts[rule] += 1
        self._queue.append(v)

    def _examine_eq(self, i: int) -> None:
        undet = self.eq_undet[i]
        if not undet:
            return
        if len(undet) == 1:
            self._determine(next(iter(undet)), "substitution")
            undet.clear()
            return
        if self._try_decomposition(i):
            undet.clear()
            return
        if len(undet) == 2 and self._try_stride(i):
            undet.clear()

    def _try_decomposition(self, i: int) -> bool:
        undet = self.eq_undet[i]
        if not undet or not undet <= self.boolean_vars:
            return False
        p = self.modulus
        eq = self.eqs[i]
        vars_sorted = sorted(undet)
        base_inv = pow(eq[vars_sorted[0]], -1, p)
        exponents = set()
        total = 0
        for v in vars_sorted:
            ratio = eq[v] * base_inv % p
            if ratio & (ratio - 1) != 0:  # not a power of two (0 impossible)
                return False
            if ratio in exponents:
                return False
            exponents.add(ratio)
            total += ratio
            if total >= p:
                return False
        for v in vars_sorted:
            self._determine(v, "decomposition")
        return True

    def _try_stride(self, i: int) -> bool:
        undet = self.eq_undet[i]
        x, y = sorted(undet)
        wx, wy = self._width(x), self._width(y)
        if wx is None or wy is None:
            return False
        p = self.modulus
        eq = self.eqs[i]
        for big, small, w_big, w_small in ((x, y, wx, wy), (y, x, wy, wx)):
            # eq: c_big * big + c_small * small + (determined) = 0;
            # normalize so small's coefficient is 1: d * big + small = known.
            d = _signed(eq[big] * pow(eq[small], -1, p) % p, p)
            if abs(d) >= _MAX_BOUND or abs(d) < 1:
                continue
            if w_small > abs(d):
                continue
            if abs(d) * (w_big - 1) + (w_small - 1) >= p:
                continue
            self._determine(big, "stride")
            self._determine(small, "stride")
            return True
        return False

    def _examine_mul(self, i: int) -> None:
        if not self.mul_ab_undet[i] and len(self.mul_c_undet[i]) == 1:
            self._determine(next(iter(self.mul_c_undet[i])), "multiplication")

    def run(self) -> None:
        self.propagate_intervals()
        for i in range(len(self.eqs)):
            self._examine_eq(i)
        for i in range(len(self.muls)):
            self._examine_mul(i)
        while True:
            self._drain()
            if not self._gaussian_round():
                break

    def _drain(self) -> None:
        while self._queue:
            v = self._queue.pop()
            for i in self.var_to_eqs.get(v, ()):
                undet = self.eq_undet[i]
                if v in undet:
                    undet.discard(v)
                    self._examine_eq(i)
            for i in self.var_to_muls.get(v, ()):
                ab, cvars = self.mul_ab_undet[i], self.mul_c_undet[i]
                changed = False
                if v in ab:
                    ab.discard(v)
                    changed = True
                if v in cvars:
                    cvars.discard(v)
                    changed = True
                if changed:
                    self._examine_mul(i)

    def _gaussian_round(self) -> bool:
        """Feed the residual linear equations to Gauss-Jordan elimination.

        The cheap rules leave few undetermined variables in practice, so
        the system stays small.  Any newly determined variable re-arms
        the worklist (it may unlock mul or stride rules).
        """
        system = LinearSystem(self.modulus)
        for i, undet in enumerate(self.eq_undet):
            if not undet:
                continue
            eq = self.eqs[i]
            system.add_equation({v: eq[v] for v in undet})
        fresh = [v for v in system.determined() if v not in self.determined]
        for v in fresh:
            self._determine(v, "elimination")
        return bool(fresh)


def analyze_determinism(
    cs: ConstraintSystem,
    *,
    inputs: Set[int],
    suspects: Sequence[int],
    boolean_vars: Optional[Set[int]] = None,
    modulus: Optional[int] = None,
) -> DeterminismResult:
    """Fixpoint-propagate determinedness from ``inputs``; report suspects left.

    ``inputs`` are variables the prover legitimately chooses (instance +
    semantic private inputs); ``suspects`` are the variables that *must*
    come out determined (hint wires).  ``boolean_vars`` defaults to the
    booleanity constraints found in ``cs``.
    """
    if modulus is None:
        modulus = _modulus()
    if boolean_vars is None:
        boolean_vars = boolean_constrained_vars(cs)
    analysis = _Analysis(cs, inputs, boolean_vars, modulus)
    analysis.run()
    free = [v for v in suspects if v not in analysis.determined]
    return DeterminismResult(
        determined=analysis.determined,
        free=free,
        intervals=analysis.intervals,
        rule_counts=analysis.rule_counts,
    )
