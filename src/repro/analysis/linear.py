"""Sparse Gauss-Jordan elimination over GF(p) for the determinism pass.

The question the determinism pass asks of a linear system ``M x = b`` is
not "what is x" but "which entries of x are *uniquely* determined" --
i.e. for which ``i`` is the unit vector ``e_i`` in the row space of
``M``.  That is independent of ``b`` for a consistent system (and every
system we build comes from a satisfied witness, so it is consistent):
the solution set is ``x0 + null(M)``, and ``x_i`` is unique exactly when
every null-space vector has a zero in position ``i``.

After full Gauss-Jordan reduction each pivot row reads
``x_p + sum(c_j * x_j for free j) = const``; the pivot variable is
uniquely determined iff its row carries no free variables.  Free
(non-pivot) variables are never determined, nor are variables that
appear in no equation at all.

Rows are sparse ``{variable: coefficient}`` dicts; the modulus is a
parameter so property tests can brute-force-check uniqueness over a
small prime while production runs over BN254's scalar field.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

__all__ = ["LinearSystem"]


class LinearSystem:
    """An accumulating sparse linear system over GF(modulus).

    Only the coefficient matrix is tracked: right-hand sides do not
    affect which variables are uniquely determined (see module docstring).
    """

    def __init__(self, modulus: int):
        if modulus < 2:
            raise ValueError("modulus must be >= 2")
        self.modulus = modulus
        # pivot variable -> fully reduced row {var: coeff} with pivot coeff 1
        self._pivot_rows: Dict[int, Dict[int, int]] = {}

    def add_equation(self, coeffs: Dict[int, int]) -> None:
        """Add one equation ``sum(c_v * x_v) = <anything>``.

        The row is immediately reduced against existing pivots and, if
        independent, becomes a new pivot row (full Gauss-Jordan, so the
        basis stays reduced and :meth:`determined` is a simple scan).
        """
        p = self.modulus
        row = {v: c % p for v, c in coeffs.items() if c % p}
        # Eliminate existing pivot variables from the new row.  Substituting
        # one pivot's row can reintroduce other pivot variables, so repeat
        # until none remain (each pivot is eliminated at most once per pass
        # and the basis is fully reduced, so this terminates quickly).
        while True:
            stale = [v for v in row if v in self._pivot_rows]
            if not stale:
                break
            for pivot in stale:
                factor = row.pop(pivot, 0)
                if not factor:
                    continue
                for v, c in self._pivot_rows[pivot].items():
                    if v == pivot:
                        continue
                    new = (row.get(v, 0) - factor * c) % p
                    if new:
                        row[v] = new
                    else:
                        row.pop(v, None)
        if not row:
            return  # dependent row, no new information
        # Normalize on a deterministic pivot choice (smallest variable).
        pivot = min(row)
        inv = pow(row[pivot], -1, p)
        row = {v: c * inv % p for v, c in row.items()}
        # Back-substitute into every existing pivot row that mentions the
        # new pivot, keeping the basis fully reduced.
        for other_pivot, other_row in self._pivot_rows.items():
            factor = other_row.pop(pivot, 0)
            if not factor:
                continue
            for v, c in row.items():
                if v == pivot:
                    continue
                new = (other_row.get(v, 0) - factor * c) % p
                if new:
                    other_row[v] = new
                else:
                    other_row.pop(v, None)
        self._pivot_rows[pivot] = row

    def add_equations(self, rows: Iterable[Dict[int, int]]) -> None:
        for row in rows:
            self.add_equation(row)

    @property
    def rank(self) -> int:
        return len(self._pivot_rows)

    def determined(self) -> Set[int]:
        """Variables uniquely determined by the system.

        A pivot variable is determined iff its (fully reduced) row has no
        other variables; free variables and untouched variables never are.
        """
        return {
            pivot
            for pivot, row in self._pivot_rows.items()
            if len(row) == 1
        }

    def pivot_variables(self) -> Set[int]:
        return set(self._pivot_rows)

    def rows(self) -> List[Dict[int, int]]:
        """The reduced basis (for diagnostics and tests)."""
        return [dict(row) for row in self._pivot_rows.values()]
