"""Findings, reports, and baselines for the circuit auditor.

A :class:`Finding` is one defect candidate with wire provenance; an
:class:`AuditReport` is everything one audit produced for one circuit.
:class:`AuditBaseline` is the checked-in accepted-findings file CI diffs
reports against: a finding matching a baseline entry is *accepted* (with
a recorded justification), anything new fails the build.
"""

from __future__ import annotations

import fnmatch
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = [
    "SEVERITIES",
    "severity_rank",
    "Finding",
    "AuditReport",
    "AuditBaseline",
]

#: Severity levels, least to most severe.
SEVERITIES: Tuple[str, ...] = ("info", "warning", "high", "critical")

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


def severity_rank(severity: str) -> int:
    """Numeric rank of a severity level (higher is worse)."""
    try:
        return _SEVERITY_RANK[severity]
    except KeyError:
        raise ValueError(
            f"unknown severity {severity!r}; expected one of {SEVERITIES}"
        ) from None


@dataclass(frozen=True)
class Finding:
    """One defect candidate surfaced by an audit pass."""

    pass_id: str
    severity: str
    message: str
    wire: Optional[int] = None
    wire_name: str = ""
    kind: str = ""
    site: str = ""

    def __post_init__(self) -> None:
        severity_rank(self.severity)  # validate eagerly

    @property
    def key(self) -> str:
        """Stable identity for baseline matching (survives reordering)."""
        wire = self.wire_name or (f"v{self.wire}" if self.wire is not None else "-")
        return f"{self.pass_id}:{wire}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pass": self.pass_id,
            "severity": self.severity,
            "message": self.message,
            "wire": self.wire,
            "wire_name": self.wire_name,
            "kind": self.kind,
            "site": self.site,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        return cls(
            pass_id=data["pass"],
            severity=data["severity"],
            message=data.get("message", ""),
            wire=data.get("wire"),
            wire_name=data.get("wire_name", ""),
            kind=data.get("kind", ""),
            site=data.get("site", ""),
        )

    def render(self) -> str:
        loc = self.wire_name or (f"v{self.wire}" if self.wire is not None else "")
        bits = [f"[{self.severity.upper():8s}]", f"{self.pass_id}:"]
        if loc:
            bits.append(f"wire {loc!r}")
            if self.kind:
                bits.append(f"({self.kind})")
        if self.site:
            bits.append(f"at {self.site}")
        bits.append("--")
        bits.append(self.message)
        return " ".join(bits)


@dataclass
class AuditReport:
    """Everything one audit run produced for one circuit."""

    circuit: str
    digest: str = ""
    num_constraints: int = 0
    num_variables: int = 0
    findings: List[Finding] = field(default_factory=list)
    passes_run: List[str] = field(default_factory=list)
    passes_skipped: Dict[str, str] = field(default_factory=dict)
    audit_seconds: float = 0.0
    #: False for the fast (warn-inline) tier, which skips the expensive
    #: passes; a cached fast report is re-run when a deep one is needed.
    deep: bool = True

    def counts(self) -> Dict[str, int]:
        out = {severity: 0 for severity in SEVERITIES}
        for finding in self.findings:
            out[finding.severity] += 1
        return out

    def worst(self) -> Optional[str]:
        """The most severe level present, or None for a clean report."""
        worst: Optional[str] = None
        for finding in self.findings:
            if worst is None or severity_rank(finding.severity) > severity_rank(worst):
                worst = finding.severity
        return worst

    def at_least(self, severity: str) -> List[Finding]:
        floor = severity_rank(severity)
        return [f for f in self.findings if severity_rank(f.severity) >= floor]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "circuit": self.circuit,
            "digest": self.digest,
            "num_constraints": self.num_constraints,
            "num_variables": self.num_variables,
            "findings": [f.to_dict() for f in self.findings],
            "passes_run": list(self.passes_run),
            "passes_skipped": dict(self.passes_skipped),
            "audit_seconds": self.audit_seconds,
            "deep": self.deep,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AuditReport":
        return cls(
            circuit=data.get("circuit", ""),
            digest=data.get("digest", ""),
            num_constraints=data.get("num_constraints", 0),
            num_variables=data.get("num_variables", 0),
            findings=[Finding.from_dict(f) for f in data.get("findings", [])],
            passes_run=list(data.get("passes_run", [])),
            passes_skipped=dict(data.get("passes_skipped", {})),
            audit_seconds=data.get("audit_seconds", 0.0),
            deep=data.get("deep", True),
        )

    def render(self, *, accepted: Optional[List[Finding]] = None) -> str:
        """Human-readable report (the CLI's output)."""
        accepted_keys = {f.key for f in accepted} if accepted else set()
        lines = [
            f"circuit {self.circuit!r}"
            + (f" (digest {self.digest[:12]}...)" if self.digest else ""),
            f"  {self.num_constraints} constraints, {self.num_variables} variables;"
            f" audit took {self.audit_seconds * 1000:.1f} ms",
        ]
        for pass_id, reason in sorted(self.passes_skipped.items()):
            lines.append(f"  (skipped pass {pass_id}: {reason})")
        if not self.findings:
            lines.append("  clean: no findings")
            return "\n".join(lines)
        counts = ", ".join(
            f"{count} {severity}"
            for severity, count in self.counts().items()
            if count
        )
        lines.append(f"  {len(self.findings)} finding(s): {counts}")
        ordered = sorted(
            self.findings, key=lambda f: -severity_rank(f.severity)
        )
        for finding in ordered:
            marker = "  (baseline) " if finding.key in accepted_keys else "  "
            lines.append(marker + finding.render())
        return "\n".join(lines)


class AuditBaseline:
    """Accepted findings checked into the repo, diffed against in CI.

    File format (JSON)::

        {
          "version": 1,
          "circuits": {
            "<circuit name>": [
              {"pass": "underconstrained-hint", "wire": "is_zero_inv*",
               "severity": "high", "justification": "why this is fine"},
              ...
            ]
          }
        }

    ``wire`` entries are :func:`fnmatch.fnmatch` patterns against the
    finding's wire name, so one entry can accept a family of wires a
    gadget allocates in a loop.  Every entry must carry a non-empty
    ``justification`` -- the point of the baseline is a reviewed record
    of *why* each accepted finding is not exploitable.
    """

    def __init__(self, circuits: Optional[Dict[str, List[Dict[str, str]]]] = None):
        self.circuits: Dict[str, List[Dict[str, str]]] = circuits or {}

    @classmethod
    def load(cls, path: Union[str, Path]) -> "AuditBaseline":
        data = json.loads(Path(path).read_text())
        if data.get("version") != 1:
            raise ValueError(f"unsupported audit baseline version {data.get('version')!r}")
        circuits = data.get("circuits", {})
        for name, entries in circuits.items():
            for entry in entries:
                if not entry.get("justification", "").strip():
                    raise ValueError(
                        f"baseline entry for circuit {name!r} "
                        f"(pass {entry.get('pass')!r}, wire {entry.get('wire')!r}) "
                        "has no justification"
                    )
        return cls(circuits)

    def save(self, path: Union[str, Path]) -> None:
        payload = {"version": 1, "circuits": self.circuits}
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    def _matches(self, entry: Dict[str, str], finding: Finding) -> bool:
        if entry.get("pass") != finding.pass_id:
            return False
        if entry.get("severity") and entry["severity"] != finding.severity:
            return False
        pattern = entry.get("wire", "*")
        wire = finding.wire_name or (
            f"v{finding.wire}" if finding.wire is not None else ""
        )
        return fnmatch.fnmatch(wire, pattern)

    def split(
        self, circuit: str, findings: List[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition findings into ``(new, accepted)`` for one circuit."""
        entries = self.circuits.get(circuit, [])
        new: List[Finding] = []
        accepted: List[Finding] = []
        for finding in findings:
            if any(self._matches(entry, finding) for entry in entries):
                accepted.append(finding)
            else:
                new.append(finding)
        return new, accepted

    def add_report(self, report: AuditReport, justification: str) -> None:
        """Record every finding of a report as accepted (``--write-baseline``)."""
        entries = self.circuits.setdefault(report.circuit, [])
        seen = {(e.get("pass"), e.get("wire")) for e in entries}
        for finding in report.findings:
            wire = finding.wire_name or (
                f"v{finding.wire}" if finding.wire is not None else "*"
            )
            if (finding.pass_id, wire) in seen:
                continue
            seen.add((finding.pass_id, wire))
            entries.append(
                {
                    "pass": finding.pass_id,
                    "wire": wire,
                    "severity": finding.severity,
                    "justification": justification,
                }
            )
