"""ZKROWNN reproduction: zero-knowledge right of ownership for neural networks.

A from-scratch Python implementation of the DAC 2023 paper "ZKROWNN: Zero
Knowledge Right of Ownership for Neural Networks" (Sheybani, Ghodsi,
Kapila, Koushanfar), including every substrate the paper builds on:

* ``repro.field``     -- BN254 prime fields, Fp12 tower, NTT
* ``repro.curves``    -- G1/G2, MSM, optimal-Ate pairing
* ``repro.snark``     -- R1CS, QAP, Groth16 (setup / prove / verify)
* ``repro.circuit``   -- the circuit-builder DSL (the xJsnark role)
* ``repro.gadgets``   -- zk matmul / conv3d / relu / sigmoid / threshold / BER
* ``repro.nn``        -- numpy neural networks with backprop (Table II models)
* ``repro.datasets``  -- synthetic MNIST/CIFAR stand-ins
* ``repro.watermark`` -- DeepSigns embedding / extraction / attacks
* ``repro.zkrownn``   -- Algorithm 1 + the Figure 1 protocol (the paper's core)
* ``repro.bench``     -- Table I measurement harness and cost model

Quickstart::

    from repro.zkrownn import run_ownership_protocol
    transcript, claim = run_ownership_protocol(model, keys)
    assert transcript.all_accepted
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
