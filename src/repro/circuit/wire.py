"""Wires: the values circuit gadgets compute on.

A :class:`Wire` is an *affine combination* of R1CS variables together with
its synthesized value.  Additions and multiplications by constants merely
combine linear combinations -- they cost **zero constraints**, exactly like
xJsnark's linear-expression optimization the paper relies on.  Only
wire-times-wire multiplication allocates a new variable and constraint
(handled by :class:`repro.circuit.builder.CircuitBuilder`).

Wires are immutable; operators return new wires.  ``wire * wire`` routes
through the owning builder so the constraint is recorded.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

from ..field.prime import BN254_R as R
from ..snark.r1cs import LinearCombination

if TYPE_CHECKING:  # pragma: no cover
    from .builder import CircuitBuilder

__all__ = ["Wire"]

WireOrInt = Union["Wire", int]


class Wire:
    """An affine combination of circuit variables plus its current value."""

    __slots__ = ("builder", "lc", "value")

    def __init__(self, builder: "CircuitBuilder", lc: LinearCombination, value: int):
        self.builder = builder
        self.lc = lc
        self.value = value % R

    # -- helpers ---------------------------------------------------------------

    def _coerce(self, other: WireOrInt) -> "Wire":
        if isinstance(other, Wire):
            if other.builder is not self.builder:
                raise ValueError("cannot combine wires from different builders")
            return other
        if isinstance(other, int):
            return self.builder.constant(other)
        raise TypeError(f"cannot combine Wire with {type(other).__name__}")

    def is_constant(self) -> bool:
        """True if this wire is a constant (an LC over the ONE variable only)."""
        from ..snark.r1cs import ONE_INDEX

        return all(idx == ONE_INDEX for idx in self.lc.terms)

    def constant_value(self) -> int:
        if not self.is_constant():
            raise ValueError("wire is not constant")
        return self.value

    def signed_value(self) -> int:
        """Synthesized value lifted to the symmetric range (-r/2, r/2]."""
        half = R // 2
        return self.value - R if self.value > half else self.value

    # -- linear operations (free) -------------------------------------------------

    def __add__(self, other: WireOrInt) -> "Wire":
        o = self._coerce(other)
        return Wire(self.builder, self.lc + o.lc, self.value + o.value)

    __radd__ = __add__

    def __sub__(self, other: WireOrInt) -> "Wire":
        o = self._coerce(other)
        return Wire(self.builder, self.lc - o.lc, self.value - o.value)

    def __rsub__(self, other: WireOrInt) -> "Wire":
        o = self._coerce(other)
        return Wire(self.builder, o.lc - self.lc, o.value - self.value)

    def __neg__(self) -> "Wire":
        return Wire(self.builder, self.lc.scale(R - 1), -self.value)

    def scale(self, k: int) -> "Wire":
        """Multiplication by a constant: free."""
        return Wire(self.builder, self.lc.scale(k), self.value * k)

    # -- multiplication (1 constraint unless a side is constant) --------------------

    def __mul__(self, other: WireOrInt) -> "Wire":
        if isinstance(other, int):
            return self.scale(other)
        o = self._coerce(other)
        return self.builder.mul(self, o)

    def __rmul__(self, other: WireOrInt) -> "Wire":
        if isinstance(other, int):
            return self.scale(other)
        return self.__mul__(other)

    def square(self) -> "Wire":
        return self.builder.mul(self, self)

    def __repr__(self) -> str:
        return f"Wire(value={self.value}, lc={self.lc!r})"
