"""Fixed-point arithmetic: floats in, field elements out.

zkSNARK circuits are arithmetic over Fr; they "do not natively support
floating point computation" (paper, Section III-B).  ZKROWNN's answer --
reproduced here -- is classic fixed point:

* every real number x is encoded as ``round(x * 2**frac_bits)``, negative
  values wrapping to the top of the field;
* products carry scale ``2**(2*frac_bits)`` and are *truncated* back down
  (:meth:`FixedPointFormat.mul`), the paper's "bitwidth scaling between
  operations" optimization;
* inner products accumulate at double scale and truncate **once** at the
  end -- the paper's "combining operations within loops" optimization,
  benchmarked in the ablation suite.

:class:`FixedPointFormat` carries the encoding parameters; circuit-side
helpers take the builder + wires, host-side helpers convert numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..field.prime import BN254_R as R
from .builder import CircuitBuilder
from .wire import Wire

__all__ = ["FixedPointFormat", "DEFAULT_FORMAT"]


@dataclass(frozen=True)
class FixedPointFormat:
    """Encoding parameters for fixed-point values inside a circuit.

    ``frac_bits``: binary scale f (values carry factor 2**f).
    ``total_bits``: magnitude bound; all signed values must satisfy
    ``|x| < 2**(total_bits-1)``.  Comparisons and truncations consume
    roughly ``total_bits`` constraints each, so smaller formats mean
    smaller circuits -- Table I's constraint counts are driven by this.
    """

    frac_bits: int = 16
    total_bits: int = 48

    def __post_init__(self):
        if self.frac_bits < 1:
            raise ValueError("frac_bits must be >= 1")
        if self.total_bits <= self.frac_bits:
            raise ValueError("total_bits must exceed frac_bits")
        if 2 * self.total_bits >= 250:
            raise ValueError("format too wide for the BN254 scalar field")

    # -- host-side encode / decode ------------------------------------------------

    @property
    def scale(self) -> int:
        return 1 << self.frac_bits

    def encode(self, x: float) -> int:
        """Real -> field representative (negative values wrap mod r)."""
        fixed = round(float(x) * self.scale)
        bound = 1 << (self.total_bits - 1)
        if not -bound < fixed < bound:
            raise OverflowError(
                f"{x} does not fit in {self.total_bits}-bit fixed point "
                f"with {self.frac_bits} fractional bits"
            )
        return fixed % R

    def decode(self, value: int) -> float:
        """Field representative -> real (interpreting the symmetric range)."""
        signed = value % R
        if signed > R // 2:
            signed -= R
        return signed / self.scale

    def encode_array(self, xs: np.ndarray) -> List[int]:
        return [self.encode(float(x)) for x in np.asarray(xs, dtype=float).ravel()]

    def decode_array(self, values: Sequence[int], shape=None) -> np.ndarray:
        out = np.array([self.decode(v) for v in values], dtype=float)
        return out.reshape(shape) if shape is not None else out

    def resolution(self) -> float:
        return 1.0 / self.scale

    # -- circuit-side operations -----------------------------------------------------

    def mul(self, builder: CircuitBuilder, a: Wire, b: Wire) -> Wire:
        """Fixed-point product: multiply then truncate back to scale f."""
        raw = builder.mul(a, b)
        return builder.truncate(raw, self.frac_bits, self.total_bits)

    def inner_product(
        self, builder: CircuitBuilder, xs: Sequence[Wire], ys: Sequence[Wire]
    ) -> Wire:
        """Sum of products with a single final truncation.

        Accumulating at double scale costs one constraint per term; the
        single truncation at the end replaces ``len(xs)`` separate ones
        (the paper's in-loop operation combining).
        """
        if len(xs) != len(ys):
            raise ValueError("inner product requires equal-length vectors")
        acc = builder.zero()
        for x, y in zip(xs, ys):
            acc = acc + builder.mul(x, y)
        return builder.truncate(acc, self.frac_bits, self.total_bits)

    def inner_product_no_rescale(
        self, builder: CircuitBuilder, xs: Sequence[Wire], ys: Sequence[Wire]
    ) -> Wire:
        """Inner product left at double scale (caller truncates).

        Exposed separately so the ablation benchmark can measure the cost
        of *not* combining operations in loops.
        """
        if len(xs) != len(ys):
            raise ValueError("inner product requires equal-length vectors")
        acc = builder.zero()
        for x, y in zip(xs, ys):
            acc = acc + builder.mul(x, y)
        return acc

    def rescale(self, builder: CircuitBuilder, w: Wire) -> Wire:
        """Truncate a double-scale value back to single scale."""
        return builder.truncate(w, self.frac_bits, self.total_bits)

    def constant(self, builder: CircuitBuilder, x: float) -> Wire:
        return builder.constant(self.encode(x))

    def wire_to_float(self, w: Wire) -> float:
        return self.decode(w.value)


#: The format used by the end-to-end ZKROWNN circuits.
DEFAULT_FORMAT = FixedPointFormat(frac_bits=16, total_bits=48)
