"""Witness-only resynthesis: replay a recorded gadget trace with new values.

The second half of the staged pipeline's split.  A full
:class:`~repro.circuit.builder.CircuitBuilder` run records the circuit
*structure* (constraints) plus a compact synthesis trace -- one event per
variable allocation and per wire multiplication.  Once a circuit shape has
been compiled, repeat proofs only need a fresh witness for new input
values, and :class:`WitnessSynthesizer` produces exactly that:

* it exposes the same API as :class:`CircuitBuilder`, so the *same gadget
  code* runs against it unchanged;
* wires carry values only -- linear-combination arithmetic is replaced by
  a shared absorbing null object, so the dictionary merges that dominate a
  full build cost nothing;
* no constraints are recorded; ``enforce``/``assert_*`` keep their witness
  value checks (dishonest inputs still fail fast) but never build R1CS
  rows;
* every allocation and multiplication is checked against the recorded
  trace, so any value-dependent divergence from the compiled structure
  raises :class:`TraceDivergence` instead of silently producing a witness
  that is misaligned with the circuit (and its Groth16 keys).

The resulting ``assignment`` is index-compatible with the compiled
constraint system; :func:`repro.snark.groth16.prove` re-checks satisfaction
as a final safety net.
"""

from __future__ import annotations


from ..field.prime import BN254_R as R
from ..snark.errors import SnarkError
from .builder import (
    EV_HINT,
    EV_MUL_ALLOC,
    EV_MUL_FOLD,
    EV_OUTPUT,
    EV_PRIVATE,
    EV_PUBLIC,
    CircuitBuilder,
    PublicOutput,
)
from .wire import Wire

__all__ = ["TraceDivergence", "WitnessSynthesizer"]

_EVENT_NAMES = {
    EV_PUBLIC: "public_input",
    EV_PRIVATE: "private_input",
    EV_OUTPUT: "public_output",
    EV_HINT: "alloc_hint",
    EV_MUL_ALLOC: "mul",
    EV_MUL_FOLD: "mul(folded)",
}


class TraceDivergence(SnarkError):
    """Witness resynthesis diverged from the compiled circuit structure.

    Raised when gadget code replays differently than it was compiled --
    i.e. the circuit had value-dependent structure.  Callers (the
    :class:`~repro.engine.engine.ProvingEngine`) fall back to a full
    rebuild, which yields a new structure digest and therefore new keys.
    """


class _NullLC:
    """Absorbing stand-in for a linear combination in witness-only mode.

    All arithmetic returns the shared singleton; ``terms`` stays an empty
    mapping so real :class:`LinearCombination` operands treat it as zero.
    """

    __slots__ = ()

    terms: dict = {}

    def __add__(self, other):
        return self

    def __radd__(self, other):
        return self

    def __sub__(self, other):
        return self

    def __rsub__(self, other):
        return self

    def scale(self, k: int):
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullLC()"


_NULL_LC = _NullLC()


class _NullConstraintSystem:
    """Variable counters with the ConstraintSystem interface, no storage."""

    __slots__ = ("num_variables", "num_public", "_private_started")

    def __init__(self):
        self.num_variables = 1
        self.num_public = 0
        self._private_started = False

    def allocate_public(self, name: str = "", *, kind: str = "", site: str = "") -> int:
        if self._private_started:
            raise ValueError(
                "public inputs must be allocated before any private variable"
            )
        index = self.num_variables
        self.num_variables += 1
        self.num_public += 1
        return index

    def allocate_private(self, name: str = "", *, kind: str = "", site: str = "") -> int:
        self._private_started = True
        index = self.num_variables
        self.num_variables += 1
        return index

    def enforce(self, a, b, c) -> None:
        pass

    def note_expected_boolean(self, index: int, site: str = "") -> None:
        pass

    @property
    def num_constraints(self) -> int:
        return 0

    @property
    def num_private(self) -> int:
        return self.num_variables - 1 - self.num_public


class WitnessSynthesizer(CircuitBuilder):
    """A value-only builder that replays a recorded synthesis trace.

    Drop-in for :class:`CircuitBuilder` in gadget code.  Inherited helper
    methods (``to_bits``, ``truncate``, ``is_zero``, comparisons, ...) work
    unchanged: their linear-combination arithmetic collapses onto the null
    LC and their ``cs.enforce`` calls hit the null constraint system, so
    only the witness values are computed.
    """

    def __init__(self, trace: bytes, name: str = "witness"):
        super().__init__(name)
        self.cs = _NullConstraintSystem()
        self._recorded = trace
        self._cursor = 0

    # ---------------------------------------------------------- trace replay --

    def _advance(self, expected: int) -> None:
        cursor = self._cursor
        if cursor >= len(self._recorded) or self._recorded[cursor] != expected:
            got = (
                _EVENT_NAMES.get(self._recorded[cursor], "?")
                if cursor < len(self._recorded)
                else "end of trace"
            )
            raise TraceDivergence(
                f"{self.name}: expected {_EVENT_NAMES[expected]} at trace "
                f"position {cursor}, compiled circuit has {got}"
            )
        self._cursor = cursor + 1

    def finish(self) -> None:
        """Assert the whole recorded trace was consumed."""
        if self._cursor != len(self._recorded):
            raise TraceDivergence(
                f"{self.name}: resynthesis stopped at trace position "
                f"{self._cursor} of {len(self._recorded)}"
            )

    # ------------------------------------------------------------- core ops --

    def constant(self, value: int) -> Wire:
        return Wire(self, _NULL_LC, value)

    def public_input(self, name: str, value: int) -> Wire:
        self._advance(EV_PUBLIC)
        self.cs.allocate_public(name)
        self.assignment.append(value % R)
        return Wire(self, _NULL_LC, value)

    def private_input(self, name: str, value: int) -> Wire:
        self._advance(EV_PRIVATE)
        self.cs.allocate_private(name)
        self.assignment.append(value % R)
        return Wire(self, _NULL_LC, value)

    def public_output(self, name: str) -> PublicOutput:
        self._advance(EV_OUTPUT)
        index = self.cs.allocate_public(name)
        self.assignment.append(0)
        return PublicOutput(index, name)

    def bind_output(self, output: PublicOutput, wire: Wire) -> None:
        if output.bound:
            raise ValueError(f"output {output.name!r} already bound")
        output.bound = True
        self.assignment[output.index] = wire.value

    def alloc_hint(self, name: str, value: int) -> Wire:
        self._advance(EV_HINT)
        self.cs.allocate_private(name)
        self.assignment.append(value % R)
        return Wire(self, _NULL_LC, value)

    def mul(self, a: Wire, b: Wire) -> Wire:
        cursor = self._cursor
        if cursor >= len(self._recorded):
            raise TraceDivergence(
                f"{self.name}: mul past the end of the recorded trace"
            )
        event = self._recorded[cursor]
        if event not in (EV_MUL_ALLOC, EV_MUL_FOLD):
            raise TraceDivergence(
                f"{self.name}: expected mul at trace position {cursor}, "
                f"compiled circuit has {_EVENT_NAMES.get(event, '?')}"
            )
        self._cursor = cursor + 1
        value = a.value * b.value % R
        if event == EV_MUL_ALLOC:
            self.cs.allocate_private("mul")
            self.assignment.append(value)
        return Wire(self, _NULL_LC, value)

    # ------------------------------------------------------------------- export --

    def structure_digest(self) -> str:
        raise TypeError(
            "WitnessSynthesizer records no structure; use the compiled "
            "circuit's digest"
        )

    def check(self) -> None:
        raise TypeError(
            "WitnessSynthesizer records no constraints; check the assignment "
            "against the compiled circuit's constraint system"
        )

    def __repr__(self) -> str:
        return (
            f"WitnessSynthesizer({self.name!r}, variables={self.cs.num_variables}, "
            f"trace={self._cursor}/{len(self._recorded)})"
        )
