"""The circuit builder: this reproduction's stand-in for xJsnark.

The paper writes its watermark-extraction computations in xJsnark, a
high-level language that compiles to libsnark R1CS circuits.
:class:`CircuitBuilder` plays that role here: gadget code manipulates
:class:`~repro.circuit.wire.Wire` objects with ordinary Python arithmetic,
and the builder records the R1CS constraints *and* synthesizes the witness
values side by side.

The builder is the *structure-recording* pass of the staged proving
pipeline (``compile -> setup -> synthesize -> prove -> verify``):

* A full build records every constraint, the witness, and a compact
  *synthesis trace* (:attr:`trace`) -- one event per variable allocation
  and per wire multiplication.  The engine layer freezes the result into
  an immutable :class:`~repro.engine.compiled.CompiledCircuit`.
* Repeat proofs for the same circuit shape replay the recorded trace with
  new input values through :class:`~repro.circuit.trace.WitnessSynthesizer`
  -- a witness-only pass that never touches linear combinations or
  constraint construction, which is what makes the one-time Groth16 setup
  (and compilation itself) amortize across proofs, the property ZKROWNN's
  amortization argument depends on.

Conventions:

* Public inputs must be declared before any private input or operation that
  allocates variables (the Groth16 instance is a prefix of the variable
  vector).  Public *outputs* are supported via placeholders allocated up
  front and bound to a computed wire later (:meth:`bind_output`).
* The builder is eager: every wire carries its value, so after synthesis
  ``builder.assignment`` is the complete witness.  Re-synthesizing the same
  gadget code with different input values yields the same constraint
  structure (checked via :meth:`structure_digest`).
"""

from __future__ import annotations

import hashlib
import os
import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence

from ..field.prime import BN254_R as R
from ..snark.errors import ConstraintViolation
from ..snark.r1cs import ONE_INDEX, ConstraintSystem, LinearCombination
from .wire import Wire

__all__ = [
    "CircuitBuilder",
    "PublicOutput",
    "EV_PUBLIC",
    "EV_PRIVATE",
    "EV_OUTPUT",
    "EV_HINT",
    "EV_MUL_ALLOC",
    "EV_MUL_FOLD",
]

# Synthesis-trace event codes.  A full build appends one event per variable
# allocation and per `mul` call; `WitnessSynthesizer` replays the sequence
# to resynthesize a witness without reconstructing any constraints.
EV_PUBLIC = 0
EV_PRIVATE = 1
EV_OUTPUT = 2
EV_HINT = 3
EV_MUL_ALLOC = 4
EV_MUL_FOLD = 5


class PublicOutput:
    """A public variable allocated up front, bound to a computed wire later."""

    __slots__ = ("index", "name", "bound")

    def __init__(self, index: int, name: str):
        self.index = index
        self.name = name
        self.bound = False


class CircuitBuilder:
    """Builds an R1CS constraint system and its witness simultaneously."""

    def __init__(self, name: str = "circuit", *, capture_sites: Optional[bool] = None):
        self.name = name
        self.cs = ConstraintSystem()
        self.assignment: List[int] = [1]
        self.trace = bytearray()
        self._one_wire: Optional[Wire] = None
        self._scope_stack: List[str] = []
        if capture_sites is None:
            capture_sites = bool(os.environ.get("ZKROWNN_AUDIT_SITES"))
        self.capture_sites = capture_sites

    # ------------------------------------------------------------- provenance --

    @contextmanager
    def scope(self, label: str) -> Iterator[None]:
        """Tag every allocation inside the block with a gadget scope label.

        Scopes nest (``outer>inner``) and flow into auditor findings as the
        wire's provenance.  Purely metadata: no constraints, no trace
        events, so replay through :class:`WitnessSynthesizer` is unchanged.
        """
        self._scope_stack.append(label)
        try:
            yield
        finally:
            self._scope_stack.pop()

    def _site(self) -> str:
        """Current allocation site: scope path, plus file:line if enabled.

        Call-site capture walks the stack and is off by default
        (``ZKROWNN_AUDIT_SITES=1`` or ``capture_sites=True`` enables it);
        the scope path alone is cheap enough to record always.
        """
        site = ">".join(self._scope_stack)
        if self.capture_sites:
            frame = sys._getframe(1)
            here = os.path.dirname(os.path.abspath(__file__))
            while frame is not None:
                filename = frame.f_code.co_filename
                if os.path.dirname(os.path.abspath(filename)) != here:
                    loc = f"{os.path.basename(filename)}:{frame.f_lineno}"
                    site = f"{site}@{loc}" if site else f"@{loc}"
                    break
                frame = frame.f_back
        return site

    def _expect_boolean(self, w: Wire) -> None:
        """Record that a gadget consumed ``w`` assuming it is boolean.

        Only single-variable shapes are recorded (``v`` or ``1 - v``); a
        compound LC being boolean says nothing about any one variable.
        """
        terms = w.lc.terms
        if not terms:
            return
        non_one = [(i, c) for i, c in terms.items() if i != ONE_INDEX]
        if len(non_one) != 1:
            return
        idx, coeff = non_one[0]
        const = terms.get(ONE_INDEX, 0)
        if (coeff == 1 and const == 0) or (coeff == R - 1 and const == 1):
            self.cs.note_expected_boolean(idx, self._site())

    # ------------------------------------------------------------------ inputs --

    def constant(self, value: int) -> Wire:
        return Wire(self, LinearCombination.constant(value), value)

    def one(self) -> Wire:
        return self.constant(1)

    def zero(self) -> Wire:
        return self.constant(0)

    def public_input(self, name: str, value: int) -> Wire:
        """Allocate a public (instance) variable with the given value."""
        self.trace.append(EV_PUBLIC)
        index = self.cs.allocate_public(name, kind="public", site=self._site())
        self.assignment.append(value % R)
        return Wire(self, LinearCombination.variable(index), value)

    def public_inputs(self, name: str, values: Sequence[int]) -> List[Wire]:
        return [self.public_input(f"{name}[{i}]", v) for i, v in enumerate(values)]

    def private_input(self, name: str, value: int) -> Wire:
        """Allocate a private (witness) variable with the given value."""
        self.trace.append(EV_PRIVATE)
        index = self.cs.allocate_private(name, kind="private", site=self._site())
        self.assignment.append(value % R)
        return Wire(self, LinearCombination.variable(index), value)

    def private_inputs(self, name: str, values: Sequence[int]) -> List[Wire]:
        return [self.private_input(f"{name}[{i}]", v) for i, v in enumerate(values)]

    def public_output(self, name: str) -> PublicOutput:
        """Reserve a public slot to be filled by :meth:`bind_output` later."""
        self.trace.append(EV_OUTPUT)
        index = self.cs.allocate_public(name, kind="output", site=self._site())
        self.assignment.append(0)
        return PublicOutput(index, name)

    def bind_output(self, output: PublicOutput, wire: Wire) -> None:
        """Constrain a reserved public output to equal a computed wire."""
        if output.bound:
            raise ValueError(f"output {output.name!r} already bound")
        output.bound = True
        self.assignment[output.index] = wire.value
        self.cs.enforce(
            LinearCombination.variable(output.index) - wire.lc,
            LinearCombination.constant(1),
            LinearCombination.constant(0),
        )

    def output_wire(self, output: PublicOutput) -> Wire:
        return Wire(
            self,
            LinearCombination.variable(output.index),
            self.assignment[output.index],
        )

    # ---------------------------------------------------------------- core ops --

    def mul(self, a: Wire, b: Wire) -> Wire:
        """Wire product: one constraint, unless either side is constant."""
        if a.is_constant():
            self.trace.append(EV_MUL_FOLD)
            return b.scale(a.value)
        if b.is_constant():
            self.trace.append(EV_MUL_FOLD)
            return a.scale(b.value)
        self.trace.append(EV_MUL_ALLOC)
        value = a.value * b.value % R
        index = self.cs.allocate_private("mul", kind="mul", site=self._site())
        self.assignment.append(value)
        out_lc = LinearCombination.variable(index)
        self.cs.enforce(a.lc, b.lc, out_lc)
        return Wire(self, out_lc, value)

    def alloc_hint(self, name: str, value: int) -> Wire:
        """Allocate an *unconstrained* witness variable (a prover hint).

        The caller is responsible for adding constraints that pin the hint
        down -- used by bit decomposition, truncation, and division gadgets.
        The circuit auditor's determinism pass checks exactly that: every
        hint must be uniquely determined by the circuit's inputs.
        """
        self.trace.append(EV_HINT)
        index = self.cs.allocate_private(name, kind="hint", site=self._site())
        self.assignment.append(value % R)
        return Wire(self, LinearCombination.variable(index), value)

    def enforce(self, a: Wire, b: Wire, c: Wire) -> None:
        """Record ``a * b = c`` and check it holds on the current witness."""
        if a.value * b.value % R != c.value % R:
            raise ConstraintViolation(
                f"{self.name}: enforce({a.value} * {b.value} != {c.value})"
            )
        self.cs.enforce(a.lc, b.lc, c.lc)

    def assert_equal(self, a: Wire, b: Wire, context: str = "") -> None:
        if a.value != b.value:
            raise ConstraintViolation(
                f"{self.name}: assert_equal failed"
                f"{' in ' + context if context else ''}: {a.value} != {b.value}"
            )
        self.cs.enforce(
            a.lc - b.lc, LinearCombination.constant(1), LinearCombination.constant(0)
        )

    def assert_zero(self, a: Wire, context: str = "") -> None:
        self.assert_equal(a, self.zero(), context or "assert_zero")

    # ----------------------------------------------------------------- booleans --

    def assert_boolean(self, w: Wire) -> None:
        """Constrain ``w * (w - 1) = 0``."""
        if w.value not in (0, 1):
            raise ConstraintViolation(
                f"{self.name}: value {w.value} is not boolean"
            )
        self.cs.enforce(w.lc, w.lc - LinearCombination.constant(1),
                        LinearCombination.constant(0))

    def allocate_bit(self, name: str, value: int) -> Wire:
        """A boolean-constrained *hint* (derived inside the circuit).

        Use :meth:`private_bit` instead when the bit is a semantic private
        input -- a value the prover chooses freely rather than one the
        circuit must pin down.  The auditor's determinism pass treats
        hints and inputs differently.
        """
        bit = self.alloc_hint(name, value)
        self.assert_boolean(bit)
        return bit

    def private_bit(self, name: str, value: int) -> Wire:
        """A boolean-constrained private *input* (the prover's free choice)."""
        bit = self.private_input(name, value)
        self.assert_boolean(bit)
        return bit

    def and_(self, a: Wire, b: Wire) -> Wire:
        self._expect_boolean(a)
        self._expect_boolean(b)
        return self.mul(a, b)

    def or_(self, a: Wire, b: Wire) -> Wire:
        self._expect_boolean(a)
        self._expect_boolean(b)
        return a + b - self.mul(a, b)

    def xor_(self, a: Wire, b: Wire) -> Wire:
        self._expect_boolean(a)
        self._expect_boolean(b)
        return a + b - self.mul(a, b).scale(2)

    def not_(self, a: Wire) -> Wire:
        self._expect_boolean(a)
        return self.one() - a

    def select(self, cond: Wire, if_true: Wire, if_false: Wire) -> Wire:
        """``cond ? if_true : if_false`` for a boolean ``cond`` (1 constraint)."""
        self._expect_boolean(cond)
        return if_false + self.mul(cond, if_true - if_false)

    # ------------------------------------------------------------ decomposition --

    def to_bits(self, w: Wire, bits: int) -> List[Wire]:
        """Decompose ``w`` into ``bits`` little-endian boolean wires.

        Adds ``bits`` booleanity constraints plus one recomposition
        constraint; implicitly range-checks ``w < 2**bits``.
        """
        value = w.value
        if value >= (1 << bits):
            raise ConstraintViolation(
                f"{self.name}: value {value} does not fit in {bits} bits"
            )
        out: List[Wire] = []
        recomposed = self.zero()
        for i in range(bits):
            bit = self.allocate_bit(f"bit_{i}", (value >> i) & 1)
            out.append(bit)
            recomposed = recomposed + bit.scale(1 << i)
        self.assert_equal(recomposed, w, "bit recomposition")
        return out

    def from_bits(self, bits: Sequence[Wire]) -> Wire:
        """Recompose little-endian bits into a wire (free)."""
        acc = self.zero()
        for i, bit in enumerate(bits):
            acc = acc + bit.scale(1 << i)
        return acc

    def assert_range(self, w: Wire, bits: int) -> None:
        """Range-check ``0 <= w < 2**bits`` via decomposition."""
        self.to_bits(w, bits)

    # -------------------------------------------------------------- comparisons --
    #
    # All comparisons interpret wires as *signed* fixed-point integers of
    # magnitude < 2**(bits-1), the convention of the paper's scaled-integer
    # arithmetic.  The sign is read off the top bit of value + 2**(bits-1).

    def is_nonnegative(self, w: Wire, bits: int) -> Wire:
        """Boolean wire: 1 iff ``signed(w) >= 0``, given |signed(w)| < 2**(bits-1)."""
        shifted = w + (1 << (bits - 1))
        if shifted.value >= (1 << bits):
            raise ConstraintViolation(
                f"{self.name}: signed value {w.signed_value()} overflows "
                f"{bits}-bit comparison"
            )
        decomposition = self.to_bits(shifted, bits)
        return decomposition[bits - 1]

    def greater_equal(self, a: Wire, b: Wire, bits: int) -> Wire:
        """Boolean wire: 1 iff ``signed(a) >= signed(b)``."""
        return self.is_nonnegative(a - b, bits + 1)

    def less_than(self, a: Wire, b: Wire, bits: int) -> Wire:
        return self.not_(self.greater_equal(a, b, bits))

    def is_zero(self, w: Wire) -> Wire:
        """Boolean wire: 1 iff ``w == 0`` (2 constraints, inverse trick)."""
        value = w.value
        inv_value = pow(value, -1, R) if value else 0
        inv = self.alloc_hint("is_zero_inv", inv_value)
        result = self.alloc_hint("is_zero_out", 0 if value else 1)
        # result = 1 - w * inv;  w * result = 0.
        self.cs.enforce(w.lc, inv.lc,
                        LinearCombination.constant(1) - result.lc)
        self.cs.enforce(w.lc, result.lc, LinearCombination.constant(0))
        self.assert_boolean(result)
        return result

    # -------------------------------------------------- integer division helpers --

    def truncate(self, w: Wire, shift: int, range_bits: int) -> Wire:
        """Floor-divide a signed wire by ``2**shift`` (fixed-point rescale).

        Allocates quotient and remainder hints with
        ``w = q * 2**shift + rem``, range-checks ``rem < 2**shift`` and
        ``|signed(q)| < 2**(range_bits-1)``.  This is the paper's
        "scale inputs ... and truncate" step done *inside* the circuit.
        """
        value = w.signed_value()
        q_value = value >> shift
        rem_value = value - (q_value << shift)
        q = self.alloc_hint("trunc_q", q_value)
        rem = self.alloc_hint("trunc_rem", rem_value)
        self.assert_equal(q.scale(1 << shift) + rem, w, "truncation")
        self.assert_range(rem, shift)
        self.assert_signed_range(q, range_bits)
        return q

    def assert_signed_range(self, w: Wire, bits: int) -> None:
        """Check ``-2**(bits-1) <= signed(w) < 2**(bits-1)``."""
        shifted = w + (1 << (bits - 1))
        self.assert_range(shifted, bits)

    def div_floor_const(self, w: Wire, divisor: int, range_bits: int) -> Wire:
        """Floor-divide a signed wire by a positive integer constant.

        Used by the averaging circuit (divide a sum of activations by the
        trigger-set size).  Costs ~``log2(divisor) + range_bits`` constraints.
        """
        if divisor <= 0:
            raise ValueError("divisor must be positive")
        if divisor == 1:
            return w
        if divisor & (divisor - 1) == 0:
            return self.truncate(w, divisor.bit_length() - 1, range_bits)
        value = w.signed_value()
        q_value = value // divisor
        rem_value = value - q_value * divisor
        q = self.alloc_hint("div_q", q_value)
        rem = self.alloc_hint("div_rem", rem_value)
        self.assert_equal(q.scale(divisor) + rem, w, "const division")
        rem_bits = divisor.bit_length()
        self.assert_range(rem, rem_bits)
        # rem < divisor  <=>  divisor - 1 - rem >= 0.
        diff = self.constant(divisor - 1) - rem
        self.assert_range(diff, rem_bits)
        self.assert_signed_range(q, range_bits)
        return q

    # ------------------------------------------------------------------- export --

    def public_values(self) -> List[int]:
        return self.assignment[1 : 1 + self.cs.num_public]

    def structure_digest(self) -> str:
        """A digest of the constraint structure (not the witness values).

        Two synthesis runs of the same gadget code produce the same digest;
        a mismatch means a circuit was rebuilt with value-dependent
        structure and existing Groth16 keys are unusable for it.
        """
        h = hashlib.sha256()
        h.update(f"{self.cs.num_variables}|{self.cs.num_public}".encode())
        for a, b, c in self.cs.constraints:
            for lc in (a, b, c):
                for idx in sorted(lc.terms):
                    h.update(idx.to_bytes(4, "big"))
                    h.update(lc.terms[idx].to_bytes(32, "big"))
                h.update(b"|")
            h.update(b";")
        return h.hexdigest()

    def check(self) -> None:
        """Verify the synthesized witness satisfies every constraint."""
        self.cs.check_satisfied(self.assignment)

    def __repr__(self) -> str:
        return (
            f"CircuitBuilder({self.name!r}, constraints={self.cs.num_constraints}, "
            f"variables={self.cs.num_variables}, public={self.cs.num_public})"
        )
