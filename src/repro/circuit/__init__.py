"""High-level circuit construction (the xJsnark role in the paper's stack).

:class:`CircuitBuilder` turns gadget code written with ordinary Python
operators into an R1CS constraint system plus witness (and records the
synthesis trace of the staged proving pipeline);
:class:`WitnessSynthesizer` replays that trace to resynthesize a witness
for new input values without rebuilding constraints;
:class:`FixedPointFormat` maps real-valued neural-network arithmetic onto
field elements.
"""

from .builder import CircuitBuilder, PublicOutput
from .fixedpoint import DEFAULT_FORMAT, FixedPointFormat
from .trace import TraceDivergence, WitnessSynthesizer
from .wire import Wire

__all__ = [
    "CircuitBuilder",
    "PublicOutput",
    "DEFAULT_FORMAT",
    "FixedPointFormat",
    "TraceDivergence",
    "WitnessSynthesizer",
    "Wire",
]
