"""High-level circuit construction (the xJsnark role in the paper's stack).

:class:`CircuitBuilder` turns gadget code written with ordinary Python
operators into an R1CS constraint system plus witness;
:class:`FixedPointFormat` maps real-valued neural-network arithmetic onto
field elements.
"""

from .builder import CircuitBuilder, PublicOutput
from .fixedpoint import DEFAULT_FORMAT, FixedPointFormat
from .wire import Wire

__all__ = [
    "CircuitBuilder",
    "PublicOutput",
    "DEFAULT_FORMAT",
    "FixedPointFormat",
    "Wire",
]
