"""The persisted machine profile: measured knob settings for this host.

A profile is a small JSON document written by ``zkrownn tune`` --
``~/.zkrownn/profile.json`` by default, or wherever ``--out`` /
``ZKROWNN_PROFILE`` points -- holding the knob values that measured
fastest on this machine:

* ``field_backend``: the winner of the field-backend ablation; consulted
  by ``ZKROWNN_FIELD_BACKEND=auto`` before its static preference order.
* ``pippenger_windows``: per-size window-width breakpoints (``signed``
  and ``unsigned`` tables of ``[min_pairs, width]`` rows); consulted by
  ``pippenger_window_size`` before its static dev-box tables.
* ``compute_backend`` / ``workers`` / ``min_msm_chunk``: parallel layer
  defaults, consulted by ``repro.parallel.backend.get_backend``.
* ``max_batch``: proof-service scheduler batching default.

Precedence is uniform everywhere: explicit argument > environment
variable > machine profile > static default.  ``ZKROWNN_PROFILE``
selects a non-default profile path; ``off`` (or ``0`` / ``none``)
disables profile loading entirely.

This module is stdlib-only and imported lazily from low layers
(``field.backend``, ``curves.msm``) -- it must never import back into
the kernels it parameterizes.

The in-process cache is PID-keyed like the field-backend registry, so
forked workers re-resolve from the environment rather than inheriting a
parent's pin.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "PROFILE_ENV",
    "MachineProfile",
    "default_profile_path",
    "load_profile",
    "active_profile",
    "set_profile",
    "clear_profile_cache",
    "profile_field_backend",
    "pippenger_window_override",
    "profile_compute_backend",
    "profile_workers",
    "profile_max_batch",
    "profile_min_msm_chunk",
    "active_profile_metadata",
]

PROFILE_ENV = "ZKROWNN_PROFILE"
PROFILE_VERSION = 1

_OFF_VALUES = {"off", "0", "none", "disabled"}


def default_profile_path() -> str:
    return os.path.join(os.path.expanduser("~"), ".zkrownn", "profile.json")


def machine_fingerprint() -> Dict[str, Any]:
    """Best-effort description of the host the profile was measured on."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }


@dataclass
class MachineProfile:
    """Typed view of one profile document (see module docstring)."""

    field_backend: Optional[str] = None
    compute_backend: Optional[str] = None
    workers: Optional[int] = None
    max_batch: Optional[int] = None
    min_msm_chunk: Optional[int] = None
    #: ``{"signed": [[min_pairs, width], ...], "unsigned": [...]}`` --
    #: rows sorted by ``min_pairs``; lookup takes the last row at or
    #: below the queried size.
    pippenger_windows: Dict[str, List[List[int]]] = field(default_factory=dict)
    #: Raw benchmark numbers the tuner based its choices on (seconds).
    measurements: Dict[str, Any] = field(default_factory=dict)
    machine: Dict[str, Any] = field(default_factory=dict)
    created_at: Optional[str] = None
    version: int = PROFILE_VERSION
    #: Where this profile was loaded from (None for in-memory profiles).
    path: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"version": self.version}
        for key in (
            "created_at",
            "field_backend",
            "compute_backend",
            "workers",
            "max_batch",
            "min_msm_chunk",
        ):
            value = getattr(self, key)
            if value is not None:
                doc[key] = value
        if self.pippenger_windows:
            doc["pippenger_windows"] = self.pippenger_windows
        if self.measurements:
            doc["measurements"] = self.measurements
        if self.machine:
            doc["machine"] = self.machine
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any], path: Optional[str] = None
                  ) -> "MachineProfile":
        if not isinstance(doc, dict):
            raise ValueError("machine profile must be a JSON object")
        windows = doc.get("pippenger_windows") or {}
        cleaned: Dict[str, List[List[int]]] = {}
        for kind, rows in windows.items():
            table = sorted(
                [[int(n), int(c)] for n, c in rows], key=lambda row: row[0]
            )
            cleaned[str(kind)] = table
        return cls(
            field_backend=doc.get("field_backend"),
            compute_backend=doc.get("compute_backend"),
            workers=_opt_int(doc.get("workers")),
            max_batch=_opt_int(doc.get("max_batch")),
            min_msm_chunk=_opt_int(doc.get("min_msm_chunk")),
            pippenger_windows=cleaned,
            measurements=doc.get("measurements") or {},
            machine=doc.get("machine") or {},
            created_at=doc.get("created_at"),
            version=int(doc.get("version", PROFILE_VERSION)),
            path=path,
        )

    def save(self, path: str) -> str:
        """Atomically write the profile JSON; returns the path written."""
        path = os.path.expanduser(path)
        directory = os.path.dirname(path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.path = path
        return path

    def window_override(self, n: int, *, signed: bool = True) -> Optional[int]:
        table = self.pippenger_windows.get("signed" if signed else "unsigned")
        if not table:
            return None
        best: Optional[int] = None
        for min_pairs, width in table:
            if n >= min_pairs:
                best = width
            else:
                break
        return best


def _opt_int(value) -> Optional[int]:
    return None if value is None else int(value)


def load_profile(path: str) -> MachineProfile:
    """Load a profile document from ``path`` (raises on missing/invalid)."""
    path = os.path.expanduser(path)
    with open(path, "r") as handle:
        doc = json.load(handle)
    return MachineProfile.from_dict(doc, path=path)


# PID-keyed resolution cache; forked workers re-resolve on first use.
_CACHE: Dict[str, Any] = {
    "pid": None, "profile": None, "pinned": False, "resolved": False,
}


def set_profile(profile: Optional[MachineProfile]) -> Optional[MachineProfile]:
    """Pin the process-wide profile (tests, tuner); returns the previous pin.

    ``None`` unpins, returning resolution to ``ZKROWNN_PROFILE`` / the
    default path on next use.
    """
    previous = _CACHE["profile"] if _CACHE["pinned"] else None
    _CACHE["pid"] = os.getpid()
    _CACHE["profile"] = profile
    _CACHE["pinned"] = profile is not None
    _CACHE["resolved"] = False
    return previous


def clear_profile_cache() -> None:
    """Drop the cached resolution (and any pin); next use re-resolves."""
    _CACHE["pid"] = None
    _CACHE["profile"] = None
    _CACHE["pinned"] = False
    _CACHE["resolved"] = False


def active_profile() -> Optional[MachineProfile]:
    """The machine profile in effect for this process, if any.

    Resolution order: a :func:`set_profile` pin; else the path named by
    ``ZKROWNN_PROFILE`` (``off`` disables); else the default
    ``~/.zkrownn/profile.json`` when it exists.  Unreadable or invalid
    profile files are treated as absent -- a stale profile must never
    break proving.
    """
    pid = os.getpid()
    if _CACHE["pid"] == pid and (_CACHE["pinned"] or _CACHE["resolved"]):
        return _CACHE["profile"]
    env = os.environ.get(PROFILE_ENV, "").strip()
    profile: Optional[MachineProfile] = None
    if env.lower() not in _OFF_VALUES:
        path = env or default_profile_path()
        try:
            profile = load_profile(path)
        except (OSError, ValueError):
            profile = None
    _CACHE["pid"] = pid
    _CACHE["profile"] = profile
    _CACHE["pinned"] = False
    _CACHE["resolved"] = True
    return profile


def profile_field_backend() -> Optional[str]:
    profile = active_profile()
    return profile.field_backend if profile else None


def pippenger_window_override(n: int, *, signed: bool = True) -> Optional[int]:
    profile = active_profile()
    if profile is None:
        return None
    return profile.window_override(n, signed=signed)


def profile_compute_backend() -> Optional[str]:
    profile = active_profile()
    return profile.compute_backend if profile else None


def profile_workers() -> Optional[int]:
    profile = active_profile()
    return profile.workers if profile else None


def profile_max_batch() -> Optional[int]:
    profile = active_profile()
    return profile.max_batch if profile else None


def profile_min_msm_chunk() -> Optional[int]:
    profile = active_profile()
    return profile.min_msm_chunk if profile else None


def active_profile_metadata() -> Dict[str, Any]:
    """Summary of the loaded profile for benchmark JSON payloads."""
    profile = active_profile()
    if profile is None:
        return {"loaded": False}
    return {
        "loaded": True,
        "path": profile.path,
        "created_at": profile.created_at,
        "field_backend": profile.field_backend,
        "compute_backend": profile.compute_backend,
        "workers": profile.workers,
        "max_batch": profile.max_batch,
        "min_msm_chunk": profile.min_msm_chunk,
        "pippenger_windows": profile.pippenger_windows or None,
    }
