"""``zkrownn bench-report``: one trend table from many ``BENCH_*.json``.

Every benchmark session writes per-module ``BENCH_<name>.json`` payloads
(:mod:`benchmarks.conftest`): per-test wall times, richer per-entry
metrics (proof sizes, constraint counts, kernel ratios) and the backend
plus machine-profile configuration the numbers were produced under.
This module consolidates any number of those files into a readable
report -- and, given a baseline directory (an earlier run, another
branch's CI artifact), a before/after delta table.

Stdlib-only, like the rest of :mod:`repro.tuning`.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "load_bench_reports",
    "summarize_report",
    "diff_reports",
    "render_report",
]

#: Entry fields surfaced in the key-metric listing.  Anything numeric
#: whose name ends with one of these suffixes is considered a metric.
_METRIC_SUFFIXES = (
    "seconds",
    "bytes",
    "constraints",
    "ratio",
    "speedup",
    "ops",
    "count",
)


def load_bench_reports(paths: Sequence[str]) -> Dict[str, dict]:
    """Load ``BENCH_*.json`` payloads from files and/or directories.

    Returns ``{benchmark name: payload}``; malformed files are skipped
    with a ``_errors`` note under the special key ``""`` rather than
    failing the whole report.
    """
    files: List[str] = []
    for path in paths:
        path = os.path.expanduser(path)
        if os.path.isdir(path):
            files.extend(
                os.path.join(path, name)
                for name in sorted(os.listdir(path))
                if name.startswith("BENCH_") and name.endswith(".json")
            )
        else:
            files.append(path)
    reports: Dict[str, dict] = {}
    errors: List[str] = []
    for file in files:
        try:
            with open(file, "r") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            errors.append(f"{file}: {exc}")
            continue
        name = payload.get("benchmark") or os.path.splitext(
            os.path.basename(file)
        )[0].replace("BENCH_", "bench_")
        payload.setdefault("_path", file)
        reports[str(name)] = payload
    if errors:
        reports[""] = {"_errors": errors}
    return reports


def _numeric_metrics(entry: dict) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for key, value in entry.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if key.endswith(_METRIC_SUFFIXES):
            out[key] = float(value)
    return out


def summarize_report(payload: dict) -> Dict[str, Any]:
    """Flatten one payload into the fields the trend table shows."""
    test_seconds = payload.get("test_seconds") or {}
    total = sum(test_seconds.values())
    slowest: Tuple[str, float] = ("-", 0.0)
    for test, seconds in test_seconds.items():
        if seconds >= slowest[1]:
            slowest = (test, seconds)
    profile = payload.get("machine_profile") or {}
    metrics: Dict[str, float] = {}
    for entry_name, entry in (payload.get("entries") or {}).items():
        if not isinstance(entry, dict):
            continue
        for key, value in _numeric_metrics(entry).items():
            metrics[f"{entry_name}.{key}"] = value
    return {
        "benchmark": payload.get("benchmark", "?"),
        "tests": len(test_seconds),
        "total_seconds": total,
        "slowest_test": slowest[0],
        "slowest_seconds": slowest[1],
        "scale": payload.get("scale"),
        "field_backend": payload.get("field_backend"),
        "backend_env": payload.get("backend_env"),
        "profile_loaded": bool(profile.get("loaded")),
        "profile_created_at": profile.get("created_at"),
        "metrics": metrics,
    }


def diff_reports(
    baseline: Dict[str, dict], current: Dict[str, dict]
) -> List[Dict[str, Any]]:
    """Per-test before/after rows for benchmarks present in both runs.

    ``delta_pct`` is signed current-vs-baseline: negative means the
    current run is faster.
    """
    rows: List[Dict[str, Any]] = []
    for name in sorted(set(baseline) & set(current) - {""}):
        before = baseline[name].get("test_seconds") or {}
        after = current[name].get("test_seconds") or {}
        for test in sorted(set(before) & set(after)):
            b, a = before[test], after[test]
            delta = (a - b) / b * 100.0 if b else 0.0
            rows.append(
                {
                    "benchmark": name,
                    "test": test,
                    "baseline_seconds": b,
                    "current_seconds": a,
                    "delta_pct": delta,
                }
            )
    return rows


def _format_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_report(
    paths: Sequence[str],
    *,
    baseline: Optional[str] = None,
    show_metrics: bool = True,
) -> str:
    """The full ``zkrownn bench-report`` text output."""
    reports = load_bench_reports(paths)
    errors = reports.pop("", {}).get("_errors", [])
    sections: List[str] = []
    if not reports:
        sections.append("no BENCH_*.json files found")
    else:
        rows = []
        for name in sorted(reports):
            s = summarize_report(reports[name])
            rows.append(
                [
                    s["benchmark"],
                    str(s["tests"]),
                    f"{s['total_seconds']:.2f}",
                    f"{s['slowest_seconds']:.2f}",
                    s["slowest_test"][:48],
                    str(s["field_backend"] or "-"),
                    "yes" if s["profile_loaded"] else "no",
                ]
            )
        sections.append(
            "# Benchmark trend\n"
            + _format_table(
                [
                    "benchmark",
                    "tests",
                    "total_s",
                    "max_s",
                    "slowest test",
                    "field",
                    "profile",
                ],
                rows,
            )
        )
        if show_metrics:
            metric_rows = []
            for name in sorted(reports):
                s = summarize_report(reports[name])
                for key, value in sorted(s["metrics"].items()):
                    metric_rows.append(
                        [s["benchmark"], key[:64], f"{value:g}"]
                    )
            if metric_rows:
                sections.append(
                    "# Key metrics\n"
                    + _format_table(
                        ["benchmark", "metric", "value"], metric_rows
                    )
                )
    if baseline is not None:
        base_reports = load_bench_reports([baseline])
        base_reports.pop("", None)
        delta_rows = diff_reports(base_reports, reports)
        if delta_rows:
            rows = [
                [
                    d["benchmark"],
                    d["test"][:56],
                    f"{d['baseline_seconds']:.3f}",
                    f"{d['current_seconds']:.3f}",
                    f"{d['delta_pct']:+.1f}%",
                ]
                for d in delta_rows
            ]
            sections.append(
                "# Before/after vs baseline\n"
                + _format_table(
                    ["benchmark", "test", "before_s", "after_s", "delta"],
                    rows,
                )
            )
        else:
            sections.append(
                "# Before/after vs baseline\nno overlapping benchmarks"
            )
    if errors:
        sections.append("# Skipped files\n" + "\n".join(errors))
    return "\n\n".join(sections)
