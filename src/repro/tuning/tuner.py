"""``zkrownn tune``: measure this host's knobs and persist the winners.

The tuner runs a bounded grid / hill-climb search over the knobs that
:mod:`repro.tuning.profile` persists -- field backend, Pippenger window
widths, compute backend + worker count, process-pool MSM chunking, and
the scheduler's ``max_batch`` -- benchmarking each point on
representative workloads (an MSM/NTT pair sized like the catalog
circuits' dominant kernels, and an engine ``prove_batch`` over a small
chain circuit).  It then re-measures the reference workload under the
chosen profile so the before/after delta ships with the profile.

Search logic is separated from measurement: :func:`grid_search` and
:func:`hill_climb` are pure given a ``measure`` callable, and every
stage's measurement function can be injected through the
:class:`Tuner` constructor -- the unit tests drive the search with
stubbed timers and never touch a real kernel.

Module-level imports here must stay stdlib-only: ``repro.tuning`` is
imported lazily from low layers (``field.backend``, ``curves.msm``) and
pulling kernels in at import time would create a cycle.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .profile import MachineProfile, machine_fingerprint, set_profile

__all__ = ["Tuner", "TuningResult", "grid_search", "hill_climb"]

Measure = Callable[[Any], float]


def grid_search(
    candidates: Sequence[Any], measure: Measure
) -> Tuple[Any, List[Dict[str, Any]]]:
    """Measure every candidate; return ``(best, trials)``.

    Ties break toward the earlier candidate, so callers list their
    preferred default first.
    """
    if not candidates:
        raise ValueError("grid_search needs at least one candidate")
    trials: List[Dict[str, Any]] = []
    best, best_seconds = None, None
    for candidate in candidates:
        seconds = measure(candidate)
        trials.append({"candidate": candidate, "seconds": seconds})
        if best_seconds is None or seconds < best_seconds:
            best, best_seconds = candidate, seconds
    return best, trials


def hill_climb(
    start: int,
    measure: Callable[[int], float],
    *,
    lo: int,
    hi: int,
) -> Tuple[int, List[Dict[str, Any]]]:
    """Integer hill-climb from ``start`` within ``[lo, hi]``.

    Evaluates the start point and both neighbours, then walks in the
    improving direction until the curve turns.  Measurements are
    memoized, so a stubbed ``measure`` sees each point at most once.
    """
    if not lo <= start <= hi:
        raise ValueError(f"start {start} outside [{lo}, {hi}]")
    seen: Dict[int, float] = {}
    trials: List[Dict[str, Any]] = []

    def probe(point: int) -> float:
        if point not in seen:
            seen[point] = measure(point)
            trials.append({"candidate": point, "seconds": seen[point]})
        return seen[point]

    best = start
    probe(best)
    improved = True
    while improved:
        improved = False
        for neighbour in (best - 1, best + 1):
            if lo <= neighbour <= hi and probe(neighbour) < seen[best]:
                best, improved = neighbour, True
    return best, trials


@dataclass
class TuningResult:
    """Outcome of one :meth:`Tuner.run`: the profile plus its evidence."""

    profile: MachineProfile
    #: Per-stage raw trials (``{"stage": [{"candidate", "seconds"}, ...]}``).
    trials: Dict[str, Any] = field(default_factory=dict)
    #: Reference-workload seconds under static defaults.
    baseline_seconds: Optional[float] = None
    #: Reference-workload seconds under the tuned profile.
    tuned_seconds: Optional[float] = None

    @property
    def speedup(self) -> Optional[float]:
        if not self.baseline_seconds or not self.tuned_seconds:
            return None
        return self.baseline_seconds / self.tuned_seconds

    def summary(self) -> Dict[str, Any]:
        return {
            "profile": self.profile.to_dict(),
            "baseline_seconds": self.baseline_seconds,
            "tuned_seconds": self.tuned_seconds,
            "speedup": self.speedup,
        }


class Tuner:
    """Bounded knob search producing a :class:`MachineProfile`.

    ``quick`` shrinks every workload and candidate grid to something a CI
    smoke job finishes in well under a minute of kernel time; the full
    mode sizes workloads like the tiny-scale catalog circuits.  Any of
    the ``measure_*`` callables may be injected for deterministic tests.
    """

    WINDOW_LO = 4
    WINDOW_HI = 16

    def __init__(
        self,
        *,
        quick: bool = False,
        repeats: Optional[int] = None,
        seed: int = 20230710,
        timer: Callable[[], float] = time.perf_counter,
        log: Optional[Callable[[str], None]] = None,
        measure_field_backend: Optional[Callable[[str], float]] = None,
        measure_window: Optional[Callable[[int, int], float]] = None,
        measure_prove: Optional[Callable[[str, Optional[int]], float]] = None,
        measure_chunk: Optional[Callable[[int, int], float]] = None,
        measure_batch: Optional[Callable[[int], float]] = None,
        measure_reference: Optional[Callable[[], float]] = None,
    ):
        self.quick = quick
        self.repeats = repeats if repeats is not None else (1 if quick else 3)
        self.seed = seed
        self.timer = timer
        self._log = log or (lambda message: None)
        self._measure_field_backend = (
            measure_field_backend or self._real_measure_field_backend
        )
        self._measure_window = measure_window or self._real_measure_window
        self._measure_prove = measure_prove or self._real_measure_prove
        self._measure_chunk = measure_chunk or self._real_measure_chunk
        self._measure_batch = measure_batch or self._real_measure_batch
        self._measure_reference = (
            measure_reference or self._real_measure_reference
        )
        # Workload sizes: quick keeps CI smoke bounded; full sizes match
        # the tiny-scale catalog circuits' dominant kernel shapes.
        if quick:
            self.msm_size = 256
            self.ntt_size = 1024
            self.window_sizes = [256]
            self.prove_depth = 24
            self.prove_claims = 2
            self.worker_candidates = [w for w in (1, 2) if w <= _cpus()]
            self.chunk_candidates = [512]
            self.batch_candidates = [2, 4]
        else:
            self.msm_size = 2048
            self.ntt_size = 8192
            self.window_sizes = [512, 4096]
            self.prove_depth = 96
            self.prove_claims = 4
            self.worker_candidates = sorted(
                {w for w in (1, 2, 4, _cpus()) if w <= _cpus()}
            )
            self.chunk_candidates = [256, 1024, 4096]
            self.batch_candidates = [2, 4, 8, 16]
        self._workloads: Dict[str, Any] = {}

    # ------------------------------------------------------------- search --

    def run(self) -> TuningResult:
        """Execute every stage; returns the profile and its evidence.

        The process-wide profile pin and field-backend pin are restored on
        exit, so running the tuner never changes ambient behaviour -- the
        caller decides whether to :meth:`MachineProfile.save` the result.
        """
        from ..field.backend import set_field_backend

        trials: Dict[str, Any] = {}
        # Pin an empty profile so an ambient ~/.zkrownn/profile.json can't
        # skew the measurements we are about to take.
        previous_profile = set_profile(MachineProfile())
        previous_backend = None
        try:
            baseline = self._time_reference()
            trials["reference_baseline"] = baseline

            field_backend, field_trials = self._tune_field_backend()
            trials["field_backend"] = field_trials
            previous_backend = set_field_backend(field_backend)

            windows, window_trials = self._tune_windows()
            trials["pippenger_windows"] = window_trials

            (
                compute_backend,
                workers,
                min_msm_chunk,
                parallel_trials,
            ) = self._tune_parallel()
            trials["parallel"] = parallel_trials

            max_batch, batch_trials = self._tune_max_batch()
            trials["max_batch"] = batch_trials

            profile = MachineProfile(
                field_backend=field_backend,
                compute_backend=compute_backend,
                workers=workers,
                max_batch=max_batch,
                min_msm_chunk=min_msm_chunk,
                pippenger_windows=windows,
                machine=machine_fingerprint(),
                created_at=datetime.now(timezone.utc).isoformat(),
            )
            set_profile(profile)
            tuned = self._time_reference()
            trials["reference_tuned"] = tuned
            profile.measurements = {
                "quick": self.quick,
                "repeats": self.repeats,
                "reference_baseline_seconds": baseline,
                "reference_tuned_seconds": tuned,
                "trials": _jsonable(trials),
            }
            return TuningResult(
                profile=profile,
                trials=trials,
                baseline_seconds=baseline,
                tuned_seconds=tuned,
            )
        finally:
            set_profile(previous_profile)
            set_field_backend(previous_backend)

    def _tune_field_backend(self) -> Tuple[str, List[Dict[str, Any]]]:
        from ..field.backend import available_field_backends

        candidates = available_field_backends()
        self._log(f"tune: field backends {candidates}")
        best, trials = grid_search(candidates, self._measure_field_backend)
        self._log(f"tune: field backend -> {best}")
        return best, trials

    def _tune_windows(
        self,
    ) -> Tuple[Dict[str, List[List[int]]], Dict[str, Any]]:
        from ..curves.msm import pippenger_window_size

        rows: List[List[int]] = []
        all_trials: Dict[str, Any] = {}
        for n in self.window_sizes:
            # msm_g1 GLV-splits each scalar, so the window lookup inside
            # sees ~2n pairs; key the profile row by that split count.
            pairs = 2 * n
            start = min(
                max(pippenger_window_size(pairs), self.WINDOW_LO),
                self.WINDOW_HI,
            )
            best, trials = hill_climb(
                start,
                lambda c, n=n: self._measure_window(n, c),
                lo=self.WINDOW_LO,
                hi=self.WINDOW_HI,
            )
            self._log(f"tune: window @ {n} points -> c={best}")
            rows.append([pairs, best])
            all_trials[str(n)] = trials
        rows.sort(key=lambda row: row[0])
        return {"signed": rows}, all_trials

    def _tune_parallel(
        self,
    ) -> Tuple[str, Optional[int], Optional[int], Dict[str, Any]]:
        parallel_trials: Dict[str, Any] = {}
        candidates: List[Tuple[str, Optional[int]]] = [("serial", None)]
        candidates += [("process", w) for w in self.worker_candidates]
        best, trials = grid_search(
            candidates, lambda cand: self._measure_prove(cand[0], cand[1])
        )
        parallel_trials["prove"] = trials
        compute_backend, workers = best
        self._log(
            f"tune: compute backend -> {compute_backend}"
            + (f" x{workers}" if workers else "")
        )
        min_msm_chunk: Optional[int] = None
        if compute_backend == "process":
            chunk, chunk_trials = grid_search(
                self.chunk_candidates,
                lambda c: self._measure_chunk(workers, c),
            )
            parallel_trials["min_msm_chunk"] = chunk_trials
            min_msm_chunk = chunk
            self._log(f"tune: min_msm_chunk -> {chunk}")
        return compute_backend, workers, min_msm_chunk, parallel_trials

    def _tune_max_batch(self) -> Tuple[int, List[Dict[str, Any]]]:
        # Score batch sizes by *per-claim* seconds: bigger batches win only
        # while amortization still pays.
        def per_claim(b: int) -> float:
            return self._measure_batch(b) / b

        best, trials = grid_search(self.batch_candidates, per_claim)
        self._log(f"tune: max_batch -> {best}")
        return best, trials

    # ------------------------------------------------------- measurement --

    def _time(self, fn: Callable[[], Any]) -> float:
        best: Optional[float] = None
        for _ in range(max(1, self.repeats)):
            t0 = self.timer()
            fn()
            elapsed = self.timer() - t0
            if best is None or elapsed < best:
                best = elapsed
        return best or 0.0

    def _msm_inputs(self, n: int):
        cached = self._workloads.get(("msm", n))
        if cached is None:
            import random

            from ..curves.bn254 import R
            from ..curves.g1 import G1Point

            rng = random.Random(self.seed)
            G = G1Point.generator()
            acc, points = G, []
            for _ in range(n):
                points.append((acc.x, acc.y))
                acc = acc + G
            scalars = [rng.randrange(1, R) for _ in range(n)]
            cached = (points, scalars)
            self._workloads[("msm", n)] = cached
        return cached

    def _real_measure_field_backend(self, name: str) -> float:
        import random

        from ..curves.bn254 import R
        from ..curves.msm import msm_g1
        from ..field.backend import set_field_backend
        from ..field.ntt import get_domain

        points, scalars = self._msm_inputs(self.msm_size)
        rng = random.Random(self.seed + 1)
        values = [rng.randrange(R) for _ in range(self.ntt_size)]
        previous = set_field_backend(name)
        try:
            domain = get_domain(self.ntt_size)

            def workload():
                msm_g1(points, scalars)
                domain.ifft(domain.fft(values))

            # One warm-up builds backend-native tables outside the clock.
            workload()
            return self._time(workload)
        finally:
            set_field_backend(previous)

    def _real_measure_window(self, n: int, c: int) -> float:
        from ..curves.msm import msm_g1

        points, scalars = self._msm_inputs(n)
        # Route the forced width through the production lookup itself:
        # a one-row profile table covering every size.
        forced = MachineProfile(
            pippenger_windows={"signed": [[0, c]], "unsigned": [[0, c]]}
        )
        previous = set_profile(forced)
        try:
            return self._time(lambda: msm_g1(points, scalars))
        finally:
            set_profile(previous)

    def _prove_workload(self):
        cached = self._workloads.get("prove")
        if cached is None:
            from ..engine.engine import ProvingEngine
            from ..parallel.backend import SerialBackend

            depth = self.prove_depth

            def synthesize(b):
                out = b.public_output("y")
                w = b.private_input("x", 3)
                acc = w
                for _ in range(depth):
                    acc = b.mul(acc, w)
                b.bind_output(out, acc + 1)

            engine = ProvingEngine(backend=SerialBackend())
            compiled, synthesis = engine.synthesize("tune-chain", synthesize)
            keypair = engine.setup(compiled, seed=7)
            cached = (compiled, synthesis, keypair)
            self._workloads["prove"] = cached
        return cached

    def _real_measure_prove(self, backend: str, workers: Optional[int]) -> float:
        from ..engine.engine import ProvingEngine
        from ..parallel.backend import ProcessBackend, SerialBackend

        compiled, synthesis, keypair = self._prove_workload()
        compute = (
            ProcessBackend(workers) if backend == "process" else SerialBackend()
        )
        engine = ProvingEngine(backend=compute)
        engine._keypairs[compiled.digest] = keypair
        claims = [synthesis] * self.prove_claims
        seeds = list(range(1, self.prove_claims + 1))
        try:
            # Warm-up transfers key material into pool workers off-clock.
            engine.prove_batch(compiled, claims, seeds=seeds, setup_seed=7)
            return self._time(
                lambda: engine.prove_batch(
                    compiled, claims, seeds=seeds, setup_seed=7
                )
            )
        finally:
            compute.close()

    def _real_measure_chunk(self, workers: Optional[int], chunk: int) -> float:
        from ..parallel.backend import ProcessBackend

        points, scalars = self._msm_inputs(self.msm_size)
        backend = ProcessBackend(workers, min_msm_chunk=chunk)
        try:
            backend.msm_g1(points, scalars)  # warm the pool
            return self._time(lambda: backend.msm_g1(points, scalars))
        finally:
            backend.close()

    def _real_measure_batch(self, batch: int) -> float:
        from ..engine.engine import ProvingEngine
        from ..parallel.backend import SerialBackend

        compiled, synthesis, keypair = self._prove_workload()
        engine = ProvingEngine(backend=SerialBackend())
        engine._keypairs[compiled.digest] = keypair
        claims = [synthesis] * batch
        seeds = list(range(1, batch + 1))
        return self._time(
            lambda: engine.prove_batch(
                compiled, claims, seeds=seeds, setup_seed=7
            )
        )

    def _time_reference(self) -> float:
        return self._measure_reference()

    def _real_measure_reference(self) -> float:
        """One pass of the reference workload under the ambient knobs.

        Uses whatever field backend / windows / batching the currently
        active profile (or defaults) selects -- this is what the
        before/after delta in the persisted profile compares.
        """
        from ..curves.msm import msm_g1

        points, scalars = self._msm_inputs(self.msm_size)
        compiled, synthesis, keypair = self._prove_workload()

        def workload():
            from ..engine.engine import ProvingEngine
            from ..parallel.backend import SerialBackend

            msm_g1(points, scalars)
            engine = ProvingEngine(backend=SerialBackend())
            engine._keypairs[compiled.digest] = keypair
            engine.prove_batch(
                compiled, [synthesis] * 2, seeds=[1, 2], setup_seed=7
            )

        workload()
        return self._time(workload)


def _cpus() -> int:
    return os.cpu_count() or 1


def _jsonable(value):
    """Trials hold tuples (candidate pairs); make them JSON-round-trippable."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value
