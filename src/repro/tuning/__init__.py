"""Machine-profile auto-tuning: measure once, load at every startup.

The kernels carry performance constants that are really properties of
the *host* -- field backend choice, Pippenger window widths, worker
counts, scheduler batch size, process-pool chunking.  ``zkrownn tune``
(:mod:`repro.tuning.tuner`) searches those knobs on representative
workloads and persists the winners as a machine profile
(:mod:`repro.tuning.profile`); the engine, the proof service and the
parallel backends consult the loaded profile at startup, with
environment variables still taking precedence.  ``zkrownn bench-report``
(:mod:`repro.tuning.report`) consolidates the ``BENCH_*.json`` files the
benchmarks emit into one trend table.
"""

from .profile import (
    MachineProfile,
    active_profile,
    clear_profile_cache,
    default_profile_path,
    load_profile,
    set_profile,
)
from .tuner import Tuner, TuningResult, grid_search, hill_climb

__all__ = [
    "MachineProfile",
    "active_profile",
    "clear_profile_cache",
    "default_profile_path",
    "load_profile",
    "set_profile",
    "Tuner",
    "TuningResult",
    "grid_search",
    "hill_climb",
]
