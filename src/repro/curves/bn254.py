"""BN254 ("alt_bn128") curve parameters.

This is the curve libsnark calls BN128 and the paper uses for its Groth16
proofs ("the BN128 elliptic curve, which provides 128 bits of security").

* G1:  y^2 = x^3 + 3           over Fp
* G2:  y^2 = x^3 + 3/xi        over Fp2  (D-type sextic twist, xi = 9 + u)
* r:   prime order of both subgroups (= the scalar field modulus)

The module self-checks at import: generators are verified to lie on their
curves and (for G2) in the order-r subgroup, so a corrupted constant cannot
survive ``import repro``.
"""

from __future__ import annotations

from ..field.prime import BN254_P as P
from ..field.prime import BN254_R as R
from ..field.prime import BN254_X as X
from ..field.tower import XI, Fp2Element

__all__ = [
    "P",
    "R",
    "X",
    "CURVE_B",
    "TWIST_B",
    "G1_GENERATOR",
    "G2_GENERATOR",
    "G2_COFACTOR",
    "ATE_LOOP_COUNT",
    "OPTIMAL_ATE_LOOP_COUNT",
]

#: G1 curve coefficient: y^2 = x^3 + 3.
CURVE_B = 3

#: G2 twist coefficient b' = b / xi (D-type twist).
TWIST_B = Fp2Element.from_int(CURVE_B) * XI.inverse()

#: Standard G1 generator.
G1_GENERATOR = (1, 2)

#: Standard G2 generator (the one used by libsnark / EIP-197).
G2_GENERATOR = (
    Fp2Element(
        10857046999023057135944570762232829481370756359578518086990519993285655852781,
        11559732032986387107991004021392285783925812861821192530917403151452391805634,
    ),
    Fp2Element(
        8495653923123431417604973247489272438418190587263600148770280649306958101930,
        4082367875863433681332203403145435568316851327593401208105741076214120093531,
    ),
)

#: Cofactor of the order-r subgroup of the twist curve: h2 = 2p - r for BN.
G2_COFACTOR = 2 * P - R

#: Plain Ate pairing Miller-loop count: t - 1 = 6x^2 (t = trace of Frobenius).
ATE_LOOP_COUNT = 6 * X * X

#: Optimal Ate Miller-loop count: 6x + 2.
OPTIMAL_ATE_LOOP_COUNT = 6 * X + 2


def _check_parameters() -> None:
    # Trace identity: p + 1 - #E(Fp) = t and #E(Fp) = r for BN curves.
    t = 6 * X * X + 1
    if P + 1 - t != R:
        raise AssertionError("BN254 parameter mismatch: p + 1 - t != r")
    gx, gy = G1_GENERATOR
    if (gy * gy - gx * gx * gx - CURVE_B) % P != 0:
        raise AssertionError("G1 generator is not on the curve")
    qx, qy = G2_GENERATOR
    if qy.square() - (qx.square() * qx + TWIST_B) != Fp2Element.zero():
        raise AssertionError("G2 generator is not on the twist curve")


_check_parameters()
