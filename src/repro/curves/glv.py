"""GLV endomorphism decomposition for BN254 G1.

BN254 has j-invariant 0 (``y^2 = x^3 + 3``), so Fp contains a primitive
cube root of unity ``beta`` and the map ``phi(x, y) = (beta * x, y)`` is a
curve endomorphism.  On the order-r subgroup it acts as multiplication by a
scalar ``lam`` with ``lam^2 + lam + 1 = 0 (mod r)``, which enables the
Gallant-Lambert-Vanstone trick: split any 254-bit scalar ``k`` into
``k = k1 + k2 * lam (mod r)`` with ``|k1|, |k2| ~ sqrt(r)`` (~128 bits), and
replace one full-length scalar mul by two half-length ones sharing the
doubling chain -- or, in a Pippenger MSM, halve the number of digit windows.

Constants are *derived at import time* rather than hard-coded: ``beta`` and
``lam`` are computed as roots of ``z^2 + z + 1`` via Tonelli-Shanks, matched
against each other on the group generator, and the short lattice basis for
the decomposition comes from the classic truncated extended-Euclid run on
``(r, lam)`` (Guide to ECC, Alg. 3.74).  A corrupted constant cannot
survive import: the pairing check below raises.
"""

from __future__ import annotations

from typing import Tuple

from ..field.prime import tonelli_shanks
from .bn254 import G1_GENERATOR, P, R
from .g1 import jac_scalar_mul, jac_to_affine

__all__ = ["GLV_BETA", "GLV_LAMBDA", "glv_decompose", "glv_endomorphism"]


def _cube_roots_of_unity(modulus: int) -> Tuple[int, int]:
    """The two primitive cube roots of unity mod ``modulus``.

    Roots of ``z^2 + z + 1``: ``(-1 +- sqrt(-3)) / 2``.
    """
    s = tonelli_shanks(modulus - 3, modulus)
    if s is None:  # pragma: no cover - both BN254 fields have sqrt(-3)
        raise ArithmeticError("field has no primitive cube root of unity")
    inv2 = pow(2, -1, modulus)
    r1 = (s - 1) * inv2 % modulus
    r2 = (-s - 1) * inv2 % modulus
    return r1, r2


def _match_beta_to_lambda(lam: int) -> int:
    """Pick the ``beta`` for which ``phi = [lam]`` (not ``[lam^2]``) on G1."""
    gx, gy = G1_GENERATOR
    target = jac_to_affine(jac_scalar_mul((gx, gy, 1), lam))
    for beta in _cube_roots_of_unity(P):
        if (beta * gx % P, gy) == target:
            return beta
    raise ArithmeticError("no cube root of unity matches lambda on G1")


#: Eigenvalue of the endomorphism on the r-order subgroup.
GLV_LAMBDA = _cube_roots_of_unity(R)[0]

#: Cube root of unity in Fp with phi(x, y) = (GLV_BETA * x, y) == [GLV_LAMBDA].
GLV_BETA = _match_beta_to_lambda(GLV_LAMBDA)


def _short_basis(lam: int, order: int) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    """Two short vectors spanning the lattice ``{(a, b) : a + b*lam = 0 mod r}``.

    Truncated extended Euclid on ``(order, lam)``: every remainder step gives
    a lattice vector ``(r_i, -t_i)``; stopping around ``sqrt(order)`` yields
    vectors of length ~``sqrt(order)``.
    """
    sqrt_order = 1 << ((order.bit_length() + 1) // 2)
    r0, r1 = order, lam
    t0, t1 = 0, 1
    while r1 >= sqrt_order:
        q = r0 // r1
        r0, r1 = r1, r0 - q * r1
        t0, t1 = t1, t0 - q * t1
    # Here r0 >= sqrt_order > r1: candidates are (r1, -t1) and the shorter
    # of (r0, -t0), (r2, -t2).
    q = r0 // r1
    r2 = r0 - q * r1
    t2 = t0 - q * t1
    v1 = (r1, -t1)
    if r0 * r0 + t0 * t0 <= r2 * r2 + t2 * t2:
        v2 = (r0, -t0)
    else:
        v2 = (r2, -t2)
    return v1, v2


_V1, _V2 = _short_basis(GLV_LAMBDA, R)


def glv_decompose(k: int) -> Tuple[int, int]:
    """Split ``k`` into ``(k1, k2)`` with ``k1 + k2 * lam = k (mod r)``.

    Both halves are ~128 bits (possibly negative).  Round the coordinates of
    ``k`` in the short basis to the nearest lattice vector and subtract.
    """
    k %= R
    a1, b1 = _V1
    a2, b2 = _V2
    # round(x / r) as floor((2x + r) / 2r); Python floordiv floors negatives.
    c1 = (2 * b2 * k + R) // (2 * R)
    c2 = (-2 * b1 * k + R) // (2 * R)
    k1 = k - c1 * a1 - c2 * a2
    k2 = -c1 * b1 - c2 * b2
    # Canonical ints regardless of the scalar's native type (mpz scalars
    # arrive from backend-wrapped witnesses): the signed-digit recoding
    # downstream is pure bit-twiddling, where CPython ints are the faster
    # representation at half-scalar width.
    return int(k1), int(k2)


def glv_endomorphism(affine: Tuple[int, int]) -> Tuple[int, int]:
    """``phi(P)``: one Fp multiplication, acts as ``[lam]`` on the subgroup."""
    return (GLV_BETA * affine[0] % P, affine[1])


def _self_check() -> None:
    gx, gy = G1_GENERATOR
    for k in (1, 2, 0xDEADBEEF, R - 1, (R - 1) // 2):
        k1, k2 = glv_decompose(k)
        if (k1 + k2 * GLV_LAMBDA) % R != k % R:
            raise AssertionError("GLV decomposition identity failed")
        if max(abs(k1), abs(k2)).bit_length() > 130:
            raise AssertionError("GLV decomposition produced oversized halves")
    phi_g = glv_endomorphism((gx, gy))
    if jac_to_affine(jac_scalar_mul((gx, gy, 1), GLV_LAMBDA)) != phi_g:
        raise AssertionError("endomorphism does not act as lambda on G1")


_self_check()
