"""Multi-scalar multiplication and fixed-base tables.

Groth16 cost structure:

* the trusted setup computes thousands of ``scalar * G`` products for a
  *fixed* base (the group generator) -- served by the comb-style
  :class:`FixedBaseTableG1` / :class:`FixedBaseTableG2`;
* the prover computes a handful of large *variable-base* MSMs
  ``sum_i  s_i * P_i`` -- served by Pippenger bucketing
  (:func:`msm_g1` / :func:`msm_g2`).

Both are classic textbook algorithms; the naive double-and-add versions are
kept (``naive_msm_g1``) as the reference the fast paths are property-tested
against, and as the baseline for the MSM ablation benchmark.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .bn254 import R
from .g1 import (
    G1_INFINITY_JAC,
    JacobianPoint,
    jac_add,
    jac_add_mixed,
    jac_double,
    jac_scalar_mul,
    jac_to_affine,
)
from .g2 import (
    G2_INFINITY_JAC,
    G2Jacobian,
    G2Point,
    g2_from_jacobian,
    g2_jac_add,
    g2_jac_double,
    g2_to_jacobian,
)

__all__ = [
    "msm_g1",
    "msm_g2",
    "naive_msm_g1",
    "naive_msm_g2",
    "FixedBaseTableG1",
    "FixedBaseTableG2",
    "pippenger_window_size",
]

AffinePoint = Optional[Tuple[int, int]]

SCALAR_BITS = 254


def pippenger_window_size(n: int) -> int:
    """Bucket-window width heuristic: roughly log2(n) - 2, clamped."""
    if n < 4:
        return 1
    if n < 32:
        return 3
    if n < 256:
        return 5
    if n < 2048:
        return 7
    if n < 16384:
        return 9
    return 11


def msm_g1(points: Sequence[AffinePoint], scalars: Sequence[int]) -> JacobianPoint:
    """Pippenger MSM over G1: sum of ``scalars[i] * points[i]``.

    ``points`` are affine ``(x, y)`` tuples (``None`` = infinity, skipped);
    returns a Jacobian point.
    """
    if len(points) != len(scalars):
        raise ValueError("points and scalars must have equal length")
    pairs = [
        (p, s % R)
        for p, s in zip(points, scalars)
        if p is not None and s % R != 0
    ]
    if not pairs:
        return G1_INFINITY_JAC
    c = pippenger_window_size(len(pairs))
    mask = (1 << c) - 1
    windows = (SCALAR_BITS + c - 1) // c
    total = G1_INFINITY_JAC
    for w in range(windows - 1, -1, -1):
        if total != G1_INFINITY_JAC:
            for _ in range(c):
                total = jac_double(total)
        shift = w * c
        buckets: List[JacobianPoint] = [G1_INFINITY_JAC] * (mask + 1)
        for point, scalar in pairs:
            digit = (scalar >> shift) & mask
            if digit:
                buckets[digit] = jac_add_mixed(buckets[digit], point)
        # Suffix-sum trick: sum_b b * bucket[b] with 2*(2^c) additions.
        running = G1_INFINITY_JAC
        window_sum = G1_INFINITY_JAC
        for b in range(mask, 0, -1):
            if buckets[b] != G1_INFINITY_JAC:
                running = jac_add(running, buckets[b])
            window_sum = jac_add(window_sum, running)
        total = jac_add(total, window_sum)
    return total


def msm_g2(points: Sequence[G2Point], scalars: Sequence[int]) -> G2Point:
    """Pippenger MSM over G2 (same structure as :func:`msm_g1`)."""
    if len(points) != len(scalars):
        raise ValueError("points and scalars must have equal length")
    pairs = [
        (g2_to_jacobian(p), s % R)
        for p, s in zip(points, scalars)
        if not p.is_infinity() and s % R != 0
    ]
    if not pairs:
        return G2Point.infinity()
    c = pippenger_window_size(len(pairs))
    mask = (1 << c) - 1
    windows = (SCALAR_BITS + c - 1) // c
    total = G2_INFINITY_JAC
    for w in range(windows - 1, -1, -1):
        if not total[2].is_zero():
            for _ in range(c):
                total = g2_jac_double(total)
        shift = w * c
        buckets: List[G2Jacobian] = [G2_INFINITY_JAC] * (mask + 1)
        for point, scalar in pairs:
            digit = (scalar >> shift) & mask
            if digit:
                buckets[digit] = g2_jac_add(buckets[digit], point)
        running = G2_INFINITY_JAC
        window_sum = G2_INFINITY_JAC
        for b in range(mask, 0, -1):
            if not buckets[b][2].is_zero():
                running = g2_jac_add(running, buckets[b])
            window_sum = g2_jac_add(window_sum, running)
        total = g2_jac_add(total, window_sum)
    return g2_from_jacobian(total)


def naive_msm_g1(points: Sequence[AffinePoint], scalars: Sequence[int]) -> JacobianPoint:
    """Reference MSM: independent double-and-add per term."""
    total = G1_INFINITY_JAC
    for p, s in zip(points, scalars):
        if p is None:
            continue
        total = jac_add(total, jac_scalar_mul((p[0], p[1], 1), s))
    return total


def naive_msm_g2(points: Sequence[G2Point], scalars: Sequence[int]) -> G2Point:
    total = G2Point.infinity()
    for p, s in zip(points, scalars):
        total = total + p * s
    return total


class FixedBaseTableG1:
    """Comb-method fixed-base multiplier for G1.

    Precomputes ``digit * 2^(w*i) * base`` for every window ``i`` and digit,
    so each subsequent scalar multiplication costs only ``ceil(254/w)`` mixed
    additions.  Used by the trusted setup, which multiplies the generator by
    thousands of evaluation scalars.
    """

    def __init__(self, base_affine: Tuple[int, int], window: int = 8):
        self.window = window
        self.windows = (SCALAR_BITS + window - 1) // window
        self.table: List[List[AffinePoint]] = []
        base_jac: JacobianPoint = (base_affine[0], base_affine[1], 1)
        for _ in range(self.windows):
            row_jac: List[JacobianPoint] = [G1_INFINITY_JAC]
            acc = G1_INFINITY_JAC
            for _ in range((1 << window) - 1):
                acc = jac_add(acc, base_jac)
                row_jac.append(acc)
            self.table.append([jac_to_affine(pt) for pt in row_jac])
            for _ in range(window):
                base_jac = jac_double(base_jac)

    def mul(self, scalar: int) -> JacobianPoint:
        """Return ``scalar * base`` as a Jacobian point."""
        s = scalar % R
        acc = G1_INFINITY_JAC
        mask = (1 << self.window) - 1
        for i in range(self.windows):
            digit = (s >> (i * self.window)) & mask
            if digit:
                entry = self.table[i][digit]
                if entry is not None:
                    acc = jac_add_mixed(acc, entry)
        return acc

    def mul_many(self, scalars: Sequence[int]) -> List[JacobianPoint]:
        return [self.mul(s) for s in scalars]


class FixedBaseTableG2:
    """Comb-method fixed-base multiplier for G2."""

    def __init__(self, base: G2Point, window: int = 6):
        self.window = window
        self.windows = (SCALAR_BITS + window - 1) // window
        self.table: List[List[G2Jacobian]] = []
        base_jac = g2_to_jacobian(base)
        for _ in range(self.windows):
            row: List[G2Jacobian] = [G2_INFINITY_JAC]
            acc = G2_INFINITY_JAC
            for _ in range((1 << window) - 1):
                acc = g2_jac_add(acc, base_jac)
                row.append(acc)
            self.table.append(row)
            for _ in range(window):
                base_jac = g2_jac_double(base_jac)

    def mul(self, scalar: int) -> G2Point:
        s = scalar % R
        acc = G2_INFINITY_JAC
        mask = (1 << self.window) - 1
        for i in range(self.windows):
            digit = (s >> (i * self.window)) & mask
            if digit:
                acc = g2_jac_add(acc, self.table[i][digit])
        return g2_from_jacobian(acc)

    def mul_many(self, scalars: Sequence[int]) -> List[G2Point]:
        return [self.mul(s) for s in scalars]
