"""Multi-scalar multiplication and fixed-base tables.

Groth16 cost structure:

* the trusted setup computes thousands of ``scalar * G`` products for a
  *fixed* base (the group generator) -- served by the comb-style
  :class:`FixedBaseTableG1` / :class:`FixedBaseTableG2`, whose tables are
  built with batch-affine addition (one shared inversion per digit);
* the prover computes a handful of large *variable-base* MSMs
  ``sum_i  s_i * P_i`` -- served by :func:`msm_g1` / :func:`msm_g2`.

The G1 hot path stacks three classic optimizations on top of textbook
Pippenger bucketing:

1. **GLV splitting** (:mod:`repro.curves.glv`): every 254-bit scalar
   becomes two ~127-bit halves via the curve's cube-root-of-unity
   endomorphism, halving the number of digit windows;
2. **signed digits**: base-``2^c`` digits recoded into ``[-2^(c-1),
   2^(c-1)]`` so negative digits reuse the (free) point negation and the
   bucket count halves;
3. **batch-affine buckets**: bucket contents are summed with plain affine
   addition whose slope denominators are inverted together (Montgomery's
   trick, :func:`~repro.field.prime.batch_inverse_ints`), ~6 modular
   multiplications per add versus ~12 for a Jacobian mixed add.

The G2 MSM (:func:`msm_g2`) runs the same signed-window + batch-affine
treatment over Fp2 coordinates, sharing the scatter/reduce kernel with
G1 and amortizing each round's Fp2 inversions through
:func:`~repro.curves.g2.g2_batch_affine_add`.

Field backends: the bucket arithmetic operates on whatever native
residues the active :mod:`repro.field.backend` supplies -- plain ints by
default, ``mpz`` under gmpy2 (callers wrap key material once at the
boundary, e.g. ``prepare_proving_key``) -- and under the ``montgomery``
backend the G1 batch-affine inner loops switch to Montgomery-form REDC
kernels (:func:`_batch_affine_add_mont`), converting points on entry and
window sums on exit only.  Results are identical across backends.

The PR-1 unsigned-window Jacobian paths are kept as
:func:`msm_g1_unsigned` / :func:`msm_g2_unsigned` -- the baselines the
kernel benchmark measures against -- and the naive double-and-add
versions (:func:`naive_msm_g1`) remain the reference the fast paths are
property-tested against.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, List, Optional, Sequence, Tuple

from ..field.backend import get_field_ops
from ..obs import metrics as _obs_metrics
from .bn254 import P, R
from .g1 import (
    G1_INFINITY_JAC,
    JacobianPoint,
    jac_add,
    jac_add_mixed,
    jac_double,
    jac_scalar_mul,
    jac_to_affine_many,
)
from .g2 import (
    G2_INFINITY_JAC,
    G2Jacobian,
    G2Point,
    g2_batch_affine_add,
    g2_from_jacobian,
    g2_jac_add,
    g2_jac_add_mixed,
    g2_jac_double,
    g2_jac_to_affine_many,
    g2_to_jacobian,
    g2_wrap,
)
from .glv import glv_decompose, glv_endomorphism

__all__ = [
    "msm_g1",
    "msm_g1_multi",
    "msm_g1_unsigned",
    "msm_g2",
    "msm_g2_unsigned",
    "naive_msm_g1",
    "naive_msm_g2",
    "FixedBaseTableG1",
    "FixedBaseTableG2",
    "pippenger_window_size",
]

AffinePoint = Optional[Tuple[int, int]]

SCALAR_BITS = 254


def pippenger_window_size(n: int, *, signed: bool = True) -> int:
    """Bucket-window width for an MSM over ``n`` (point, scalar) pairs.

    ``signed=True`` is the GLV + signed-digit path (``n`` counts the
    *split* half-scalar pairs, so callers pass ~2x the input length); its
    breakpoints were re-measured on that path, where cheap batch-affine
    bucket adds shift the optimum up by roughly one window width compared
    to the unsigned Jacobian path (see ``benchmarks/bench_msm_kernels.py``).
    ``signed=False`` keeps the PR-1 heuristic used by the unsigned
    reference path and the G2 MSM.

    When a machine profile is loaded (``zkrownn tune``), its measured
    per-size window overrides take precedence over these static
    dev-box breakpoints; the tables below are the fallback.
    """
    from ..tuning.profile import pippenger_window_override

    override = pippenger_window_override(n, signed=signed)
    if override is not None:
        return override
    if signed:
        # Breakpoints measured on _signed_window_msm (see
        # bench_msm_kernels): best c was 5 at 32 pairs, 6 at 128, 7 at 512,
        # 9 at 2048, 10 at 8192.
        if n < 8:
            return 3
        if n < 64:
            return 5
        if n < 256:
            return 6
        if n < 1024:
            return 7
        if n < 4096:
            return 9
        if n < 32768:
            return 10
        return 12
    if n < 4:
        return 1
    if n < 32:
        return 3
    if n < 256:
        return 5
    if n < 2048:
        return 7
    if n < 16384:
        return 9
    return 11


# -- batch-affine primitives ---------------------------------------------------


def _batch_affine_add(
    ps: Sequence[Tuple[int, int]], qs: Sequence[Tuple[int, int]]
) -> List[AffinePoint]:
    """Element-wise affine addition ``ps[i] + qs[i]`` with one inversion.

    All inputs must be finite points; the output is ``None`` where the sum
    is the point at infinity.  Equal points take the tangent (doubling)
    slope -- the group has odd order, so ``y`` is never zero there.

    Two passes: the forward pass classifies each pair and folds its slope
    denominator into one running product; the backward pass peels off the
    individual inverses (Montgomery's trick) and finishes the chord/tangent
    formulas in place, ~6 modular multiplications per addition.
    """
    p = P
    dens: List[int] = []
    nums: List[Optional[int]] = []
    prefix: List[int] = []
    da, na, pa = dens.append, nums.append, prefix.append
    acc = 1
    for (x1, y1), (x2, y2) in zip(ps, qs):
        # Inputs are canonical (< P), so the chord denominator x2 - x1 needs
        # no reduction: it is zero exactly when the x-coordinates collide,
        # and a negative representative multiplies correctly mod P.
        d = x2 - x1
        if d:
            num: Optional[int] = y2 - y1
        elif (y1 + y2) % p == 0:
            num = None
            d = 1
        else:
            num = 3 * x1 * x1
            d = 2 * y1
        da(d)
        na(num)
        pa(acc)
        acc = acc * d % p
    inv = pow(acc, -1, p)
    out: List[AffinePoint] = []
    oa = out.append
    for d, num, pre, p1, q1 in zip(
        reversed(dens), reversed(nums), reversed(prefix), reversed(ps), reversed(qs)
    ):
        inv_i = inv * pre % p
        inv = inv * d % p
        if num is None:
            oa(None)
            continue
        slope = num * inv_i % p
        x1, y1 = p1
        x3 = (slope * slope - x1 - q1[0]) % p
        oa((x3, (slope * (x1 - x3) - y1) % p))
    out.reverse()
    return out


def _batch_affine_add_mont(
    ps: Sequence[Tuple[int, int]], qs: Sequence[Tuple[int, int]], ops
) -> List[AffinePoint]:
    """Montgomery-form twin of :func:`_batch_affine_add`.

    Coordinates are canonical Montgomery residues in ``[0, p)``; every
    multiplication is an inline REDC (shift-and-mask, no ``%``), and the
    only divisions left in the whole pass are inside the single
    ``mont_inv``.  Outputs are canonicalized with conditional adds so the
    next round's collision detection (``x2 - x1 == 0``) stays exact --
    the correctness condition Montgomery laziness must not relax.
    """
    p = ops.modulus
    mask = ops.mont_mask
    np_ = ops.mont_nprime
    bits = ops.mont_bits
    dens: List[int] = []
    nums: List[Optional[int]] = []
    prefix: List[int] = []
    da, na, pa = dens.append, nums.append, prefix.append
    acc = ops.mont_one
    for (x1, y1), (x2, y2) in zip(ps, qs):
        d = x2 - x1
        if d:
            num: Optional[int] = y2 - y1
        elif (y1 + y2) % p == 0:
            num = None
            d = ops.mont_one
        else:
            # Tangent slope: one REDC keeps the numerator small enough
            # (< 3p) that the slope product below stays inside REDC's
            # |t| < R*p input window.
            t = x1 * x1
            num = 3 * ((t + (((t & mask) * np_) & mask) * p) >> bits)
            d = 2 * y1
        da(d)
        na(num)
        pa(acc)
        t = acc * d
        acc = (t + (((t & mask) * np_) & mask) * p) >> bits
        if acc >= p:
            acc -= p
        elif acc < 0:
            acc += p
    inv = ops.mont_inv(acc)
    out: List[AffinePoint] = []
    oa = out.append
    for d, num, pre, p1, q1 in zip(
        reversed(dens), reversed(nums), reversed(prefix), reversed(ps), reversed(qs)
    ):
        t = inv * pre
        inv_i = (t + (((t & mask) * np_) & mask) * p) >> bits
        if inv_i >= p:
            # Canonical: the slope product below needs |num * inv_i| < R*p,
            # and |num| can reach 3p (tangent case).
            inv_i -= p
        t = inv * d
        inv = (t + (((t & mask) * np_) & mask) * p) >> bits
        if inv >= p:
            inv -= p
        elif inv < 0:
            inv += p
        if num is None:
            oa(None)
            continue
        t = num * inv_i
        slope = (t + (((t & mask) * np_) & mask) * p) >> bits
        x1, y1 = p1
        t = slope * slope
        x3 = ((t + (((t & mask) * np_) & mask) * p) >> bits) - x1 - q1[0]
        if x3 < 0:
            x3 += p
            if x3 < 0:
                x3 += p
        elif x3 >= p:
            x3 -= p
        t = slope * (x1 - x3)
        # REDC of a negative product can land one modulus low, so like x3
        # this needs up to two upward corrections to stay canonical.
        y3 = ((t + (((t & mask) * np_) & mask) * p) >> bits) - y1
        if y3 < 0:
            y3 += p
            if y3 < 0:
                y3 += p
        elif y3 >= p:
            y3 -= p
        oa((x3, y3))
    out.reverse()
    return out


BatchAffineAdd = Callable[[Sequence, Sequence], List]


def _reduce_buckets(
    buckets: List[List], batch_add: BatchAffineAdd = _batch_affine_add
) -> List:
    """Sum each bucket's points, batching every round's additions together.

    Tree reduction over *all* buckets (typically every window's at once):
    each round pairs up the remaining points in every bucket and performs
    the whole round's additions with a single shared inversion, so ``m``
    scattered points cost ``O(log(max bucket load))`` inversions instead of
    ``m``.  Mutates ``buckets``; returns one affine point (or ``None``) per
    bucket.  Generic over the affine representation: ``batch_add`` supplies
    the element-wise addition (plain G1, Montgomery G1, or Fp2 G2).
    """
    pairs_p: List = []
    pairs_q: List = []
    active: List[Tuple[int, int]] = []  # (bucket index, pair count)
    while True:
        del pairs_p[:]
        del pairs_q[:]
        del active[:]
        for b, lst in enumerate(buckets):
            k = len(lst) >> 1
            if k:
                active.append((b, k))
                pairs_p.extend(lst[0 : 2 * k : 2])
                pairs_q.extend(lst[1 : 2 * k : 2])
        if not active:
            break
        sums = batch_add(pairs_p, pairs_q)
        idx = 0
        for b, k in active:
            lst = buckets[b]
            merged = [s for s in sums[idx : idx + k] if s is not None]
            idx += k
            if len(lst) & 1:
                merged.append(lst[-1])
            buckets[b] = merged
    return [lst[0] if lst else None for lst in buckets]


def _signed_digits(s: int, c: int) -> List[Tuple[int, int]]:
    """Signed base-``2^c`` recoding of a non-negative scalar.

    Returns ``(window, digit)`` pairs with ``digit`` in ``[-2^(c-1),
    2^(c-1)] \\ {0}``, windows ascending -- exactly the digits the scatter
    loop of :func:`_signed_window_msm` derives inline.  Factored out so
    :func:`msm_g1_multi` can recode each scalar once and replay the digits
    against several point sets.
    """
    half = 1 << (c - 1)
    full = 1 << c
    mask = full - 1
    out: List[Tuple[int, int]] = []
    w = 0
    while s:
        d = s & mask
        s >>= c
        if d > half:
            d -= full
            s += 1
        if d:
            out.append((w, d))
        w += 1
    return out


def _neg_affine_g1(p: Tuple[int, int]) -> Tuple[int, int]:
    """Affine negation over raw Fp residues (valid in Montgomery form too:
    the Montgomery map is Fp-linear, so ``p - M(y) = M(p - y)``)."""
    return (p[0], P - p[1])


def _neg_affine_g2(p) -> tuple:
    return (p[0], -p[1])


def _scatter_signed(
    points: Sequence, scalars: Sequence[int], c: int, neg=_neg_affine_g1
) -> Tuple[List[List], int]:
    """Scatter signed base-``2^c`` digits into the flat bucket grid.

    Buckets are laid out flat as ``window * (half + 1) + |digit|``; one
    spare window beyond ``bit_length // c`` absorbs the worst-case
    recoding carry.  ``neg`` negates an affine point (group-specific), so
    the same scatter serves plain G1, Montgomery-form G1 and Fp2 G2.
    """
    half = 1 << (c - 1)
    full = 1 << c
    mask = full - 1
    windows = max(s.bit_length() for s in scalars) // c + 2
    stride = half + 1
    grids: List[List] = [[] for _ in range(windows * stride)]
    for p, s in zip(points, scalars):
        neg_p = None
        base = 0
        while s:
            d = s & mask
            s >>= c
            if d > half:
                d -= full
                s += 1
            if d > 0:
                grids[base + d].append(p)
            elif d:
                if neg_p is None:
                    neg_p = neg(p)
                grids[base - d].append(neg_p)
            base += stride
    return grids, windows


def _window_sums(
    grids: List[List], windows: int, c: int, batch_add: BatchAffineAdd
) -> List:
    """Per-window bucket sums ``sum_b b * bucket[w][b]`` (affine or None).

    Window independence is exploited twice: every window's buckets join one
    global tree reduction (maximally wide inversion batches), and the
    per-window suffix sums advance in lockstep so each of their steps is a
    single batched affine addition across windows.  Generic over the
    affine representation via ``batch_add``.
    """
    sums = _reduce_buckets(grids, batch_add)
    return _suffix_window_sums(sums, windows, c, batch_add)


def _suffix_window_sums(
    sums: List, windows: int, c: int, batch_add: BatchAffineAdd
) -> List:
    """Lockstep suffix sums over per-bucket totals (one point or None each).

    Split out of :func:`_window_sums` so the numpy bucket path can feed
    its vectorized grid reduction into the identical suffix stage: the
    suffix steps are width-``windows`` batches (~13 lanes), far below
    where vectorized kernels pay for their dispatch, so every backend
    shares this python implementation.
    """
    half = 1 << (c - 1)
    stride = half + 1
    # Suffix-sum trick per window, all windows in lockstep: step b performs
    # `running += bucket[b]` as one batched affine addition of width
    # `windows`, and the running value after each step is recorded --
    # `window_sum = sum_b running_b`, so the recorded points feed one final
    # (wide, log-depth) tree reduction instead of a second sequential sweep.
    running: List = [None] * windows
    runnings: List[List] = [[] for _ in range(windows)]
    idxs: List[int] = []
    ps: List = []
    qs: List = []
    for b in range(half, 0, -1):
        del idxs[:], ps[:], qs[:]
        for w in range(windows):
            pt = sums[w * stride + b]
            if pt is None:
                continue
            r = running[w]
            if r is None:
                running[w] = pt
            else:
                idxs.append(w)
                ps.append(r)
                qs.append(pt)
        if ps:
            for w, r2 in zip(idxs, batch_add(ps, qs)):
                running[w] = r2
        for w in range(windows):
            r = running[w]
            if r is not None:
                runnings[w].append(r)
    return _reduce_buckets(runnings, batch_add)


def _positional_combine_g1(window_sum: List[AffinePoint], c: int) -> JacobianPoint:
    """``total = sum_w 2^(c*w) * window_sum[w]`` in Jacobian coordinates."""
    total = G1_INFINITY_JAC
    for w in range(len(window_sum) - 1, -1, -1):
        if total[2] != 0:
            for _ in range(c):
                total = jac_double(total)
        pt = window_sum[w]
        if pt is not None:
            total = jac_add_mixed(total, pt)
    return total


def _signed_window_msm(
    points: Sequence[Tuple[int, int]], scalars: Sequence[int], c: int
) -> JacobianPoint:
    """Pippenger over non-negative scalars with signed windows + batch affine.

    Only the final positional combine (``c`` doublings + 1 addition per
    window) runs in Jacobian coordinates; everything before it is affine
    with shared inversions (see :func:`_window_sums`).
    """
    grids, windows = _scatter_signed(points, scalars, c)
    return _positional_combine_g1(
        _window_sums(grids, windows, c, _batch_affine_add), c
    )


def _signed_window_msm_mont(
    points: Sequence[Tuple[int, int]], scalars: Sequence[int], c: int, ops
) -> JacobianPoint:
    """The signed-window MSM with its bucket arithmetic in Montgomery form.

    Points convert to Montgomery residues once on the way in (two REDCs per
    coordinate), every bucket/suffix addition runs through
    :func:`_batch_affine_add_mont`, and only the ~``windows`` surviving
    window sums convert back before the Jacobian positional combine --
    "converting at serialization boundaries only", applied to one kernel.
    """
    to_m = ops.to_mont
    mpoints = [(to_m(x), to_m(y)) for x, y in points]
    grids, windows = _scatter_signed(mpoints, scalars, c)

    def batch_add(ps, qs):
        return _batch_affine_add_mont(ps, qs, ops)

    sums = _window_sums(grids, windows, c, batch_add)
    from_m = ops.from_mont
    plain = [None if s is None else (from_m(s[0]), from_m(s[1])) for s in sums]
    return _positional_combine_g1(plain, c)


#: Below this many split pairs the numpy bucket path falls back to the
#: plain python kernel: vectorized rounds are dispatch-bound at narrow
#: widths (the full-MSM crossover measured ~8k pairs, i.e. ~4k points,
#: on the dev box), and results are byte-identical either way so routing
#: by size is safe.
NUMPY_MSM_MIN_PAIRS = 8192

#: Once a bucket-reduction round narrows below this many additions the
#: remaining rounds hand off to the shared-inversion python kernel --
#: per-round crossover, distinct from the whole-MSM routing floor above.
NUMPY_ROUND_MIN_PAIRS = 4096


def _scatter_signed_idx(
    scalars: Sequence[int], c: int, point_idx: Optional[Sequence[int]] = None
) -> Tuple[List[int], List[int], List[int], int]:
    """Signed-digit scatter emitting flat arrays instead of bucket lists.

    Returns ``(bucket_ids, point_indices, negate_flags, windows)`` --
    the same digits :func:`_scatter_signed` would produce, but as
    parallel lists ready to become numpy index arrays: entry ``k`` says
    point ``point_indices[k]`` (negated when ``negate_flags[k]``) lands
    in flat bucket ``bucket_ids[k]``.  ``point_idx`` maps scalar
    positions to point columns (identity when omitted).
    """
    half = 1 << (c - 1)
    full = 1 << c
    mask = full - 1
    windows = max(s.bit_length() for s in scalars) // c + 2
    stride = half + 1
    bids: List[int] = []
    pids: List[int] = []
    negs: List[int] = []
    ba, pa, na = bids.append, pids.append, negs.append
    for i, s in enumerate(scalars):
        col = i if point_idx is None else point_idx[i]
        base = 0
        while s:
            d = s & mask
            s >>= c
            if d > half:
                d -= full
                s += 1
            if d > 0:
                ba(base + d)
                pa(col)
                na(0)
            elif d:
                ba(base - d)
                pa(col)
                na(1)
            base += stride
    return bids, pids, negs, windows


def _numpy_window_sums(ctx, xs, ys, bids, pids, negs, n_buckets):
    """Gather scattered digits into limb arrays and reduce every bucket.

    ``xs, ys`` are the Montgomery-domain limb pool of the (finite) input
    points; fancy indexing materializes one column per scattered digit,
    negative digits negate ``y`` in-place on their slice, and the whole
    grid collapses through :func:`~repro.field.limb.reduce_bucket_grid`.
    Returns plain canonical bucket sums ready for the shared python
    suffix stage.
    """
    import numpy as np

    from ..field.limb import reduce_bucket_grid

    bid_arr = np.asarray(bids, dtype=np.int64)
    idx_arr = np.asarray(pids, dtype=np.int64)
    x = xs[:, idx_arr]
    y = ys[:, idx_arr]
    neg_arr = np.asarray(negs, dtype=bool)
    if neg_arr.any():
        sel = np.flatnonzero(neg_arr)
        y[:, sel] = ctx.negmod(y[:, sel])
    # Late rounds narrow below the vectorization crossover; hand them to
    # the shared-inversion python rounds (the int conversion happens at
    # exit regardless, so the handoff costs nothing extra).
    return reduce_bucket_grid(
        ctx,
        x,
        y,
        bid_arr,
        n_buckets,
        min_pairs=NUMPY_ROUND_MIN_PAIRS,
        tail_reduce=lambda buckets: _reduce_buckets(
            buckets, _batch_affine_add
        ),
    )


def _signed_window_msm_numpy(
    points: Sequence[Tuple[int, int]], scalars: Sequence[int], c: int
) -> JacobianPoint:
    """The signed-window MSM with vectorized limb-array bucket rounds.

    Point coordinates convert once into Montgomery-domain ``(L, n)``
    limb arrays; every bucket-reduction round then runs as a handful of
    wide numpy kernel passes (:func:`~repro.field.limb.batch_affine_add_limbs`)
    instead of ~6 CPython big-int multiplies per addition.  The
    scatter/recoding and the narrow suffix stage stay on the shared
    python code paths -- they are per-digit bookkeeping and ~13-lane
    batches respectively, where vectorization cannot pay.  Results are
    byte-identical to the other backends.
    """
    from ..field.limb import get_limb_context

    ctx = get_limb_context(P)
    xs = ctx.to_mont(ctx.to_limbs([p[0] for p in points]))
    ys = ctx.to_mont(ctx.to_limbs([p[1] for p in points]))
    bids, pids, negs, windows = _scatter_signed_idx(scalars, c)
    stride = (1 << (c - 1)) + 1
    sums = _numpy_window_sums(ctx, xs, ys, bids, pids, negs, windows * stride)
    return _positional_combine_g1(
        _suffix_window_sums(sums, windows, c, _batch_affine_add), c
    )


def _combine_windows(
    grids: List[List[Tuple[int, int]]], windows: int, c: int
) -> JacobianPoint:
    """Reduce scattered signed-window G1 buckets to one Jacobian point.

    Kept as the composition the scatter loops target: global bucket tree,
    lockstep suffix sums (:func:`_window_sums`), positional combine.
    """
    return _positional_combine_g1(
        _window_sums(grids, windows, c, _batch_affine_add), c
    )


def _profiled_msm(group: str):
    """Opt-in duration profiling for an MSM entry point.

    Off (the default): one module-global read per MSM call -- an MSM is
    thousands of field operations, so the check is unmeasurable.  On
    (``ZKROWNN_PROFILE_KERNELS``): each call lands in the
    ``zkrownn_msm_seconds`` histogram, bucketed by point count.
    """
    def wrap(fn):
        @functools.wraps(fn)
        def wrapper(points, scalars):
            if not _obs_metrics.kernel_profiling_enabled():
                return fn(points, scalars)
            t0 = time.perf_counter()
            out = fn(points, scalars)
            _obs_metrics.observe_kernel(
                "msm", len(scalars), time.perf_counter() - t0, group=group
            )
            return out
        return wrapper
    return wrap


@_profiled_msm("g1")
def msm_g1(points: Sequence[AffinePoint], scalars: Sequence[int]) -> JacobianPoint:
    """GLV + signed-window Pippenger MSM over G1.

    ``points`` are affine ``(x, y)`` tuples (``None`` = infinity, skipped);
    returns a Jacobian point.  Each surviving pair is split into two
    half-width pairs via the GLV endomorphism; negative halves flip the
    point's sign so every bucketed scalar is non-negative.  The bucket
    arithmetic runs in Montgomery form when the active field backend asks
    for it (``ZKROWNN_FIELD_BACKEND=montgomery``); results are identical.
    """
    if len(points) != len(scalars):
        raise ValueError("points and scalars must have equal length")
    split_points: List[Tuple[int, int]] = []
    split_scalars: List[int] = []
    for p, s in zip(points, scalars):
        if p is None:
            continue
        s %= R
        if s == 0:
            continue
        k1, k2 = glv_decompose(s)
        if k1:
            split_points.append(p if k1 > 0 else (p[0], P - p[1]))
            split_scalars.append(k1 if k1 > 0 else -k1)
        if k2:
            q = glv_endomorphism(p)
            split_points.append(q if k2 > 0 else (q[0], P - q[1]))
            split_scalars.append(k2 if k2 > 0 else -k2)
    if not split_points:
        return G1_INFINITY_JAC
    c = pippenger_window_size(len(split_points))
    ops = get_field_ops(P)
    if ops.montgomery_kernels:
        return _signed_window_msm_mont(split_points, split_scalars, c, ops)
    if ops.numpy_kernels and len(split_points) >= NUMPY_MSM_MIN_PAIRS:
        return _signed_window_msm_numpy(split_points, split_scalars, c)
    return _signed_window_msm(split_points, split_scalars, c)


@_profiled_msm("g1multi")
def msm_g1_multi(
    points_lists: Sequence[Sequence[AffinePoint]], scalars: Sequence[int]
) -> List[JacobianPoint]:
    """Several MSMs sharing ONE scalar vector (and its recoding work).

    Groth16's A and B1 commitments multiply *different* point sets by the
    *same* witness vector; decomposing and recoding each scalar once and
    replaying the digits against every point set saves the whole
    non-arithmetic half of the second MSM (GLV splits, signed-digit
    carries, window bookkeeping).  Point-set-specific work -- applying the
    endomorphism, sign flips, bucket scatter, reduction -- still runs per
    set, so results equal ``[msm_g1(ps, scalars) for ps in points_lists]``
    exactly.

    ``None`` entries (infinity) may appear in any point set independently;
    they are skipped at scatter time, after the shared recoding.
    """
    for points in points_lists:
        if len(points) != len(scalars):
            raise ValueError("points and scalars must have equal length")
    if not points_lists:
        return []
    # Shared phase: one GLV split per scalar, then (once the split count
    # fixes the window width) one signed recoding per half-scalar.
    splits: List[Tuple[int, bool, bool]] = []  # (input index, use endo, negate)
    magnitudes: List[int] = []
    for i, s in enumerate(scalars):
        s %= R
        if s == 0:
            continue
        k1, k2 = glv_decompose(s)
        if k1:
            splits.append((i, False, k1 < 0))
            magnitudes.append(abs(k1))
        if k2:
            splits.append((i, True, k2 < 0))
            magnitudes.append(abs(k2))
    if not splits:
        return [G1_INFINITY_JAC] * len(points_lists)
    c = pippenger_window_size(len(splits))
    digit_lists = [_signed_digits(k, c) for k in magnitudes]
    windows = max(d[-1][0] for d in digit_lists) + 1
    half = 1 << (c - 1)
    stride = half + 1
    ops = get_field_ops(P)
    if ops.numpy_kernels and len(splits) >= NUMPY_MSM_MIN_PAIRS:
        return _msm_g1_multi_numpy(points_lists, splits, digit_lists, windows, c)
    mont = ops.montgomery_kernels
    if mont:
        to_m = ops.to_mont
        from_m = ops.from_mont

        def batch_add(ps, qs):
            return _batch_affine_add_mont(ps, qs, ops)

    results: List[JacobianPoint] = []
    for points in points_lists:
        grids: List[List[Tuple[int, int]]] = [[] for _ in range(windows * stride)]
        for (i, endo, negate), digits in zip(splits, digit_lists):
            p = points[i]
            if p is None:
                continue
            if endo:
                p = glv_endomorphism(p)
            if negate:
                p = (p[0], P - p[1])
            if mont:
                p = (to_m(p[0]), to_m(p[1]))
            neg_p: Optional[Tuple[int, int]] = None
            for w, d in digits:
                if d > 0:
                    grids[w * stride + d].append(p)
                else:
                    if neg_p is None:
                        neg_p = (p[0], P - p[1])
                    grids[w * stride - d].append(neg_p)
        if mont:
            sums = _window_sums(grids, windows, c, batch_add)
            plain = [
                None if s is None else (from_m(s[0]), from_m(s[1])) for s in sums
            ]
            results.append(_positional_combine_g1(plain, c))
        else:
            results.append(_combine_windows(grids, windows, c))
    return results


def _msm_g1_multi_numpy(
    points_lists: Sequence[Sequence[AffinePoint]],
    splits: Sequence[Tuple[int, bool, bool]],
    digit_lists: Sequence[List[Tuple[int, int]]],
    windows: int,
    c: int,
) -> List[JacobianPoint]:
    """The shared-recoding multi-MSM with numpy limb bucket rounds.

    The GLV splits and signed digits are already computed once by
    :func:`msm_g1_multi`; this replays them per point set, building each
    set's Montgomery limb pool and flat digit arrays, then reduces the
    grid with the vectorized kernel.  ``None`` entries in a point set
    drop that set's corresponding digits, exactly like the scalar paths.
    """
    from ..field.limb import get_limb_context

    ctx = get_limb_context(P)
    stride = (1 << (c - 1)) + 1
    results: List[JacobianPoint] = []
    for points in points_lists:
        split_pts: List[Tuple[int, int]] = []
        col_of_split: List[int] = []
        for i, endo, negate in splits:
            p = points[i]
            if p is None:
                col_of_split.append(-1)
                continue
            if endo:
                p = glv_endomorphism(p)
            if negate:
                p = (p[0], P - p[1])
            col_of_split.append(len(split_pts))
            split_pts.append(p)
        if not split_pts:
            results.append(G1_INFINITY_JAC)
            continue
        xs = ctx.to_mont(ctx.to_limbs([p[0] for p in split_pts]))
        ys = ctx.to_mont(ctx.to_limbs([p[1] for p in split_pts]))
        bids: List[int] = []
        pids: List[int] = []
        negs: List[int] = []
        ba, pa, na = bids.append, pids.append, negs.append
        for col, digits in zip(col_of_split, digit_lists):
            if col < 0:
                continue
            for w, d in digits:
                if d > 0:
                    ba(w * stride + d)
                    pa(col)
                    na(0)
                else:
                    ba(w * stride - d)
                    pa(col)
                    na(1)
        sums = _numpy_window_sums(ctx, xs, ys, bids, pids, negs, windows * stride)
        results.append(
            _positional_combine_g1(
                _suffix_window_sums(sums, windows, c, _batch_affine_add), c
            )
        )
    return results


def msm_g1_unsigned(
    points: Sequence[AffinePoint], scalars: Sequence[int]
) -> JacobianPoint:
    """The PR-1 Pippenger MSM: unsigned windows, Jacobian bucket adds.

    Kept verbatim as the baseline ``bench_msm_kernels`` measures the GLV +
    signed-window path against, and as a second fast implementation for
    differential property tests.
    """
    if len(points) != len(scalars):
        raise ValueError("points and scalars must have equal length")
    pairs = [
        (p, s % R)
        for p, s in zip(points, scalars)
        if p is not None and s % R != 0
    ]
    if not pairs:
        return G1_INFINITY_JAC
    c = pippenger_window_size(len(pairs), signed=False)
    mask = (1 << c) - 1
    windows = (SCALAR_BITS + c - 1) // c
    total = G1_INFINITY_JAC
    for w in range(windows - 1, -1, -1):
        if total != G1_INFINITY_JAC:
            for _ in range(c):
                total = jac_double(total)
        shift = w * c
        buckets: List[JacobianPoint] = [G1_INFINITY_JAC] * (mask + 1)
        for point, scalar in pairs:
            digit = (scalar >> shift) & mask
            if digit:
                buckets[digit] = jac_add_mixed(buckets[digit], point)
        # Suffix-sum trick: sum_b b * bucket[b] with 2*(2^c) additions.
        running = G1_INFINITY_JAC
        window_sum = G1_INFINITY_JAC
        for b in range(mask, 0, -1):
            if buckets[b] != G1_INFINITY_JAC:
                running = jac_add(running, buckets[b])
            window_sum = jac_add(window_sum, running)
        total = jac_add(total, window_sum)
    return total


@_profiled_msm("g2")
def msm_g2(points: Sequence[G2Point], scalars: Sequence[int]) -> G2Point:
    """Signed-window + batch-affine Pippenger MSM over G2.

    The same kernel shape as the G1 path -- signed base-``2^c`` digits,
    one global bucket tree reduction, lockstep suffix sums -- with every
    batched affine addition sharing a single Fp2 inversion through
    :func:`~repro.curves.g2.g2_batch_affine_add` (whose one base-field
    inversion Montgomery's trick amortizes across the whole round).  No
    GLV split: the G2 endomorphism (psi) has a different eigenvalue and
    G2 MSMs are a single-digit percentage of prove time; signed windows
    alone halve the bucket count over the retired unsigned path
    (:func:`msm_g2_unsigned`, kept as the differential-test baseline).
    """
    if len(points) != len(scalars):
        raise ValueError("points and scalars must have equal length")
    pairs = [
        ((p.x, p.y), s % R)
        for p, s in zip(points, scalars)
        if not p.is_infinity() and s % R != 0
    ]
    if not pairs:
        return G2Point.infinity()
    c = pippenger_window_size(len(pairs))
    grids, windows = _scatter_signed(
        [p for p, _ in pairs], [s for _, s in pairs], c, neg=_neg_affine_g2
    )
    window_sum = _window_sums(grids, windows, c, g2_batch_affine_add)
    total = G2_INFINITY_JAC
    for w in range(windows - 1, -1, -1):
        if not total[2].is_zero():
            for _ in range(c):
                total = g2_jac_double(total)
        pt = window_sum[w]
        if pt is not None:
            total = g2_jac_add_mixed(total, pt)
    return g2_from_jacobian(total)


def msm_g2_unsigned(points: Sequence[G2Point], scalars: Sequence[int]) -> G2Point:
    """The PR-2 G2 MSM: unsigned windows, Jacobian bucket adds.

    Kept verbatim as the baseline the signed path is property-tested and
    benchmarked against.
    """
    if len(points) != len(scalars):
        raise ValueError("points and scalars must have equal length")
    pairs = [
        (g2_to_jacobian(p), s % R)
        for p, s in zip(points, scalars)
        if not p.is_infinity() and s % R != 0
    ]
    if not pairs:
        return G2Point.infinity()
    c = pippenger_window_size(len(pairs), signed=False)
    mask = (1 << c) - 1
    windows = (SCALAR_BITS + c - 1) // c
    total = G2_INFINITY_JAC
    for w in range(windows - 1, -1, -1):
        if not total[2].is_zero():
            for _ in range(c):
                total = g2_jac_double(total)
        shift = w * c
        buckets: List[G2Jacobian] = [G2_INFINITY_JAC] * (mask + 1)
        for point, scalar in pairs:
            digit = (scalar >> shift) & mask
            if digit:
                buckets[digit] = g2_jac_add(buckets[digit], point)
        running = G2_INFINITY_JAC
        window_sum = G2_INFINITY_JAC
        for b in range(mask, 0, -1):
            if not buckets[b][2].is_zero():
                running = g2_jac_add(running, buckets[b])
            window_sum = g2_jac_add(window_sum, running)
        total = g2_jac_add(total, window_sum)
    return g2_from_jacobian(total)


def naive_msm_g1(points: Sequence[AffinePoint], scalars: Sequence[int]) -> JacobianPoint:
    """Reference MSM: independent double-and-add per term."""
    total = G1_INFINITY_JAC
    for p, s in zip(points, scalars):
        if p is None:
            continue
        total = jac_add(total, jac_scalar_mul((p[0], p[1], 1), s))
    return total


def naive_msm_g2(points: Sequence[G2Point], scalars: Sequence[int]) -> G2Point:
    total = G2Point.infinity()
    for p, s in zip(points, scalars):
        total = total + p * s
    return total


class FixedBaseTableG1:
    """Comb-method fixed-base multiplier for G1.

    Precomputes ``digit * 2^(w*i) * base`` for every window ``i`` and digit,
    so each subsequent scalar multiplication costs only ``ceil(254/w)`` mixed
    additions.  Used by the trusted setup, which multiplies the generator by
    thousands of evaluation scalars.

    The table is built in affine coordinates: the per-window bases come from
    one Jacobian doubling chain batch-normalized at the end, and every
    digit's row entries are produced by a single batched affine addition
    across all windows -- ``2^w - 2`` shared inversions total, instead of a
    Jacobian add plus a dedicated inversion per table entry.
    """

    def __init__(self, base_affine: Tuple[int, int], window: int = 8):
        self.window = window
        self.windows = (SCALAR_BITS + window - 1) // window
        # One boundary conversion: the whole doubling/batch-add table build
        # (and every later mixed addition against its entries) runs on the
        # active backend's native residues.
        ops = get_field_ops(P)
        base_affine = (ops.wrap(base_affine[0]), ops.wrap(base_affine[1]))
        bases_jac: List[JacobianPoint] = []
        base_jac: JacobianPoint = (base_affine[0], base_affine[1], 1)
        for _ in range(self.windows):
            bases_jac.append(base_jac)
            for _ in range(window):
                base_jac = jac_double(base_jac)
        bases = jac_to_affine_many(bases_jac)
        rows: List[List[AffinePoint]] = [[None, b] for b in bases]
        accs = list(bases)
        # digit d = 2 .. 2^w - 1: one batched add of `base` into every row.
        for _ in range((1 << window) - 2):
            accs = _batch_affine_add(accs, bases)
            for row, acc in zip(rows, accs):
                row.append(acc)
        self.table: List[List[AffinePoint]] = rows

    def mul(self, scalar: int) -> JacobianPoint:
        """Return ``scalar * base`` as a Jacobian point."""
        s = scalar % R
        acc = G1_INFINITY_JAC
        mask = (1 << self.window) - 1
        for i in range(self.windows):
            digit = (s >> (i * self.window)) & mask
            if digit:
                entry = self.table[i][digit]
                if entry is not None:
                    acc = jac_add_mixed(acc, entry)
        return acc

    def mul_many(self, scalars: Sequence[int]) -> List[JacobianPoint]:
        return [self.mul(s) for s in scalars]


class FixedBaseTableG2:
    """Comb-method fixed-base multiplier for G2.

    Rows hold affine ``(x, y)`` Fp2 pairs built with batched affine
    additions (one Fp2 inversion per digit, shared across windows);
    :meth:`mul` accumulates them with mixed Jacobian additions.
    """

    def __init__(self, base: G2Point, window: int = 6):
        self.window = window
        self.windows = (SCALAR_BITS + window - 1) // window
        base = g2_wrap(base, get_field_ops(P))
        bases_jac: List[G2Jacobian] = []
        base_jac = g2_to_jacobian(base)
        for _ in range(self.windows):
            bases_jac.append(base_jac)
            for _ in range(window):
                base_jac = g2_jac_double(base_jac)
        bases = g2_jac_to_affine_many(bases_jac)
        rows: List[List[Optional[tuple]]] = [[None, b] for b in bases]
        accs = list(bases)
        for _ in range((1 << window) - 2):
            accs = g2_batch_affine_add(accs, bases)
            for row, acc in zip(rows, accs):
                row.append(acc)
        self.table: List[List[Optional[tuple]]] = rows

    def mul_jacobian(self, scalar: int) -> G2Jacobian:
        s = scalar % R
        acc = G2_INFINITY_JAC
        mask = (1 << self.window) - 1
        for i in range(self.windows):
            digit = (s >> (i * self.window)) & mask
            if digit:
                entry = self.table[i][digit]
                if entry is not None:
                    acc = g2_jac_add_mixed(acc, entry)
        return acc

    def mul(self, scalar: int) -> G2Point:
        return g2_from_jacobian(self.mul_jacobian(scalar))

    def mul_many(self, scalars: Sequence[int]) -> List[G2Point]:
        """Batch scalar multiplication with one shared final normalization."""
        jacs = [self.mul_jacobian(s) for s in scalars]
        out: List[G2Point] = []
        for aff in g2_jac_to_affine_many(jacs):
            out.append(
                G2Point.infinity() if aff is None else G2Point(aff[0], aff[1])
            )
        return out
