"""G1 arithmetic for BN254: y^2 = x^3 + 3 over Fp.

G1 operations dominate Groth16 proving (three large multi-scalar
multiplications), so this module works on raw integer Jacobian triples
``(X, Y, Z)`` -- ``Z == 0`` encodes the point at infinity -- with plain
``%``-arithmetic, which is several times faster in CPython than wrapping
coordinates in field-element objects.  G2 (used far less) keeps the readable
class-based style in :mod:`repro.curves.g2`.

The public, hashable, immutable view is :class:`G1Point` (affine).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..field.backend import invmod
from ..field.prime import batch_inverse_ints
from .bn254 import CURVE_B, G1_GENERATOR, P, R

__all__ = [
    "G1Point",
    "JacobianPoint",
    "G1_INFINITY_JAC",
    "jac_double",
    "jac_add",
    "jac_add_mixed",
    "jac_neg",
    "jac_scalar_mul",
    "jac_is_infinity",
    "jac_to_affine",
    "jac_to_affine_many",
    "affine_to_jac",
]

JacobianPoint = Tuple[int, int, int]

#: The point at infinity in Jacobian form.
G1_INFINITY_JAC: JacobianPoint = (1, 1, 0)


def jac_is_infinity(pt: JacobianPoint) -> bool:
    return pt[2] == 0


def jac_neg(pt: JacobianPoint) -> JacobianPoint:
    x, y, z = pt
    return (x, -y % P, z)


def jac_double(pt: JacobianPoint) -> JacobianPoint:
    """Point doubling (dbl-2009-l formulas, a = 0)."""
    x, y, z = pt
    if z == 0 or y == 0:
        return G1_INFINITY_JAC
    a = x * x % P
    b = y * y % P
    c = b * b % P
    t = x + b
    d = 2 * (t * t - a - c) % P
    e = 3 * a % P
    f = e * e % P
    x3 = (f - 2 * d) % P
    y3 = (e * (d - x3) - 8 * c) % P
    z3 = 2 * y * z % P
    return (x3, y3, z3)


def jac_add(p: JacobianPoint, q: JacobianPoint) -> JacobianPoint:
    """General Jacobian addition (add-2007-bl formulas)."""
    if p[2] == 0:
        return q
    if q[2] == 0:
        return p
    x1, y1, z1 = p
    x2, y2, z2 = q
    z1z1 = z1 * z1 % P
    z2z2 = z2 * z2 % P
    u1 = x1 * z2z2 % P
    u2 = x2 * z1z1 % P
    s1 = y1 * z2 * z2z2 % P
    s2 = y2 * z1 * z1z1 % P
    h = (u2 - u1) % P
    rr = (s2 - s1) % P
    if h == 0:
        if rr == 0:
            return jac_double(p)
        return G1_INFINITY_JAC
    i = 4 * h * h % P
    j = h * i % P
    rr2 = 2 * rr % P
    v = u1 * i % P
    x3 = (rr2 * rr2 - j - 2 * v) % P
    y3 = (rr2 * (v - x3) - 2 * s1 * j) % P
    zs = z1 + z2
    z3 = (zs * zs - z1z1 - z2z2) * h % P
    return (x3, y3, z3)


def jac_add_mixed(p: JacobianPoint, q_affine: Tuple[int, int]) -> JacobianPoint:
    """Mixed addition: Jacobian ``p`` plus affine ``q`` (madd-2007-bl)."""
    if p[2] == 0:
        return (q_affine[0], q_affine[1], 1)
    x1, y1, z1 = p
    x2, y2 = q_affine
    z1z1 = z1 * z1 % P
    u2 = x2 * z1z1 % P
    s2 = y2 * z1 * z1z1 % P
    h = (u2 - x1) % P
    rr = (s2 - y1) % P
    if h == 0:
        if rr == 0:
            return jac_double(p)
        return G1_INFINITY_JAC
    hh = h * h % P
    i = 4 * hh % P
    j = h * i % P
    rr2 = 2 * rr % P
    v = x1 * i % P
    x3 = (rr2 * rr2 - j - 2 * v) % P
    y3 = (rr2 * (v - x3) - 2 * y1 * j) % P
    zh = z1 + h
    z3 = (zh * zh - z1z1 - hh) % P
    return (x3, y3, z3)


def jac_scalar_mul(pt: JacobianPoint, k: int) -> JacobianPoint:
    """Left-to-right double-and-add scalar multiplication."""
    k %= R
    if k == 0 or pt[2] == 0:
        return G1_INFINITY_JAC
    acc = G1_INFINITY_JAC
    for bit in bin(k)[2:]:
        acc = jac_double(acc)
        if bit == "1":
            acc = jac_add(acc, pt)
    return acc


def jac_to_affine(pt: JacobianPoint) -> Optional[Tuple[int, int]]:
    """Convert to affine coordinates; ``None`` for the point at infinity."""
    x, y, z = pt
    if z == 0:
        return None
    z_inv = invmod(z, P)
    z2 = z_inv * z_inv % P
    return (x * z2 % P, y * z2 * z_inv % P)


def jac_to_affine_many(
    pts: Sequence[JacobianPoint],
) -> List[Optional[Tuple[int, int]]]:
    """Normalize many Jacobian points with a single modular inversion.

    The per-point :func:`jac_to_affine` costs one ``pow(z, -1, P)`` each;
    Montgomery's trick turns N inversions into one plus ~3N multiplications.
    Used by the trusted setup (thousands of key points), fixed-base table
    construction, and proof-point normalization.
    """
    zs = [pt[2] for pt in pts if pt[2] != 0]
    invs = iter(batch_inverse_ints(zs, P))
    out: List[Optional[Tuple[int, int]]] = []
    for x, y, z in pts:
        if z == 0:
            out.append(None)
            continue
        z_inv = next(invs)
        z2 = z_inv * z_inv % P
        out.append((x * z2 % P, y * z2 * z_inv % P))
    return out


def affine_to_jac(affine: Optional[Tuple[int, int]]) -> JacobianPoint:
    if affine is None:
        return G1_INFINITY_JAC
    return (affine[0], affine[1], 1)


class G1Point:
    """An immutable affine G1 point; ``G1Point.infinity()`` is the identity."""

    __slots__ = ("x", "y", "_infinity")

    def __init__(self, x: int, y: int, *, _infinity: bool = False):
        self._infinity = _infinity
        if _infinity:
            self.x = 0
            self.y = 0
        else:
            self.x = x % P
            self.y = y % P

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def infinity() -> "G1Point":
        return G1Point(0, 0, _infinity=True)

    @staticmethod
    def generator() -> "G1Point":
        return G1Point(*G1_GENERATOR)

    @staticmethod
    def from_jacobian(pt: JacobianPoint) -> "G1Point":
        affine = jac_to_affine(pt)
        if affine is None:
            return G1Point.infinity()
        return G1Point(*affine)

    # -- predicates ---------------------------------------------------------------

    def is_infinity(self) -> bool:
        return self._infinity

    def is_on_curve(self) -> bool:
        if self._infinity:
            return True
        return (self.y * self.y - self.x**3 - CURVE_B) % P == 0

    def in_subgroup(self) -> bool:
        """G1 has cofactor 1: on-curve membership is subgroup membership."""
        return self.is_on_curve()

    # -- group law ------------------------------------------------------------------

    def to_jacobian(self) -> JacobianPoint:
        if self._infinity:
            return G1_INFINITY_JAC
        return (self.x, self.y, 1)

    def __add__(self, other: "G1Point") -> "G1Point":
        return G1Point.from_jacobian(jac_add(self.to_jacobian(), other.to_jacobian()))

    def __sub__(self, other: "G1Point") -> "G1Point":
        return self + (-other)

    def __neg__(self) -> "G1Point":
        if self._infinity:
            return self
        return G1Point(self.x, -self.y)

    def __mul__(self, scalar: int) -> "G1Point":
        return G1Point.from_jacobian(jac_scalar_mul(self.to_jacobian(), int(scalar)))

    __rmul__ = __mul__

    def double(self) -> "G1Point":
        return G1Point.from_jacobian(jac_double(self.to_jacobian()))

    # -- plumbing ----------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, G1Point):
            return NotImplemented
        if self._infinity or other._infinity:
            return self._infinity and other._infinity
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        return hash((self._infinity, self.x, self.y))

    def __repr__(self) -> str:
        if self._infinity:
            return "G1Point(infinity)"
        return f"G1Point({self.x}, {self.y})"
