"""Compressed point serialization for G1 and G2.

Sizes match the libsnark/ZCash-style encodings the paper's byte counts come
from: 32 bytes per G1 point, 64 per G2 point, so a Groth16 proof
(G1 + G2 + G1) serializes to 128 bytes -- the paper reports 127.375 B.

Encoding: big-endian x-coordinate with two flag bits stored in the most
significant byte (BN254 coordinates are 254-bit, leaving the top two bits of
a 32-byte buffer free):

* bit 7 (0x80): point at infinity (rest of the buffer is zero);
* bit 6 (0x40): the y-coordinate is the lexicographically larger root.
"""

from __future__ import annotations

from ..field.prime import BN254_P as P
from ..field.prime import tonelli_shanks
from ..field.tower import Fp2Element
from .bn254 import CURVE_B, TWIST_B
from .g1 import G1Point
from .g2 import G2Point

__all__ = [
    "G1_COMPRESSED_BYTES",
    "G2_COMPRESSED_BYTES",
    "g1_to_bytes",
    "g1_from_bytes",
    "g2_to_bytes",
    "g2_from_bytes",
]

G1_COMPRESSED_BYTES = 32
G2_COMPRESSED_BYTES = 64

_FLAG_INFINITY = 0x80
_FLAG_Y_LARGER = 0x40


class PointDecodingError(ValueError):
    """Raised when bytes do not decode to a valid curve point."""


def _is_larger_root(y: int) -> bool:
    return y > P - y


def g1_to_bytes(point: G1Point) -> bytes:
    """Compress a G1 point to 32 bytes."""
    if point.is_infinity():
        return bytes([_FLAG_INFINITY]) + bytes(31)
    # int() canonicalizes backend-native coordinates (e.g. mpz) at the
    # serialization boundary; encodings are identical across backends.
    buf = bytearray(int(point.x).to_bytes(32, "big"))
    if _is_larger_root(point.y):
        buf[0] |= _FLAG_Y_LARGER
    return bytes(buf)


def g1_from_bytes(data: bytes) -> G1Point:
    """Decompress a G1 point; validates curve membership."""
    if len(data) != G1_COMPRESSED_BYTES:
        raise PointDecodingError(f"G1 point must be {G1_COMPRESSED_BYTES} bytes")
    flags = data[0] & 0xC0
    if flags & _FLAG_INFINITY:
        if any(data[1:]) or data[0] != _FLAG_INFINITY:
            raise PointDecodingError("malformed infinity encoding")
        return G1Point.infinity()
    x = int.from_bytes(bytes([data[0] & 0x3F]) + data[1:], "big")
    if x >= P:
        raise PointDecodingError("x-coordinate out of range")
    y2 = (x * x * x + CURVE_B) % P
    y = tonelli_shanks(y2, P)
    if y is None:
        raise PointDecodingError("x-coordinate is not on the curve")
    if bool(flags & _FLAG_Y_LARGER) != _is_larger_root(y):
        y = P - y
    return G1Point(x, y)


def _fp2_sqrt(a: Fp2Element) -> Fp2Element:
    """Square root in Fp2 via the complex method; raises if no root exists.

    Uses the norm map: for a = a0 + a1 u, solve with sqrt(norm) in Fp.
    """
    if a.is_zero():
        return a
    a0, a1 = a.c0, a.c1
    if a1 == 0:
        root = tonelli_shanks(a0, P)
        if root is not None:
            return Fp2Element(root, 0)
        # sqrt(a0) = sqrt(-a0) * sqrt(-1) = sqrt(-a0) * u
        root = tonelli_shanks(-a0 % P, P)
        if root is None:
            raise PointDecodingError("Fp2 element has no square root")
        return Fp2Element(0, root)
    norm = (a0 * a0 + a1 * a1) % P
    n = tonelli_shanks(norm, P)
    if n is None:
        raise PointDecodingError("Fp2 element has no square root")
    inv2 = pow(2, -1, P)
    for sign in (1, -1):
        x0_sq = (a0 + sign * n) * inv2 % P
        x0 = tonelli_shanks(x0_sq, P)
        if x0 is None or x0 == 0:
            continue
        x1 = a1 * pow(2 * x0, -1, P) % P
        candidate = Fp2Element(x0, x1)
        if candidate.square() == a:
            return candidate
    raise PointDecodingError("Fp2 element has no square root")


def _fp2_is_larger(y: Fp2Element) -> bool:
    """Lexicographic comparison (c1, then c0) against the negation."""
    neg = -y
    if y.c1 != neg.c1:
        return y.c1 > neg.c1
    return y.c0 > neg.c0


def g2_to_bytes(point: G2Point) -> bytes:
    """Compress a G2 point to 64 bytes (x.c1 || x.c0, flags in first byte)."""
    if point.is_infinity():
        return bytes([_FLAG_INFINITY]) + bytes(63)
    buf = bytearray(
        int(point.x.c1).to_bytes(32, "big") + int(point.x.c0).to_bytes(32, "big")
    )
    if _fp2_is_larger(point.y):
        buf[0] |= _FLAG_Y_LARGER
    return bytes(buf)


def g2_from_bytes(data: bytes, *, check_subgroup: bool = False) -> G2Point:
    """Decompress a G2 point; validates the twist-curve equation.

    ``check_subgroup`` additionally verifies order-r membership (one scalar
    multiplication -- meaningful for untrusted verification keys).
    """
    if len(data) != G2_COMPRESSED_BYTES:
        raise PointDecodingError(f"G2 point must be {G2_COMPRESSED_BYTES} bytes")
    flags = data[0] & 0xC0
    if flags & _FLAG_INFINITY:
        if any(data[1:]) or data[0] != _FLAG_INFINITY:
            raise PointDecodingError("malformed infinity encoding")
        return G2Point.infinity()
    c1 = int.from_bytes(bytes([data[0] & 0x3F]) + data[1:32], "big")
    c0 = int.from_bytes(data[32:], "big")
    if c0 >= P or c1 >= P:
        raise PointDecodingError("x-coordinate out of range")
    x = Fp2Element(c0, c1)
    y2 = x.square() * x + TWIST_B
    y = _fp2_sqrt(y2)
    if bool(flags & _FLAG_Y_LARGER) != _fp2_is_larger(y):
        y = -y
    point = G2Point(x, y)
    if not point.is_on_curve():
        raise PointDecodingError("decoded point not on twist curve")
    if check_subgroup and not point.in_subgroup():
        raise PointDecodingError("decoded point not in the order-r subgroup")
    return point
