"""G2 arithmetic for BN254: y^2 = x^3 + 3/xi over Fp2 (D-type sextic twist).

G2 points appear only a handful of times per proof (one MSM for the B
commitment, a few fixed points in the keys), so unlike
:mod:`repro.curves.g1` this module keeps the readable class-based style with
:class:`~repro.field.tower.Fp2Element` coordinates.

Includes the untwist-Frobenius-twist endomorphism ``psi`` needed by the
optimal-Ate Miller loop.
"""

from __future__ import annotations

from typing import Tuple

from ..field.tower import FROB_GAMMA, Fp2Element, fp2_batch_inverse, fp2_wrap
from .bn254 import G2_COFACTOR, G2_GENERATOR, R, TWIST_B

__all__ = [
    "G2Point",
    "g2_wrap",
    "psi",
    "G2Jacobian",
    "G2_INFINITY_JAC",
    "g2_jac_double",
    "g2_jac_add",
    "g2_jac_add_mixed",
    "g2_jac_scalar_mul",
    "g2_jac_is_infinity",
    "g2_to_jacobian",
    "g2_from_jacobian",
    "g2_jac_to_affine_many",
    "g2_batch_affine_add",
]

# Frobenius constants for psi: x -> conj(x) * xi^((p-1)/3),
#                              y -> conj(y) * xi^((p-1)/2).
_PSI_X = FROB_GAMMA[2]
_PSI_Y = FROB_GAMMA[3]


class G2Point:
    """An immutable affine G2 point; ``G2Point.infinity()`` is the identity."""

    __slots__ = ("x", "y", "_infinity")

    def __init__(self, x: Fp2Element, y: Fp2Element, *, _infinity: bool = False):
        self._infinity = _infinity
        zero = Fp2Element.zero()
        self.x = zero if _infinity else x
        self.y = zero if _infinity else y

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def infinity() -> "G2Point":
        zero = Fp2Element.zero()
        return G2Point(zero, zero, _infinity=True)

    @staticmethod
    def generator() -> "G2Point":
        return G2Point(*G2_GENERATOR)

    # -- predicates ----------------------------------------------------------------

    def is_infinity(self) -> bool:
        return self._infinity

    def is_on_curve(self) -> bool:
        if self._infinity:
            return True
        return self.y.square() == self.x.square() * self.x + TWIST_B

    def in_subgroup(self) -> bool:
        """Membership in the order-r subgroup (r * Q == O)."""
        if not self.is_on_curve():
            return False
        return (self * R).is_infinity()

    def clear_cofactor(self) -> "G2Point":
        """Map an arbitrary twist-curve point into the order-r subgroup."""
        return self * G2_COFACTOR

    # -- group law --------------------------------------------------------------------

    def __add__(self, other: "G2Point") -> "G2Point":
        if self._infinity:
            return other
        if other._infinity:
            return self
        if self.x == other.x:
            if self.y == other.y:
                return self.double()
            return G2Point.infinity()
        slope = (other.y - self.y) * (other.x - self.x).inverse()
        x3 = slope.square() - self.x - other.x
        y3 = slope * (self.x - x3) - self.y
        return G2Point(x3, y3)

    def double(self) -> "G2Point":
        if self._infinity or self.y.is_zero():
            return G2Point.infinity()
        slope = self.x.square().scale(3) * (self.y + self.y).inverse()
        x3 = slope.square() - self.x - self.x
        y3 = slope * (self.x - x3) - self.y
        return G2Point(x3, y3)

    def __sub__(self, other: "G2Point") -> "G2Point":
        return self + (-other)

    def __neg__(self) -> "G2Point":
        if self._infinity:
            return self
        return G2Point(self.x, -self.y)

    def __mul__(self, scalar: int) -> "G2Point":
        k = int(scalar)
        if k < 0:
            return (-self) * (-k)
        if k == 0 or self._infinity:
            return G2Point.infinity()
        acc = G2Point.infinity()
        for bit in bin(k)[2:]:
            acc = acc.double()
            if bit == "1":
                acc = acc + self
        return acc

    __rmul__ = __mul__

    # -- plumbing ------------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, G2Point):
            return NotImplemented
        if self._infinity or other._infinity:
            return self._infinity and other._infinity
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        return hash((self._infinity, self.x, self.y))

    def __repr__(self) -> str:
        if self._infinity:
            return "G2Point(infinity)"
        return f"G2Point({self.x!r}, {self.y!r})"


def g2_wrap(q: G2Point, ops) -> G2Point:
    """``q`` with backend-native Fp2 coefficients (boundary conversion).

    Tower arithmetic is coefficient-polymorphic, so wrapping a G2 point
    once before a Miller loop or table build keeps every intermediate
    product on the active backend's native residues.
    """
    if q.is_infinity():
        return q
    return G2Point(fp2_wrap(q.x, ops), fp2_wrap(q.y, ops))


# -- Jacobian fast path ---------------------------------------------------------
#
# Affine G2 addition costs an Fp2 inversion per step, which dominates large
# fixed-base/multi-scalar workloads in the trusted setup and prover.  These
# helpers mirror the raw-integer Jacobian formulas of repro.curves.g1 with
# Fp2 coordinates; ``z == 0`` encodes infinity.

G2Jacobian = Tuple[Fp2Element, Fp2Element, Fp2Element]

_ZERO = Fp2Element.zero()
_ONE = Fp2Element.one()

G2_INFINITY_JAC: G2Jacobian = (_ONE, _ONE, _ZERO)


def g2_jac_is_infinity(pt: G2Jacobian) -> bool:
    return pt[2].is_zero()


def g2_jac_double(pt: G2Jacobian) -> G2Jacobian:
    x, y, z = pt
    if z.is_zero() or y.is_zero():
        return G2_INFINITY_JAC
    a = x.square()
    b = y.square()
    c = b.square()
    t = x + b
    d = (t.square() - a - c)
    d = d + d
    e = a + a + a
    f = e.square()
    x3 = f - d - d
    c8 = c + c
    c8 = c8 + c8
    c8 = c8 + c8
    y3 = e * (d - x3) - c8
    yz = y * z
    z3 = yz + yz
    return (x3, y3, z3)


def g2_jac_add(p: G2Jacobian, q: G2Jacobian) -> G2Jacobian:
    if p[2].is_zero():
        return q
    if q[2].is_zero():
        return p
    x1, y1, z1 = p
    x2, y2, z2 = q
    z1z1 = z1.square()
    z2z2 = z2.square()
    u1 = x1 * z2z2
    u2 = x2 * z1z1
    s1 = y1 * z2 * z2z2
    s2 = y2 * z1 * z1z1
    h = u2 - u1
    rr = s2 - s1
    if h.is_zero():
        if rr.is_zero():
            return g2_jac_double(p)
        return G2_INFINITY_JAC
    h2 = h + h
    i = h2.square()
    j = h * i
    rr2 = rr + rr
    v = u1 * i
    x3 = rr2.square() - j - v - v
    s1j = s1 * j
    y3 = rr2 * (v - x3) - s1j - s1j
    zs = z1 + z2
    z3 = (zs.square() - z1z1 - z2z2) * h
    return (x3, y3, z3)


def g2_jac_add_mixed(
    p: G2Jacobian, q_affine: Tuple[Fp2Element, Fp2Element]
) -> G2Jacobian:
    """Mixed addition: Jacobian ``p`` plus affine ``q`` (madd-2007-bl)."""
    if p[2].is_zero():
        return (q_affine[0], q_affine[1], _ONE)
    x1, y1, z1 = p
    x2, y2 = q_affine
    z1z1 = z1.square()
    u2 = x2 * z1z1
    s2 = y2 * z1 * z1z1
    h = u2 - x1
    rr = s2 - y1
    if h.is_zero():
        if rr.is_zero():
            return g2_jac_double(p)
        return G2_INFINITY_JAC
    hh = h.square()
    i = hh + hh
    i = i + i
    j = h * i
    rr2 = rr + rr
    v = x1 * i
    x3 = rr2.square() - j - v - v
    y1j = y1 * j
    y3 = rr2 * (v - x3) - y1j - y1j
    zh = z1 + h
    z3 = zh.square() - z1z1 - hh
    return (x3, y3, z3)


def g2_jac_to_affine_many(pts) -> list:
    """Normalize many Jacobian G2 points with one base-field inversion.

    Returns affine ``(x, y)`` Fp2 pairs (``None`` for infinity); the G2
    analogue of :func:`repro.curves.g1.jac_to_affine_many`.
    """
    zs = [pt[2] for pt in pts if not pt[2].is_zero()]
    invs = iter(fp2_batch_inverse(zs))
    out = []
    for x, y, z in pts:
        if z.is_zero():
            out.append(None)
            continue
        z_inv = next(invs)
        z2 = z_inv.square()
        out.append((x * z2, y * z2 * z_inv))
    return out


def g2_batch_affine_add(ps, qs) -> list:
    """Element-wise affine G2 addition with one shared inversion.

    ``ps`` and ``qs`` are parallel lists of affine ``(x, y)`` Fp2 pairs;
    returns the affine sums (``None`` where ``P + Q`` is infinity).  Handles
    the doubling case (``P == Q``) via the tangent slope.
    """
    n = len(ps)
    dens = [None] * n
    kinds = [0] * n  # 0 = add, 1 = double, 2 = infinity result
    for i in range(n):
        x1, y1 = ps[i]
        x2, y2 = qs[i]
        if x1 != x2:
            dens[i] = x2 - x1
        elif (y1 + y2).is_zero():
            kinds[i] = 2
            dens[i] = _ONE
        else:
            kinds[i] = 1
            dens[i] = y1 + y1
    invs = fp2_batch_inverse(dens)
    out = [None] * n
    for i in range(n):
        if kinds[i] == 2:
            continue
        x1, y1 = ps[i]
        if kinds[i] == 1:
            x2 = x1
            slope = x1.square().scale(3) * invs[i]
        else:
            x2, y2 = qs[i]
            slope = (y2 - y1) * invs[i]
        x3 = slope.square() - x1 - x2
        out[i] = (x3, slope * (x1 - x3) - y1)
    return out


def g2_jac_scalar_mul(pt: G2Jacobian, k: int) -> G2Jacobian:
    k %= R
    if k == 0 or pt[2].is_zero():
        return G2_INFINITY_JAC
    acc = G2_INFINITY_JAC
    for bit in bin(k)[2:]:
        acc = g2_jac_double(acc)
        if bit == "1":
            acc = g2_jac_add(acc, pt)
    return acc


def g2_to_jacobian(q: G2Point) -> G2Jacobian:
    if q.is_infinity():
        return G2_INFINITY_JAC
    return (q.x, q.y, _ONE)


def g2_from_jacobian(pt: G2Jacobian) -> G2Point:
    x, y, z = pt
    if z.is_zero():
        return G2Point.infinity()
    z_inv = z.inverse()
    z2 = z_inv.square()
    return G2Point(x * z2, y * z2 * z_inv)


def psi(q: G2Point) -> G2Point:
    """Untwist-Frobenius-twist endomorphism on twisted coordinates.

    Applying the p-power Frobenius to the untwisted point on E(Fp12) and
    twisting back yields ``(conj(x) * xi^((p-1)/3), conj(y) * xi^((p-1)/2))``.
    Used by the optimal-Ate pairing's two correction steps.
    """
    if q.is_infinity():
        return q
    return G2Point(q.x.conjugate() * _PSI_X, q.y.conjugate() * _PSI_Y)
