"""The BN254 Ate pairing: e(G1, G2) -> Fp12.

Two Miller-loop variants are implemented:

* ``"optimal"`` -- the optimal-Ate pairing with loop count ``6x + 2`` plus
  the two Frobenius correction steps (what libsnark runs; the default).
* ``"ate"`` -- the plain Ate pairing with loop count ``t - 1 = 6x^2``, no
  correction steps.  Slower but simpler; kept as an independent reference
  implementation and as the subject of the pairing ablation benchmark.

Both share the same sparse-line Miller machinery and the same final
exponentiation.  The hard part of the final exponentiation is a direct
``f^((p^4 - p^2 + 1)/r)`` -- correct by construction (the exponent identity
is asserted at import) at the price of a few hundred extra Fp12 operations,
a good trade for a reference implementation.

Line functions: for the D-type twist, the line through (untwisted) points of
G2 evaluated at ``P = (xP, yP)`` in G1 is the sparse element
``yP - (lambda * xP) w + (lambda * x_T - y_T) v w`` with all coefficients in
Fp2, consumed by :meth:`Fp12Element.mul_by_line`.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..field.backend import get_field_ops
from ..field.prime import BN254_P as P
from ..field.prime import BN254_R as R
from ..field.prime import BN254_X as X
from ..field.tower import Fp2Element, Fp6Element, Fp12Element
from .bn254 import ATE_LOOP_COUNT, OPTIMAL_ATE_LOOP_COUNT
from .g1 import G1Point
from .g2 import G2Point, g2_wrap, psi

__all__ = [
    "pairing",
    "multi_pairing",
    "multi_miller_loop",
    "pairing_check",
    "miller_loop",
    "miller_loop_precomputed",
    "precompute_g2",
    "G2Precomputed",
    "final_exponentiation",
    "final_exponentiation_naive",
    "fp12_to_ints",
    "fp12_from_ints",
]

# (p^4 - p^2 + 1) / r: the hard-part exponent of the final exponentiation.
_HARD_EXPONENT, _rem = divmod(P**4 - P**2 + 1, R)
if _rem:  # pragma: no cover - would indicate corrupted curve constants
    raise AssertionError("BN254 invariant violated: r does not divide p^4 - p^2 + 1")


def _embed(value: int) -> Fp2Element:
    return Fp2Element(value, 0)


def _line_double(
    t: Tuple[Fp2Element, Fp2Element], xp: int, yp: int
) -> Tuple[Tuple[Fp2Element, Fp2Element], Tuple[Fp2Element, Fp2Element, Fp2Element]]:
    """Double ``t`` and return (2t, sparse line coefficients at P)."""
    x, y = t
    lam = x.square().scale(3) * (y + y).inverse()
    x3 = lam.square() - x - x
    y3 = lam * (x - x3) - y
    c0 = _embed(yp)
    c3 = -(lam.scale(xp))
    c4 = lam * x - y
    return (x3, y3), (c0, c3, c4)


def _line_add(
    t: Tuple[Fp2Element, Fp2Element],
    q: Tuple[Fp2Element, Fp2Element],
    xp: int,
    yp: int,
) -> Tuple[Tuple[Fp2Element, Fp2Element], Tuple[Fp2Element, Fp2Element, Fp2Element]]:
    """Add ``q`` to ``t`` and return (t + q, sparse line coefficients at P)."""
    x1, y1 = t
    x2, y2 = q
    if x1 == x2 and y1 == y2:
        return _line_double(t, xp, yp)
    lam = (y2 - y1) * (x2 - x1).inverse()
    x3 = lam.square() - x1 - x2
    y3 = lam * (x1 - x3) - y1
    c0 = _embed(yp)
    c3 = -(lam.scale(xp))
    c4 = lam * x2 - y2
    return (x3, y3), (c0, c3, c4)


def miller_loop(
    p: G1Point, q: G2Point, loop_count: int, *, optimal_corrections: bool = False
) -> Fp12Element:
    """The Miller function ``f_{loop_count, Q}(P)`` (no final exponentiation).

    With ``optimal_corrections`` the two extra line multiplications of the
    optimal-Ate pairing (through ``psi(Q)`` and ``-psi^2(Q)``) are appended.
    """
    if p.is_infinity() or q.is_infinity():
        return Fp12Element.one()
    # One boundary conversion per pairing: the entire Miller loop then
    # runs on the active field backend's native residues.
    ops = get_field_ops(P)
    xp, yp = ops.wrap(p.x), ops.wrap(p.y)
    q = g2_wrap(q, ops)
    t = (q.x, q.y)
    q_affine = (q.x, q.y)
    f = Fp12Element.one()
    for bit in bin(loop_count)[3:]:
        f = f.square()
        t, line = _line_double(t, xp, yp)
        f = f.mul_by_line(*line)
        if bit == "1":
            t, line = _line_add(t, q_affine, xp, yp)
            f = f.mul_by_line(*line)
    if optimal_corrections:
        q1 = psi(q)
        q2 = -psi(psi(q))
        t, line = _line_add(t, (q1.x, q1.y), xp, yp)
        f = f.mul_by_line(*line)
        t, line = _line_add(t, (q2.x, q2.y), xp, yp)
        f = f.mul_by_line(*line)
    return f


def _easy_part(f: Fp12Element) -> Fp12Element:
    """``f^((p^6 - 1)(p^2 + 1))`` via conjugation and Frobenius maps.

    The result lies in the cyclotomic subgroup, where inversion is just
    conjugation -- the property the fast hard part exploits.
    """
    if f.is_zero():
        raise ZeroDivisionError("final exponentiation of zero")
    f1 = f.conjugate() * f.inverse()
    return f1.frobenius_n(2) * f1


def _exp_by_neg_x(f: Fp12Element) -> Fp12Element:
    """``f^(-x)`` for a cyclotomic-subgroup element (x = BN parameter)."""
    return f.pow(X).conjugate()


class G2Precomputed:
    """Precomputed Miller-loop line coefficients for a fixed G2 point.

    The line through T (doubling) or T,Q (addition) evaluated at
    ``P = (xP, yP)`` is ``yP - (lambda xP) w + (lambda x_T - y_T) v w``;
    only the slope-dependent pieces involve Q's side of the computation.
    Storing ``(-lambda, lambda x - y)`` per Miller step removes all G2
    arithmetic (including the per-step Fp2 inversions) from pairing time
    -- libsnark's "G2 precomputation", used for the three fixed G2 points
    of a Groth16 verification key.
    """

    __slots__ = ("coeffs", "loop_count", "with_corrections")

    def __init__(self, coeffs, loop_count: int, with_corrections: bool):
        self.coeffs = coeffs
        self.loop_count = loop_count
        self.with_corrections = with_corrections


def precompute_g2(q: G2Point, variant: str = "optimal") -> G2Precomputed:
    """Run the G2 side of the Miller loop once, capturing line coefficients."""
    if q.is_infinity():
        raise ValueError("cannot precompute the point at infinity")
    if variant == "optimal":
        loop_count, corrections = OPTIMAL_ATE_LOOP_COUNT, True
    elif variant == "ate":
        loop_count, corrections = ATE_LOOP_COUNT, False
    else:
        raise ValueError(f"unknown pairing variant: {variant!r}")

    coeffs = []
    q = g2_wrap(q, get_field_ops(P))
    t = (q.x, q.y)
    q_affine = (q.x, q.y)

    def double_step(t):
        x, y = t
        lam = x.square().scale(3) * (y + y).inverse()
        x3 = lam.square() - x - x
        y3 = lam * (x - x3) - y
        coeffs.append((-lam, lam * x - y))
        return (x3, y3)

    def add_step(t, point):
        x1, y1 = t
        x2, y2 = point
        lam = (y2 - y1) * (x2 - x1).inverse()
        x3 = lam.square() - x1 - x2
        y3 = lam * (x1 - x3) - y1
        coeffs.append((-lam, lam * x2 - y2))
        return (x3, y3)

    for bit in bin(loop_count)[3:]:
        t = double_step(t)
        if bit == "1":
            t = add_step(t, q_affine)
    if corrections:
        q1 = psi(q)
        q2 = -psi(psi(q))
        t = add_step(t, (q1.x, q1.y))
        t = add_step(t, (q2.x, q2.y))
    return G2Precomputed(coeffs, loop_count, corrections)


def miller_loop_precomputed(p: G1Point, pre: G2Precomputed) -> Fp12Element:
    """Miller loop consuming precomputed G2 coefficients (no G2 arithmetic)."""
    if p.is_infinity():
        return Fp12Element.one()
    ops = get_field_ops(P)
    xp, yp = ops.wrap(p.x), ops.wrap(p.y)
    yp_embedded = _embed(yp)
    it = iter(pre.coeffs)
    f = Fp12Element.one()
    for bit in bin(pre.loop_count)[3:]:
        f = f.square()
        neg_lam, c4 = next(it)
        f = f.mul_by_line(yp_embedded, neg_lam.scale(xp), c4)
        if bit == "1":
            neg_lam, c4 = next(it)
            f = f.mul_by_line(yp_embedded, neg_lam.scale(xp), c4)
    if pre.with_corrections:
        for _ in range(2):
            neg_lam, c4 = next(it)
            f = f.mul_by_line(yp_embedded, neg_lam.scale(xp), c4)
    return f


def _variant_params(variant: str) -> Tuple[int, bool]:
    if variant == "optimal":
        return OPTIMAL_ATE_LOOP_COUNT, True
    if variant == "ate":
        return ATE_LOOP_COUNT, False
    raise ValueError(f"unknown pairing variant: {variant!r}")


class _LivePair:
    """Mutable G2-side Miller state for one (P, Q) pair of the shared loop."""

    __slots__ = ("xp", "yp", "t", "q_affine", "q")

    def __init__(self, p: G1Point, q: G2Point, ops):
        self.xp, self.yp = ops.wrap(p.x), ops.wrap(p.y)
        self.q = g2_wrap(q, ops)
        self.t = (self.q.x, self.q.y)
        self.q_affine = (self.q.x, self.q.y)


def multi_miller_loop(
    pairs: Iterable[Tuple[G1Point, object]], variant: str = "optimal"
) -> Fp12Element:
    """Shared Miller loop: ``prod_i f_{c, Q_i}(P_i)`` with ONE squaring chain.

    Because squaring distributes over the product
    (``(prod f_i)^2 = prod f_i^2``), the per-bit ``square()`` of the
    accumulator is shared across all pairs; each iteration then multiplies
    in every pair's sparse line evaluation.  n pairs cost roughly one
    squaring chain plus n line-evaluation chains, versus n full Miller
    loops for a product of :func:`miller_loop` calls -- the kernel behind
    batch verification.

    Each Q may be a live :class:`~repro.curves.g2.G2Point` or a
    :class:`G2Precomputed` (key-fixed points with captured line
    coefficients); mixing both in one call is the Groth16-verify shape.
    Precomputations made for a different variant are rejected.  Pairs with
    a point at infinity contribute the factor 1 and are skipped.
    """
    loop_count, corrections = _variant_params(variant)
    ops = get_field_ops(P)
    live: List[_LivePair] = []
    pre: List[Tuple[int, Fp2Element, object]] = []
    for p, q in pairs:
        if isinstance(q, G2Precomputed):
            if q.loop_count != loop_count or q.with_corrections != corrections:
                raise ValueError(
                    "G2 precomputation was made for a different pairing "
                    f"variant (want {variant!r})"
                )
            if p.is_infinity():
                continue
            xp, yp = ops.wrap(p.x), ops.wrap(p.y)
            pre.append((xp, _embed(yp), iter(q.coeffs)))
        else:
            if p.is_infinity() or q.is_infinity():
                continue
            live.append(_LivePair(p, q, ops))

    f = Fp12Element.one()
    if not live and not pre:
        return f

    def pre_step(f: Fp12Element) -> Fp12Element:
        """Consume one captured line per precomputed pair."""
        for xp, ype, it in pre:
            neg_lam, c4 = next(it)
            f = f.mul_by_line(ype, neg_lam.scale(xp), c4)
        return f

    for bit in bin(loop_count)[3:]:
        f = f.square()
        for s in live:
            s.t, line = _line_double(s.t, s.xp, s.yp)
            f = f.mul_by_line(*line)
        f = pre_step(f)
        if bit == "1":
            for s in live:
                s.t, line = _line_add(s.t, s.q_affine, s.xp, s.yp)
                f = f.mul_by_line(*line)
            f = pre_step(f)
    if corrections:
        for s in live:
            q1 = psi(s.q)
            q2 = -psi(psi(s.q))
            s.t, line = _line_add(s.t, (q1.x, q1.y), s.xp, s.yp)
            f = f.mul_by_line(*line)
            s.t, line = _line_add(s.t, (q2.x, q2.y), s.xp, s.yp)
            f = f.mul_by_line(*line)
        f = pre_step(f)
        f = pre_step(f)
    return f


def fp12_to_ints(f: Fp12Element) -> Tuple[int, ...]:
    """Flatten an Fp12 element to 12 canonical ints (process-boundary form).

    Backend-native residues (``mpz``) never cross a process boundary; the
    ``int()`` calls canonicalize them (element-level residues are always in
    canonical range on every field backend).
    """
    return tuple(
        int(c)
        for b in (f.b0, f.b1)
        for a in (b.a0, b.a1, b.a2)
        for c in (a.c0, a.c1)
    )


def fp12_from_ints(values: Sequence[int]) -> Fp12Element:
    """Rebuild an Fp12 element from :func:`fp12_to_ints` output."""
    if len(values) != 12:
        raise ValueError(f"need 12 coefficients, got {len(values)}")
    it = iter(values)

    def fp6() -> Fp6Element:
        return Fp6Element(
            Fp2Element(next(it), next(it)),
            Fp2Element(next(it), next(it)),
            Fp2Element(next(it), next(it)),
        )

    return Fp12Element(fp6(), fp6())


def final_exponentiation_naive(f: Fp12Element) -> Fp12Element:
    """Reference final exponentiation: hard part by direct square-and-
    multiply with the 1016-bit exponent ``(p^4 - p^2 + 1)/r``.

    Correct by construction (the exponent identity is asserted at import);
    the optimized chain below is property-tested against this.
    """
    return _easy_part(f).pow(_HARD_EXPONENT)


def final_exponentiation(f: Fp12Element) -> Fp12Element:
    """Raise ``f`` to ``(p^12 - 1) / r``.

    Easy part via Frobenius; hard part using the Devegili et al. base-p
    decomposition of ``(p^4 - p^2 + 1)/r`` for BN curves::

        lambda_3 = 1
        lambda_2 = 6x^2 + 1
        lambda_1 = 1 - (36x^3 + 18x^2 + 12x)
        lambda_0 =   - (36x^3 + 30x^2 + 18x + 2)

    (identity asserted at import).  Three 63-bit exponentiations by the
    curve parameter x replace the naive 1016-bit power -- ~4x faster, and
    property-tested against :func:`final_exponentiation_naive`.
    """
    elt = _easy_part(f)
    fx = elt.pow(X)
    fx2 = fx.pow(X)
    fx3 = fx2.pow(X)

    # Shared small powers.
    fx6 = fx.square() * fx  # x * 3
    fx6 = fx6.square()  # 6x
    fx12 = fx6.square()  # 12x
    fx18 = fx12 * fx6  # 18x
    fx2_6 = fx2.square() * fx2  # x^2 * 3
    fx2_6 = fx2_6.square()  # 6x^2
    fx2_12 = fx2_6.square()  # 12x^2
    fx2_18 = fx2_12 * fx2_6  # 18x^2
    fx2_30 = fx2_18 * fx2_12  # 30x^2
    fx3_36 = fx3.square() * fx3  # x^3 * 3
    fx3_36 = fx3_36.square()  # 6x^3
    fx3_36 = fx3_36 * fx3_36.square()  # 18x^3
    fx3_36 = fx3_36.square()  # 36x^3

    y2 = fx2_6 * elt  # elt^(6x^2 + 1)
    y1 = (fx3_36 * fx2_18 * fx12).conjugate() * elt
    y0 = (fx3_36 * fx2_30 * fx18 * elt.square()).conjugate()

    return (
        y0
        * y1.frobenius()
        * y2.frobenius_n(2)
        * elt.frobenius_n(3)
    )


def pairing(p: G1Point, q: G2Point, variant: str = "optimal") -> Fp12Element:
    """The reduced pairing ``e(P, Q)``.

    ``variant`` selects the Miller loop: ``"optimal"`` (6x+2, with
    corrections) or ``"ate"`` (t-1, plain).  Both are bilinear and
    non-degenerate; they differ by a fixed exponent, so mixing variants in
    one product is not meaningful.
    """
    if variant == "optimal":
        f = miller_loop(p, q, OPTIMAL_ATE_LOOP_COUNT, optimal_corrections=True)
    elif variant == "ate":
        f = miller_loop(p, q, ATE_LOOP_COUNT)
    else:
        raise ValueError(f"unknown pairing variant: {variant!r}")
    return final_exponentiation(f)


def multi_pairing(
    pairs: Iterable[Tuple[G1Point, G2Point]], variant: str = "optimal"
) -> Fp12Element:
    """Product of pairings, sharing one final exponentiation.

    ``prod_i e(P_i, Q_i)`` -- the workhorse of Groth16 verification, where a
    four-term product comparison reduces to one multi-pairing == 1 check.

    Runs on the shared :func:`multi_miller_loop` (one squaring chain for
    all pairs), so each Q may also be a :class:`G2Precomputed`.
    """
    return final_exponentiation(multi_miller_loop(pairs, variant))


def pairing_check(
    pairs: Sequence[Tuple[G1Point, G2Point]], variant: str = "optimal"
) -> bool:
    """True iff ``prod_i e(P_i, Q_i) == 1``."""
    return multi_pairing(pairs, variant).is_one()
