"""BN254 elliptic-curve groups, MSM, pairing, and point serialization.

This package is the Python stand-in for libsnark's ``alt_bn128`` backend:
:class:`G1Point`/:class:`G2Point` groups of prime order r, Pippenger and
fixed-base multi-scalar multiplication, and the (optimal-)Ate pairing into
Fp12 that Groth16 verification is built on.
"""

from .bn254 import (
    ATE_LOOP_COUNT,
    CURVE_B,
    G1_GENERATOR,
    G2_COFACTOR,
    G2_GENERATOR,
    OPTIMAL_ATE_LOOP_COUNT,
    TWIST_B,
)
from .g1 import G1Point
from .g2 import G2Point, psi
from .glv import GLV_BETA, GLV_LAMBDA, glv_decompose, glv_endomorphism
from .msm import (
    FixedBaseTableG1,
    FixedBaseTableG2,
    msm_g1,
    msm_g1_unsigned,
    msm_g2,
    msm_g2_unsigned,
    naive_msm_g1,
    naive_msm_g2,
)
from .pairing import final_exponentiation, miller_loop, multi_pairing, pairing, pairing_check
from .serialize import (
    G1_COMPRESSED_BYTES,
    G2_COMPRESSED_BYTES,
    g1_from_bytes,
    g1_to_bytes,
    g2_from_bytes,
    g2_to_bytes,
)

__all__ = [
    "ATE_LOOP_COUNT",
    "CURVE_B",
    "G1_GENERATOR",
    "G2_COFACTOR",
    "G2_GENERATOR",
    "OPTIMAL_ATE_LOOP_COUNT",
    "TWIST_B",
    "G1Point",
    "G2Point",
    "psi",
    "GLV_BETA",
    "GLV_LAMBDA",
    "glv_decompose",
    "glv_endomorphism",
    "FixedBaseTableG1",
    "FixedBaseTableG2",
    "msm_g1",
    "msm_g1_unsigned",
    "msm_g2",
    "msm_g2_unsigned",
    "naive_msm_g1",
    "naive_msm_g2",
    "final_exponentiation",
    "miller_loop",
    "multi_pairing",
    "pairing",
    "pairing_check",
    "G1_COMPRESSED_BYTES",
    "G2_COMPRESSED_BYTES",
    "g1_from_bytes",
    "g1_to_bytes",
    "g2_from_bytes",
    "g2_to_bytes",
]
