"""The ZKROWNN proof service: ownership claims over the wire.

The deployment shape the paper assumes but the in-process API cannot
serve: many claimants submit models + watermark keys to a proving
service, a scheduler batches same-shape claims through the cached
:class:`~repro.engine.engine.ProvingEngine`, claims persist in a
content-addressed registry for later dispute resolution, and any
verifier fetches the ~hundreds-of-bytes claim plus verification key to
check independently.

Layers (each usable on its own):

* :mod:`repro.service.wire` -- canonical, versioned, length-prefixed
  binary frames for requests, claims, proofs, verifying keys, models;
* :mod:`repro.service.registry` -- the durable
  :class:`~repro.service.registry.ClaimRegistry` with audit log;
* :mod:`repro.service.scheduler` -- the
  :class:`~repro.service.scheduler.ProofScheduler` (priorities,
  per-shape batching, streaming witness synthesis);
* :mod:`repro.service.server` / :mod:`repro.service.client` -- the
  stdlib HTTP JSON API and its
  :class:`~repro.service.client.ServiceClient`;
* :mod:`repro.service.faults` -- seeded, deterministic fault injection
  (:class:`~repro.service.faults.FaultPlan`) threaded through every
  layer above, for chaos testing the whole stack.
"""

from .client import CircuitBreaker, RetryPolicy, ServiceClient, ServiceError
from .faults import (
    FaultPlan,
    FaultSpec,
    InjectedConnectionReset,
    SimulatedCrash,
    injected,
    install_plan,
)
from .registry import ClaimRecord, ClaimRegistry, RegistryError
from .scheduler import JobState, ProofScheduler, ProofTask
from .server import ProofServer, ProofService, ServiceUnavailable
from .wire import (
    ClaimRequest,
    PersistedRequest,
    WireFormatError,
    decode_claim,
    decode_claim_request,
    decode_model,
    decode_persisted_request,
    decode_proof,
    decode_verifying_key,
    encode_claim,
    encode_claim_request,
    encode_model,
    encode_persisted_request,
    encode_proof,
    encode_verifying_key,
)

__all__ = [
    "CircuitBreaker",
    "ClaimRecord",
    "ClaimRegistry",
    "ClaimRequest",
    "FaultPlan",
    "FaultSpec",
    "InjectedConnectionReset",
    "JobState",
    "PersistedRequest",
    "ProofScheduler",
    "ProofServer",
    "ProofService",
    "ProofTask",
    "RegistryError",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "SimulatedCrash",
    "WireFormatError",
    "injected",
    "install_plan",
    "decode_claim",
    "decode_claim_request",
    "decode_model",
    "decode_persisted_request",
    "decode_proof",
    "decode_verifying_key",
    "encode_claim",
    "encode_claim_request",
    "encode_model",
    "encode_persisted_request",
    "encode_proof",
    "encode_verifying_key",
]
