"""Deterministic fault injection for the proof-service stack.

A proof service that claims to survive crashes, resets, and corruption
has to be able to *demonstrate* it -- on demand, reproducibly, in CI.
This module is the harness: a :class:`FaultPlan` is a seeded list of
:class:`FaultSpec` entries, each naming a hook *site* inside the stack
and a fault *kind* to inject there.  Hook sites are threaded through the
service modules::

    wire.decode                     frame bytes entering a decoder
    registry.write                  record/blob writes (transient OSError)
    registry.read                   record/blob reads  (transient OSError)
    registry.crash-before-persist   the process "dies" before os.replace
    registry.crash-after-persist    the process "dies" after os.replace
    scheduler.dispatch              a batch entering _prove_batch
    scheduler.prove                 between proofs inside a batch
    http.request                    a request entering the HTTP handler

Fault kinds: ``latency`` (sleep ``delay_seconds``), ``error`` (raise the
named exception), ``reset`` (raise :class:`InjectedConnectionReset`; the
HTTP handler answers by dropping the socket), ``crash`` (raise
:class:`SimulatedCrash` -- the in-process stand-in for the process
dying at that instant), and ``corrupt`` (deterministically bit-flip or
truncate a byte string via :meth:`FaultPlan.mutate`).

Determinism: whether the *n*-th call at a site fires is a pure function
of ``(plan seed, spec index, site, n)`` -- a SHA-256 coin, not
``random`` state -- so a chaos run replays identically regardless of
thread interleaving across sites, and a failing seed is a bug report.

Injection is explicit only: modules take a plan as a constructor
argument, or the process-global plan is installed from the
``ZKROWNN_FAULT_PLAN`` environment variable (inline JSON, or ``@path``
to a JSON file).  With no plan installed every hook is a single
``is None`` check -- zero cost in production.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..obs import trace as _trace

__all__ = [
    "ENV_VAR",
    "FaultInjectionError",
    "FaultPlan",
    "FaultSpec",
    "InjectedConnectionReset",
    "SimulatedCrash",
    "active_plan",
    "injected",
    "install_plan",
    "plan_from_env",
]

ENV_VAR = "ZKROWNN_FAULT_PLAN"

KINDS = ("latency", "error", "reset", "crash", "corrupt")
CORRUPT_MODES = ("bitflip", "truncate")


class SimulatedCrash(RuntimeError):
    """The process "died" at an injected crash point.

    Raised (never caught) by the fault hooks so a chaos test can abandon
    the service object mid-operation -- the in-process analogue of
    ``kill -9`` between two instructions.  Recovery/retry machinery must
    NOT swallow it: a real crash would not be catchable either.
    """


class InjectedConnectionReset(ConnectionResetError):
    """An injected transport-level reset (peer hung up mid-request)."""


class FaultInjectionError(ValueError):
    """A malformed fault plan or spec."""


# Exceptions the ``error`` kind may raise: the *real* types production
# code handles, so injected failures travel the same paths real ones do.
_ERRORS = {
    "OSError": OSError,
    "IOError": OSError,
    "ConnectionResetError": ConnectionResetError,
    "ConnectionError": ConnectionError,
    "TimeoutError": TimeoutError,
    "RuntimeError": RuntimeError,
    "ValueError": ValueError,
}


@dataclass
class FaultSpec:
    """One fault to inject: where, what, and how often.

    ``site`` names a hook point exactly, or a prefix with a trailing
    ``*`` (``registry.*``).  ``probability`` is the per-call fire chance
    (decided by the plan's deterministic coin); ``after_calls`` skips the
    first N matching calls and ``max_fires`` bounds total injections.
    """

    site: str
    kind: str
    probability: float = 1.0
    max_fires: Optional[int] = None
    after_calls: int = 0
    delay_seconds: float = 0.05
    error: str = "OSError"
    message: str = "injected fault"
    mode: str = "bitflip"  # for kind="corrupt"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {self.kind!r} (one of {KINDS})"
            )
        if self.kind == "error" and self.error not in _ERRORS:
            raise FaultInjectionError(
                f"unknown error type {self.error!r} (one of {sorted(_ERRORS)})"
            )
        if self.kind == "corrupt" and self.mode not in CORRUPT_MODES:
            raise FaultInjectionError(
                f"unknown corrupt mode {self.mode!r} (one of {CORRUPT_MODES})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultInjectionError(
                f"probability {self.probability} outside [0, 1]"
            )

    def matches(self, site: str) -> bool:
        if self.site.endswith("*"):
            return site.startswith(self.site[:-1])
        return self.site == site


class FaultPlan:
    """A seeded, thread-safe schedule of faults over the hook sites.

    One plan instance is meant to be shared by every component of one
    service (registry, scheduler, HTTP handler): call counters -- and
    therefore the deterministic firing schedule -- are per plan.
    """

    def __init__(self, seed: int = 0, specs: Sequence[Union[FaultSpec, dict]] = ()):
        self.seed = int(seed)
        self.specs: List[FaultSpec] = [
            spec if isinstance(spec, FaultSpec) else FaultSpec(**spec)
            for spec in specs
        ]
        self._lock = threading.Lock()
        self._calls: Dict[int, int] = {}
        self._fires: Dict[int, int] = {}
        self.events: List[dict] = []

    # ------------------------------------------------------------ decisions --

    def _coin(self, index: int, site: str, call: int) -> float:
        digest = hashlib.sha256(
            f"{self.seed}:{index}:{site}:{call}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64

    def _decide(self, index: int, spec: FaultSpec, site: str):
        """Count one matching call; return ``(fires, call_number)``."""
        with self._lock:
            call = self._calls.get(index, 0)
            self._calls[index] = call + 1
            if call < spec.after_calls:
                return False, call
            if (
                spec.max_fires is not None
                and self._fires.get(index, 0) >= spec.max_fires
            ):
                return False, call
            if spec.probability < 1.0 and self._coin(
                index, site, call
            ) >= spec.probability:
                return False, call
            self._fires[index] = self._fires.get(index, 0) + 1
            self.events.append(
                {"site": site, "kind": spec.kind, "call": call, "spec": index}
            )
            return True, call

    # ----------------------------------------------------------- hook points --

    def fire(self, site: str) -> None:
        """The action hook: may sleep, raise, or (usually) do nothing."""
        for index, spec in enumerate(self.specs):
            if spec.kind == "corrupt" or not spec.matches(site):
                continue
            firing, _ = self._decide(index, spec, site)
            if not firing:
                continue
            _trace.record_fault(site, spec.kind)
            if spec.kind == "latency":
                time.sleep(spec.delay_seconds)
            elif spec.kind == "error":
                raise _ERRORS[spec.error](f"[injected@{site}] {spec.message}")
            elif spec.kind == "reset":
                raise InjectedConnectionReset(
                    f"[injected@{site}] {spec.message}"
                )
            elif spec.kind == "crash":
                raise SimulatedCrash(f"[injected@{site}] {spec.message}")

    def mutate(self, site: str, data: bytes) -> bytes:
        """The corruption hook: deterministically damage a byte string."""
        for index, spec in enumerate(self.specs):
            if spec.kind != "corrupt" or not spec.matches(site):
                continue
            firing, call = self._decide(index, spec, site)
            if not firing or not data:
                continue
            _trace.record_fault(site, spec.kind)
            digest = hashlib.sha256(
                f"{self.seed}:{index}:{site}:{call}:damage".encode()
            ).digest()
            if spec.mode == "truncate":
                cut = 1 + digest[0] % min(8, len(data))
                data = data[: len(data) - cut]
            else:  # bitflip
                pos = int.from_bytes(digest[:4], "big") % len(data)
                flipped = bytearray(data)
                flipped[pos] ^= 1 << (digest[4] % 8)
                data = bytes(flipped)
        return data

    # ------------------------------------------------------------- reporting --

    def summary(self) -> dict:
        """Injection counts for chaos-suite artifacts and assertions."""
        with self._lock:
            by_site: Dict[str, int] = {}
            by_kind: Dict[str, int] = {}
            for event in self.events:
                by_site[event["site"]] = by_site.get(event["site"], 0) + 1
                by_kind[event["kind"]] = by_kind.get(event["kind"], 0) + 1
            return {
                "seed": self.seed,
                "specs": len(self.specs),
                "total_fires": len(self.events),
                "by_site": by_site,
                "by_kind": by_kind,
            }

    def fired(self, site: Optional[str] = None) -> int:
        with self._lock:
            if site is None:
                return len(self.events)
            return sum(1 for e in self.events if e["site"] == site)

    # --------------------------------------------------------- serialization --

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "specs": [asdict(s) for s in self.specs]},
            sort_keys=True,
        )

    @staticmethod
    def from_json(payload: str) -> "FaultPlan":
        try:
            data = json.loads(payload)
        except ValueError as exc:
            raise FaultInjectionError(f"fault plan is not JSON: {exc}") from exc
        if not isinstance(data, dict) or not isinstance(data.get("specs"), list):
            raise FaultInjectionError(
                "fault plan must be {'seed': int, 'specs': [...]}"
            )
        return FaultPlan(seed=data.get("seed", 0), specs=data["specs"])

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, specs={len(self.specs)}, "
            f"fired={len(self.events)})"
        )


# -- process-global plan -------------------------------------------------------
#
# Modules with no constructor to inject through (wire.py's free decode
# functions) consult the process-global plan; it is None unless a test
# installs one or ZKROWNN_FAULT_PLAN is set, so the off path is a bare
# attribute check.

_PLAN: Optional[FaultPlan] = None


def install_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install (or clear, with None) the process-global plan; returns it."""
    global _PLAN
    _PLAN = plan
    return plan


def active_plan() -> Optional[FaultPlan]:
    return _PLAN


@contextmanager
def injected(plan: FaultPlan):
    """Scoped process-global installation (tests)."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    try:
        yield plan
    finally:
        _PLAN = previous


def plan_from_env(env: Optional[str] = None) -> Optional[FaultPlan]:
    """Parse ``ZKROWNN_FAULT_PLAN``: inline JSON, or ``@path`` to a file."""
    value = env if env is not None else os.environ.get(ENV_VAR, "")
    value = value.strip()
    if not value:
        return None
    if value.startswith("@"):
        with open(value[1:]) as fh:
            value = fh.read()
    return FaultPlan.from_json(value)


# Environment activation happens once, at import: every component created
# afterwards defaults to this shared plan (one counter space per process).
_env_plan = plan_from_env()
if _env_plan is not None:  # pragma: no cover - exercised via subprocess in CI
    _PLAN = _env_plan
