"""The proof scheduler: a job queue that understands circuit shapes.

The expensive stages of a Groth16 claim are per *shape*, not per claim
(the engine caches compiled circuits and keypairs), and the compute
backend proves a whole batch against one prepared key in a single
dispatch.  The scheduler exploits both: queued jobs are grouped by their
engine shape key, and each worker pass drains up to ``max_batch``
same-shape jobs into ONE ``prove_batch`` call -- concurrent requests for
one model architecture amortize compile + setup and share the backend's
worker pool (which itself stays warm across batches, keyed by circuit
digest).

Witnesses are synthesized lazily through the engine's streaming path:
the generator handed to :meth:`~repro.engine.engine.ProvingEngine.prove_stream`
replays each job's trace only when the backend pulls it, so synthesis of
claim *i+1* overlaps the proving of claim *i*.

Job lifecycle: ``queued -> proving -> done | failed`` (plus ``revoked``
applied later by the registry, and ``yielded`` when another replica's
registry lease wins the claim).  Every transition is mirrored to the
:class:`~repro.service.registry.ClaimRegistry`, which is the durable
record; the scheduler's own queue is in-memory and rebuilt empty on
restart -- :meth:`~repro.service.server.ProofService.start` re-enqueues
still-``queued`` registry records from their persisted request frames,
so a killed server resumes proving without resubmission.

Before a dispatched task transitions to ``proving``, the scheduler must
win the claim's registry lease (:meth:`ClaimRegistry.acquire`, an
``O_EXCL`` compare-and-set).  Tasks whose lease is held by another
replica are *yielded*: dropped from this scheduler with local state
``yielded``, never mirrored -- the owning replica's transitions are the
durable record.  Leases are released (and the persisted request frame
discarded) when a task reaches ``done`` or ``failed``.

While a batch proves, a *renewal heartbeat* thread re-acquires the lease
of every task still in ``proving`` at a configurable interval (default:
a third of the lease length), so even a **single proof** longer than the
lease -- where the per-task refresh at batch boundaries never runs --
cannot expire mid-prove and invite a takeover by another replica.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..analysis import CircuitAuditError
from ..circuit.trace import TraceDivergence
from ..engine.engine import ProveBudgetExceeded, ProvingEngine
from ..obs import Tracer, get_metrics
from ..snark.errors import ConstraintViolation
from ..zkrownn.artifacts import OwnershipClaim, model_digest
from ..zkrownn.circuit import CircuitConfig
from . import faults as _faults
from . import wire
from .faults import SimulatedCrash
from .registry import DEFAULT_LEASE_SECONDS, ClaimRegistry

__all__ = ["JobState", "ProofScheduler", "ProofTask", "SchedulerStats"]


class JobState:
    """String states a claim job moves through (stored in the registry)."""

    QUEUED = "queued"
    PROVING = "proving"
    DONE = "done"
    FAILED = "failed"
    REVOKED = "revoked"
    # Poison claim: failed ``max_attempts`` dispatches (or was killed by
    # the watchdog); parked with its error chain in the registry instead
    # of crash-looping a worker.  Resubmitting the claim requeues it.
    QUARANTINED = "quarantined"
    # Local-only: another replica holds the claim's proving lease; poll
    # the registry (or the HTTP status endpoint) for the real outcome.
    YIELDED = "yielded"

    TERMINAL = (DONE, FAILED, REVOKED, QUARANTINED, YIELDED)


@dataclass
class ProofTask:
    """One proving job as the scheduler sees it.

    ``model`` / ``keys`` / ``config`` describe an ownership claim and are
    what gets packaged into the registry on success; tasks without them
    (generic circuits) still batch and prove but store no claim.
    """

    claim_id: str
    shape_key: str
    synthesize: Callable  # SynthesisFn for the engine
    model: object = None
    keys: object = None
    config: CircuitConfig = field(default_factory=CircuitConfig)
    priority: int = 0
    seed: Optional[int] = None
    setup_seed: Optional[int] = None
    require_valid: bool = True
    submitted_at: float = field(default_factory=time.monotonic)
    sequence: int = 0  # FIFO tiebreaker within a priority level
    attempts: int = 0  # dispatches that ended in a retryable failure
    # Absolute time.monotonic() deadline: work the client has given up
    # on is shed at dispatch instead of burning a prover slot.
    deadline: Optional[float] = None
    # Observability: tasks with an empty trace_id record no spans (the
    # direct-scheduler path benchmarks and tests use).  parent_span_id
    # parents scheduler spans under the server's submit span.
    trace_id: str = ""
    parent_span_id: str = ""


@dataclass
class SchedulerStats:
    """Counters for ``/stats`` and the batching tests."""

    submitted: int = 0
    batches: int = 0
    batched_jobs: int = 0
    largest_batch: int = 0
    done: int = 0
    failed: int = 0
    yielded: int = 0  # lost the registry lease to another replica
    lease_renewals: int = 0  # heartbeat re-acquisitions during long proofs
    retried: int = 0  # tasks requeued after a retryable batch failure
    quarantined: int = 0  # tasks parked after exhausting max_attempts
    deadline_shed: int = 0  # tasks dropped at dispatch past their deadline
    watchdog_kills: int = 0  # tasks quarantined by the hung-prove watchdog

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class ProofScheduler:
    """Thread-based scheduler feeding batches into a :class:`ProvingEngine`.

    Not started automatically: call :meth:`start` (tests and the batching
    guarantee rely on being able to enqueue several jobs before the first
    dispatch).  ``workers`` proving threads may run distinct shapes
    concurrently; jobs for one shape are always drained by a single
    thread per pass, so same-shape concurrency becomes batching instead
    of contention.
    """

    def __init__(
        self,
        engine: ProvingEngine,
        registry: ClaimRegistry,
        *,
        max_batch: int = 8,
        workers: int = 1,
        lease_seconds: Optional[float] = None,
        heartbeat_seconds: Optional[float] = None,
        max_attempts: int = 3,
        prove_budget_seconds: Optional[float] = None,
        faults: Optional[_faults.FaultPlan] = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.engine = engine
        self.registry = registry
        self.max_batch = max_batch
        self.workers = workers
        # Retryable batch failures requeue a task up to max_attempts
        # dispatches, then quarantine it (poison-claim protection).
        self.max_attempts = max_attempts
        # Wall-clock budget for one proving batch: enforced cooperatively
        # by the engine between stream pulls, and by the watchdog thread
        # (at 2x the budget) for proves wedged inside a single proof.
        self.prove_budget_seconds = prove_budget_seconds
        self.faults = faults if faults is not None else _faults.active_plan()
        # Proving-lease length for this scheduler's acquisitions (None =
        # the registry default); deployments with known proof ceilings can
        # shorten it for faster crash takeover.
        self.lease_seconds = lease_seconds
        # Lease-renewal cadence while proving: a third of the lease keeps
        # two renewal opportunities ahead of every expiry.  <= 0 disables
        # the heartbeat (tests of the takeover path rely on that).
        self.heartbeat_seconds = (
            (lease_seconds or DEFAULT_LEASE_SECONDS) / 3.0
            if heartbeat_seconds is None
            else heartbeat_seconds
        )
        self.stats = SchedulerStats()
        # Completed spans persist next to the claim record so the trace
        # survives restarts and failovers (any replica appends to the
        # same traces/<claim_id>.jsonl).
        self.tracer = Tracer(sink=registry.store_trace_span)
        metrics = get_metrics()
        self._m_claims = metrics.counter(
            "zkrownn_claims_total",
            "claims reaching a terminal state, by state",
        )
        self._m_queue_depth = metrics.gauge(
            "zkrownn_queue_depth", "jobs waiting for a proving worker",
        )
        self._m_retries = metrics.counter(
            "zkrownn_retries_total", "tasks requeued after retryable failures",
        )
        self._m_quarantines = metrics.counter(
            "zkrownn_quarantines_total", "tasks parked as poison claims",
        )
        self._m_lease_renewals = metrics.counter(
            "zkrownn_lease_renewals_total",
            "heartbeat lease re-acquisitions during long proves",
        )
        self._m_watchdog_kills = metrics.counter(
            "zkrownn_watchdog_kills_total",
            "tasks quarantined by the hung-prove watchdog",
        )
        self._m_deadline_shed = metrics.counter(
            "zkrownn_deadline_shed_total",
            "tasks dropped at dispatch past their deadline",
        )
        self._m_batch_size = metrics.histogram(
            "zkrownn_batch_size", "same-shape jobs proved per dispatch",
            buckets=(1, 2, 4, 8, 16, 32, 64),
        )
        self.processed_order: List[str] = []  # claim ids in dispatch order
        self._queue: List[ProofTask] = []
        self._states: Dict[str, str] = {}
        self._errors: Dict[str, str] = {}
        self._cv = threading.Condition()
        self._threads: List[threading.Thread] = []
        self._running = False
        self._stopped = False  # stop() was called at least once
        self._sequence = 0
        self._inflight: Dict[int, dict] = {}  # live batches (watchdog)
        self._inflight_lock = threading.Lock()
        self._batch_counter = 0
        self._watchdog_stop = threading.Event()
        self._watchdog_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------ lifecycle --

    def start(self) -> "ProofScheduler":
        with self._cv:
            if self._running:
                return self
            self._running = True
            self._threads = [
                threading.Thread(
                    target=self._worker, name=f"proof-scheduler-{i}", daemon=True
                )
                for i in range(self.workers)
            ]
        for thread in self._threads:
            thread.start()
        if self.prove_budget_seconds is not None and (
            self._watchdog_thread is None or not self._watchdog_thread.is_alive()
        ):
            self._watchdog_stop.clear()
            self._watchdog_thread = threading.Thread(
                target=self._watchdog, name="proof-watchdog", daemon=True
            )
            self._watchdog_thread.start()
        return self

    def stop(self, *, timeout: float = 10.0) -> None:
        """Stop accepting dispatches; in-flight batches finish.

        Marks the scheduler *stopped*: a stopped (or stopping) scheduler
        will never dispatch again in this process, and the service layer
        rejects new admissions against it with 503 -- acking ``queued``
        for work that cannot run here would strand the client.
        """
        with self._cv:
            self._running = False
            self._stopped = True
            self._cv.notify_all()
        self._watchdog_stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
        if self._watchdog_thread is not None:
            self._watchdog_thread.join(timeout=timeout)
            self._watchdog_thread = None

    @property
    def stopping(self) -> bool:
        """True once :meth:`stop` has been called (draining or stopped).

        A scheduler that was merely never started is NOT stopping: claims
        submitted to it queue up and are dispatched when it starts (or by
        the replica that recovers them) -- the pattern restart tests and
        the recovery path rely on.
        """
        with self._cv:
            return self._stopped

    # --------------------------------------------------------------- submit --

    def submit(self, task: ProofTask) -> str:
        """Enqueue a job; returns its claim id immediately."""
        with self._cv:
            if task.claim_id in self._states and self._states[
                task.claim_id
            ] not in (JobState.FAILED, JobState.QUARANTINED):
                return task.claim_id  # idempotent resubmission
            self._sequence += 1
            task.sequence = self._sequence
            self._queue.append(task)
            self._states[task.claim_id] = JobState.QUEUED
            self._errors.pop(task.claim_id, None)
            self.stats.submitted += 1
            self._m_queue_depth.set(len(self._queue))
            self._cv.notify_all()
        return task.claim_id

    def state(self, claim_id: str) -> Optional[str]:
        with self._cv:
            return self._states.get(claim_id)

    def error(self, claim_id: str) -> str:
        with self._cv:
            return self._errors.get(claim_id, "")

    def wait(self, claim_id: str, *, timeout: float = 60.0) -> str:
        """Block until the job reaches a terminal state; returns it."""
        deadline = time.monotonic() + timeout
        with self._cv:
            while True:
                state = self._states.get(claim_id)
                if state in JobState.TERMINAL:
                    return state
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"claim {claim_id!r} still {state!r} after {timeout}s"
                    )
                self._cv.wait(remaining)

    def pending(self) -> int:
        with self._cv:
            return len(self._queue)

    def stats_snapshot(self) -> Dict[str, int]:
        """One locked, mutually-consistent copy of the counters.

        Every counter mutation happens under ``self._cv``, so a snapshot
        taken under it can never pair (say) this batch's ``batches`` with
        last batch's ``batched_jobs`` -- the guarantee ``/stats`` needs.
        """
        with self._cv:
            return self.stats.as_dict()

    # --------------------------------------------------------------- worker --

    def _take_batch(self) -> List[ProofTask]:
        """Pop the best job plus every queued job sharing its shape.

        Priority (desc) then submission order picks the head; the drain
        is sorted the same way -- priority desc, then submission order --
        so when ``max_batch`` truncates it, the head (and any other
        high-priority job) is never cut out of the very batch it
        selected in favor of earlier-submitted low-priority jobs.
        """
        head = max(self._queue, key=lambda t: (t.priority, -t.sequence))
        batch = [t for t in self._queue if t.shape_key == head.shape_key]
        batch.sort(key=lambda t: (-t.priority, t.sequence))
        batch = batch[: self.max_batch]
        taken = set(id(t) for t in batch)
        self._queue = [t for t in self._queue if id(t) not in taken]
        self._m_queue_depth.set(len(self._queue))
        return batch

    def _own_task(self, task: ProofTask) -> bool:
        """Win the registry lease for a registered claim (CAS).

        Tasks with no registry record (generic circuits driven straight
        through the scheduler) have nothing to contend for.  Acquiring is
        not enough on its own: another replica may have proved the claim
        and *released* its lease already, so after winning we re-read the
        durable record -- a claim already in a terminal state is yielded,
        never proved twice.
        """
        if task.claim_id not in self.registry:
            return True
        if not self._acquire(task.claim_id):
            return False
        try:
            state = self.registry.reload(task.claim_id).state
        except KeyError:
            state = None
        if state in (JobState.DONE, JobState.FAILED, JobState.REVOKED):
            self.registry.release(task.claim_id)
            return False
        return True

    def _worker(self) -> None:
        while True:
            with self._cv:
                while self._running and not self._queue:
                    self._cv.wait()
                if not self._running:
                    return
                batch = self._take_batch()
            # Deadline shed: work the client has already given up on is
            # failed here instead of burning a proving slot on it.
            live: List[ProofTask] = []
            for task in batch:
                if (
                    task.deadline is not None
                    and time.monotonic() > task.deadline
                ):
                    with self._cv:
                        self.stats.deadline_shed += 1
                    self._m_deadline_shed.inc()
                    self._finish(
                        task, JobState.FAILED,
                        error="deadline exceeded before dispatch",
                    )
                else:
                    live.append(task)
            batch = live
            if not batch:
                continue
            # Lease acquisition does file I/O: outside the queue lock.
            # A transient I/O failure there is retryable for that one
            # task -- it must neither kill the worker nor strand the
            # task as yielded.  (SimulatedCrash is a RuntimeError, not
            # an OSError: crashes still propagate.)
            owned: List[ProofTask] = []
            yielded: List[ProofTask] = []
            deferred: List[tuple] = []
            for task in batch:
                # The queue-wait span covers submission (its backdated
                # start) through this dispatch pass picking the task up.
                self.tracer.finish(self.tracer.span(
                    task.trace_id, "queue-wait", claim_id=task.claim_id,
                    parent_id=task.parent_span_id,
                    start_monotonic=task.submitted_at,
                ))
                lease_span = self.tracer.span(
                    task.trace_id, "lease-acquire", claim_id=task.claim_id,
                    parent_id=task.parent_span_id,
                )
                try:
                    mine = self._own_task(task)
                except OSError as exc:
                    self.tracer.finish(
                        lease_span, outcome="error", error=str(exc)
                    )
                    deferred.append((task, exc))
                    continue
                self.tracer.finish(
                    lease_span, outcome="owned" if mine else "yielded"
                )
                (owned if mine else yielded).append(task)
            for task, exc in deferred:
                self._retry_or_quarantine(
                    [task], f"lease acquisition failed: {exc}"
                )
            with self._cv:
                for task in yielded:
                    self._states[task.claim_id] = JobState.YIELDED
                    self.stats.yielded += 1
                for task in owned:
                    self._states[task.claim_id] = JobState.PROVING
                    self.processed_order.append(task.claim_id)
                if owned:
                    self.stats.batches += 1
                    self.stats.batched_jobs += len(owned)
                    self.stats.largest_batch = max(
                        self.stats.largest_batch, len(owned)
                    )
                self._cv.notify_all()
            for task in yielded:
                self._m_claims.inc(state=JobState.YIELDED)
            if owned:
                self._m_batch_size.observe(len(owned))
            if not owned:
                continue
            for task in owned:
                self._mirror(task.claim_id, JobState.PROVING)
            try:
                self._prove_batch(owned)
            except SimulatedCrash:
                # The chaos harness's "process died here": propagate so the
                # worker thread dies exactly like the process would -- the
                # retry machinery must never resurrect a crash.
                raise
            except ProveBudgetExceeded as exc:
                # A budget-blown prove would very likely blow it again:
                # straight to quarantine, no retry.
                self._quarantine_tasks(owned, f"prove budget exceeded: {exc}")
            except Exception as exc:  # noqa: BLE001 - a batch must never kill the worker
                self._retry_or_quarantine(
                    owned, f"batch proving failed: {exc}"
                )

    def _mirror(self, claim_id: str, state: str, *, error: str = "",
                **fields) -> None:
        """Best-effort registry update (the registry may lag, never block).

        Transient I/O failures are retried briefly: losing a ``done``
        mirror to one flaky write would leave a proved claim looking
        ``proving`` forever.  (A :class:`SimulatedCrash` is not an
        ``OSError`` and still propagates -- crashes are not retryable.)
        """
        for delay in (0.0, 0.05, 0.2):
            if delay:
                time.sleep(delay)
            try:
                self.registry.update(
                    claim_id, state=state, error=error, **fields
                )
                return
            except KeyError:
                return  # direct scheduler use without registered records
            except OSError:
                continue

    def _finish(self, task: ProofTask, state: str, *, error: str = "",
                **fields) -> None:
        with self._cv:
            if self._states.get(task.claim_id) in JobState.TERMINAL:
                # Already resolved -- e.g. the watchdog quarantined this
                # task while a wedged prove thread limped to completion.
                # A terminal state is never downgraded.
                return
        self._mirror(task.claim_id, state, error=error, **fields)
        # Local terminal state FIRST, lease release after: the renewal
        # heartbeat gates on the local state, so this order (plus its own
        # post-acquire re-check) keeps it from re-creating a lease for a
        # claim that has already been released.
        with self._cv:
            self._states[task.claim_id] = state
            if error:
                self._errors[task.claim_id] = error
            if state == JobState.DONE:
                self.stats.done += 1
            else:
                self.stats.failed += 1
            self._cv.notify_all()
        self._m_claims.inc(state=state)
        if state in (JobState.DONE, JobState.FAILED):
            # Terminal: the persisted request frame (prover secrets) has
            # served its recovery purpose, and the proving lease is free.
            self.registry.discard_request_bytes(task.claim_id)
            self.registry.release(task.claim_id)

    def _fail_tasks(self, tasks: List[ProofTask], error: str) -> None:
        for task in tasks:
            with self._cv:
                already = self._states.get(task.claim_id)
            if already not in JobState.TERMINAL:
                self._finish(task, JobState.FAILED, error=error)

    # --------------------------------------------------- retry + quarantine --

    def _append_error_chain(self, claim_id: str, entry: str) -> List[str]:
        """The claim's durable error chain with ``entry`` appended."""
        try:
            chain = list(self.registry.get(claim_id).error_chain)
        except (KeyError, OSError):
            chain = []
        chain.append(entry)
        return chain

    def _retry_or_quarantine(self, tasks: List[ProofTask], error: str) -> None:
        """Requeue tasks after a retryable batch failure, or quarantine.

        Each task's attempt counter survives requeues; a task that has
        burned ``max_attempts`` dispatches is a poison claim -- parked as
        ``quarantined`` with its full error chain in the registry instead
        of crash-looping the worker forever.
        """
        for task in tasks:
            with self._cv:
                already = self._states.get(task.claim_id)
            if already in JobState.TERMINAL:
                continue  # e.g. synthesis already failed it individually
            task.attempts += 1
            entry = f"attempt {task.attempts}: {error}"
            if task.attempts >= self.max_attempts:
                self._quarantine(task, error, entry=entry)
                continue
            self.tracer.finish(self.tracer.span(
                task.trace_id, "retry", claim_id=task.claim_id,
                parent_id=task.parent_span_id,
                attempt=task.attempts, error=error,
            ))
            self._m_retries.inc()
            self._mirror(
                task.claim_id, JobState.QUEUED, error=error,
                attempts=task.attempts,
                error_chain=self._append_error_chain(task.claim_id, entry),
            )
            self.registry.release(task.claim_id)
            with self._cv:
                self._sequence += 1
                task.sequence = self._sequence
                self._queue.append(task)
                self._states[task.claim_id] = JobState.QUEUED
                self.stats.retried += 1
                self._m_queue_depth.set(len(self._queue))
                self._cv.notify_all()

    def _quarantine_tasks(self, tasks: List[ProofTask], error: str) -> None:
        for task in tasks:
            with self._cv:
                already = self._states.get(task.claim_id)
            if already not in JobState.TERMINAL:
                task.attempts += 1
                self._quarantine(
                    task, error,
                    entry=f"attempt {task.attempts}: {error}",
                )

    def _quarantine(
        self, task: ProofTask, error: str, *, entry: str,
        release: bool = True,
    ) -> None:
        """Park a poison claim: terminal locally, ``quarantined`` durably.

        The persisted request frame is deliberately KEPT (unlike
        done/failed) so an operator can requeue the claim by resubmitting
        it -- or a restarted replica can inspect it.  ``release=False``
        (the watchdog path) leaves the proving lease to expire naturally:
        a wedged prove thread may still be running, and freeing the lease
        would invite another replica to double-prove against it.
        """
        self.tracer.finish(self.tracer.span(
            task.trace_id, "quarantine", claim_id=task.claim_id,
            parent_id=task.parent_span_id,
            attempt=task.attempts, error=error,
        ))
        self._m_quarantines.inc()
        self._m_claims.inc(state=JobState.QUARANTINED)
        self._mirror(
            task.claim_id, JobState.QUARANTINED, error=error,
            attempts=task.attempts,
            error_chain=self._append_error_chain(task.claim_id, entry),
        )
        try:
            self.registry.audit(
                "quarantined", claim_id=task.claim_id,
                attempts=task.attempts, error=error,
            )
        except OSError:
            pass
        with self._cv:
            self._states[task.claim_id] = JobState.QUARANTINED
            self._errors[task.claim_id] = error
            self.stats.quarantined += 1
            self._cv.notify_all()
        if release:
            self.registry.release(task.claim_id)

    def _watchdog(self) -> None:
        """Quarantine batches wedged past twice the prove budget.

        The engine's cooperative check fires between stream pulls; this
        thread catches the case it cannot -- a prove stuck *inside* one
        proof (or a hung backend) that never pulls again.
        """
        budget = self.prove_budget_seconds
        limit = budget * 2.0
        interval = max(0.02, budget / 4.0)
        while not self._watchdog_stop.wait(interval):
            now = time.monotonic()
            with self._inflight_lock:
                wedged = [
                    entry for entry in self._inflight.values()
                    if now - entry["started"] > limit
                ]
            for batch_entry in wedged:
                for task in batch_entry["tasks"]:
                    with self._cv:
                        state = self._states.get(task.claim_id)
                    if state != JobState.PROVING:
                        continue
                    with self._cv:
                        self.stats.watchdog_kills += 1
                    self._m_watchdog_kills.inc()
                    task.attempts += 1
                    self._quarantine(
                        task,
                        f"watchdog: prove wedged past {limit:.3f}s wall clock",
                        entry=(
                            f"attempt {task.attempts}: watchdog kill after "
                            f"{now - batch_entry['started']:.3f}s"
                        ),
                        release=False,
                    )

    # -------------------------------------------------------------- proving --

    def _acquire(self, claim_id: str) -> bool:
        """Acquire/refresh the claim's lease with this scheduler's length."""
        if self.lease_seconds is None:
            return self.registry.acquire(claim_id)
        return self.registry.acquire(claim_id, lease_seconds=self.lease_seconds)

    def _refresh_lease(self, task: ProofTask) -> None:
        """Extend our proving lease at task boundaries within a batch, so
        a long batch does not silently outlive the lease and invite a
        takeover mid-prove.  (A single proof longer than the lease is
        covered by the renewal heartbeat -- see :meth:`_start_heartbeat`.)"""
        if task.claim_id in self.registry:
            self._acquire(task.claim_id)

    def _start_heartbeat(self, tasks: List[ProofTask]) -> threading.Event:
        """Renew the proving leases of in-flight tasks on a timer.

        Runs for the lifetime of one :meth:`_prove_batch` call: every
        ``heartbeat_seconds`` each task still locally ``proving`` gets its
        registry lease re-acquired (an owner's ``acquire`` is a refresh),
        so a single proof longer than the lease can no longer expire it
        and invite a mid-prove takeover.  Returns the stop event; the
        caller sets it when the batch resolves.
        """
        stop = threading.Event()
        interval = self.heartbeat_seconds
        if interval is None or interval <= 0:
            stop.set()
            return stop

        def renew() -> None:
            while not stop.wait(interval):
                for task in tasks:
                    with self._cv:
                        state = self._states.get(task.claim_id)
                    if state != JobState.PROVING:
                        continue
                    if task.claim_id not in self.registry:
                        continue
                    if self._acquire(task.claim_id):
                        # The task may have reached a terminal state (and
                        # released its lease) between the check above and
                        # this acquire; undo rather than leave a dangling
                        # lease on a finished claim.
                        with self._cv:
                            still_proving = (
                                self._states.get(task.claim_id)
                                == JobState.PROVING
                            )
                            if still_proving:
                                self.stats.lease_renewals += 1
                        if still_proving:
                            self._m_lease_renewals.inc()
                        else:
                            self.registry.release(task.claim_id)

        threading.Thread(
            target=renew, name="proof-lease-heartbeat", daemon=True
        ).start()
        return stop

    def _record_audit_rejection(self, task: ProofTask, exc: Exception) -> None:
        """Mirror a strict-mode circuit-audit rejection to the audit log.

        The scheduler's generic ValueError handling already fails the
        claim; this adds the durable, queryable record of *why* -- which
        circuit, which digest, how many findings at each severity.
        """
        if not isinstance(exc, CircuitAuditError):
            return
        report = exc.report
        try:
            self.registry.audit(
                "circuit_audit_rejected",
                claim_id=task.claim_id,
                circuit=report.circuit,
                circuit_digest=report.digest,
                counts={k: v for k, v in report.counts().items() if v},
                worst=report.worst(),
            )
        except OSError:
            pass

    def _synthesize(self, task: ProofTask):
        """(compiled, synthesis) for one task, with the validity check."""
        compiled, synthesis = self.engine.synthesize(
            task.shape_key, task.synthesize, name="zkrownn-extraction"
        )
        if task.require_valid and synthesis.assignment[
            synthesis.aux.valid_output.index
        ] != 1:
            raise ValueError(
                "watermark does not extract from this model within theta; "
                "refusing to prove a non-ownership claim"
            )
        return compiled, synthesis

    def _prove_batch(self, batch: List[ProofTask]) -> None:
        # The dispatch span (on the head task's trace) is *active* for the
        # whole batch, so scheduler.dispatch / scheduler.prove fault fires
        # -- and any fault inside synthesis or the prove stream, which run
        # on this same thread -- attach to it as events.
        head = batch[0]
        dispatch_span = self.tracer.span(
            head.trace_id, "dispatch", claim_id=head.claim_id,
            parent_id=head.parent_span_id, batch_size=len(batch),
        )
        with self.tracer.active(dispatch_span):
            try:
                if self.faults is not None:
                    self.faults.fire("scheduler.dispatch")
                with self._inflight_lock:
                    self._batch_counter += 1
                    batch_id = self._batch_counter
                    self._inflight[batch_id] = {
                        "tasks": batch, "started": time.monotonic(),
                    }
                heartbeat_stop = self._start_heartbeat(batch)
                try:
                    self._prove_batch_inner(batch)
                finally:
                    heartbeat_stop.set()
                    with self._inflight_lock:
                        self._inflight.pop(batch_id, None)
            finally:
                self.tracer.finish(dispatch_span)

    def _prove_batch_inner(self, batch: List[ProofTask]) -> None:
        # The batch head compiles (or cache-hits) the shape; later tasks
        # replay the trace lazily inside the generator below.
        head_task = batch[0]
        t0 = time.perf_counter()
        head_synth_span = self.tracer.span(
            head_task.trace_id, "synthesize", claim_id=head_task.claim_id,
            parent_id=head_task.parent_span_id,
        )
        try:
            compiled, head_synthesis = self._synthesize(head_task)
        except (ConstraintViolation, TraceDivergence, OverflowError,
                ValueError) as exc:
            self.tracer.finish(head_synth_span, outcome="error",
                               error=str(exc))
            self._record_audit_rejection(head_task, exc)
            self._finish(head_task, JobState.FAILED,
                         error=f"witness synthesis failed: {exc}")
            rest = batch[1:]
            if rest:
                # Inner call: the enclosing _prove_batch's heartbeat
                # already covers every task of this batch.
                self._prove_batch_inner(rest)
            return
        self.tracer.finish(head_synth_span)
        head_elapsed = time.perf_counter() - t0

        proved: List[ProofTask] = []
        synth_seconds: List[float] = []

        def pairs():
            proved.append(head_task)
            synth_seconds.append(head_elapsed)
            yield head_synthesis, head_task.seed
            for task in batch[1:]:
                if self.faults is not None:
                    self.faults.fire("scheduler.prove")
                self._refresh_lease(task)
                t1 = time.perf_counter()
                synth_span = self.tracer.span(
                    task.trace_id, "synthesize", claim_id=task.claim_id,
                    parent_id=task.parent_span_id,
                )
                try:
                    _, synthesis = self._synthesize(task)
                except (ConstraintViolation, TraceDivergence, OverflowError,
                        ValueError) as exc:
                    self.tracer.finish(synth_span, outcome="error",
                                       error=str(exc))
                    self._record_audit_rejection(task, exc)
                    self._finish(task, JobState.FAILED,
                                 error=f"witness synthesis failed: {exc}")
                    continue
                self.tracer.finish(synth_span)
                proved.append(task)
                synth_seconds.append(time.perf_counter() - t1)
                yield synthesis, task.seed

        t0 = time.perf_counter()
        prove_started_mono = time.monotonic()
        proofs = self.engine.prove_stream(
            compiled, pairs(), setup_seed=head_task.setup_seed,
            budget_seconds=self.prove_budget_seconds,
        )
        prove_elapsed = time.perf_counter() - t0
        # One prove span per claim, all sharing the batch's start/duration
        # (the whole point of batching: each claim's prove cost IS the
        # batch's), closed here so packaging time below is not included.
        for task in proved:
            self.tracer.finish(self.tracer.span(
                task.trace_id, "prove", claim_id=task.claim_id,
                parent_id=task.parent_span_id,
                start_monotonic=prove_started_mono,
                batch_size=len(proved),
            ))

        keypair = self.engine.setup(compiled)  # cached: resolved, not re-run
        vk_bytes = keypair.verifying_key.to_bytes()
        self.registry.store_verifying_key(compiled.digest, vk_bytes)

        for task, proof, synth_s in zip(proved, proofs, synth_seconds):
            persist_span = self.tracer.span(
                task.trace_id, "persist", claim_id=task.claim_id,
                parent_id=task.parent_span_id,
            )
            with self.tracer.active(persist_span):
                if task.model is not None and task.keys is not None:
                    claim = self._package(task, proof)
                    self.registry.store_claim_bytes(
                        task.claim_id, wire.encode_claim(claim)
                    )
                    self.registry.audit(
                        "proved", claim_id=task.claim_id,
                        circuit_digest=compiled.digest,
                        batch_size=len(proved),
                    )
                self._finish(
                    task, JobState.DONE,
                    circuit_digest=compiled.digest,
                    timings={
                        "synthesize_seconds": synth_s,
                        "batch_prove_seconds": prove_elapsed,
                        "batch_size": float(len(proved)),
                    },
                )
            self.tracer.finish(persist_span)

    @staticmethod
    def _package(task: ProofTask, proof) -> OwnershipClaim:
        fmt = task.config.fixed_point
        return OwnershipClaim(
            proof_bytes=proof.to_bytes(),
            theta=task.config.theta,
            wm_bits=task.keys.num_bits,
            embed_layer=task.keys.embed_layer,
            model_sha256=model_digest(task.model, task.keys.embed_layer),
            frac_bits=fmt.frac_bits,
            total_bits=fmt.total_bits,
            sigmoid_degree=task.config.sigmoid_degree,
        )

    def __repr__(self) -> str:
        return (
            f"ProofScheduler(pending={self.pending()}, "
            f"stats={self.stats.as_dict()})"
        )
