"""A thin stdlib client for the proof service's HTTP API.

The client side of the deployment story: a model owner submits a claim
request (model + watermark keys + circuit config, wire-encoded) and
polls for the proved claim; any third party fetches the claim + VK pair
and can also verify locally, without trusting the service's ``/verify``.

Uses only ``urllib`` -- the same no-new-dependencies constraint as the
rest of the repo.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from ..nn.model import Sequential
from ..snark.keys import VerifyingKey
from ..watermark.keys import WatermarkKeys
from ..zkrownn.artifacts import OwnershipClaim
from ..zkrownn.circuit import CircuitConfig
from ..zkrownn.verifier import OwnershipVerifier, VerificationReport
from . import wire

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An HTTP-level or service-level failure, with the server's message."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Talks to one proof service base URL."""

    def __init__(self, base_url: str, *, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ----------------------------------------------------------- transport --

    def _request(
        self,
        method: str,
        path: str,
        *,
        body: Optional[bytes] = None,
        content_type: str = "application/octet-stream",
    ) -> bytes:
        request = Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": content_type} if body is not None else {},
        )
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return response.read()
        except HTTPError as exc:
            detail = exc.read().decode(errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except ValueError:
                pass
            raise ServiceError(
                f"{method} {path} -> {exc.code}: {detail}", status=exc.code
            ) from exc
        except URLError as exc:
            raise ServiceError(f"{method} {path} failed: {exc.reason}") from exc

    def _json(self, method: str, path: str, **kwargs) -> Dict:
        return json.loads(self._request(method, path, **kwargs).decode())

    # -------------------------------------------------------------- submit --

    def submit_claim(
        self,
        model: Sequential,
        keys: WatermarkKeys,
        config: Optional[CircuitConfig] = None,
        *,
        priority: int = 0,
        seed: Optional[int] = None,
        setup_seed: Optional[int] = None,
    ) -> Dict:
        """Submit an ownership-claim request; returns ``{claim_id, state}``."""
        frame = wire.encode_claim_request(
            wire.ClaimRequest(
                model=model,
                keys=keys,
                config=config or CircuitConfig(),
                priority=priority,
                seed=seed,
                setup_seed=setup_seed,
            )
        )
        return self._json("POST", "/claims", body=frame)

    # -------------------------------------------------------------- status --

    def status(self, claim_id: str) -> Dict:
        return self._json("GET", f"/claims/{claim_id}")

    def wait(
        self, claim_id: str, *, timeout: float = 120.0, poll_seconds: float = 0.2
    ) -> Dict:
        """Poll until the claim job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(claim_id)
            if status["state"] in ("done", "failed", "revoked"):
                return status
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"claim {claim_id} still {status['state']!r} after {timeout}s"
                )
            time.sleep(poll_seconds)

    def list_claims(
        self,
        *,
        model_digest: Optional[str] = None,
        state: Optional[str] = None,
    ) -> List[Dict]:
        query = []
        if model_digest:
            query.append(f"model_digest={model_digest}")
        if state:
            query.append(f"state={state}")
        suffix = "?" + "&".join(query) if query else ""
        return self._json("GET", f"/claims{suffix}")["claims"]

    # --------------------------------------------------------------- fetch --

    def fetch_claim(self, claim_id: str) -> OwnershipClaim:
        return wire.decode_claim(self._request("GET", f"/claims/{claim_id}/proof"))

    def fetch_verifying_key(self, claim_id: str) -> VerifyingKey:
        return wire.decode_verifying_key(
            self._request("GET", f"/claims/{claim_id}/vk")
        )

    def fetch_vk_by_digest(self, circuit_digest: str) -> VerifyingKey:
        """Fetch a verifying key by circuit digest (``GET /vks/<digest>``).

        The shape-keyed distribution path for auditors checking many
        claims of one architecture: one VK fetch serves them all, and the
        digest pins *which* circuit the proof must satisfy.
        """
        return wire.decode_verifying_key(
            self._request("GET", f"/vks/{circuit_digest}")
        )

    def key_log(self) -> List[Dict]:
        """The service's signed key-transparency log (one entry per VK)."""
        return self._json("GET", "/vks")["key_log"]

    # -------------------------------------------------------------- verify --

    def verify_remote(self, claim_id: str) -> Dict:
        """Ask the *service* to verify (convenient, but trusts the service)."""
        return self._json(
            "POST",
            "/verify",
            body=json.dumps({"claim_id": claim_id}).encode(),
            content_type="application/json",
        )

    def verify_local(
        self,
        claim_id: str,
        model: Sequential,
        *,
        circuit_digest: Optional[str] = None,
    ) -> VerificationReport:
        """Trustless check: fetch claim + VK, verify against OUR model copy.

        Passing ``circuit_digest`` pins the verifying key: it is fetched
        from the shape-keyed ``/vks/<digest>`` endpoint and the claim's
        record must name the same digest, so the service cannot swap in a
        different circuit's key for this verification.
        """
        claim = self.fetch_claim(claim_id)
        if circuit_digest is not None:
            recorded = self.status(claim_id).get("circuit_digest", "")
            if recorded != circuit_digest:
                raise ServiceError(
                    f"claim {claim_id} was proved under circuit "
                    f"{recorded!r}, not the pinned {circuit_digest!r}"
                )
            vk = self.fetch_vk_by_digest(circuit_digest)
        else:
            vk = self.fetch_verifying_key(claim_id)
        return OwnershipVerifier(vk).verify(model, claim)

    def verify_batch(
        self, claim_ids: List[str], *, seed: Optional[int] = None
    ) -> wire.VerifyBatchResult:
        """Ask the service to verify many claims in one batched sweep.

        Posts a binary :class:`~repro.service.wire.VerifyBatchRequest`
        frame to ``POST /verify-batch``; the service groups the claims by
        verifying key and runs one random-linear-combination
        multi-pairing per group.  Returns per-claim verdicts (with
        HTTP-style statuses: 404 unknown, 409 unverifiable state, 400
        malformed proof) plus per-group timing.
        """
        frame = wire.encode_verify_batch_request(
            wire.VerifyBatchRequest(claim_ids=list(claim_ids), seed=seed)
        )
        return wire.decode_verify_batch_result(
            self._request("POST", "/verify-batch", body=frame)
        )

    def audit_registry(
        self, *, seed: Optional[int] = None
    ) -> wire.VerifyBatchResult:
        """Sweep every non-revoked registered claim through ``/verify-batch``.

        The ``zkrownn audit`` workflow: list the registry, drop revoked
        records, batch-verify the rest.  Claims not yet proved come back
        as 409 verdicts (skipped, not failures).
        """
        claim_ids = [
            record["claim_id"]
            for record in self.list_claims()
            if record["state"] != "revoked"
        ]
        return self.verify_batch(claim_ids, seed=seed)

    # --------------------------------------------------------------- admin --

    def revoke(self, claim_id: str, reason: str = "") -> Dict:
        return self._json(
            "POST",
            f"/claims/{claim_id}/revoke",
            body=json.dumps({"reason": reason}).encode(),
            content_type="application/json",
        )

    def audit(self, claim_id: str) -> List[Dict]:
        return self._json("GET", f"/claims/{claim_id}/audit")["audit"]

    def health(self) -> Dict:
        return self._json("GET", "/healthz")

    def stats(self) -> Dict:
        return self._json("GET", "/stats")

    def __repr__(self) -> str:
        return f"ServiceClient({self.base_url!r})"
