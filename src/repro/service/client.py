"""A resilient stdlib client for the proof service's HTTP API.

The client side of the deployment story: a model owner submits a claim
request (model + watermark keys + circuit config, wire-encoded) and
polls for the proved claim; any third party fetches the claim + VK pair
and can also verify locally, without trusting the service's ``/verify``.

Built for services that fail the way real ones do:

* **Retry with capped exponential backoff + jitter** on transport
  failures (connection refused/reset, timeouts) and retryable statuses
  (429/500/502/503/504), honoring the server's ``Retry-After`` hint.
  Claim ids are content-addressed, so retrying ``POST /claims`` is
  exact-once by construction -- a duplicate submit maps onto the same
  record.
* **Multi-endpoint failover**: ``ServiceClient(["http://a", "http://b"])``
  rotates to the next replica when one fails, with a per-endpoint
  **circuit breaker** (closed -> open -> half-open) so a dead replica
  stops eating the retry budget.
* **Resilient waiting**: :meth:`wait` polls with capped backoff (not a
  fixed busy-poll), rides out transient transport errors instead of
  abandoning a claim the server is still proving, and -- because submits
  are idempotent -- periodically *resubmits* the cached request frame so
  a claim stranded by a dead replica is rescued by whichever endpoint
  answers.

Uses only ``urllib`` -- the same no-new-dependencies constraint as the
rest of the repo.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from ..nn.model import Sequential
from ..obs import new_trace_id
from ..snark.keys import VerifyingKey
from ..watermark.keys import WatermarkKeys
from ..zkrownn.artifacts import OwnershipClaim
from ..zkrownn.circuit import CircuitConfig
from ..zkrownn.verifier import OwnershipVerifier, VerificationReport
from . import wire

__all__ = ["CircuitBreaker", "RetryPolicy", "ServiceClient", "ServiceError"]

# Claim states that end a wait().
TERMINAL_STATES = ("done", "failed", "revoked", "quarantined")


class ServiceError(RuntimeError):
    """An HTTP-level or service-level failure, with the server's message.

    ``status`` is the HTTP status when one was received, else None (a
    transport-level failure: connection refused, reset, timeout...).
    """

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


@dataclass
class RetryPolicy:
    """Backoff schedule for retryable request failures.

    Delay before attempt *n* (1-based) is
    ``min(base_delay * multiplier**(n-1), max_delay)``, scaled by a
    uniform jitter in ``[1 - jitter, 1 + jitter]`` so a fleet of
    clients retrying one dead replica does not stampede in lockstep.
    A server ``Retry-After`` hint overrides the computed delay.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.25
    retry_statuses: Sequence[int] = (429, 500, 502, 503, 504)

    def delay(self, attempt: int, rng: random.Random) -> float:
        raw = min(
            self.base_delay * self.multiplier ** max(0, attempt - 1),
            self.max_delay,
        )
        if self.jitter <= 0:
            return raw
        return raw * rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)


class CircuitBreaker:
    """Per-endpoint failure gate: closed -> open -> half-open.

    ``failure_threshold`` consecutive transport failures open the
    breaker; while open the endpoint is skipped entirely.  After
    ``reset_seconds`` it goes *half-open*: exactly one trial request is
    allowed through -- success closes the breaker, failure re-opens it
    for another full window.  Application-level shedding (429/503) does
    not count as failure: the replica is alive, just busy.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self._clock = clock
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.reset_seconds:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """May a request go to this endpoint right now?"""
        state = self.state
        if state == "closed":
            return True
        if state == "half-open" and not self._probing:
            self._probing = True  # one trial in flight
            return True
        return False

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self._probing = False
        self._failures += 1
        if self._failures >= self.failure_threshold or self._opened_at is not None:
            # Threshold reached -- or a half-open probe failed: re-open
            # for a fresh window.
            self._opened_at = self._clock()

    def time_to_half_open(self) -> float:
        if self._opened_at is None:
            return 0.0
        return max(
            0.0, self.reset_seconds - (self._clock() - self._opened_at)
        )

    def __repr__(self) -> str:
        return f"CircuitBreaker(state={self.state!r}, failures={self._failures})"


class _Endpoint:
    def __init__(self, url: str, breaker: CircuitBreaker):
        self.url = url.rstrip("/")
        self.breaker = breaker

    def __repr__(self) -> str:
        return f"_Endpoint({self.url!r}, {self.breaker!r})"


class ServiceClient:
    """Talks to one proof service -- or a list of interchangeable replicas.

    ``base_url`` may be a single URL or a list; replicas must share a
    registry root (or replicate it) for failover to be transparent.
    ``sleep`` is injectable so tests drive the backoff clock.
    """

    def __init__(
        self,
        base_url: Union[str, Sequence[str]],
        *,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        breaker_threshold: int = 3,
        breaker_reset_seconds: float = 5.0,
        max_poll_seconds: float = 3.0,
        rescue_after: float = 5.0,
        sleep: Callable[[float], None] = time.sleep,
        jitter_seed: Optional[int] = None,
    ):
        urls = [base_url] if isinstance(base_url, str) else list(base_url)
        if not urls:
            raise ValueError("ServiceClient needs at least one base URL")
        self.endpoints = [
            _Endpoint(
                url,
                CircuitBreaker(
                    failure_threshold=breaker_threshold,
                    reset_seconds=breaker_reset_seconds,
                ),
            )
            for url in urls
        ]
        self.timeout = timeout
        self.retry = retry or RetryPolicy()
        self.max_poll_seconds = max_poll_seconds
        # How long wait() lets a claim sit non-terminal before it
        # resubmits the cached frame (the stranded-claim rescue path).
        self.rescue_after = rescue_after
        self._sleep = sleep
        self._rng = random.Random(jitter_seed)
        self._active = 0  # index of the endpoint that last worked
        # Submitted request frames by claim id: resubmission is idempotent
        # (content-addressed ids), so wait() can re-POST to rescue a claim
        # stranded on a dead replica, on any endpoint that answers.
        self._frames: Dict[str, bytes] = {}
        # The trace id minted per submission, re-sent on every rescue
        # re-POST so retries and failovers stay on one trace.
        self._trace_ids: Dict[str, str] = {}

    @property
    def base_url(self) -> str:
        """The currently preferred endpoint (single-URL compatibility)."""
        return self.endpoints[self._active].url

    # ----------------------------------------------------------- transport --

    def _once(
        self,
        endpoint: _Endpoint,
        method: str,
        path: str,
        body: Optional[bytes],
        content_type: str,
        headers: Optional[Dict[str, str]],
    ) -> bytes:
        all_headers = dict(headers or {})
        if body is not None:
            all_headers.setdefault("Content-Type", content_type)
        request = Request(
            endpoint.url + path, data=body, method=method, headers=all_headers
        )
        with urlopen(request, timeout=self.timeout) as response:
            return response.read()

    @staticmethod
    def _http_error_detail(exc: HTTPError) -> str:
        detail = exc.read().decode(errors="replace")
        try:
            detail = json.loads(detail).get("error", detail)
        except ValueError:
            pass
        return detail

    @staticmethod
    def _retry_after(exc: HTTPError) -> Optional[float]:
        value = exc.headers.get("Retry-After") if exc.headers else None
        if value is None:
            return None
        try:
            return max(0.0, float(value))
        except ValueError:
            return None

    def _pick_endpoint(self) -> _Endpoint:
        """The preferred endpoint whose breaker admits a request.

        Rotation starts at the last endpoint that worked.  If every
        breaker is hard-open, the one closest to half-open is probed
        anyway -- guaranteed progress; the breaker shapes ordering, it
        never deadlocks the client.
        """
        order = [
            self.endpoints[(self._active + i) % len(self.endpoints)]
            for i in range(len(self.endpoints))
        ]
        for endpoint in order:
            if endpoint.breaker.allow():
                return endpoint
        return min(order, key=lambda e: e.breaker.time_to_half_open())

    def _request(
        self,
        method: str,
        path: str,
        *,
        body: Optional[bytes] = None,
        content_type: str = "application/octet-stream",
        headers: Optional[Dict[str, str]] = None,
        idempotent: bool = True,
    ) -> bytes:
        """One logical request: retries, backoff, failover, breakers.

        Every API in this service is idempotent (submission is
        content-addressed; everything else is a read or an
        already-idempotent admin action), so retries default on;
        ``idempotent=False`` restricts a request to a single attempt
        per endpoint rotation.
        """
        policy = self.retry
        max_attempts = policy.max_attempts if idempotent else 1
        last_error: Optional[ServiceError] = None
        attempt = 0
        while attempt < max_attempts:
            attempt += 1
            endpoint = self._pick_endpoint()
            retry_hint: Optional[float] = None
            try:
                data = self._once(
                    endpoint, method, path, body, content_type, headers
                )
            except HTTPError as exc:
                status = exc.code
                detail = self._http_error_detail(exc)
                last_error = ServiceError(
                    f"{method} {path} -> {status}: {detail}", status=status
                )
                if status not in policy.retry_statuses:
                    raise last_error from exc
                if status in (429, 503):
                    # Alive but shedding: not a connectivity failure.
                    endpoint.breaker.record_success()
                    retry_hint = self._retry_after(exc)
                else:
                    endpoint.breaker.record_failure()
            except (URLError, OSError, http.client.HTTPException) as exc:
                # Transport-level: connection refused/reset, timeout,
                # half-closed socket.  (HTTPError is caught above --
                # it subclasses URLError.)
                reason = getattr(exc, "reason", exc)
                last_error = ServiceError(
                    f"{method} {path} failed against {endpoint.url}: {reason}"
                )
                endpoint.breaker.record_failure()
                # Prefer a different replica for the next attempt.
                self._active = (
                    self.endpoints.index(endpoint) + 1
                ) % len(self.endpoints)
            else:
                endpoint.breaker.record_success()
                self._active = self.endpoints.index(endpoint)
                return data
            if attempt >= max_attempts:
                break
            delay = (
                retry_hint
                if retry_hint is not None
                else policy.delay(attempt, self._rng)
            )
            if delay > 0:
                self._sleep(delay)
        raise ServiceError(
            f"{last_error} (after {attempt} attempt"
            f"{'s' if attempt != 1 else ''})",
            status=last_error.status if last_error else None,
        )

    def _json(self, method: str, path: str, **kwargs) -> Dict:
        return json.loads(self._request(method, path, **kwargs).decode())

    def _is_transient(self, error: ServiceError) -> bool:
        """Failures worth riding out inside a wait loop."""
        return error.status is None or error.status in self.retry.retry_statuses

    # -------------------------------------------------------------- submit --

    def submit_claim(
        self,
        model: Sequential,
        keys: WatermarkKeys,
        config: Optional[CircuitConfig] = None,
        *,
        priority: int = 0,
        seed: Optional[int] = None,
        setup_seed: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
    ) -> Dict:
        """Submit an ownership-claim request; returns ``{claim_id, state}``.

        ``deadline_seconds`` rides as the ``X-Deadline-Seconds`` header
        (never in the frame: the frame is the content address); the
        scheduler sheds the job at dispatch once it has expired.

        A trace id is minted per submission and sent as ``X-Trace-Id``,
        so the claim's whole server-side lifecycle -- including rescue
        resubmissions after a failover -- lands on one trace, fetchable
        via :meth:`trace`.  (If the claim was first registered under a
        different trace, the server keeps the original: first writer
        wins.)
        """
        frame = wire.encode_claim_request(
            wire.ClaimRequest(
                model=model,
                keys=keys,
                config=config or CircuitConfig(),
                priority=priority,
                seed=seed,
                setup_seed=setup_seed,
            )
        )
        trace_id = new_trace_id()
        headers = {"X-Trace-Id": trace_id}
        if deadline_seconds is not None:
            headers["X-Deadline-Seconds"] = str(deadline_seconds)
        result = self._json("POST", "/claims", body=frame, headers=headers)
        claim_id = result.get("claim_id")
        if claim_id:
            self._frames[claim_id] = frame
            self._trace_ids.setdefault(claim_id, trace_id)
        return result

    def _resubmit_headers(self, claim_id: str) -> Optional[Dict[str, str]]:
        """The original ``X-Trace-Id`` for a rescue re-POST, if known."""
        trace_id = self._trace_ids.get(claim_id)
        return {"X-Trace-Id": trace_id} if trace_id else None

    # -------------------------------------------------------------- status --

    def status(self, claim_id: str) -> Dict:
        return self._json("GET", f"/claims/{claim_id}")

    def wait(
        self,
        claim_id: str,
        *,
        timeout: float = 120.0,
        poll_seconds: float = 0.2,
        max_poll_seconds: Optional[float] = None,
        resubmit: bool = True,
    ) -> Dict:
        """Poll until the claim reaches a terminal state, surviving faults.

        The poll interval starts at ``poll_seconds`` and backs off (x1.5
        per poll, capped at ``max_poll_seconds``) instead of busy-polling.
        Transient failures -- transport errors, 429/503 shedding -- are
        ridden out until ``timeout``; only a definitive answer (terminal
        state, or a non-transient error like 404 with nothing to rescue)
        ends the wait early.

        ``resubmit=True`` (with a frame cached by :meth:`submit_claim`)
        re-POSTs the idempotent request whenever the claim has gone
        ``rescue_after`` seconds without resolving, or turns up unknown
        after a failover.  Resubmission is how a stranded claim -- its
        replica dead, its lease expired -- gets adopted by a surviving
        replica, with no manual intervention.
        """
        deadline = time.monotonic() + timeout
        cap = (
            max_poll_seconds
            if max_poll_seconds is not None
            else self.max_poll_seconds
        )
        delay = max(0.0, poll_seconds)
        last_state: Optional[str] = None
        next_rescue = time.monotonic() + self.rescue_after
        while True:
            try:
                status = self.status(claim_id)
            except ServiceError as exc:
                frame = self._frames.get(claim_id) if resubmit else None
                if exc.status == 404 and frame is not None:
                    # Unknown to whichever replica answered (e.g. after a
                    # failover to a node that never saw the submit):
                    # idempotent resubmission recreates it in place.
                    try:
                        self._json("POST", "/claims", body=frame,
                                   headers=self._resubmit_headers(claim_id))
                    except ServiceError:
                        pass
                elif not self._is_transient(exc):
                    raise
            else:
                state = status.get("state")
                if state != last_state:
                    last_state = state
                    # Progress resets both clocks: back to tight polling
                    # and a fresh rescue window.
                    delay = max(0.0, poll_seconds)
                    next_rescue = time.monotonic() + self.rescue_after
                if state in TERMINAL_STATES:
                    return status
            now = time.monotonic()
            if now > deadline:
                raise TimeoutError(
                    f"claim {claim_id} still {last_state!r} after {timeout}s"
                )
            if (
                resubmit
                and now >= next_rescue
                and claim_id in self._frames
            ):
                # Stuck: if the owning replica died, its lease has
                # expired and this idempotent re-POST makes whichever
                # endpoint answers adopt the claim (rescue path).
                try:
                    self._json(
                        "POST", "/claims", body=self._frames[claim_id],
                        headers=self._resubmit_headers(claim_id),
                    )
                except ServiceError:
                    pass
                next_rescue = time.monotonic() + self.rescue_after
            self._sleep(min(delay, max(0.0, deadline - time.monotonic())))
            delay = min(delay * 1.5, cap) if delay > 0 else cap

    def list_claims(
        self,
        *,
        model_digest: Optional[str] = None,
        state: Optional[str] = None,
    ) -> List[Dict]:
        query = []
        if model_digest:
            query.append(f"model_digest={model_digest}")
        if state:
            query.append(f"state={state}")
        suffix = "?" + "&".join(query) if query else ""
        return self._json("GET", f"/claims{suffix}")["claims"]

    # --------------------------------------------------------------- fetch --

    def fetch_claim(self, claim_id: str) -> OwnershipClaim:
        return wire.decode_claim(self._request("GET", f"/claims/{claim_id}/proof"))

    def fetch_verifying_key(self, claim_id: str) -> VerifyingKey:
        return wire.decode_verifying_key(
            self._request("GET", f"/claims/{claim_id}/vk")
        )

    def fetch_vk_by_digest(self, circuit_digest: str) -> VerifyingKey:
        """Fetch a verifying key by circuit digest (``GET /vks/<digest>``).

        The shape-keyed distribution path for auditors checking many
        claims of one architecture: one VK fetch serves them all, and the
        digest pins *which* circuit the proof must satisfy.
        """
        return wire.decode_verifying_key(
            self._request("GET", f"/vks/{circuit_digest}")
        )

    def key_log(self) -> List[Dict]:
        """The service's signed key-transparency log (one entry per VK)."""
        return self._json("GET", "/vks")["key_log"]

    def circuit_audit(self, claim_id: str) -> Dict:
        """The static soundness-audit report for a claim's circuit."""
        return self._json("GET", f"/claims/{claim_id}/circuit-audit")

    # -------------------------------------------------------------- verify --

    def verify_remote(self, claim_id: str) -> Dict:
        """Ask the *service* to verify (convenient, but trusts the service)."""
        return self._json(
            "POST",
            "/verify",
            body=json.dumps({"claim_id": claim_id}).encode(),
            content_type="application/json",
        )

    def verify_local(
        self,
        claim_id: str,
        model: Sequential,
        *,
        circuit_digest: Optional[str] = None,
    ) -> VerificationReport:
        """Trustless check: fetch claim + VK, verify against OUR model copy.

        Passing ``circuit_digest`` pins the verifying key: it is fetched
        from the shape-keyed ``/vks/<digest>`` endpoint and the claim's
        record must name the same digest, so the service cannot swap in a
        different circuit's key for this verification.
        """
        claim = self.fetch_claim(claim_id)
        if circuit_digest is not None:
            recorded = self.status(claim_id).get("circuit_digest", "")
            if recorded != circuit_digest:
                raise ServiceError(
                    f"claim {claim_id} was proved under circuit "
                    f"{recorded!r}, not the pinned {circuit_digest!r}"
                )
            vk = self.fetch_vk_by_digest(circuit_digest)
        else:
            vk = self.fetch_verifying_key(claim_id)
        return OwnershipVerifier(vk).verify(model, claim)

    def verify_batch(
        self, claim_ids: List[str], *, seed: Optional[int] = None
    ) -> wire.VerifyBatchResult:
        """Ask the service to verify many claims in one batched sweep.

        Posts a binary :class:`~repro.service.wire.VerifyBatchRequest`
        frame to ``POST /verify-batch``; the service groups the claims by
        verifying key and runs one random-linear-combination
        multi-pairing per group.  Returns per-claim verdicts (with
        HTTP-style statuses: 404 unknown, 409 unverifiable state, 400
        malformed proof) plus per-group timing.
        """
        frame = wire.encode_verify_batch_request(
            wire.VerifyBatchRequest(claim_ids=list(claim_ids), seed=seed)
        )
        return wire.decode_verify_batch_result(
            self._request("POST", "/verify-batch", body=frame)
        )

    def audit_registry(
        self, *, seed: Optional[int] = None
    ) -> wire.VerifyBatchResult:
        """Sweep every non-revoked registered claim through ``/verify-batch``.

        The ``zkrownn audit`` workflow: list the registry, drop revoked
        records, batch-verify the rest.  Claims not yet proved come back
        as 409 verdicts (skipped, not failures).
        """
        claim_ids = [
            record["claim_id"]
            for record in self.list_claims()
            if record["state"] != "revoked"
        ]
        return self.verify_batch(claim_ids, seed=seed)

    # --------------------------------------------------------------- admin --

    def revoke(self, claim_id: str, reason: str = "") -> Dict:
        return self._json(
            "POST",
            f"/claims/{claim_id}/revoke",
            body=json.dumps({"reason": reason}).encode(),
            content_type="application/json",
        )

    def drain(self) -> Dict:
        """Ask the service to drain: stop admitting, finish in-flight work."""
        return self._json("POST", "/admin/drain", body=b"")

    def audit(self, claim_id: str) -> List[Dict]:
        return self._json("GET", f"/claims/{claim_id}/audit")["audit"]

    def health(self) -> Dict:
        return self._json("GET", "/healthz")

    def stats(self) -> Dict:
        return self._json("GET", "/stats")

    # ------------------------------------------------------- observability --

    def trace(self, claim_id: str) -> Dict:
        """The claim's span tree: ``{claim_id, trace_id, spans: [...]}``."""
        return self._json("GET", f"/claims/{claim_id}/trace")

    def trace_id(self, claim_id: str) -> Optional[str]:
        """The trace id this client minted for ``claim_id``, if any."""
        return self._trace_ids.get(claim_id)

    def metrics_text(self) -> str:
        """The service's Prometheus text exposition (``GET /metrics``)."""
        return self._request("GET", "/metrics").decode()

    def __repr__(self) -> str:
        urls = [endpoint.url for endpoint in self.endpoints]
        return f"ServiceClient({urls[0]!r})" if len(urls) == 1 else (
            f"ServiceClient({urls!r})"
        )
