"""The proof service's HTTP face: stdlib-only JSON API over the scheduler.

Endpoints (all JSON unless noted)::

    POST /claims              submit a wire-encoded ClaimRequest (binary body)
    GET  /claims              list claim records (?model_digest=, ?state=)
    GET  /claims/<id>         one claim's record / job status
    GET  /claims/<id>/proof   the proved claim as a binary wire frame
    GET  /claims/<id>/vk      the circuit's verifying key as a wire frame
    GET  /claims/<id>/audit   the claim's audit trail
    GET  /claims/<id>/circuit-audit  static soundness analysis of the
                              claim's proving circuit
    POST /claims/<id>/revoke  mark a claim revoked ({"reason": ...})
    POST /verify              verify server-side ({"claim_id": ...} or a
                              binary claim frame)
    GET  /claims/<id>/trace   the claim's span tree (submit -> queue-wait
                              -> ... -> verify), JSON
    GET  /vks                 the signed key-transparency log (JSON)
    GET  /vks/<digest>        one circuit's verifying key as a wire frame
    GET  /healthz             liveness + queue depth
    GET  /stats               engine + scheduler + registry counters
    GET  /metrics             Prometheus text exposition

Observability: ``POST /claims`` honors an ``X-Trace-Id`` header (the
client-minted trace id); every lifecycle stage the claim passes through
becomes a persisted span served back at ``GET /claims/<id>/trace``.
Without the header the server mints a trace id itself (when
observability is enabled).  The HTTP access log goes through the
structured JSONL logger at ``info`` -- quiet under the default
``ZKROWNN_LOG_LEVEL=warning``.

Submission is asynchronous: ``POST /claims`` returns ``202 Accepted``
with the content-addressed claim id; clients poll ``GET /claims/<id>``
(or use :meth:`~repro.service.client.ServiceClient.wait`) until the job
is ``done``, then fetch the ~200-byte claim frame.  An identical
resubmission returns the existing record instead of re-proving --
content addressing makes submission idempotent.

:class:`ProofService` is the transport-free core (used directly by the
in-process example and the tests); :class:`ProofServer` binds it to a
``ThreadingHTTPServer``, one OS thread per in-flight request, which is
plenty for an API whose hot path is "append to a queue" -- the actual
proving happens on scheduler threads.
"""

from __future__ import annotations

import hashlib
import json
import signal
import threading
import time
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..engine.engine import ProvingEngine
from ..obs import Tracer, get_logger, get_metrics, new_trace_id, obs_enabled
from ..obs.trace import sanitize_trace_id
from ..zkrownn.artifacts import model_digest
from ..zkrownn.planning import extraction_structure_key
from ..zkrownn.circuit import extraction_synthesizer
from ..zkrownn.verifier import OwnershipVerifier
from . import faults as _faults
from . import wire
from .faults import InjectedConnectionReset, SimulatedCrash
from .registry import ClaimRecord, ClaimRegistry, RegistryError
from .scheduler import JobState, ProofScheduler, ProofTask

__all__ = [
    "ProofServer",
    "ProofService",
    "SERVICE_VERSION",
    "ServiceUnavailable",
]

SERVICE_VERSION = "1"


class ServiceUnavailable(RuntimeError):
    """Admission refused: the service is full (429) or draining (503).

    Carries the HTTP status and a ``Retry-After`` hint the handler turns
    into headers; resilient clients back off (or fail over) on both.
    """

    def __init__(self, message: str, *, status: int = 503,
                 retry_after: float = 1.0):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class ProofService:
    """Transport-independent service core: submit / status / fetch / verify.

    Owns the proving engine, scheduler, and registry unless injected.
    ``start()`` publishes disk-cached verifying keys into the registry,
    re-enqueues still-pending claims from their persisted request frames
    (restart recovery), then spins up the scheduler threads; ``close()``
    drains them.

    Unless an ``engine`` is injected, the engine's on-disk
    :class:`~repro.engine.cache.ArtifactStore` lives under the registry
    root (``cache_dir`` overrides the location), so a restarted service
    re-proves known shapes with zero fresh Groth16 setups and its
    published VKs stay in lockstep with the registry's VK store.
    """

    def __init__(
        self,
        registry: ClaimRegistry,
        *,
        engine: Optional[ProvingEngine] = None,
        scheduler: Optional[ProofScheduler] = None,
        max_batch: Optional[int] = None,
        scheduler_workers: int = 1,
        cache_dir: Optional[str] = None,
        max_queue_depth: Optional[int] = None,
        retry_after_seconds: float = 1.0,
        max_attempts: int = 3,
        prove_budget_seconds: Optional[float] = None,
        faults: Optional[_faults.FaultPlan] = None,
        audit_mode: Optional[str] = None,
    ):
        self.registry = registry
        self.faults = faults if faults is not None else _faults.active_plan()
        if max_batch is None:
            # Explicit argument > tuned machine profile > static default
            # (the same precedence every knob follows; see repro.tuning).
            from ..tuning.profile import profile_max_batch

            max_batch = profile_max_batch() or 8
        if engine is None:
            engine = ProvingEngine(
                cache_dir=cache_dir or str(registry.root / "engine-cache"),
                prove_budget_seconds=prove_budget_seconds,
                audit=audit_mode,
            )
        elif audit_mode is not None:
            if audit_mode not in ("off", "warn", "strict"):
                raise ValueError(
                    "audit_mode must be 'off', 'warn', or 'strict', "
                    f"not {audit_mode!r}"
                )
            engine.audit_mode = audit_mode
        self.engine = engine
        self.scheduler = scheduler if scheduler is not None else ProofScheduler(
            self.engine,
            registry,
            max_batch=max_batch,
            workers=scheduler_workers,
            max_attempts=max_attempts,
            prove_budget_seconds=prove_budget_seconds,
            faults=self.faults,
        )
        # Bounded admission: above this queue depth, submissions get 429
        # + Retry-After instead of an unbounded enqueue (None = unbounded).
        self.max_queue_depth = max_queue_depth
        self.retry_after_seconds = retry_after_seconds
        self.tracer = Tracer(sink=registry.store_trace_span)
        metrics = get_metrics()
        self._m_submissions = metrics.counter(
            "zkrownn_submissions_total",
            "claim submissions admitted (including resubmissions)",
        )
        self._m_http = metrics.counter(
            "zkrownn_http_requests_total",
            "HTTP requests served, by method and status code",
        )
        self.started_at = time.time()
        self.recovered_claims: List[str] = []
        self.draining = False
        self._drained = threading.Event()
        self._drain_lock = threading.Lock()

    def start(self) -> "ProofService":
        self._publish_cached_vks()
        self.recovered_claims = self._recover_pending()
        self.scheduler.start()
        return self

    def close(self) -> None:
        self.scheduler.stop()
        self.engine.backend.close()

    def drain(self, *, wait: bool = True) -> Dict:
        """Graceful shutdown, phase one: stop admitting, finish in-flight.

        Sets ``draining`` (new submissions get 503 + Retry-After, health
        reports ``draining``), stops the scheduler -- in-flight batches
        finish, still-queued claims stay durable on disk for the next
        process (or another replica) to recover -- and audits the drain.
        With ``wait=False`` the scheduler stop runs on a background
        thread and this returns immediately (the HTTP handler's path).
        """
        with self._drain_lock:
            first = not self.draining
            self.draining = True
        if first:
            try:
                self.registry.audit(
                    "drain-started", owner=self.registry.owner_token,
                    queue_depth=self.scheduler.pending(),
                )
            except OSError:
                pass

            def _finish_drain() -> None:
                self.scheduler.stop()
                try:
                    self.registry.audit(
                        "drain-complete", owner=self.registry.owner_token
                    )
                except OSError:
                    pass
                self._drained.set()

            if wait:
                _finish_drain()
            else:
                threading.Thread(
                    target=_finish_drain, name="proof-service-drain",
                    daemon=True,
                ).start()
        elif wait:
            self._drained.wait()
        return {
            "status": "draining",
            "drained": self._drained.is_set(),
            "queue_depth": self.scheduler.pending(),
        }

    @property
    def drained(self) -> bool:
        return self._drained.is_set()

    def _check_admission(self) -> None:
        """Gate for new work; raises :class:`ServiceUnavailable` to shed.

        A scheduler that was merely never *started* still admits (claims
        queue durably and are dispatched on start or recovered by a
        replica); one that is draining or was stopped does not -- acking
        ``queued`` for work this process will never run strands clients.
        """
        if self.draining or self.scheduler.stopping:
            raise ServiceUnavailable(
                "service is draining; retry against another replica",
                status=503, retry_after=self.retry_after_seconds,
            )
        if (
            self.max_queue_depth is not None
            and self.scheduler.pending() >= self.max_queue_depth
        ):
            raise ServiceUnavailable(
                f"queue full ({self.scheduler.pending()} >= "
                f"{self.max_queue_depth} queued claims)",
                status=429, retry_after=self.retry_after_seconds,
            )

    # ------------------------------------------------------------- recovery --

    def _publish_cached_vks(self) -> None:
        """Unify the engine's disk cache with the registry's VK store.

        Every verifying key the engine has ever set up (this process or a
        previous one sharing the cache directory) becomes fetchable via
        ``GET /vks/<circuit_digest>`` -- with a key-transparency log entry
        on first publication.
        """
        store = self.engine.artifact_store
        if store is None:
            return
        for digest in store.vk_digests():
            vk_bytes = store.load_vk_bytes(digest)
            if vk_bytes:
                self.registry.store_verifying_key(digest, vk_bytes)

    def _recover_pending(self) -> List[str]:
        """Re-enqueue claims the previous process died holding.

        ``queued`` records, and ``proving`` records whose lease expired
        with their owner (a crash mid-batch), are rebuilt from their
        persisted request frames -- no resubmission needed.  Records with
        no recoverable frame are marked ``failed`` with a clear error
        rather than silently stranded.  Runs before the scheduler starts,
        so recovered same-shape claims land in one batch.
        """
        recovered: List[str] = []
        # Oldest first to keep submission order; claim_id breaks the tie
        # deterministically when created_at stamps collide on a coarse
        # clock.
        pending = sorted(
            self.registry.list(), key=lambda r: (r.created_at, r.claim_id)
        )
        for record in pending:
            if record.state == JobState.QUEUED:
                pass
            elif record.state == JobState.PROVING:
                owner = self.registry.lease_owner(record.claim_id)
                if owner is not None and owner != self.registry.owner_token:
                    continue  # a live replica is proving it right now
            else:
                continue
            try:
                persisted = wire.decode_persisted_request(
                    self.registry.request_bytes(record.claim_id)
                )
                if persisted.claim_id != record.claim_id:
                    raise wire.WireFormatError(
                        f"frame is for claim {persisted.claim_id!r}"
                    )
            except (RegistryError, wire.WireFormatError) as exc:
                self.registry.update(
                    record.claim_id, state=JobState.FAILED,
                    error=f"unrecoverable after restart: {exc}",
                )
                continue
            if record.state == JobState.PROVING:
                self.registry.release(record.claim_id)
                self.registry.update(
                    record.claim_id, state=JobState.QUEUED, error=""
                )
            # The recovered claim keeps its original trace: the restart
            # shows up as a "recovered" span between queue-waits.
            self.tracer.finish(self.tracer.span(
                record.trace_id, "recovered", claim_id=record.claim_id,
                prior_state=record.state,
            ))
            self.scheduler.submit(self._task_for(
                record.claim_id, persisted.request,
                trace_id=record.trace_id,
            ))
            self.registry.audit("recovered", claim_id=record.claim_id)
            recovered.append(record.claim_id)
        return recovered

    # --------------------------------------------------------------- submit --

    def _task_for(
        self,
        claim_id: str,
        request: wire.ClaimRequest,
        *,
        deadline_seconds: Optional[float] = None,
        trace_id: str = "",
        parent_span_id: str = "",
    ) -> ProofTask:
        return ProofTask(
            trace_id=trace_id,
            parent_span_id=parent_span_id,
            claim_id=claim_id,
            shape_key=extraction_structure_key(
                request.model, request.keys, request.config
            ),
            synthesize=extraction_synthesizer(
                request.model, request.keys, request.config
            ),
            model=request.model,
            keys=request.keys,
            config=request.config,
            priority=request.priority,
            seed=request.seed,
            setup_seed=request.setup_seed,
            deadline=(
                time.monotonic() + deadline_seconds
                if deadline_seconds is not None
                else None
            ),
        )

    def submit(
        self,
        request_frame: bytes,
        *,
        deadline_seconds: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> Dict:
        """Decode, content-address, register, persist, and enqueue one claim.

        ``deadline_seconds`` (the HTTP ``X-Deadline-Seconds`` header, NOT
        part of the wire frame -- the canonical request bytes are the
        content address and must stay deadline-free) lets the scheduler
        shed the job at dispatch once the client has given up on it.

        ``trace_id`` (the ``X-Trace-Id`` header) joins the claim to a
        client-minted trace; absent (or invalid), the server mints one.
        The id stored at registration wins: resubmissions and rescues
        append to the original trace rather than forking a new one.
        """
        self._check_admission()
        trace_id = sanitize_trace_id(trace_id)
        if not trace_id and obs_enabled():
            trace_id = new_trace_id()
        request = wire.decode_claim_request(request_frame)
        mdigest = model_digest(request.model, request.keys.embed_layer)
        shape_key = extraction_structure_key(
            request.model, request.keys, request.config
        )
        # Content address: the canonical re-encoding of the request, so a
        # byte-identical resubmission maps onto the existing record.
        canonical = wire.encode_claim_request(request)
        claim_id = hashlib.sha256(canonical).hexdigest()
        self._m_submissions.inc()

        # Freshen from the shared root first: another replica may have
        # registered (or proved) this claim since our in-memory load.
        try:
            record = self.registry.reload(claim_id)
        except RegistryError:
            record = None
        if record is not None:
            # First writer wins: the trace id stored at registration is
            # the claim's trace; later submissions append to it.
            if record.trace_id:
                trace_id = record.trace_id
            elif trace_id:
                record = self.registry.update(claim_id, trace_id=trace_id)
            if record.state in (JobState.QUEUED, JobState.PROVING):
                active_here = self.scheduler.state(claim_id) in (
                    JobState.QUEUED, JobState.PROVING,
                )
                if not active_here and \
                        self.registry.lease_owner(claim_id) is None:
                    # Stranded: the owner died (lease expired) and nobody
                    # holds the job.  A resubmission rescues it instead
                    # of bouncing off the stale pending state forever.
                    if record.state == JobState.PROVING:
                        self.registry.update(
                            claim_id, state=JobState.QUEUED, error=""
                        )
                    self.registry.store_request_bytes(
                        claim_id,
                        wire.encode_persisted_request(claim_id, request),
                    )
                    self.tracer.finish(self.tracer.span(
                        trace_id, "rescued", claim_id=claim_id,
                        prior_state=record.state,
                    ))
                    self.scheduler.submit(self._task_for(
                        claim_id, request,
                        deadline_seconds=deadline_seconds,
                        trace_id=trace_id,
                    ))
                    self.registry.audit("rescued", claim_id=claim_id)
                    return {"claim_id": claim_id, "state": JobState.QUEUED,
                            "resubmission": True}
            if record.state not in (JobState.FAILED, JobState.QUARANTINED):
                self.tracer.finish(self.tracer.span(
                    trace_id, "resubmit", claim_id=claim_id,
                    state=record.state,
                ))
                return {
                    "claim_id": claim_id,
                    "state": record.state,
                    "resubmission": True,
                }
        self.registry.store_model_bytes(mdigest, wire.encode_model(request.model))
        record = self.registry.register(
            ClaimRecord(
                claim_id=claim_id,
                model_digest=mdigest,
                state=JobState.QUEUED,
                priority=request.priority,
                shape_key=shape_key,
                trace_id=trace_id,
            )
        )
        if record.trace_id:
            trace_id = record.trace_id  # pre-existing record's trace wins
        elif trace_id:
            self.registry.update(claim_id, trace_id=trace_id)
        submit_span = self.tracer.span(
            trace_id, "submit", claim_id=claim_id, priority=request.priority,
        )
        with self.tracer.active(submit_span):
            if record.state in (JobState.FAILED, JobState.QUARANTINED):
                # Retry of a failed/quarantined claim: register() returned the
                # old record, so reset it -- status/wait must see 'queued',
                # not the stale terminal state, while the job sits in the
                # queue.  A quarantined claim's attempt budget starts over
                # (the operator resubmitting IS the requeue decision), but
                # its error chain is kept for the post-mortem.
                self.registry.update(
                    claim_id, state=JobState.QUEUED, error="", attempts=0
                )
            # Persist the canonical frame FIRST: once a client has been told
            # "queued", a crash must not lose the job.
            self.registry.store_request_bytes(
                claim_id, wire.encode_persisted_request(claim_id, request)
            )
            self.scheduler.submit(self._task_for(
                claim_id, request, deadline_seconds=deadline_seconds,
                trace_id=trace_id, parent_span_id=submit_span.span_id,
            ))
        self.tracer.finish(submit_span)
        return {"claim_id": claim_id, "state": JobState.QUEUED,
                "resubmission": False}

    # --------------------------------------------------------------- status --

    def record_payload(self, record: ClaimRecord) -> Dict:
        payload = {
            "claim_id": record.claim_id,
            "state": record.state,
            "model_digest": record.model_digest,
            "circuit_digest": record.circuit_digest,
            "priority": record.priority,
            "error": record.error,
            "revoked_reason": record.revoked_reason,
            "owner_token": record.owner_token,
            "created_at": record.created_at,
            "updated_at": record.updated_at,
            "timings": record.timings,
            "attempts": record.attempts,
            "error_chain": record.error_chain,
            "trace_id": record.trace_id,
        }
        live = self.scheduler.state(record.claim_id)
        if live is not None and live != record.state:
            payload["scheduler_state"] = live
        return payload

    def status(self, claim_id: str) -> Dict:
        try:
            # Re-read from disk: with replicas sharing the root, another
            # process may have moved this claim since we last touched it.
            # (Single-claim polls only -- the /claims listing serves the
            # in-memory snapshots rather than N file reads per request.)
            record = self.registry.reload(claim_id)
        except RegistryError:
            record = self.registry.get(claim_id)
        return self.record_payload(record)

    def claim_frame(self, claim_id: str) -> bytes:
        record = self.registry.get(claim_id)
        if record.state == JobState.REVOKED:
            raise RegistryError(f"claim {claim_id!r} has been revoked")
        return self.registry.claim_bytes(claim_id)

    def verifying_key_frame(self, claim_id: str) -> bytes:
        record = self.registry.get(claim_id)
        if not record.circuit_digest:
            raise RegistryError(f"claim {claim_id!r} has no circuit yet")
        return wire.encode_frame(
            wire.MSG_VERIFYING_KEY,
            self.registry.verifying_key_bytes(record.circuit_digest),
        )

    def verifying_key_frame_by_digest(self, circuit_digest: str) -> bytes:
        """VK distribution for auditors: keyed by circuit shape, not claim."""
        return wire.encode_frame(
            wire.MSG_VERIFYING_KEY,
            self.registry.verifying_key_bytes(circuit_digest),
        )

    def key_log(self) -> Dict:
        """The signed key-transparency log of every published VK."""
        return {"key_log": self.registry.key_log_entries()}

    # --------------------------------------------------------------- verify --

    def circuit_audit(self, claim_id: str) -> Dict:
        """The static circuit-audit report for a claim's proving circuit.

        Served from the engine's report cache when possible; otherwise the
        constraint system is recovered from the artifact store and audited
        on demand, so the endpoint works for any proved claim even after a
        restart.  Claims without a circuit digest yet (still queued or
        proving) report ``available: false``.
        """
        record = self.registry.get(claim_id)
        digest = record.circuit_digest
        payload: Dict = {
            "claim_id": claim_id,
            "audit_mode": self.engine.audit_mode,
        }
        if not digest:
            payload.update(
                available=False,
                reason=f"claim is {record.state}: no circuit digest yet",
            )
            return payload
        report = self.engine.audit_stored_circuit(digest)
        if report is None:
            payload.update(
                available=False,
                circuit_digest=digest,
                reason="no cached report and no stored constraint system "
                       "for this digest",
            )
            return payload
        payload.update(
            available=True,
            circuit_digest=digest,
            report=report.to_dict(),
        )
        return payload

    def verify_by_id(self, claim_id: str) -> Dict:
        """Server-side verification of a stored claim against its stored model."""
        record = self.registry.get(claim_id)
        span = self.tracer.span(
            record.trace_id, "verify", claim_id=claim_id,
        )
        with self.tracer.active(span):
            if record.state == JobState.REVOKED:
                report = {"accepted": False,
                          "reason": f"claim revoked: {record.revoked_reason}"}
            elif record.state != JobState.DONE:
                report = {"accepted": False,
                          "reason": f"claim is {record.state}, not proved"}
            else:
                claim = wire.decode_claim(self.registry.claim_bytes(claim_id))
                report = self._verify_claim(claim, record.circuit_digest)
                self.registry.audit("verified", claim_id=claim_id,
                                    accepted=report["accepted"])
        self.tracer.finish(span, accepted=report["accepted"])
        return report

    def verify_frame(self, claim_frame: bytes) -> Dict:
        """Verify a caller-supplied claim frame against registry state.

        The claim names its model by digest; any stored circuit that has
        proved a claim for that model supplies the candidate verifying
        key.  Accepting requires some (model, VK) pair to check out.
        """
        claim = wire.decode_claim(claim_frame)
        digests = []
        for record in self.registry.list(model_digest=claim.model_sha256,
                                         state=JobState.DONE):
            if record.circuit_digest and record.circuit_digest not in digests:
                digests.append(record.circuit_digest)
        if not digests:
            return {"accepted": False,
                    "reason": "no proved claims registered for this model"}
        last = {"accepted": False, "reason": "no candidate verifying key"}
        for circuit_digest in digests:
            last = self._verify_claim(claim, circuit_digest)
            if last["accepted"]:
                return last
        return last

    def _verify_claim(self, claim, circuit_digest: str) -> Dict:
        try:
            model = wire.decode_model(
                self.registry.model_bytes(claim.model_sha256)
            )
            vk = wire.decode_verifying_key(
                wire.encode_frame(
                    wire.MSG_VERIFYING_KEY,
                    self.registry.verifying_key_bytes(circuit_digest),
                )
            )
        except RegistryError as exc:
            return {"accepted": False, "reason": str(exc), "malformed": False}
        report = OwnershipVerifier(vk).verify(model, claim)
        return {"accepted": report.accepted, "reason": report.reason,
                "malformed": report.malformed}

    # ---------------------------------------------------------- batch verify --

    def verify_batch(
        self, claim_ids: List[str], *, seed: Optional[int] = None
    ) -> wire.VerifyBatchResult:
        """Audit many stored claims in one sweep, batched per verifying key.

        Claims are grouped by ``circuit_digest``; each group runs one
        random-linear-combination multi-pairing through
        :meth:`~repro.zkrownn.verifier.OwnershipVerifier.verify_many`
        (with per-claim fallback on a group failure, so blame lands on
        the right claim).  Per-claim verdicts carry HTTP-style statuses:
        404 unknown, 409 not in a verifiable state, 400 malformed proof
        bytes, 200 otherwise (see ``accepted``).  ``seed`` derandomizes
        the batch combiner for reproducible audits.
        """
        verdicts: List[wire.BatchClaimVerdict] = []
        by_digest: Dict[str, List[Tuple[str, object]]] = {}
        for claim_id in claim_ids:
            try:
                record = self.registry.reload(claim_id)
            except RegistryError as exc:
                verdicts.append(wire.BatchClaimVerdict(
                    claim_id=claim_id, accepted=False,
                    reason=str(exc), status=404,
                ))
                continue
            if record.state == JobState.REVOKED:
                verdicts.append(wire.BatchClaimVerdict(
                    claim_id=claim_id, accepted=False,
                    reason=f"claim revoked: {record.revoked_reason}",
                    status=409,
                ))
                continue
            if record.state != JobState.DONE:
                verdicts.append(wire.BatchClaimVerdict(
                    claim_id=claim_id, accepted=False,
                    reason=f"claim is {record.state}, not proved",
                    status=409,
                ))
                continue
            try:
                claim = wire.decode_claim(self.registry.claim_bytes(claim_id))
            except (RegistryError, wire.WireFormatError) as exc:
                verdicts.append(wire.BatchClaimVerdict(
                    claim_id=claim_id, accepted=False,
                    reason=f"stored claim unreadable: {exc}", status=400,
                ))
                continue
            by_digest.setdefault(record.circuit_digest, []).append(
                (claim_id, claim)
            )

        groups: List[wire.BatchGroupVerdict] = []
        for circuit_digest, members in by_digest.items():
            started = time.perf_counter()
            try:
                vk = wire.decode_verifying_key(wire.encode_frame(
                    wire.MSG_VERIFYING_KEY,
                    self.registry.verifying_key_bytes(circuit_digest),
                ))
            except (RegistryError, wire.WireFormatError) as exc:
                for claim_id, _ in members:
                    verdicts.append(wire.BatchClaimVerdict(
                        claim_id=claim_id, accepted=False,
                        reason=f"verifying key unavailable: {exc}", status=404,
                    ))
                groups.append(wire.BatchGroupVerdict(
                    circuit_digest=circuit_digest,
                    claim_ids=[claim_id for claim_id, _ in members],
                    accepted=False,
                    seconds=time.perf_counter() - started,
                ))
                continue
            cases = []
            batched_ids = []
            for claim_id, claim in members:
                try:
                    model = wire.decode_model(
                        self.registry.model_bytes(claim.model_sha256)
                    )
                except (RegistryError, wire.WireFormatError) as exc:
                    verdicts.append(wire.BatchClaimVerdict(
                        claim_id=claim_id, accepted=False,
                        reason=f"stored model unavailable: {exc}", status=404,
                    ))
                    continue
                cases.append((model, claim))
                batched_ids.append(claim_id)
            group_ok = True
            if cases:
                reports = OwnershipVerifier(vk, prepare=True).verify_many(
                    cases, seed=seed
                )
                for claim_id, report in zip(batched_ids, reports):
                    verdicts.append(wire.BatchClaimVerdict(
                        claim_id=claim_id,
                        accepted=report.accepted,
                        reason=report.reason,
                        status=400 if report.malformed else 200,
                    ))
                    self.registry.audit(
                        "batch-verified", claim_id=claim_id,
                        accepted=report.accepted,
                    )
                    group_ok = group_ok and report.accepted
            group_ok = group_ok and len(batched_ids) == len(members)
            groups.append(wire.BatchGroupVerdict(
                circuit_digest=circuit_digest,
                claim_ids=batched_ids,
                accepted=group_ok,
                seconds=time.perf_counter() - started,
            ))
        return wire.VerifyBatchResult(verdicts=verdicts, groups=groups)

    # --------------------------------------------------------------- revoke --

    def revoke(self, claim_id: str, reason: str = "") -> Dict:
        record = self.registry.revoke(claim_id, reason)
        return {"claim_id": claim_id, "state": record.state,
                "revoked_reason": record.revoked_reason}

    # ---------------------------------------------------------------- stats --

    def health(self) -> Dict:
        """Liveness plus a degradation signal: ``ok|degraded|draining``.

        ``degraded`` means the queue is at >= 80% of ``max_queue_depth``
        -- still admitting, but a load balancer should prefer another
        replica; ``draining`` means admissions are already refused.
        """
        queue_depth = self.scheduler.pending()
        status = "ok"
        if self.draining or self.scheduler.stopping:
            status = "draining"
        elif (
            self.max_queue_depth is not None
            and queue_depth >= 0.8 * self.max_queue_depth
        ):
            status = "degraded"
        return {
            "status": status,
            "service_version": SERVICE_VERSION,
            "wire_version": wire.WIRE_VERSION,
            "uptime_seconds": time.time() - self.started_at,
            "queue_depth": queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "draining": self.draining,
            "drained": self._drained.is_set(),
            "quarantined": self.registry.counts().get(
                JobState.QUARANTINED, 0
            ),
            "owner_token": self.registry.owner_token,
            "recovered_claims": len(self.recovered_claims),
        }

    def stats(self) -> Dict:
        # Locked snapshots, not the live mutable counter objects: a
        # /stats scrape concurrent with a proving batch must see each
        # stats block at one consistent instant, not mid-increment.
        return {
            "engine": self.engine.stats_snapshot(),
            "scheduler": self.scheduler.stats_snapshot(),
            "registry": self.registry.counts(),
            "backend": self.engine.backend.name,
            "uptime_seconds": time.time() - self.started_at,
        }

    # -------------------------------------------------------- observability --

    def trace(self, claim_id: str) -> Dict:
        """The claim's persisted span tree (submit -> ... -> verify)."""
        record = self.registry.get(claim_id)  # 404s unknown claims
        return {
            "claim_id": claim_id,
            "trace_id": record.trace_id,
            "spans": self.registry.trace_spans(claim_id),
        }

    def metrics_text(self) -> str:
        """Prometheus text exposition, with scrape-time gauges refreshed."""
        metrics = get_metrics()
        if obs_enabled():
            registry_claims = metrics.gauge(
                "zkrownn_registry_claims",
                "claim records in the registry, by state",
            )
            for state, count in self.registry.counts().items():
                if state != "total":
                    registry_claims.set(count, state=state)
            metrics.gauge(
                "zkrownn_queue_depth", "claims waiting in the scheduler queue",
            ).set(self.scheduler.pending())
            metrics.gauge(
                "zkrownn_uptime_seconds", "seconds since service start",
            ).set(time.time() - self.started_at)
        return metrics.render()


# -- HTTP layer ----------------------------------------------------------------

_http_log = get_logger("http")


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests onto the bound :class:`ProofService`."""

    service: ProofService  # injected by ProofServer via subclassing
    server_version = "zkrownn-proof-service/" + SERVICE_VERSION
    protocol_version = "HTTP/1.1"

    # -- helpers --------------------------------------------------------------

    # The stdlib handler prints access lines to stderr; previously this
    # swallowed them entirely.  Now they flow through the structured
    # logger instead: quiet under the default ZKROWNN_LOG_LEVEL=warning,
    # one JSON line per request at info, errors at warning.

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        _http_log.info("http.message", message=format % args)

    def log_error(self, format, *args):  # noqa: A002 - stdlib signature
        _http_log.warning("http.error", message=format % args)

    def log_request(self, code="-", size="-"):
        code_val = getattr(code, "value", code)
        self.service._m_http.inc(
            method=getattr(self, "command", "?") or "?", code=str(code_val)
        )
        _http_log.info(
            "http.request", method=getattr(self, "command", "?"),
            path=getattr(self, "path", "?"), code=code_val,
        )

    def _send_json(
        self,
        payload: Dict,
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_bytes(self, body: bytes, status: int = 200) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, text: str, content_type: str,
                   status: int = 200) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _unavailable(self, exc: ServiceUnavailable) -> None:
        self._send_json(
            {"error": str(exc), "retry_after": exc.retry_after},
            status=exc.status,
            # Retry-After is integer seconds; round up so a 0.5s hint
            # does not truncate to "retry immediately".
            headers={"Retry-After": str(max(1, int(exc.retry_after + 0.999)))},
        )

    def _fire_faults(self) -> None:
        """Injected transport faults for this request (chaos harness).

        ``reset``/``crash`` kinds surface as the connection dropping with
        no response -- exactly what a client sees when a replica dies
        mid-request -- via the except clauses in the verb handlers.
        """
        plan = self.service.faults
        if plan is not None:
            plan.fire("http.request")

    def _drop_connection(self) -> None:
        """Abandon the socket without a response (injected reset/crash)."""
        self.close_connection = True
        try:
            self.connection.close()
        except OSError:
            pass

    def _body(self) -> bytes:
        """Read exactly ``Content-Length`` bytes (or fail loudly).

        ``rfile.read(n)`` may return fewer bytes than asked on a slow
        socket; a single read would hand a truncated body to the wire
        decoder.  Loop until complete, and raise (-> 400) if the peer
        hangs up early rather than decoding a short frame.
        """
        length = int(self.headers.get("Content-Length", "0"))
        if length <= 0:
            return b""
        chunks: List[bytes] = []
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(remaining)
            if not chunk:
                raise ValueError(
                    f"request body truncated: got {length - remaining} "
                    f"of {length} bytes"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _route(self) -> Tuple[str, Dict]:
        parsed = urlparse(self.path)
        query = {k: v[0] for k, v in parse_qs(parsed.query).items()}
        return parsed.path.rstrip("/") or "/", query

    # -- verbs ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path, query = self._route()
        try:
            self._fire_faults()
            if path == "/healthz":
                return self._send_json(self.service.health())
            if path == "/stats":
                return self._send_json(self.service.stats())
            if path == "/metrics":
                return self._send_text(
                    self.service.metrics_text(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            if path == "/claims":
                records = self.service.registry.list(
                    model_digest=query.get("model_digest"),
                    state=query.get("state"),
                )
                return self._send_json(
                    {"claims": [self.service.record_payload(r) for r in records]}
                )
            if path == "/vks":
                return self._send_json(self.service.key_log())
            parts = path.strip("/").split("/")
            if len(parts) == 2 and parts[0] == "vks":
                return self._send_bytes(
                    self.service.verifying_key_frame_by_digest(parts[1])
                )
            if len(parts) >= 2 and parts[0] == "claims":
                claim_id = parts[1]
                if len(parts) == 2:
                    return self._send_json(self.service.status(claim_id))
                if parts[2] == "proof":
                    return self._send_bytes(self.service.claim_frame(claim_id))
                if parts[2] == "vk":
                    return self._send_bytes(
                        self.service.verifying_key_frame(claim_id)
                    )
                if parts[2] == "audit":
                    return self._send_json(
                        {"audit": list(
                            self.service.registry.audit_entries(claim_id)
                        )}
                    )
                if parts[2] == "circuit-audit":
                    return self._send_json(self.service.circuit_audit(claim_id))
                if parts[2] == "trace":
                    return self._send_json(self.service.trace(claim_id))
            self._error(404, f"no route for GET {path}")
        except (InjectedConnectionReset, SimulatedCrash):
            self._drop_connection()
        except RegistryError as exc:
            self._error(404, str(exc))
        except Exception as exc:  # noqa: BLE001 - surface, never hang the socket
            self._error(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        path, _ = self._route()
        try:
            self._fire_faults()
            body = self._body()
            if path == "/claims":
                deadline = self.headers.get("X-Deadline-Seconds")
                return self._send_json(
                    self.service.submit(
                        body,
                        deadline_seconds=(
                            float(deadline) if deadline else None
                        ),
                        trace_id=self.headers.get("X-Trace-Id"),
                    ),
                    status=202,
                )
            if path == "/admin/drain":
                # Respond first, drain on a background thread: the whole
                # point is that in-flight proves may take a while.
                return self._send_json(
                    self.service.drain(wait=False), status=202
                )
            if path == "/verify":
                content_type = self.headers.get("Content-Type", "")
                if content_type.startswith("application/json"):
                    payload = json.loads(body.decode() or "{}")
                    claim_id = payload.get("claim_id")
                    if not claim_id:
                        return self._error(400, "verify needs a claim_id")
                    return self._send_json(self.service.verify_by_id(claim_id))
                return self._send_json(self.service.verify_frame(body))
            if path == "/verify-batch":
                content_type = self.headers.get("Content-Type", "")
                if content_type.startswith("application/json"):
                    payload = json.loads(body.decode() or "{}")
                    claim_ids = payload.get("claim_ids")
                    if not isinstance(claim_ids, list):
                        return self._error(
                            400, "verify-batch needs a claim_ids list"
                        )
                    result = self.service.verify_batch(
                        claim_ids, seed=payload.get("seed")
                    )
                    return self._send_json({
                        "verdicts": [asdict(v) for v in result.verdicts],
                        "groups": [asdict(g) for g in result.groups],
                    })
                request = wire.decode_verify_batch_request(body)
                result = self.service.verify_batch(
                    request.claim_ids, seed=request.seed
                )
                return self._send_bytes(wire.encode_verify_batch_result(result))
            parts = path.strip("/").split("/")
            if len(parts) == 3 and parts[0] == "claims" and parts[2] == "revoke":
                payload = json.loads(body.decode() or "{}")
                return self._send_json(
                    self.service.revoke(parts[1], payload.get("reason", ""))
                )
            self._error(404, f"no route for POST {path}")
        except (InjectedConnectionReset, SimulatedCrash):
            self._drop_connection()
        except ServiceUnavailable as exc:
            self._unavailable(exc)
        except wire.WireFormatError as exc:
            self._error(400, f"bad wire frame: {exc}")
        except RegistryError as exc:
            self._error(404, str(exc))
        except (ValueError, json.JSONDecodeError) as exc:
            self._error(400, str(exc))
        except Exception as exc:  # noqa: BLE001
            self._error(500, f"{type(exc).__name__}: {exc}")


class ProofServer:
    """A :class:`ProofService` bound to a listening socket.

    ``port=0`` picks a free port (tests).  ``start()`` serves on a
    daemon thread and returns immediately; ``stop()`` shuts down the
    HTTP loop and the service's scheduler.
    """

    def __init__(
        self,
        service: ProofService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        handler = type("BoundHandler", (_ServiceHandler,), {"service": service})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self, *, start_service: bool = True) -> "ProofServer":
        """Serve on a daemon thread.  ``start_service=False`` leaves the
        scheduler paused (submissions queue; tests and drain-then-start
        deployments dispatch later via ``service.start()``)."""
        if start_service:
            self.service.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="proof-server-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.service.close()

    def drain_and_shutdown(self) -> None:
        """Graceful exit: stop admitting, finish in-flight, stop serving.

        ``POST /admin/drain`` already answers 202 while this runs; once
        the scheduler is fully drained the HTTP loop is shut down too,
        so ``serve_forever`` returns and the process exits cleanly.
        """
        self.service.drain(wait=True)
        self._httpd.shutdown()

    def serve_forever(self) -> None:
        """Blocking serve (the CLI's ``serve`` subcommand).

        Installs a SIGTERM handler (main thread only; a no-op elsewhere)
        that drains and exits instead of dying mid-prove -- `kill <pid>`
        and orchestrator stop both become graceful drains.
        """
        self.service.start()
        previous_handler = None
        try:
            previous_handler = signal.signal(
                signal.SIGTERM,
                lambda signum, frame: threading.Thread(
                    target=self.drain_and_shutdown,
                    name="proof-server-sigterm-drain",
                    daemon=True,
                ).start(),
            )
        except ValueError:  # pragma: no cover - not on the main thread
            pass
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        finally:
            if previous_handler is not None:
                try:
                    signal.signal(signal.SIGTERM, previous_handler)
                except ValueError:  # pragma: no cover
                    pass
            self._httpd.server_close()
            self.service.close()

    def __enter__(self) -> "ProofServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
