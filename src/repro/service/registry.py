"""The durable claim registry: ownership claims that outlive the process.

A dispute over model ownership can surface months after a claim was
proved; the registry is the service's long-term memory.  It is a plain
directory tree (no database dependency), content-addressed, and safe for
the scheduler's worker threads and the HTTP handler threads to share::

    <root>/claims/<claim_id>.json    record metadata (state, digests, timings)
    <root>/claims/<claim_id>.claim   wire frame of the proved claim
    <root>/vks/<circuit_digest>.vk   verifying key bytes (one per circuit shape)
    <root>/models/<model_digest>.model
                                     wire frame of the claimed model
    <root>/audit.log                 append-only JSONL audit trail

``claim_id`` is assigned at submission from the *content* of the request
(model digest, watermark-key digest, circuit config, seeds), so an
identical resubmission maps to the same record instead of a duplicate
proving job.  Models and verifying keys are keyed by their own content
digests and shared across claims.

Every mutation appends an audit event; :meth:`ClaimRegistry.audit_entries`
replays the trail for dispute resolution ("when was this claim proved,
with which key, and who revoked it?").

All writes go through a temp file + ``os.replace`` so a crash mid-write
leaves either the old record or the new one, never a torn file.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

__all__ = ["ClaimRecord", "ClaimRegistry", "RegistryError"]


class RegistryError(KeyError):
    """Raised when a claim, model, or key is not in the registry."""


@dataclass
class ClaimRecord:
    """One claim's lifecycle, as stored on disk."""

    claim_id: str
    model_digest: str
    state: str = "queued"  # JobState values, plus "revoked"
    priority: int = 0
    shape_key: str = ""
    circuit_digest: str = ""
    error: str = ""
    revoked_reason: str = ""
    created_at: float = 0.0
    updated_at: float = 0.0
    timings: Dict[str, float] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @staticmethod
    def from_json(payload: str) -> "ClaimRecord":
        return ClaimRecord(**json.loads(payload))


def _atomic_write(path: Path, data: bytes) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_bytes(data)
    os.replace(tmp, path)


class ClaimRegistry:
    """Directory-backed persistent store for ownership claims.

    Thread-safe; every public method takes the registry lock.  Reopening
    the same root restores all records -- the restart story a proving
    service needs.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self._claims_dir = self.root / "claims"
        self._vks_dir = self.root / "vks"
        self._models_dir = self.root / "models"
        for d in (self._claims_dir, self._vks_dir, self._models_dir):
            d.mkdir(parents=True, exist_ok=True)
        self._audit_path = self.root / "audit.log"
        self._lock = threading.RLock()
        self._records: Dict[str, ClaimRecord] = {}
        self._load()

    def _load(self) -> None:
        for path in sorted(self._claims_dir.glob("*.json")):
            try:
                record = ClaimRecord.from_json(path.read_text())
            except (ValueError, TypeError, KeyError):
                continue  # torn/foreign file: skip, never crash the service
            self._records[record.claim_id] = record

    # ------------------------------------------------------------- records --

    def _write(self, record: ClaimRecord) -> None:
        record.updated_at = time.time()
        _atomic_write(
            self._claims_dir / f"{record.claim_id}.json",
            record.to_json().encode(),
        )
        self._records[record.claim_id] = record

    def register(self, record: ClaimRecord) -> ClaimRecord:
        """Insert a new record (idempotent: an existing id is returned as-is)."""
        with self._lock:
            existing = self._records.get(record.claim_id)
            if existing is not None:
                return existing
            record.created_at = time.time()
            self._write(record)
            self.audit("registered", claim_id=record.claim_id,
                       model_digest=record.model_digest)
            return record

    def get(self, claim_id: str) -> ClaimRecord:
        with self._lock:
            record = self._records.get(claim_id)
            if record is None:
                raise RegistryError(f"unknown claim {claim_id!r}")
            return record

    def __contains__(self, claim_id: str) -> bool:
        with self._lock:
            return claim_id in self._records

    def update(self, claim_id: str, **fields) -> ClaimRecord:
        """Mutate record fields (state transitions, timings, errors)."""
        with self._lock:
            record = self.get(claim_id)
            for name, value in fields.items():
                if not hasattr(record, name):
                    raise AttributeError(f"ClaimRecord has no field {name!r}")
                setattr(record, name, value)
            self._write(record)
            if "state" in fields:
                self.audit("state", claim_id=claim_id, state=record.state,
                           error=record.error)
            return record

    def list(
        self,
        *,
        model_digest: Optional[str] = None,
        state: Optional[str] = None,
    ) -> List[ClaimRecord]:
        """All records, newest first, optionally filtered."""
        with self._lock:
            records = sorted(
                self._records.values(), key=lambda r: r.created_at, reverse=True
            )
        if model_digest is not None:
            records = [r for r in records if r.model_digest == model_digest]
        if state is not None:
            records = [r for r in records if r.state == state]
        return records

    def revoke(self, claim_id: str, reason: str = "") -> ClaimRecord:
        """Mark a claim revoked (e.g. lost a dispute); bytes are retained
        so the audit trail stays replayable."""
        with self._lock:
            record = self.get(claim_id)
            record.state = "revoked"
            record.revoked_reason = reason
            self._write(record)
            self.audit("revoked", claim_id=claim_id, reason=reason)
            return record

    # ------------------------------------------------------- claim payloads --

    def store_claim_bytes(self, claim_id: str, frame: bytes) -> None:
        with self._lock:
            _atomic_write(self._claims_dir / f"{claim_id}.claim", frame)

    def claim_bytes(self, claim_id: str) -> bytes:
        path = self._claims_dir / f"{claim_id}.claim"
        if not path.is_file():
            raise RegistryError(f"no proved claim stored for {claim_id!r}")
        return path.read_bytes()

    # ------------------------------------------------- verifying keys/models --

    def store_verifying_key(self, circuit_digest: str, vk_bytes: bytes) -> None:
        with self._lock:
            path = self._vks_dir / f"{circuit_digest}.vk"
            if not path.is_file():
                _atomic_write(path, vk_bytes)

    def verifying_key_bytes(self, circuit_digest: str) -> bytes:
        path = self._vks_dir / f"{circuit_digest}.vk"
        if not path.is_file():
            raise RegistryError(
                f"no verifying key stored for circuit {circuit_digest!r}"
            )
        return path.read_bytes()

    def store_model_bytes(self, model_digest: str, frame: bytes) -> None:
        with self._lock:
            path = self._models_dir / f"{model_digest}.model"
            if not path.is_file():
                _atomic_write(path, frame)

    def model_bytes(self, model_digest: str) -> bytes:
        path = self._models_dir / f"{model_digest}.model"
        if not path.is_file():
            raise RegistryError(f"no model stored under digest {model_digest!r}")
        return path.read_bytes()

    # ---------------------------------------------------------------- audit --

    def audit(self, event: str, **fields) -> None:
        """Append one event to the audit log (JSONL, append-only)."""
        entry = {"at": time.time(), "event": event, **fields}
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self._lock:
            with open(self._audit_path, "a") as fh:
                fh.write(line)

    def audit_entries(self, claim_id: Optional[str] = None) -> Iterator[dict]:
        """Replay the audit trail, oldest first."""
        if not self._audit_path.is_file():
            return
        with open(self._audit_path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue
                if claim_id is None or entry.get("claim_id") == claim_id:
                    yield entry

    # ---------------------------------------------------------------- stats --

    def counts(self) -> Dict[str, int]:
        """Record counts by state (for ``/stats``)."""
        with self._lock:
            counts: Dict[str, int] = {}
            for record in self._records.values():
                counts[record.state] = counts.get(record.state, 0) + 1
            counts["total"] = len(self._records)
            return counts

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __repr__(self) -> str:
        return f"ClaimRegistry({str(self.root)!r}, claims={len(self)})"
