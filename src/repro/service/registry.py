"""The durable claim registry: ownership claims that outlive the process.

A dispute over model ownership can surface months after a claim was
proved; the registry is the service's long-term memory.  It is a plain
directory tree (no database dependency), content-addressed, and safe for
the scheduler's worker threads and the HTTP handler threads to share::

    <root>/claims/<claim_id>.json    record metadata (state, digests, timings)
    <root>/claims/<claim_id>.claim   wire frame of the proved claim
    <root>/claims/<claim_id>.owner   ownership lease (which replica is proving)
    <root>/requests/<claim_id>.req   persisted request frame (restart recovery;
                                     contains prover secrets, mode 0600)
    <root>/vks/<circuit_digest>.vk   verifying key bytes (one per circuit shape)
    <root>/models/<model_digest>.model
                                     wire frame of the claimed model
    <root>/traces/<claim_id>.jsonl   per-claim trace spans (one JSON line
                                     per completed lifecycle span)
    <root>/audit.log                 append-only JSONL audit trail
    <root>/keylog.jsonl              signed key-transparency log (one entry
                                     per published verifying key)
    <root>/signing.key               HMAC key for the key log (mode 0600)

``claim_id`` is assigned at submission from the *content* of the request
(model digest, watermark-key digest, circuit config, seeds), so an
identical resubmission maps to the same record instead of a duplicate
proving job.  Models and verifying keys are keyed by their own content
digests and shared across claims.

Multiple registry instances (replicas of the proof service, or one
service restarted while another still runs) may share one root.  Claim
*ownership* is then arbitrated with a compare-and-set lease:
:meth:`ClaimRegistry.acquire` creates ``<claim_id>.owner`` with
``O_CREAT | O_EXCL`` -- an atomic create-if-absent even on NFS -- so
exactly one replica wins the right to transition a claim to ``proving``.
Leases expire (a crashed owner's claims become reclaimable) and are
released on terminal states.

Every mutation appends an audit event; :meth:`ClaimRegistry.audit_entries`
replays the trail for dispute resolution ("when was this claim proved,
with which key, and who revoked it?").

All writes go through a temp file + ``os.replace`` so a crash mid-write
leaves either the old record or the new one, never a torn file.  Public
reads (:meth:`get`, :meth:`list`, ...) return snapshot *copies* taken
under the registry lock, never the live mutable records -- a status
handler can serialize them while an update is mid-flight without seeing
a half-applied transition.
"""

from __future__ import annotations

import dataclasses
import hashlib
import hmac
import json
import os
import re
import secrets
import threading
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from ..obs import get_logger
from . import faults as _faults

__all__ = ["ClaimRecord", "ClaimRegistry", "RegistryError"]

logger = get_logger("registry")

_SAFE_NAME_RE = re.compile(r"[^A-Za-z0-9_.-]")

# How long a proving lease lasts before other replicas may reclaim the
# claim.  Generous: a lease only needs to outlive one proving batch.
DEFAULT_LEASE_SECONDS = 900.0


class RegistryError(KeyError):
    """Raised when a claim, model, or key is not in the registry."""


@dataclass
class ClaimRecord:
    """One claim's lifecycle, as stored on disk.

    ``owner_token`` names the replica currently (or last) holding the
    claim's proving lease; the lease itself lives in the ``.owner`` file.
    ``extra`` round-trips any fields written by a newer schema version so
    an older replica sharing the root never silently drops them.
    """

    claim_id: str
    model_digest: str
    state: str = "queued"  # JobState values, plus "revoked"
    priority: int = 0
    shape_key: str = ""
    circuit_digest: str = ""
    error: str = ""
    revoked_reason: str = ""
    owner_token: str = ""
    created_at: float = 0.0
    updated_at: float = 0.0
    timings: Dict[str, float] = field(default_factory=dict)
    attempts: int = 0
    error_chain: List[str] = field(default_factory=list)
    trace_id: str = ""
    extra: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        data = asdict(self)
        extra = data.pop("extra")
        # Unknown fields ride at the top level, where the schema version
        # that wrote them expects to find them again.
        data.update(extra)
        return json.dumps(data, sort_keys=True)

    @staticmethod
    def from_json(payload: str) -> "ClaimRecord":
        data = json.loads(payload)
        if not isinstance(data, dict):
            raise ValueError(f"claim record must be a JSON object, got {type(data)}")
        known = {f.name for f in dataclasses.fields(ClaimRecord)} - {"extra"}
        kwargs = {k: v for k, v in data.items() if k in known}
        extra = {k: v for k, v in data.items() if k not in known}
        return ClaimRecord(**kwargs, extra=extra)

    def snapshot(self) -> "ClaimRecord":
        """An independent copy safe to hand outside the registry lock."""
        return dataclasses.replace(
            self,
            timings=dict(self.timings),
            error_chain=list(self.error_chain),
            extra=dict(self.extra),
        )


def _write_all(fd: int, data: bytes) -> None:
    # os.write may write fewer bytes than asked (POSIX allows it); a
    # partial write silently installed by os.replace would be a torn file.
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _atomic_write(
    path: Path,
    data: bytes,
    *,
    mode: Optional[int] = None,
    faults: Optional["_faults.FaultPlan"] = None,
) -> None:
    # Fault hooks bracket os.replace: "crash-before-persist" dies with
    # only the temp file written (old content survives), "crash-after"
    # dies with the new content installed but before the caller's
    # in-memory state catches up -- the two torn-timing cases crash
    # recovery must cover.
    if faults is not None:
        faults.fire("registry.write")
    tmp = path.with_suffix(path.suffix + ".tmp")
    if mode is None:
        tmp.write_bytes(data)
    else:
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, mode)
        try:
            _write_all(fd, data)
        finally:
            os.close(fd)
    if faults is not None:
        faults.fire("registry.crash-before-persist")
    os.replace(tmp, path)
    if faults is not None:
        faults.fire("registry.crash-after-persist")


class ClaimRegistry:
    """Directory-backed persistent store for ownership claims.

    Thread-safe; every public method takes the registry lock.  Reopening
    the same root restores all records -- the restart story a proving
    service needs.  ``owner_token`` identifies this replica in proving
    leases; by default each instance mints a fresh random token.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        owner_token: Optional[str] = None,
        faults: Optional[_faults.FaultPlan] = None,
    ):
        self.root = Path(root)
        self.owner_token = owner_token or secrets.token_hex(8)
        self.faults = faults if faults is not None else _faults.active_plan()
        self._claims_dir = self.root / "claims"
        self._vks_dir = self.root / "vks"
        self._models_dir = self.root / "models"
        self._requests_dir = self.root / "requests"
        self._traces_dir = self.root / "traces"
        for d in (self._claims_dir, self._vks_dir, self._models_dir,
                  self._traces_dir):
            d.mkdir(parents=True, exist_ok=True)
        self._requests_dir.mkdir(mode=0o700, parents=True, exist_ok=True)
        self._audit_path = self.root / "audit.log"
        self._keylog_path = self.root / "keylog.jsonl"
        self._signing_key_path = self.root / "signing.key"
        self._lock = threading.RLock()
        self._records: Dict[str, ClaimRecord] = {}
        self._load()

    def _load(self) -> None:
        for path in sorted(self._claims_dir.glob("*.json")):
            try:
                record = ClaimRecord.from_json(path.read_text())
            except (ValueError, TypeError, KeyError, OSError) as exc:
                # Torn/foreign file: skip, never crash the service -- but
                # leave a trace instead of swallowing the loss.
                logger.warning(
                    "registry.unreadable_record", file=path.name, error=str(exc),
                )
                continue
            self._records[record.claim_id] = record

    # ------------------------------------------------------------- records --

    def _get_live(self, claim_id: str) -> ClaimRecord:
        record = self._records.get(claim_id)
        if record is None:
            raise RegistryError(f"unknown claim {claim_id!r}")
        return record

    def _write(self, record: ClaimRecord) -> None:
        record.updated_at = time.time()
        _atomic_write(
            self._claims_dir / f"{record.claim_id}.json",
            record.to_json().encode(),
            faults=self.faults,
        )
        self._records[record.claim_id] = record

    def _read_faults(self) -> None:
        if self.faults is not None:
            self.faults.fire("registry.read")

    def register(self, record: ClaimRecord) -> ClaimRecord:
        """Insert a new record (idempotent: an existing id is returned as-is).

        The existence check consults the shared root, not just this
        process's memory -- another replica may have registered (and even
        proved) the claim since this registry loaded, and re-registering
        would overwrite its terminal record with a fresh ``queued`` one.
        """
        with self._lock:
            existing = self._records.get(record.claim_id)
            if existing is None:
                path = self._claims_dir / f"{record.claim_id}.json"
                try:
                    existing = ClaimRecord.from_json(path.read_text())
                    self._records[record.claim_id] = existing
                except FileNotFoundError:
                    existing = None
                except (ValueError, TypeError, KeyError) as exc:
                    logger.warning(
                        "registry.unreadable_record_on_register",
                        claim_id=record.claim_id, error=str(exc),
                    )
                    existing = None
            if existing is not None:
                return existing.snapshot()
            record.created_at = time.time()
            self._write(record)
            self.audit("registered", claim_id=record.claim_id,
                       model_digest=record.model_digest)
            return record.snapshot()

    def get(self, claim_id: str) -> ClaimRecord:
        with self._lock:
            return self._get_live(claim_id).snapshot()

    def __contains__(self, claim_id: str) -> bool:
        with self._lock:
            return claim_id in self._records

    def update(self, claim_id: str, **fields) -> ClaimRecord:
        """Mutate record fields (state transitions, timings, errors)."""
        with self._lock:
            record = self._get_live(claim_id)
            for name, value in fields.items():
                if not hasattr(record, name):
                    raise AttributeError(f"ClaimRecord has no field {name!r}")
                setattr(record, name, value)
            self._write(record)
            if "state" in fields:
                self.audit("state", claim_id=claim_id, state=record.state,
                           error=record.error)
            return record.snapshot()

    def reload(self, claim_id: str) -> ClaimRecord:
        """Re-read one record from disk (another replica may have moved it)."""
        path = self._claims_dir / f"{claim_id}.json"
        with self._lock:
            try:
                record = ClaimRecord.from_json(path.read_text())
            except FileNotFoundError:
                raise RegistryError(f"unknown claim {claim_id!r}") from None
            except (ValueError, TypeError, KeyError) as exc:
                raise RegistryError(
                    f"unreadable record for claim {claim_id!r}: {exc}"
                ) from exc
            self._records[claim_id] = record
            return record.snapshot()

    def list(
        self,
        *,
        model_digest: Optional[str] = None,
        state: Optional[str] = None,
    ) -> List[ClaimRecord]:
        """All records (snapshots), newest first, optionally filtered."""
        with self._lock:
            records = sorted(
                (r.snapshot() for r in self._records.values()),
                key=lambda r: r.created_at, reverse=True,
            )
        if model_digest is not None:
            records = [r for r in records if r.model_digest == model_digest]
        if state is not None:
            records = [r for r in records if r.state == state]
        return records

    def revoke(self, claim_id: str, reason: str = "") -> ClaimRecord:
        """Mark a claim revoked (e.g. lost a dispute); bytes are retained
        so the audit trail stays replayable."""
        with self._lock:
            record = self._get_live(claim_id)
            record.state = "revoked"
            record.revoked_reason = reason
            self._write(record)
            self.audit("revoked", claim_id=claim_id, reason=reason)
            return record.snapshot()

    # ----------------------------------------------------- ownership leases --

    def _owner_path(self, claim_id: str) -> Path:
        return self._claims_dir / f"{claim_id}.owner"

    def _read_lease(self, claim_id: str) -> Optional[dict]:
        try:
            lease = json.loads(self._owner_path(claim_id).read_text())
        except FileNotFoundError:
            return None
        except (ValueError, OSError):
            return {}  # torn lease: unreadable, treated as expired below
        return lease if isinstance(lease, dict) else {}

    def acquire(
        self, claim_id: str, *, lease_seconds: float = DEFAULT_LEASE_SECONDS
    ) -> bool:
        """Compare-and-set: try to become the claim's proving owner.

        Returns True when this replica now holds the lease (including a
        refresh of its own lease, or a takeover of an expired one) and
        False when another replica's lease is still live.  The create
        path is ``os.link`` from a fully-written private temp file -- an
        atomic create-if-absent whose content is never observable empty
        or partial, so a contender can neither win the same claim nor
        misread a mid-write lease as torn/expired and steal it.
        """
        payload = json.dumps({
            "owner": self.owner_token,
            "expires_at": time.time() + lease_seconds,
        }, sort_keys=True).encode()
        path = self._owner_path(claim_id)
        tmp = path.parent / (path.name + ".tmp-" + self.owner_token)
        with self._lock:
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
            try:
                _write_all(fd, payload)
            finally:
                os.close(fd)
            try:
                for _ in range(3):
                    try:
                        os.link(tmp, path)
                    except FileExistsError:
                        lease = self._read_lease(claim_id)
                        if lease is None:
                            continue  # owner vanished mid-check; retry
                        if lease.get("owner") == self.owner_token:
                            _atomic_write(path, payload, mode=0o600)  # refresh
                            self._note_owner(claim_id)
                            return True
                        if lease.get("expires_at", 0.0) > time.time():
                            return False  # live lease held elsewhere
                        # Expired: remove and retry the exclusive link.
                        # (Two reclaimers can race here; os.link still
                        # picks exactly one winner.)
                        try:
                            os.remove(path)
                        except FileNotFoundError:
                            pass
                    else:
                        self._note_owner(claim_id)
                        return True
                return False
            finally:
                try:
                    os.remove(tmp)
                except FileNotFoundError:
                    pass

    def _note_owner(self, claim_id: str) -> None:
        """Record the lease holder on the claim record (best-effort)."""
        record = self._records.get(claim_id)
        if record is not None and record.owner_token != self.owner_token:
            record.owner_token = self.owner_token
            self._write(record)

    def release(self, claim_id: str) -> None:
        """Drop this replica's lease on a claim (no-op if not held)."""
        with self._lock:
            lease = self._read_lease(claim_id)
            if lease and lease.get("owner") == self.owner_token:
                try:
                    os.remove(self._owner_path(claim_id))
                except FileNotFoundError:
                    pass

    def lease_owner(self, claim_id: str) -> Optional[str]:
        """The token holding a *live* lease on the claim, or None."""
        with self._lock:
            lease = self._read_lease(claim_id)
        if not lease or lease.get("expires_at", 0.0) <= time.time():
            return None
        return lease.get("owner")

    # ------------------------------------------------------- claim payloads --

    def store_claim_bytes(self, claim_id: str, frame: bytes) -> None:
        with self._lock:
            _atomic_write(
                self._claims_dir / f"{claim_id}.claim", frame,
                faults=self.faults,
            )

    def claim_bytes(self, claim_id: str) -> bytes:
        self._read_faults()
        path = self._claims_dir / f"{claim_id}.claim"
        if not path.is_file():
            raise RegistryError(f"no proved claim stored for {claim_id!r}")
        return path.read_bytes()

    # ----------------------------------------------------- persisted requests --

    def store_request_bytes(self, claim_id: str, frame: bytes) -> None:
        """Persist a claim's full request frame for restart recovery.

        The frame carries the watermark keys (prover secrets), so it is
        written mode 0600 inside the 0700 ``requests/`` directory and
        discarded once the claim reaches a terminal state.
        """
        with self._lock:
            _atomic_write(
                self._requests_dir / f"{claim_id}.req", frame, mode=0o600,
                faults=self.faults,
            )

    def request_bytes(self, claim_id: str) -> bytes:
        self._read_faults()
        path = self._requests_dir / f"{claim_id}.req"
        if not path.is_file():
            raise RegistryError(f"no persisted request for {claim_id!r}")
        return path.read_bytes()

    def has_request(self, claim_id: str) -> bool:
        return (self._requests_dir / f"{claim_id}.req").is_file()

    def discard_request_bytes(self, claim_id: str) -> None:
        """Remove a persisted request (the claim reached a terminal state)."""
        with self._lock:
            try:
                os.remove(self._requests_dir / f"{claim_id}.req")
            except FileNotFoundError:
                pass

    # ------------------------------------------------- verifying keys/models --

    def store_verifying_key(self, circuit_digest: str, vk_bytes: bytes) -> bool:
        """Publish a verifying key (first writer wins, exclusively).

        The VK file is created with ``os.link`` from a temp file -- an
        atomic create-if-absent, so replicas sharing one root publish (and
        log) each circuit digest exactly once.  Returns True when this
        call published the key, False when it already existed.
        """
        with self._lock:
            path = self._vks_dir / f"{circuit_digest}.vk"
            tmp = path.parent / (path.name + ".tmp-" + self.owner_token)
            tmp.write_bytes(vk_bytes)
            try:
                os.link(tmp, path)
            except FileExistsError:
                return False
            finally:
                try:
                    os.remove(tmp)
                except FileNotFoundError:
                    pass
            self._append_key_log(circuit_digest, vk_bytes)
            return True

    def verifying_key_bytes(self, circuit_digest: str) -> bytes:
        self._read_faults()
        path = self._vks_dir / f"{circuit_digest}.vk"
        if not path.is_file():
            raise RegistryError(
                f"no verifying key stored for circuit {circuit_digest!r}"
            )
        return path.read_bytes()

    def vk_digests(self) -> List[str]:
        """Circuit digests with a published verifying key."""
        return sorted(p.stem for p in self._vks_dir.glob("*.vk"))

    def store_model_bytes(self, model_digest: str, frame: bytes) -> None:
        with self._lock:
            path = self._models_dir / f"{model_digest}.model"
            if not path.is_file():
                _atomic_write(path, frame, faults=self.faults)

    def model_bytes(self, model_digest: str) -> bytes:
        self._read_faults()
        path = self._models_dir / f"{model_digest}.model"
        if not path.is_file():
            raise RegistryError(f"no model stored under digest {model_digest!r}")
        return path.read_bytes()

    # ------------------------------------------------------ key transparency --

    def _signing_key(self) -> bytes:
        """The root's HMAC signing key (minted once, mode 0600).

        Shared by all replicas on one root: any of them may publish a VK,
        and any auditor holding the key can check every entry.
        """
        try:
            return self._signing_key_path.read_bytes()
        except FileNotFoundError:
            pass
        key = secrets.token_bytes(32)
        try:
            fd = os.open(
                self._signing_key_path,
                os.O_WRONLY | os.O_CREAT | os.O_EXCL,
                0o600,
            )
        except FileExistsError:
            return self._signing_key_path.read_bytes()  # another replica won
        try:
            os.write(fd, key)
        finally:
            os.close(fd)
        return key

    @staticmethod
    def _key_log_entry_hash(entry: dict) -> str:
        core = {k: entry[k] for k in ("seq", "at", "circuit_digest",
                                      "vk_sha256", "prev")}
        canonical = json.dumps(core, sort_keys=True).encode()
        return hashlib.sha256(canonical).hexdigest()

    @contextmanager
    def _keylog_lock(self):
        """Cross-process mutex for key-log appends (``O_EXCL`` lockfile).

        The in-process thread lock cannot serialize two *replicas*
        appending distinct digests in the same instant -- both would read
        the same chain tail and fork ``seq``/``prev``.  A lockfile older
        than 10s is presumed left by a crash and stolen.
        """
        lock_path = self.root / "keylog.lock"
        while True:
            try:
                fd = os.open(
                    lock_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o600
                )
                os.close(fd)
                break
            except FileExistsError:
                try:
                    stale = time.time() - lock_path.stat().st_mtime > 10.0
                except FileNotFoundError:
                    continue  # holder just released; retry immediately
                if stale:
                    try:
                        os.remove(lock_path)
                    except FileNotFoundError:
                        pass
                    continue
                time.sleep(0.01)
        try:
            yield
        finally:
            try:
                os.remove(lock_path)
            except FileNotFoundError:
                pass

    def _append_key_log(self, circuit_digest: str, vk_bytes: bytes) -> dict:
        """Append one signed entry to the append-only key-transparency log.

        Entries form a hash chain (``prev`` is the previous entry's hash)
        and each is HMAC-signed with the root's signing key, so an auditor
        can detect reordering, removal, or substitution of published VKs.
        The chain tail is read and extended under a cross-process lock.
        """
        with self._lock, self._keylog_lock():
            prev, seq = "", 0
            for entry in self.key_log_entries():
                prev, seq = entry["entry_hash"], entry["seq"] + 1
            entry = {
                "seq": seq,
                "at": time.time(),
                "circuit_digest": circuit_digest,
                "vk_sha256": hashlib.sha256(vk_bytes).hexdigest(),
                "prev": prev,
            }
            entry["entry_hash"] = self._key_log_entry_hash(entry)
            entry["signature"] = hmac.new(
                self._signing_key(), entry["entry_hash"].encode(), hashlib.sha256
            ).hexdigest()
            with open(self._keylog_path, "a") as fh:
                fh.write(json.dumps(entry, sort_keys=True) + "\n")
            self.audit("vk_published", circuit_digest=circuit_digest,
                       vk_sha256=entry["vk_sha256"], key_log_seq=seq)
            return entry

    def key_log_entries(self) -> List[dict]:
        """The key-transparency log, oldest first (no verification)."""
        if not self._keylog_path.is_file():
            return []
        entries = []
        with open(self._keylog_path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except ValueError:
                    continue
        return entries

    def verify_key_log(self) -> int:
        """Check the hash chain and every signature; returns the entry count.

        Raises :class:`RegistryError` on a broken chain, bad signature, or
        a logged ``vk_sha256`` that no longer matches the stored VK bytes.
        """
        key = self._signing_key()
        prev = ""
        entries = self.key_log_entries()
        for i, entry in enumerate(entries):
            if entry.get("prev", "") != prev:
                raise RegistryError(f"key log chain broken at entry {i}")
            expected = self._key_log_entry_hash(entry)
            if entry.get("entry_hash") != expected:
                raise RegistryError(f"key log entry {i} hash mismatch")
            signature = hmac.new(
                key, expected.encode(), hashlib.sha256
            ).hexdigest()
            if not hmac.compare_digest(entry.get("signature", ""), signature):
                raise RegistryError(f"key log entry {i} signature invalid")
            try:
                vk_bytes = self.verifying_key_bytes(entry["circuit_digest"])
            except RegistryError:
                raise RegistryError(
                    f"key log entry {i} names circuit "
                    f"{entry['circuit_digest']!r} with no stored VK"
                ) from None
            if hashlib.sha256(vk_bytes).hexdigest() != entry.get("vk_sha256"):
                raise RegistryError(
                    f"stored VK for {entry['circuit_digest']!r} does not "
                    f"match key log entry {i}"
                )
            prev = entry["entry_hash"]
        return len(entries)

    # --------------------------------------------------------------- traces --

    def _trace_path(self, claim_id: str) -> Path:
        # claim_id is normally a hex digest, but it arrives over the wire;
        # strip anything that could escape the traces directory.
        safe = _SAFE_NAME_RE.sub("_", claim_id)[:128] or "_"
        return self._traces_dir / f"{safe}.jsonl"

    def store_trace_span(self, claim_id: str, span: dict) -> None:
        """Append one completed trace span to the claim's trace file.

        JSONL append like :meth:`audit`: crash-tolerant (a torn tail line
        is skipped on read) and naturally ordered by completion time.
        """
        line = json.dumps(span, sort_keys=True, default=str) + "\n"
        with self._lock:
            with open(self._trace_path(claim_id), "a") as fh:
                fh.write(line)

    def trace_spans(self, claim_id: str) -> List[dict]:
        """A claim's persisted spans, sorted by wall-clock start."""
        path = self._trace_path(claim_id)
        spans: List[dict] = []
        try:
            with open(path) as fh:
                for raw in fh:
                    raw = raw.strip()
                    if not raw:
                        continue
                    try:
                        span = json.loads(raw)
                    except ValueError:
                        continue  # torn tail from a crash mid-append
                    if isinstance(span, dict):
                        spans.append(span)
        except FileNotFoundError:
            return []
        spans.sort(key=lambda s: s.get("start_unix", 0.0))
        return spans

    # ---------------------------------------------------------------- audit --

    def audit(self, event: str, **fields) -> None:
        """Append one event to the audit log (JSONL, append-only)."""
        entry = {"at": time.time(), "event": event, **fields}
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self._lock:
            with open(self._audit_path, "a") as fh:
                fh.write(line)

    def audit_entries(self, claim_id: Optional[str] = None) -> Iterator[dict]:
        """Replay the audit trail, oldest first."""
        if not self._audit_path.is_file():
            return
        with open(self._audit_path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue
                if claim_id is None or entry.get("claim_id") == claim_id:
                    yield entry

    # ---------------------------------------------------------------- stats --

    def counts(self) -> Dict[str, int]:
        """Record counts by state (for ``/stats``)."""
        with self._lock:
            counts: Dict[str, int] = {}
            for record in self._records.values():
                counts[record.state] = counts.get(record.state, 0) + 1
            counts["total"] = len(self._records)
            return counts

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __repr__(self) -> str:
        return f"ClaimRegistry({str(self.root)!r}, claims={len(self)})"
