"""The service wire protocol: canonical binary frames.

Everything that crosses the proof service's trust boundary travels in one
frame format::

    magic "ZKRW" | u8 version | u8 msg type | u32 payload length
    | payload | u32 CRC-32 (over version..payload)

Frames are length-prefixed (a stream reader knows exactly how many bytes
to take), versioned (decoders reject frames from a future protocol), and
checksummed (bit flips are rejected before any payload parsing).  Payload
encodings are *canonical* -- one byte string per value, so encode/decode
round trips are byte-exact and content addresses
(:meth:`~repro.zkrownn.artifacts.OwnershipClaim.content_id`) are stable
across processes.

Cryptographic payloads reuse the repo's existing encoders rather than
inventing new ones: proofs and verifying keys serialize through
:mod:`repro.snark.keys` (which uses the compressed point encodings of
:mod:`repro.curves.serialize`), and constraint systems -- when they
travel for audits -- through :mod:`repro.snark.serialize`.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..nn.layers import Conv2D, Dense, Flatten, Layer, MaxPool2D, ReLU, Sigmoid
from ..nn.model import Sequential
from ..circuit.fixedpoint import FixedPointFormat
from ..snark.errors import MalformedProof
from ..snark.keys import Proof, VerifyingKey
from ..watermark.keys import WatermarkKeys
from ..zkrownn.artifacts import ClaimFormatError, OwnershipClaim
from ..zkrownn.circuit import CircuitConfig
from . import faults

__all__ = [
    "MSG_CLAIM",
    "MSG_CLAIM_REQUEST",
    "MSG_MODEL",
    "MSG_PERSISTED_REQUEST",
    "MSG_PROOF",
    "MSG_VERIFYING_KEY",
    "MSG_VERIFY_BATCH_REQUEST",
    "MSG_VERIFY_BATCH_RESULT",
    "WIRE_VERSION",
    "BatchClaimVerdict",
    "BatchGroupVerdict",
    "ClaimRequest",
    "PersistedRequest",
    "VerifyBatchRequest",
    "VerifyBatchResult",
    "WireFormatError",
    "decode_claim",
    "decode_claim_request",
    "decode_frame",
    "decode_model",
    "decode_persisted_request",
    "decode_proof",
    "decode_verify_batch_request",
    "decode_verify_batch_result",
    "decode_verifying_key",
    "encode_claim",
    "encode_claim_request",
    "encode_frame",
    "encode_model",
    "encode_persisted_request",
    "encode_proof",
    "encode_verify_batch_request",
    "encode_verify_batch_result",
    "encode_verifying_key",
]

_MAGIC = b"ZKRW"
WIRE_VERSION = 1

MSG_CLAIM_REQUEST = 1
MSG_CLAIM = 2
MSG_VERIFYING_KEY = 3
MSG_PROOF = 4
MSG_MODEL = 5
MSG_PERSISTED_REQUEST = 6
MSG_VERIFY_BATCH_REQUEST = 7
MSG_VERIFY_BATCH_RESULT = 8

_HEADER = struct.Struct(">4sBBI")
_CRC = struct.Struct(">I")


class WireFormatError(ValueError):
    """Raised on malformed, corrupted, or foreign wire bytes."""


# -- frame layer ---------------------------------------------------------------


def encode_frame(msg_type: int, payload: bytes) -> bytes:
    """Wrap a payload in a versioned, checksummed frame."""
    header = _HEADER.pack(_MAGIC, WIRE_VERSION, msg_type, len(payload))
    crc = zlib.crc32(header[4:] + payload) & 0xFFFFFFFF
    return header + payload + _CRC.pack(crc)


def decode_frame(
    data: bytes, expected_type: Optional[int] = None
) -> Tuple[int, bytes]:
    """Unwrap a frame; returns ``(msg_type, payload)``.

    Rejects bad magic, future versions, truncation, trailing bytes, and
    checksum mismatches -- all as :class:`WireFormatError`, before any
    payload bytes are interpreted.
    """
    plan = faults.active_plan()
    if plan is not None:
        data = plan.mutate("wire.decode", data)
    if len(data) < _HEADER.size + _CRC.size:
        raise WireFormatError(f"frame truncated at {len(data)} bytes")
    magic, version, msg_type, length = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise WireFormatError("not a ZKRW frame (bad magic)")
    if version != WIRE_VERSION:
        raise WireFormatError(f"unsupported wire version {version}")
    expected_len = _HEADER.size + length + _CRC.size
    if len(data) != expected_len:
        raise WireFormatError(
            f"frame is {len(data)} bytes, header declares {expected_len}"
        )
    payload = data[_HEADER.size : _HEADER.size + length]
    (crc,) = _CRC.unpack_from(data, _HEADER.size + length)
    if zlib.crc32(data[4 : _HEADER.size + length]) & 0xFFFFFFFF != crc:
        raise WireFormatError("frame checksum mismatch (corrupted bytes)")
    if expected_type is not None and msg_type != expected_type:
        raise WireFormatError(
            f"expected message type {expected_type}, frame carries {msg_type}"
        )
    return msg_type, payload


# -- primitive codecs ----------------------------------------------------------

_DTYPE_CODES = {"f": (1, ">f8"), "i": (2, ">i8"), "b": (3, "|b1"), "u": (2, ">i8")}
_CODE_DTYPES = {1: ">f8", 2: ">i8", 3: "|b1"}


def _pack_array(arr: np.ndarray) -> bytes:
    """Canonical ndarray encoding: dtype code, shape, big-endian data."""
    kind = arr.dtype.kind
    if kind not in _DTYPE_CODES:
        raise WireFormatError(f"unsupported array dtype {arr.dtype}")
    code, wire_dtype = _DTYPE_CODES[kind]
    data = np.ascontiguousarray(arr).astype(wire_dtype).tobytes()
    return (
        struct.pack(">BB", code, arr.ndim)
        + struct.pack(f">{arr.ndim}I", *arr.shape)
        + struct.pack(">I", len(data))
        + data
    )


def _unpack_array(data: bytes, offset: int) -> Tuple[np.ndarray, int]:
    try:
        code, ndim = struct.unpack_from(">BB", data, offset)
        offset += 2
        shape = struct.unpack_from(f">{ndim}I", data, offset)
        offset += 4 * ndim
        (nbytes,) = struct.unpack_from(">I", data, offset)
        offset += 4
        raw = data[offset : offset + nbytes]
        if len(raw) != nbytes:
            raise WireFormatError("array data truncated")
        offset += nbytes
        wire_dtype = _CODE_DTYPES[code]
    except (struct.error, KeyError) as exc:
        raise WireFormatError(f"malformed array encoding: {exc}") from exc
    arr = np.frombuffer(raw, dtype=wire_dtype).reshape(shape)
    # Native byte order for downstream numpy work.
    native = {1: np.float64, 2: np.int64, 3: np.bool_}[code]
    return arr.astype(native), offset


def _pack_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    return struct.pack(">H", len(raw)) + raw


def _unpack_str(data: bytes, offset: int) -> Tuple[str, int]:
    (length,) = struct.unpack_from(">H", data, offset)
    offset += 2
    raw = data[offset : offset + length]
    if len(raw) != length:
        raise WireFormatError("string truncated")
    return raw.decode("utf-8"), offset + length


def _pack_opt_int(value: Optional[int]) -> bytes:
    """Optional arbitrary-size integer (seeds): presence byte + length."""
    if value is None:
        return b"\x00"
    sign = 1 if value >= 0 else 2
    raw = abs(value).to_bytes((abs(value).bit_length() + 7) // 8 or 1, "big")
    return struct.pack(">BH", sign, len(raw)) + raw


def _unpack_opt_int(data: bytes, offset: int) -> Tuple[Optional[int], int]:
    (flag,) = struct.unpack_from(">B", data, offset)
    offset += 1
    if flag == 0:
        return None, offset
    if flag not in (1, 2):
        raise WireFormatError(f"bad optional-int flag {flag}")
    (length,) = struct.unpack_from(">H", data, offset)
    offset += 2
    raw = data[offset : offset + length]
    if len(raw) != length:
        raise WireFormatError("optional int truncated")
    value = int.from_bytes(raw, "big")
    return (value if flag == 1 else -value), offset + length


# -- model codec ---------------------------------------------------------------

_LAYER_DENSE = 1
_LAYER_RELU = 2
_LAYER_SIGMOID = 3
_LAYER_FLATTEN = 4
_LAYER_CONV2D = 5
_LAYER_MAXPOOL2D = 6


def _pack_model(model: Sequential) -> bytes:
    """Architecture + weights, canonically -- unlike the ``.npz``
    checkpoint convention (weights only, architecture is code), a service
    request must carry both."""
    parts = [_pack_str(model.name), struct.pack(">H", len(model.layers))]
    for layer in model.layers:
        if isinstance(layer, Dense):
            parts.append(struct.pack(">BII", _LAYER_DENSE,
                                     layer.in_features, layer.out_features))
            parts.append(_pack_array(layer.params["W"]))
            parts.append(_pack_array(layer.params["b"]))
        elif isinstance(layer, ReLU):
            parts.append(struct.pack(">B", _LAYER_RELU))
        elif isinstance(layer, Sigmoid):
            parts.append(struct.pack(">B", _LAYER_SIGMOID))
        elif isinstance(layer, Flatten):
            parts.append(struct.pack(">B", _LAYER_FLATTEN))
        elif isinstance(layer, Conv2D):
            parts.append(struct.pack(
                ">BIIII", _LAYER_CONV2D, layer.in_channels,
                layer.out_channels, layer.kernel, layer.stride,
            ))
            parts.append(_pack_array(layer.params["W"]))
            parts.append(_pack_array(layer.params["b"]))
        elif isinstance(layer, MaxPool2D):
            parts.append(struct.pack(">BII", _LAYER_MAXPOOL2D,
                                     layer.pool, layer.stride))
        else:
            raise WireFormatError(
                f"layer type {type(layer).__name__} has no wire encoding"
            )
    return b"".join(parts)


def _unpack_model(data: bytes, offset: int) -> Tuple[Sequential, int]:
    name, offset = _unpack_str(data, offset)
    (num_layers,) = struct.unpack_from(">H", data, offset)
    offset += 2
    rng = np.random.default_rng(0)  # weights are overwritten below
    layers: List[Layer] = []
    for _ in range(num_layers):
        (code,) = struct.unpack_from(">B", data, offset)
        offset += 1
        if code == _LAYER_DENSE:
            in_f, out_f = struct.unpack_from(">II", data, offset)
            offset += 8
            layer = Dense(in_f, out_f, rng=rng)
            layer.params["W"], offset = _unpack_array(data, offset)
            layer.params["b"], offset = _unpack_array(data, offset)
        elif code == _LAYER_RELU:
            layer = ReLU()
        elif code == _LAYER_SIGMOID:
            layer = Sigmoid()
        elif code == _LAYER_FLATTEN:
            layer = Flatten()
        elif code == _LAYER_CONV2D:
            in_c, out_c, kernel, stride = struct.unpack_from(">IIII", data, offset)
            offset += 16
            layer = Conv2D(in_c, out_c, kernel, stride, rng=rng)
            layer.params["W"], offset = _unpack_array(data, offset)
            layer.params["b"], offset = _unpack_array(data, offset)
        elif code == _LAYER_MAXPOOL2D:
            pool, stride = struct.unpack_from(">II", data, offset)
            offset += 8
            layer = MaxPool2D(pool, stride)
        else:
            raise WireFormatError(f"unknown layer code {code}")
        layers.append(layer)
    return Sequential(layers, name=name), offset


def encode_model(model: Sequential) -> bytes:
    return encode_frame(MSG_MODEL, _pack_model(model))


def decode_model(frame: bytes) -> Sequential:
    _, payload = decode_frame(frame, MSG_MODEL)
    try:
        model, offset = _unpack_model(payload, 0)
    except (struct.error, ValueError) as exc:
        raise WireFormatError(f"malformed model payload: {exc}") from exc
    if offset != len(payload):
        raise WireFormatError("trailing bytes after model payload")
    return model


# -- watermark keys + circuit config ------------------------------------------


def _pack_keys(keys: WatermarkKeys) -> bytes:
    return (
        struct.pack(">II", keys.embed_layer, keys.target_class)
        + _pack_array(keys.trigger_inputs)
        + _pack_array(keys.projection)
        + _pack_array(keys.signature)
    )


def _unpack_keys(data: bytes, offset: int) -> Tuple[WatermarkKeys, int]:
    embed_layer, target_class = struct.unpack_from(">II", data, offset)
    offset += 8
    triggers, offset = _unpack_array(data, offset)
    projection, offset = _unpack_array(data, offset)
    signature, offset = _unpack_array(data, offset)
    keys = WatermarkKeys(
        embed_layer=embed_layer,
        target_class=target_class,
        trigger_inputs=triggers,
        projection=projection,
        signature=signature,
    )
    keys.validate()
    return keys, offset


def _pack_config(config: CircuitConfig) -> bytes:
    return struct.pack(
        ">dHHHB",
        config.theta,
        config.fixed_point.frac_bits,
        config.fixed_point.total_bits,
        config.sigmoid_degree,
        1 if config.weights_public else 0,
    )


def _unpack_config(data: bytes, offset: int) -> Tuple[CircuitConfig, int]:
    theta, frac, total, sigmoid, public = struct.unpack_from(">dHHHB", data, offset)
    config = CircuitConfig(
        theta=theta,
        fixed_point=FixedPointFormat(frac_bits=frac, total_bits=total),
        sigmoid_degree=sigmoid,
        weights_public=bool(public),
    )
    return config, offset + struct.calcsize(">dHHHB")


# -- claim request -------------------------------------------------------------


@dataclass
class ClaimRequest:
    """Everything a claimant ships to the proof service.

    ``priority`` orders the scheduler queue (higher first).  ``seed`` /
    ``setup_seed`` exist for reproducible runs and tests -- a production
    deployment omits both and takes fresh entropy (and shared setups per
    circuit shape).
    """

    model: Sequential
    keys: WatermarkKeys
    config: CircuitConfig = field(default_factory=CircuitConfig)
    priority: int = 0
    seed: Optional[int] = None
    setup_seed: Optional[int] = None


def _pack_claim_request(request: ClaimRequest) -> bytes:
    if not -128 <= request.priority <= 127:
        raise WireFormatError(
            f"priority {request.priority} outside the wire range [-128, 127]"
        )
    return (
        _pack_model(request.model)
        + _pack_keys(request.keys)
        + _pack_config(request.config)
        + struct.pack(">b", request.priority)
        + _pack_opt_int(request.seed)
        + _pack_opt_int(request.setup_seed)
    )


def _unpack_claim_request(payload: bytes, offset: int) -> Tuple[ClaimRequest, int]:
    try:
        model, offset = _unpack_model(payload, offset)
        keys, offset = _unpack_keys(payload, offset)
        config, offset = _unpack_config(payload, offset)
        (priority,) = struct.unpack_from(">b", payload, offset)
        offset += 1
        seed, offset = _unpack_opt_int(payload, offset)
        setup_seed, offset = _unpack_opt_int(payload, offset)
    except (struct.error, ValueError) as exc:
        if isinstance(exc, WireFormatError):
            raise
        raise WireFormatError(f"malformed claim request: {exc}") from exc
    request = ClaimRequest(
        model=model,
        keys=keys,
        config=config,
        priority=priority,
        seed=seed,
        setup_seed=setup_seed,
    )
    return request, offset


def encode_claim_request(request: ClaimRequest) -> bytes:
    return encode_frame(MSG_CLAIM_REQUEST, _pack_claim_request(request))


def decode_claim_request(frame: bytes) -> ClaimRequest:
    _, payload = decode_frame(frame, MSG_CLAIM_REQUEST)
    request, offset = _unpack_claim_request(payload, 0)
    if offset != len(payload):
        raise WireFormatError("trailing bytes after claim request")
    return request


# -- persisted request ---------------------------------------------------------


@dataclass
class PersistedRequest:
    """A claim request as the registry stores it for restart recovery.

    The full canonical frame -- model, watermark keys, circuit config,
    priority, seeds -- bound to the content-addressed ``claim_id`` it was
    registered under, so a restarted service can re-enqueue still-queued
    claims without resubmission and detect a frame filed under the wrong
    record.  Watermark keys are prover secrets: these frames live in the
    registry's permission-gated ``requests/`` directory (mode 0600) and
    are discarded once the claim reaches a terminal state.
    """

    claim_id: str
    request: ClaimRequest


def encode_persisted_request(claim_id: str, request: ClaimRequest) -> bytes:
    payload = _pack_str(claim_id) + _pack_claim_request(request)
    return encode_frame(MSG_PERSISTED_REQUEST, payload)


def decode_persisted_request(frame: bytes) -> PersistedRequest:
    _, payload = decode_frame(frame, MSG_PERSISTED_REQUEST)
    try:
        claim_id, offset = _unpack_str(payload, 0)
    except (struct.error, ValueError) as exc:
        if isinstance(exc, WireFormatError):
            raise
        raise WireFormatError(f"malformed persisted request: {exc}") from exc
    request, offset = _unpack_claim_request(payload, offset)
    if offset != len(payload):
        raise WireFormatError("trailing bytes after persisted request")
    return PersistedRequest(claim_id=claim_id, request=request)


# -- claims, proofs, verifying keys -------------------------------------------


def encode_claim(claim: OwnershipClaim) -> bytes:
    return encode_frame(MSG_CLAIM, claim.to_bytes())


def decode_claim(frame: bytes) -> OwnershipClaim:
    _, payload = decode_frame(frame, MSG_CLAIM)
    try:
        return OwnershipClaim.from_bytes(payload)
    except ClaimFormatError as exc:
        raise WireFormatError(str(exc)) from exc


def encode_proof(proof: Proof) -> bytes:
    return encode_frame(MSG_PROOF, proof.to_bytes())


def decode_proof(frame: bytes) -> Proof:
    _, payload = decode_frame(frame, MSG_PROOF)
    try:
        return Proof.from_bytes(payload)
    except (ValueError, MalformedProof) as exc:
        raise WireFormatError(str(exc)) from exc


def encode_verifying_key(vk: VerifyingKey) -> bytes:
    return encode_frame(MSG_VERIFYING_KEY, vk.to_bytes())


def decode_verifying_key(frame: bytes) -> VerifyingKey:
    _, payload = decode_frame(frame, MSG_VERIFYING_KEY)
    try:
        return VerifyingKey.from_bytes(payload)
    except (ValueError, struct.error, IndexError) as exc:
        raise WireFormatError(f"malformed verifying key: {exc}") from exc


# -- batch verification --------------------------------------------------------


@dataclass
class VerifyBatchRequest:
    """An audit request: verify these registered claims, batched by key.

    ``seed`` derandomizes the batch combiner for reproducible audits and
    tests; production audits omit it and take fresh entropy.
    """

    claim_ids: List[str]
    seed: Optional[int] = None


@dataclass
class BatchClaimVerdict:
    """One claim's outcome inside a batch audit.

    ``status`` follows HTTP semantics per claim: 200 verified (see
    ``accepted``), 400 the stored proof was malformed, 404 unknown claim,
    409 the claim is not in a verifiable state (still queued, failed, or
    revoked).
    """

    claim_id: str
    accepted: bool
    reason: str
    status: int = 200


@dataclass
class BatchGroupVerdict:
    """One verification-key group's batched pairing-check outcome."""

    circuit_digest: str
    claim_ids: List[str]
    accepted: bool
    seconds: float


@dataclass
class VerifyBatchResult:
    """The service's answer to a :class:`VerifyBatchRequest`."""

    verdicts: List[BatchClaimVerdict]
    groups: List[BatchGroupVerdict]


def _pack_verify_batch_request(request: VerifyBatchRequest) -> bytes:
    parts = [struct.pack(">I", len(request.claim_ids))]
    parts.extend(_pack_str(claim_id) for claim_id in request.claim_ids)
    parts.append(_pack_opt_int(request.seed))
    return b"".join(parts)


def _unpack_verify_batch_request(
    payload: bytes, offset: int
) -> Tuple[VerifyBatchRequest, int]:
    try:
        (count,) = struct.unpack_from(">I", payload, offset)
        offset += 4
        claim_ids = []
        for _ in range(count):
            claim_id, offset = _unpack_str(payload, offset)
            claim_ids.append(claim_id)
        seed, offset = _unpack_opt_int(payload, offset)
    except (struct.error, ValueError) as exc:
        if isinstance(exc, WireFormatError):
            raise
        raise WireFormatError(f"malformed batch verify request: {exc}") from exc
    return VerifyBatchRequest(claim_ids=claim_ids, seed=seed), offset


def encode_verify_batch_request(request: VerifyBatchRequest) -> bytes:
    return encode_frame(MSG_VERIFY_BATCH_REQUEST, _pack_verify_batch_request(request))


def decode_verify_batch_request(frame: bytes) -> VerifyBatchRequest:
    _, payload = decode_frame(frame, MSG_VERIFY_BATCH_REQUEST)
    request, offset = _unpack_verify_batch_request(payload, 0)
    if offset != len(payload):
        raise WireFormatError("trailing bytes after batch verify request")
    return request


def _pack_verify_batch_result(result: VerifyBatchResult) -> bytes:
    parts = [struct.pack(">I", len(result.verdicts))]
    for verdict in result.verdicts:
        parts.append(_pack_str(verdict.claim_id))
        parts.append(struct.pack(">BH", 1 if verdict.accepted else 0, verdict.status))
        parts.append(_pack_str(verdict.reason))
    parts.append(struct.pack(">I", len(result.groups)))
    for group in result.groups:
        parts.append(_pack_str(group.circuit_digest))
        parts.append(struct.pack(">I", len(group.claim_ids)))
        parts.extend(_pack_str(claim_id) for claim_id in group.claim_ids)
        parts.append(struct.pack(">Bd", 1 if group.accepted else 0, group.seconds))
    return b"".join(parts)


def _unpack_verify_batch_result(
    payload: bytes, offset: int
) -> Tuple[VerifyBatchResult, int]:
    try:
        (num_verdicts,) = struct.unpack_from(">I", payload, offset)
        offset += 4
        verdicts = []
        for _ in range(num_verdicts):
            claim_id, offset = _unpack_str(payload, offset)
            accepted, status = struct.unpack_from(">BH", payload, offset)
            offset += 3
            reason, offset = _unpack_str(payload, offset)
            verdicts.append(
                BatchClaimVerdict(
                    claim_id=claim_id,
                    accepted=bool(accepted),
                    reason=reason,
                    status=status,
                )
            )
        (num_groups,) = struct.unpack_from(">I", payload, offset)
        offset += 4
        groups = []
        for _ in range(num_groups):
            digest, offset = _unpack_str(payload, offset)
            (num_ids,) = struct.unpack_from(">I", payload, offset)
            offset += 4
            claim_ids = []
            for _ in range(num_ids):
                claim_id, offset = _unpack_str(payload, offset)
                claim_ids.append(claim_id)
            accepted, seconds = struct.unpack_from(">Bd", payload, offset)
            offset += 9
            groups.append(
                BatchGroupVerdict(
                    circuit_digest=digest,
                    claim_ids=claim_ids,
                    accepted=bool(accepted),
                    seconds=seconds,
                )
            )
    except (struct.error, ValueError) as exc:
        if isinstance(exc, WireFormatError):
            raise
        raise WireFormatError(f"malformed batch verify result: {exc}") from exc
    return VerifyBatchResult(verdicts=verdicts, groups=groups), offset


def encode_verify_batch_result(result: VerifyBatchResult) -> bytes:
    return encode_frame(MSG_VERIFY_BATCH_RESULT, _pack_verify_batch_result(result))


def decode_verify_batch_result(frame: bytes) -> VerifyBatchResult:
    _, payload = decode_frame(frame, MSG_VERIFY_BATCH_RESULT)
    result, offset = _unpack_verify_batch_result(payload, 0)
    if offset != len(payload):
        raise WireFormatError("trailing bytes after batch verify result")
    return result
