"""The staged proving pipeline: compile -> setup -> synthesize -> prove -> verify.

This package is the amortization seam of the reproduction.  The circuit
layer records structure and a synthesis trace once; everything downstream
-- Groth16 keypairs, prepared proving/verification keys, and the
compiled circuits themselves -- is cached behind :class:`ProvingEngine`
and keyed by structure digest, so repeat proofs for a circuit shape pay
only witness replay plus the prove call.

    engine = ProvingEngine()
    job = engine.prove_job("mlp-16x16", synthesize_fn)    # compile + setup + prove
    job2 = engine.prove_job("mlp-16x16", synthesize_fn2)  # replay + prove only
    assert engine.stats.setup_misses == 1
"""

from .cache import ArtifactStore
from .compiled import CompiledCircuit, SynthesisResult, compile_circuit, resynthesize
from .engine import EngineStats, ProofJob, ProvingEngine

__all__ = [
    "ArtifactStore",
    "CompiledCircuit",
    "SynthesisResult",
    "compile_circuit",
    "resynthesize",
    "EngineStats",
    "ProofJob",
    "ProvingEngine",
]
