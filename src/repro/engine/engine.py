"""The staged proving pipeline behind one facade.

ZKROWNN's amortization argument (Section IV) is that the expensive stages
of Groth16 -- circuit compilation and the trusted setup -- are paid once
per circuit *shape*, while each additional ownership claim pays only
witness synthesis and proving.  :class:`ProvingEngine` is that lifecycle
as an object:

    compile    -- full build, once per shape (records structure + trace)
    setup      -- Groth16 ceremony, once per structure digest
    synthesize -- witness-only trace replay, per proof
    prove      -- Groth16 prove against a cached prepared key, per proof
    verify     -- pairing check against a cached prepared key

Everything cacheable is cached and keyed by structure digest: compiled
circuits (under a caller-chosen shape key), Groth16 keypairs, prepared
proving keys (MSM bases flattened to affine), and prepared verification
keys (fixed-G2 Miller-loop precomputation).  An optional
:class:`~repro.engine.cache.ArtifactStore` persists keypairs across
processes.  :class:`EngineStats` counts hits and misses so callers (and
tests) can assert which stages actually ran.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Optional, Sequence, Union

from ..analysis import (
    AuditReport,
    CircuitAuditError,
    audit_compiled,
    audit_constraint_system,
)
from ..circuit.builder import CircuitBuilder
from ..circuit.trace import TraceDivergence
from ..field.backend import active_field_backend
from ..obs import metrics as _obs_metrics
from ..parallel import ComputeBackend, get_backend
from ..snark.groth16 import (
    Groth16Keypair,
    PreparedProvingKey,
    PreparedVerifyingKey,
    prepare_proving_key,
    prepare_verifying_key,
    prove_prepared,
    setup as groth16_setup,
    verify_batch_prepared,
    verify_prepared,
)
from ..snark.keys import Proof
from .cache import ArtifactStore
from .compiled import CompiledCircuit, SynthesisResult, compile_circuit, resynthesize

__all__ = ["EngineStats", "ProofJob", "ProveBudgetExceeded", "ProvingEngine"]

SynthesisFn = Callable[[CircuitBuilder], Any]


def _observe_stage(stage: str, seconds: float) -> None:
    """Feed one engine stage duration into the process metrics registry.

    Resolved through :func:`get_metrics` on every call (not cached on the
    engine) so a forked worker lands in its own registry; a dict lookup
    per *stage* -- not per kernel -- is noise next to the stage itself.
    """
    if not _obs_metrics.obs_enabled():
        return
    _obs_metrics.get_metrics().histogram(
        "zkrownn_engine_stage_seconds",
        "proving-engine pipeline stage latency",
    ).observe(seconds, stage=stage)


class ProveBudgetExceeded(RuntimeError):
    """A streaming prove ran past its wall-clock budget.

    Raised between stream pulls (never mid-proof), so proofs already
    produced are lost but no worker is left wedged holding key material.
    The scheduler treats it as non-retryable and quarantines the claims.
    """


@dataclass
class EngineStats:
    """Hit/miss counters for every cached stage of the pipeline."""

    compile_misses: int = 0
    compile_hits: int = 0
    witness_resyntheses: int = 0
    trace_divergences: int = 0
    audits: int = 0
    audit_findings: int = 0
    audit_rejections: int = 0
    setup_misses: int = 0
    setup_hits: int = 0
    setup_disk_hits: int = 0
    proofs: int = 0
    proof_batches: int = 0
    budget_exceeded: int = 0
    verifications: int = 0
    batch_verifications: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"EngineStats({parts})"


@dataclass(frozen=True)
class ProofJob:
    """Everything produced by one trip through the pipeline."""

    compiled: CompiledCircuit
    keypair: Groth16Keypair
    synthesis: SynthesisResult
    proof: Proof
    timings: Dict[str, float]
    reused_circuit: bool
    reused_keypair: bool

    @property
    def public_values(self) -> list:
        return self.synthesis.public_values

    @property
    def aux(self) -> Any:
        return self.synthesis.aux


class ProvingEngine:
    """Facade over compile / setup / synthesize / prove / verify with caching.

    ``cache_dir`` enables on-disk keypair persistence; everything else is
    in-memory.  Thread-safe for concurrent use of the caches (a proving
    service fronting many claims).

    ``backend`` chooses where the prover's parallelizable kernels run: by
    default the environment is consulted (``ZKROWNN_BACKEND`` /
    ``ZKROWNN_WORKERS``), then the tuned machine profile written by
    ``zkrownn tune`` (:mod:`repro.tuning.profile`), falling back to the
    serial backend; pass a :class:`~repro.parallel.backend.ComputeBackend`
    to pin it.  Proofs are byte-identical across backends given equal
    seeds.
    """

    def __init__(
        self,
        *,
        cache_dir: Optional[str] = None,
        backend: Optional[ComputeBackend] = None,
        prove_budget_seconds: Optional[float] = None,
        audit: Optional[str] = None,
    ):
        self.prove_budget_seconds = prove_budget_seconds
        if audit is None:
            audit = os.environ.get("ZKROWNN_CIRCUIT_AUDIT", "off")
        if audit not in ("off", "warn", "strict"):
            raise ValueError(
                f"audit mode must be 'off', 'warn', or 'strict', not {audit!r}"
            )
        self.audit_mode = audit
        self._audit_reports: Dict[str, AuditReport] = {}
        self._compiled: Dict[str, CompiledCircuit] = {}
        self._keypairs: Dict[str, Groth16Keypair] = {}
        self._prepared_pk: Dict[str, PreparedProvingKey] = {}
        self._prepared_vk: Dict[str, PreparedVerifyingKey] = {}
        self._store = ArtifactStore(cache_dir) if cache_dir else None
        self._lock = threading.RLock()
        self.backend = backend if backend is not None else get_backend()
        self.stats = EngineStats()

    def stats_snapshot(self) -> Dict[str, int]:
        """One locked, mutually-consistent copy of the stage counters.

        Counter increments happen under the engine lock, so a snapshot
        taken under the same lock never shows (say) ``proofs`` from one
        batch with ``proof_batches`` from the previous one -- the
        guarantee ``/stats`` advertises.
        """
        with self._lock:
            return self.stats.as_dict()

    @property
    def artifact_store(self) -> Optional[ArtifactStore]:
        """The on-disk setup cache, when ``cache_dir`` was given.

        The proof service unifies this with the registry's VK store so a
        restarted service re-proves known shapes with zero fresh setups.
        """
        return self._store

    # ------------------------------------------------------ compile + witness --

    def compiled_for(self, key: str) -> Optional[CompiledCircuit]:
        with self._lock:
            return self._compiled.get(key)

    def synthesize(
        self, key: str, synthesize: SynthesisFn, *, name: Optional[str] = None
    ) -> tuple:
        """Compile on first sight of ``key``; replay the trace afterwards.

        Returns ``(compiled, result)``.  A :class:`TraceDivergence` during
        replay (value-dependent structure) falls back to a full rebuild and
        replaces the cached circuit -- the new digest then misses the
        keypair cache, which is exactly right: the old keys are unusable.
        """
        t0 = time.perf_counter()
        with self._lock:
            compiled = self._compiled.get(key)
        if compiled is not None:
            try:
                result = resynthesize(compiled, synthesize)
            except TraceDivergence:
                with self._lock:
                    self.stats.trace_divergences += 1
            else:
                with self._lock:
                    self.stats.compile_hits += 1
                    self.stats.witness_resyntheses += 1
                self._check_audit(compiled)
                _observe_stage("synthesize", time.perf_counter() - t0)
                return compiled, result
        compiled, result = compile_circuit(synthesize, name or key)
        with self._lock:
            self.stats.compile_misses += 1
            self._compiled[key] = compiled
        self._check_audit(compiled)
        _observe_stage("compile", time.perf_counter() - t0)
        return compiled, result

    # ----------------------------------------------------------------- audit --

    def audit_report_for(self, digest: str) -> Optional[AuditReport]:
        """The cached audit report for a structure digest, if one exists.

        Checks memory, then the artifact store; runs no audit itself.
        """
        with self._lock:
            report = self._audit_reports.get(digest)
        if report is None and self._store is not None:
            report = self._store.load_audit_report(digest)
            if report is not None:
                with self._lock:
                    self._audit_reports[digest] = report
        return report

    def audit_circuit(
        self, compiled: CompiledCircuit, *, deep: bool = True
    ) -> AuditReport:
        """Audit a compiled circuit, caching the report by digest.

        A cached deep report satisfies any request; a cached fast-tier
        report only satisfies ``deep=False`` and is re-run (and the
        cache upgraded) on the first deep request.
        """
        report = self.audit_report_for(compiled.digest)
        if report is not None and (report.deep or not deep):
            return report
        report = audit_compiled(compiled, deep=deep)
        with self._lock:
            self.stats.audits += 1
            self.stats.audit_findings += len(report.findings)
            self._audit_reports[compiled.digest] = report
        if self._store is not None:
            self._store.save_audit_report(compiled.digest, report)
        if _obs_metrics.obs_enabled():
            counter = _obs_metrics.get_metrics().counter(
                "zkrownn_circuit_findings_total",
                "circuit-audit findings by severity",
            )
            for severity, count in report.counts().items():
                if count:
                    counter.inc(count, severity=severity)
        return report

    def audit_stored_circuit(self, digest: str) -> Optional[AuditReport]:
        """Deep-audit a circuit known only by its structure digest.

        Returns the cached deep report when one exists; otherwise
        recovers the serialized constraint system from the artifact
        store, audits it, and caches the result.  Falls back to a cached
        fast-tier report when the circuit itself is no longer stored;
        ``None`` when nothing exists for the digest.
        """
        report = self.audit_report_for(digest)
        if report is not None and report.deep:
            return report
        if self._store is None:
            return report
        cs = self._store.load_constraint_system(digest)
        if cs is None:
            # No stored circuit to deep-audit; the fast report (or
            # nothing) is the best available.
            return report
        report = audit_constraint_system(
            cs, name=f"r1cs:{digest[:12]}", digest=digest
        )
        with self._lock:
            self.stats.audits += 1
            self.stats.audit_findings += len(report.findings)
            self._audit_reports[digest] = report
        self._store.save_audit_report(digest, report)
        return report

    def _check_audit(self, compiled: CompiledCircuit) -> None:
        """Enforce the engine's audit mode against one compiled circuit.

        ``warn`` runs the fast structural tier inline (cheap enough for
        the cold compile path), logs findings, and continues; ``strict``
        runs the full deep analysis and raises
        :class:`~repro.analysis.CircuitAuditError` (a ``ValueError``, so
        the service scheduler fails the claim) when any finding reaches
        ``critical``.  Reports are cached by digest, so the repeat-proof
        path costs a dictionary lookup.
        """
        if self.audit_mode == "off":
            return
        report = self.audit_circuit(
            compiled, deep=self.audit_mode == "strict"
        )
        if not report.findings:
            return
        from ..obs.logging import get_logger

        get_logger("engine").warning(
            "circuit_audit_findings",
            circuit=compiled.name,
            digest=compiled.digest[:12],
            counts={k: v for k, v in report.counts().items() if v},
            worst=report.worst(),
        )
        if self.audit_mode == "strict" and report.at_least("critical"):
            with self._lock:
                self.stats.audit_rejections += 1
            raise CircuitAuditError(report)

    # ----------------------------------------------------------------- setup --

    def setup(
        self, compiled: CompiledCircuit, *, seed: Optional[int] = None
    ) -> Groth16Keypair:
        """Groth16 setup, once per structure digest (memory, then disk)."""
        digest = compiled.digest
        with self._lock:
            keypair = self._keypairs.get(digest)
        if keypair is not None:
            with self._lock:
                self.stats.setup_hits += 1
            return keypair
        if self._store is not None:
            keypair = self._store.load_keypair(digest)
            if keypair is not None:
                with self._lock:
                    self.stats.setup_disk_hits += 1
                    self._keypairs[digest] = keypair
                return keypair
        t0 = time.perf_counter()
        keypair = groth16_setup(compiled.cs, seed=seed)
        _observe_stage("setup", time.perf_counter() - t0)
        with self._lock:
            self.stats.setup_misses += 1
            self._keypairs[digest] = keypair
        if self._store is not None:
            self._store.save_keypair(digest, keypair)
            self._store.save_constraint_system(digest, compiled.cs)
        return keypair

    # ----------------------------------------------------------------- prove --

    def _prepared_proving_key(
        self, compiled: CompiledCircuit, keypair: Groth16Keypair
    ) -> PreparedProvingKey:
        digest = compiled.digest
        with self._lock:
            prepared = self._prepared_pk.get(digest)
        if (
            prepared is None
            or prepared.pk is not keypair.proving_key
            # Prepared bases hold field-backend-native residues; a backend
            # switch (tests, ZKROWNN_FIELD_BACKEND changes) re-wraps them.
            or prepared.field_backend != active_field_backend()
        ):
            prepared = prepare_proving_key(keypair.proving_key)
            with self._lock:
                self._prepared_pk[digest] = prepared
        return prepared

    def prove(
        self,
        compiled: CompiledCircuit,
        synthesis: Union[SynthesisResult, Sequence[int]],
        *,
        seed: Optional[int] = None,
        setup_seed: Optional[int] = None,
    ) -> Proof:
        """Prove a witness against the cached keypair for this circuit."""
        keypair = self.setup(compiled, seed=setup_seed)
        prepared = self._prepared_proving_key(compiled, keypair)
        assignment = (
            synthesis.assignment
            if isinstance(synthesis, SynthesisResult)
            else synthesis
        )
        proof = prove_prepared(
            prepared, compiled.cs, assignment, seed=seed, backend=self.backend
        )
        with self._lock:
            self.stats.proofs += 1
        return proof

    def prove_batch(
        self,
        compiled: CompiledCircuit,
        syntheses: Union[
            Sequence[Union[SynthesisResult, Sequence[int]]],
            Iterable[Union[SynthesisResult, Sequence[int]]],
        ],
        *,
        seeds: Optional[Iterable[Optional[int]]] = None,
        setup_seed: Optional[int] = None,
    ) -> list:
        """Prove many claims for one circuit through the compute backend.

        All claims share the cached keypair and prepared key; with a
        process backend the key material crosses into each worker once
        (and stays pinned there across batches, keyed by circuit digest)
        and the claims prove concurrently.  ``seeds`` (one per claim) make
        the proofs deterministic -- and therefore identical across
        backends; ``None`` entries use fresh entropy.

        ``syntheses`` may be a lazy generator (of
        :class:`~repro.engine.compiled.SynthesisResult`\\ s or raw
        assignments): witness synthesis then pipelines with proving
        dispatch instead of materializing every assignment up front --
        the streaming path a proving service wants.  With a sequence,
        ``seeds`` must match its length; with a generator, ``seeds`` is
        zipped lazily and must not run short.
        """
        if isinstance(syntheses, Sequence):
            if seeds is None:
                seeds = [None] * len(syntheses)
            else:
                seeds = list(seeds)
                if len(seeds) != len(syntheses):
                    raise ValueError("need exactly one seed (or None) per claim")
        elif seeds is None:
            seeds = itertools.repeat(None)

        def pairs():
            seed_iter = iter(seeds)
            for s in syntheses:
                try:
                    seed = next(seed_iter)
                except StopIteration:
                    # zip() would silently drop the remaining claims here.
                    raise ValueError(
                        "seed iterable ran short of the claim count"
                    ) from None
                yield (
                    s.assignment if isinstance(s, SynthesisResult) else s,
                    seed,
                )

        return self.prove_stream(compiled, pairs(), setup_seed=setup_seed)

    def prove_stream(
        self,
        compiled: CompiledCircuit,
        pairs: Iterable[tuple],
        *,
        setup_seed: Optional[int] = None,
        budget_seconds: Optional[float] = None,
    ) -> list:
        """Prove a lazy stream of ``(synthesis_or_assignment, seed)`` pairs.

        The backend pulls the iterator as proving capacity frees up, so a
        generator that synthesizes witnesses on demand overlaps synthesis
        (caller side) with proving (worker side).  Order is preserved.

        ``budget_seconds`` (default: the engine's ``prove_budget_seconds``)
        bounds the wall clock of the whole stream: the elapsed time is
        checked cooperatively between stream pulls and
        :class:`ProveBudgetExceeded` is raised when the budget is spent --
        a hung or pathologically slow batch fails loudly instead of
        pinning a scheduler worker forever.
        """
        if budget_seconds is None:
            budget_seconds = self.prove_budget_seconds
        keypair = self.setup(compiled, seed=setup_seed)
        prepared = self._prepared_proving_key(compiled, keypair)
        started = time.monotonic()

        def assignment_pairs():
            for s, seed in pairs:
                if (
                    budget_seconds is not None
                    and time.monotonic() - started > budget_seconds
                ):
                    with self._lock:
                        self.stats.budget_exceeded += 1
                    raise ProveBudgetExceeded(
                        f"prove stream for {compiled.name!r} exceeded its "
                        f"{budget_seconds:.3f}s wall-clock budget"
                    )
                yield (
                    s.assignment if isinstance(s, SynthesisResult) else s,
                    seed,
                )

        proofs = self.backend.prove_stream(
            prepared, compiled.cs, assignment_pairs(), key_id=compiled.digest
        )
        _observe_stage("prove_stream", time.monotonic() - started)
        with self._lock:
            self.stats.proofs += len(proofs)
            self.stats.proof_batches += 1
        return proofs

    # ---------------------------------------------------------------- verify --

    def _prepared_verifying_key(
        self, compiled: CompiledCircuit
    ) -> PreparedVerifyingKey:
        """The cached prepared VK for a circuit with a known keypair.

        Requires a keypair for this circuit (from :meth:`setup` or the
        disk store) -- minting a fresh one here would silently reject
        every valid proof.
        """
        digest = compiled.digest
        with self._lock:
            keypair = self._keypairs.get(digest)
        if keypair is None and self._store is not None:
            keypair = self._store.load_keypair(digest)
            if keypair is not None:
                with self._lock:
                    self.stats.setup_disk_hits += 1
                    self._keypairs[digest] = keypair
        if keypair is None:
            raise ValueError(
                f"no keypair cached for circuit {compiled.name!r} "
                f"(digest {digest[:12]}...); run setup first"
            )
        with self._lock:
            prepared = self._prepared_vk.get(digest)
        if prepared is None or prepared.vk is not keypair.verifying_key:
            prepared = prepare_verifying_key(keypair.verifying_key)
            with self._lock:
                self._prepared_vk[digest] = prepared
        return prepared

    def verify(
        self,
        compiled: CompiledCircuit,
        public_values: Sequence[int],
        proof: Proof,
    ) -> bool:
        """Pairing check against the prepared verification key."""
        prepared = self._prepared_verifying_key(compiled)
        with self._lock:
            self.stats.verifications += 1
        t0 = time.perf_counter()
        ok = verify_prepared(prepared, public_values, proof)
        _observe_stage("verify", time.perf_counter() - t0)
        return ok

    def verify_batch(
        self,
        compiled: CompiledCircuit,
        cases: Sequence[tuple],
        *,
        seed: Optional[int] = None,
    ) -> bool:
        """Batch-verify ``(public_values, proof)`` cases for one circuit.

        One RLC multi-pairing against the cached prepared key, with the
        live Miller loops and the folded C/IC MSMs routed through the
        engine's compute backend.  Soundness/seeding semantics follow
        :func:`repro.snark.groth16.verify_batch_prepared`.
        """
        prepared = self._prepared_verifying_key(compiled)
        with self._lock:
            self.stats.verifications += len(cases)
            self.stats.batch_verifications += 1
        return verify_batch_prepared(
            prepared, cases, seed=seed, backend=self.backend
        )

    # --------------------------------------------------------------- one-shot --

    def prove_job(
        self,
        key: str,
        synthesize: SynthesisFn,
        *,
        name: Optional[str] = None,
        seed: Optional[int] = None,
        setup_seed: Optional[int] = None,
        witness_check: Optional[Callable[[SynthesisResult], None]] = None,
    ) -> ProofJob:
        """One trip through the full pipeline, with per-stage timings.

        On a shape-cache hit this is witness replay + prove only: the
        compile and setup stages cost a dictionary lookup each.
        ``witness_check`` runs between synthesize and setup so callers can
        reject a witness (by raising) before paying for the proof.
        """
        timings: Dict[str, float] = {}

        t0 = time.perf_counter()
        had_circuit = self.compiled_for(key) is not None
        compiled, synthesis = self.synthesize(key, synthesize, name=name)
        stage = "synthesize_seconds" if synthesis.resynthesized else "compile_seconds"
        timings[stage] = time.perf_counter() - t0
        if witness_check is not None:
            witness_check(synthesis)

        with self._lock:
            had_keypair = compiled.digest in self._keypairs or (
                self._store is not None and self._store.has_keypair(compiled.digest)
            )
        t0 = time.perf_counter()
        keypair = self.setup(compiled, seed=setup_seed)
        timings["setup_seconds"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        proof = self.prove(compiled, synthesis, seed=seed)
        timings["prove_seconds"] = time.perf_counter() - t0

        return ProofJob(
            compiled=compiled,
            keypair=keypair,
            synthesis=synthesis,
            proof=proof,
            timings=timings,
            reused_circuit=had_circuit and synthesis.resynthesized,
            reused_keypair=had_keypair,
        )

    def __repr__(self) -> str:
        return (
            f"ProvingEngine(circuits={len(self._compiled)}, "
            f"keypairs={len(self._keypairs)}, stats={self.stats!r})"
        )
