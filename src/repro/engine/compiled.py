"""Immutable compiled circuits: the output of the pipeline's compile stage.

A :class:`CompiledCircuit` freezes everything the downstream stages need
that does not depend on input values:

* the R1CS constraint system (what Groth16 setup and proving consume),
* the QAP evaluation-domain size (the circuit's QAP is determined by the
  constraint system over this domain; setup evaluates it at its toxic
  waste, proving divides by its vanishing polynomial),
* the public-input layout (variable names, for instance construction and
  auditing),
* the structure digest (the cache key for Groth16 keypairs -- two builds
  with the same digest can share keys),
* the recorded synthesis trace (what
  :class:`~repro.circuit.trace.WitnessSynthesizer` replays to produce a
  fresh witness without recompiling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from ..circuit.builder import CircuitBuilder
from ..circuit.trace import TraceDivergence, WitnessSynthesizer
from ..field.ntt import EvaluationDomain, get_domain, next_power_of_two
from ..snark.r1cs import ConstraintSystem

__all__ = ["CompiledCircuit", "SynthesisResult", "compile_circuit", "resynthesize"]

#: A synthesis function: gadget code that drives a builder (full build) or a
#: witness synthesizer (replay) and returns arbitrary auxiliary data.
SynthesisFn = Callable[[CircuitBuilder], Any]


@dataclass(frozen=True)
class SynthesisResult:
    """One witness for a compiled circuit."""

    assignment: List[int]
    public_values: List[int]
    aux: Any
    resynthesized: bool


@dataclass(frozen=True)
class CompiledCircuit:
    """The value-free structure of a circuit, ready for setup and replay."""

    name: str
    cs: ConstraintSystem
    trace: bytes
    digest: str
    public_layout: Tuple[str, ...]

    @property
    def num_constraints(self) -> int:
        return self.cs.num_constraints

    @property
    def num_variables(self) -> int:
        return self.cs.num_variables

    @property
    def num_public(self) -> int:
        return self.cs.num_public

    @property
    def domain_size(self) -> int:
        """Size of the QAP evaluation domain H (one slot per constraint,
        rounded to a power of two; see :func:`repro.snark.qap.qap_domain`)."""
        return next_power_of_two(max(self.cs.num_constraints, 2))

    def qap_domain(self) -> EvaluationDomain:
        return get_domain(self.domain_size)

    @classmethod
    def from_builder(cls, builder: CircuitBuilder, name: Optional[str] = None
                     ) -> "CompiledCircuit":
        """Freeze an already-synthesized builder (benchmarks, ad-hoc circuits)."""
        return cls(
            name=name or builder.name,
            cs=builder.cs,
            trace=bytes(builder.trace),
            digest=builder.structure_digest(),
            public_layout=tuple(
                builder.cs.variable_names[1 : 1 + builder.cs.num_public]
            ),
        )

    def __repr__(self) -> str:
        return (
            f"CompiledCircuit({self.name!r}, digest={self.digest[:12]}..., "
            f"constraints={self.num_constraints}, public={self.num_public})"
        )


def compile_circuit(
    synthesize: SynthesisFn, name: str = "circuit"
) -> Tuple[CompiledCircuit, SynthesisResult]:
    """Full build: record structure AND synthesize the first witness.

    The first witness comes for free with compilation (the builder is
    eager), so it is returned alongside the frozen structure rather than
    thrown away and re-derived.
    """
    builder = CircuitBuilder(name)
    aux = synthesize(builder)
    compiled = CompiledCircuit(
        name=name,
        cs=builder.cs,
        trace=bytes(builder.trace),
        digest=builder.structure_digest(),
        public_layout=tuple(builder.cs.variable_names[1 : 1 + builder.cs.num_public]),
    )
    result = SynthesisResult(
        assignment=builder.assignment,
        public_values=builder.public_values(),
        aux=aux,
        resynthesized=False,
    )
    return compiled, result


def resynthesize(compiled: CompiledCircuit, synthesize: SynthesisFn) -> SynthesisResult:
    """Witness-only pass: replay the recorded trace with new input values.

    Raises :class:`~repro.circuit.trace.TraceDivergence` if the gadget code
    does not replay onto the compiled structure (value-dependent circuits).
    """
    synthesizer = WitnessSynthesizer(compiled.trace, compiled.name)
    aux = synthesize(synthesizer)
    synthesizer.finish()
    if (
        synthesizer.cs.num_variables != compiled.num_variables
        or synthesizer.cs.num_public != compiled.num_public
    ):
        raise TraceDivergence(
            f"{compiled.name}: resynthesis produced "
            f"{synthesizer.cs.num_variables} variables "
            f"({synthesizer.cs.num_public} public), compiled circuit has "
            f"{compiled.num_variables} ({compiled.num_public} public)"
        )
    return SynthesisResult(
        assignment=synthesizer.assignment,
        public_values=synthesizer.public_values(),
        aux=aux,
        resynthesized=True,
    )
