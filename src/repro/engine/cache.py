"""On-disk persistence for compiled circuits and Groth16 keypairs.

The in-memory caches inside :class:`~repro.engine.engine.ProvingEngine`
die with the process; a proving service that restarts should not re-run
multi-minute trusted setups for shapes it has already served.  The store
lays artifacts out by structure digest:

    <root>/<digest>.r1cs   constraint system (repro.snark.serialize format)
    <root>/<digest>.pk     proving key bytes
    <root>/<digest>.vk     verifying key bytes

Only structure travels to disk -- witnesses and synthesis traces never
leave the prover, matching the trust story of
:mod:`repro.snark.serialize`.  Corrupt or truncated files are treated as
cache misses, never as errors.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Optional, Union

from ..analysis import AuditReport
from ..snark.groth16 import Groth16Keypair
from ..snark.keys import ProvingKey, VerifyingKey
from ..snark.r1cs import ConstraintSystem
from ..snark.serialize import deserialize_r1cs, serialize_r1cs

__all__ = ["ArtifactStore"]


class ArtifactStore:
    """Digest-keyed file cache for setup artifacts."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------- keypairs --

    def _pk_path(self, digest: str) -> Path:
        return self.root / f"{digest}.pk"

    def _vk_path(self, digest: str) -> Path:
        return self.root / f"{digest}.vk"

    def _r1cs_path(self, digest: str) -> Path:
        return self.root / f"{digest}.r1cs"

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        # A crash mid-write must leave the old artifact or the new one,
        # never a torn file the next load would half-decode.
        tmp = path.parent / (path.name + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    def has_keypair(self, digest: str) -> bool:
        return self._pk_path(digest).is_file() and self._vk_path(digest).is_file()

    def save_keypair(self, digest: str, keypair: Groth16Keypair) -> None:
        self._atomic_write(self._pk_path(digest), keypair.proving_key.to_bytes())
        self._atomic_write(self._vk_path(digest), keypair.verifying_key.to_bytes())

    def load_keypair(self, digest: str) -> Optional[Groth16Keypair]:
        """Load a keypair, or None on any miss or decode failure."""
        if not self.has_keypair(digest):
            return None
        try:
            pk = ProvingKey.from_bytes(self._pk_path(digest).read_bytes())
            vk = VerifyingKey.from_bytes(self._vk_path(digest).read_bytes())
        except (ValueError, IndexError, OSError):
            return None
        return Groth16Keypair(pk, vk)

    def vk_digests(self) -> List[str]:
        """Structure digests with a stored verifying key (for publication
        into a service registry's VK store)."""
        return sorted(p.stem for p in self.root.glob("*.vk"))

    def load_vk_bytes(self, digest: str) -> Optional[bytes]:
        path = self._vk_path(digest)
        try:
            return path.read_bytes()
        except OSError:
            return None

    # ------------------------------------------------------------- circuits --

    def save_constraint_system(self, digest: str, cs: ConstraintSystem) -> None:
        self._atomic_write(self._r1cs_path(digest), serialize_r1cs(cs))

    def load_constraint_system(self, digest: str) -> Optional[ConstraintSystem]:
        path = self._r1cs_path(digest)
        if not path.is_file():
            return None
        try:
            return deserialize_r1cs(path.read_bytes())
        except Exception:
            return None

    # --------------------------------------------------------- audit reports --

    def _audit_path(self, digest: str) -> Path:
        return self.root / f"{digest}.audit.json"

    def save_audit_report(self, digest: str, report: AuditReport) -> None:
        payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        self._atomic_write(self._audit_path(digest), payload.encode("utf-8"))

    def load_audit_report(self, digest: str) -> Optional[AuditReport]:
        """Load a cached audit report, or None on any miss or decode failure."""
        path = self._audit_path(digest)
        if not path.is_file():
            return None
        try:
            data = json.loads(path.read_text("utf-8"))
            return AuditReport.from_dict(data)
        except Exception:
            return None

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r})"
