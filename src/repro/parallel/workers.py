"""Module-level worker functions for :class:`~repro.parallel.backend.ProcessBackend`.

Everything here must be importable by name in a freshly spawned
interpreter (the ``spawn`` start method pickles functions by reference),
so no closures or lambdas.  Heavy per-batch state -- the prepared proving
key and constraint system -- is shipped once per worker through the pool
initializer instead of once per task.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

_PROVE_STATE: Dict[str, object] = {}


def init_prove_worker(ppk, cs) -> None:
    """Pool initializer: pin the (large) shared proving inputs in the worker."""
    _PROVE_STATE["ppk"] = ppk
    _PROVE_STATE["cs"] = cs


def prove_task(args: Tuple[Sequence[int], Optional[int]]):
    """Prove one assignment against the worker's pinned prepared key."""
    from ..snark.groth16 import prove_prepared

    assignment, seed = args
    return prove_prepared(
        _PROVE_STATE["ppk"], _PROVE_STATE["cs"], assignment, seed=seed
    )


def msm_chunk_g1(args) -> Tuple[int, int, int]:
    """One MSM chunk; returns a Jacobian triple of plain ints (picklable)."""
    from ..curves.msm import msm_g1

    points, scalars = args
    return msm_g1(points, scalars)
