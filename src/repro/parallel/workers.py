"""Module-level worker functions for :class:`~repro.parallel.backend.ProcessBackend`.

Everything here must be importable by name in a freshly spawned
interpreter (the ``spawn`` start method pickles functions by reference),
so no closures or lambdas.  Heavy shared state -- the prepared proving
key and constraint system -- is shipped once per worker through the pool
initializer and pinned in a *keyed* cache, so a pool that outlives one
batch (the proof service serving many batches for one circuit digest)
never re-receives its key material.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..field.backend import reinit_field_backend_after_fork

#: Worker-side prepared-key cache: key id -> (prepared key, constraint system).
#: Keys arrive via :func:`init_prove_worker` (pool initializer); with the
#: ``fork`` start method the parent's already-warm cache is also inherited
#: for free by any pool forked afterwards.
_PROVE_STATE: Dict[str, Tuple[object, object]] = {}


def init_prove_worker(key_id: str, ppk, cs) -> None:
    """Pool initializer: pin the (large) shared proving inputs in the worker.

    Also re-resolves the field backend from the environment: backend state
    (gmpy2 handles, cached ops instances) must never silently cross a
    ``fork`` -- each worker rebuilds its own on first field operation.
    """
    reinit_field_backend_after_fork()
    _PROVE_STATE[key_id] = (ppk, cs)


def prove_task(args: Tuple[str, Sequence[int], Optional[int]]):
    """Prove one assignment against the worker's pinned prepared key."""
    from ..snark.groth16 import prove_prepared

    key_id, assignment, seed = args
    try:
        ppk, cs = _PROVE_STATE[key_id]
    except KeyError:  # pragma: no cover - defensive; initializer always ran
        raise RuntimeError(
            f"worker has no prepared key cached under {key_id!r}"
        ) from None
    return prove_prepared(ppk, cs, assignment, seed=seed)


def init_msm_worker() -> None:
    """MSM pool initializer: fresh field-backend state per worker process."""
    reinit_field_backend_after_fork()


def msm_chunk_g1(args) -> Tuple[int, int, int]:
    """One MSM chunk; returns a Jacobian triple of plain ints (picklable)."""
    from ..curves.msm import msm_g1

    points, scalars = args
    x, y, z = msm_g1(points, scalars)
    # Canonical ints: backend-native coordinates (mpz) would force the
    # parent to depend on the worker's backend for unpickling.
    return (int(x), int(y), int(z))


def miller_chunk(args) -> Tuple[int, ...]:
    """One shared-loop Miller product over a chunk of (G1, G2) int tuples.

    Points arrive as canonical ints (G1 affine pair; G2 as the four Fp2
    coefficients) and the raw Miller value returns as 12 canonical ints
    -- same plain-int convention as :func:`msm_chunk_g1`, so neither
    direction depends on the peer's field backend.
    """
    from ..curves.g1 import G1Point
    from ..curves.g2 import G2Point
    from ..curves.pairing import fp12_to_ints, multi_miller_loop
    from ..field.tower import Fp2Element

    raw_pairs, variant = args
    pairs = [
        (
            G1Point(px, py),
            G2Point(Fp2Element(x0, x1), Fp2Element(y0, y1)),
        )
        for (px, py), (x0, x1, y0, y1) in raw_pairs
    ]
    return fp12_to_ints(multi_miller_loop(pairs, variant))
