"""Executor abstraction over the prover's parallelizable kernels.

Two implementations:

* :class:`SerialBackend` -- direct calls on the caller's thread; the
  default, and the reference the process backend must match bit-for-bit.
* :class:`ProcessBackend` -- ``multiprocessing`` pool using the ``fork``
  start method where available (cheap, copy-on-write key material) and
  falling back to ``spawn`` elsewhere; MSMs are split into per-worker
  chunks whose Jacobian partial sums are reduced in the parent, and
  multi-claim proving runs on *persistent* pools keyed by circuit digest:
  the prepared key crosses into each worker once (pool initializer, pinned
  in a worker-side keyed cache) and every later batch for the same digest
  reuses the warm pool instead of re-forking.

Streaming: :meth:`ComputeBackend.prove_stream` consumes an *iterator* of
``(assignment, seed)`` pairs.  The process backend feeds it through
``Pool.imap``, whose feeder thread pulls the iterator while workers prove
-- so witness synthesis in the parent pipelines with proof dispatch, the
shape a proving service wants.

Proofs and MSM results are *identical* across backends: chunking only
changes the Jacobian representative, which normalization collapses, and
per-claim randomness comes from per-claim seeds, not worker state.

Selection: pass a backend to :class:`~repro.engine.engine.ProvingEngine`,
or set ``ZKROWNN_BACKEND=process`` (and optionally ``ZKROWNN_WORKERS=N``)
and call :func:`get_backend`.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..curves.g1 import G1_INFINITY_JAC, JacobianPoint, jac_add
from ..curves.msm import msm_g1, msm_g1_multi, msm_g2
from ..curves.pairing import G2Precomputed, fp12_from_ints, multi_miller_loop
from ..field.tower import Fp12Element
from . import workers

__all__ = ["ComputeBackend", "SerialBackend", "ProcessBackend", "get_backend"]

ProvePair = Tuple[Sequence[int], Optional[int]]


class ComputeBackend:
    """Interface for the prover's parallelizable operations."""

    name: str = "abstract"

    def msm_g1(self, points: Sequence, scalars: Sequence[int]) -> JacobianPoint:
        raise NotImplementedError

    def msm_g1_multi(
        self, points_lists: Sequence[Sequence], scalars: Sequence[int]
    ) -> List[JacobianPoint]:
        """Several MSMs over one scalar vector (see :func:`msm_g1_multi`).

        The default runs them independently; backends override where the
        shared-recoding kernel (or a better fan-out) applies.
        """
        return [self.msm_g1(points, scalars) for points in points_lists]

    def msm_g2(self, points: Sequence, scalars: Sequence[int]):
        raise NotImplementedError

    def multi_miller(self, pairs: Sequence[Tuple], variant: str = "optimal"):
        """Shared-loop Miller product ``prod_i f_{c, Q_i}(P_i)`` (no final
        exponentiation -- the caller combines products and exponentiates
        once).  Backends may fan the pairs out in chunks; chunk products
        multiply together to the same value the serial kernel returns.
        """
        return multi_miller_loop(pairs, variant)

    def prove_stream(
        self,
        ppk,
        cs,
        pairs: Iterable[ProvePair],
        *,
        key_id: Optional[str] = None,
    ) -> List:
        """Prove a stream of ``(assignment, seed)`` pairs, preserving order.

        ``pairs`` may be a lazy generator: backends pull it as capacity
        frees up, pipelining upstream witness synthesis with proving.
        ``key_id`` (the circuit digest) keys worker-side prepared-key
        caching; ``None`` disables persistence.
        """
        raise NotImplementedError

    def prove_batch(
        self,
        ppk,
        cs,
        assignments: Sequence[Sequence[int]],
        seeds: Sequence[Optional[int]],
        *,
        key_id: Optional[str] = None,
    ) -> List:
        """Prove a materialized batch (sequence form of :meth:`prove_stream`)."""
        return self.prove_stream(
            ppk, cs, zip(assignments, seeds), key_id=key_id
        )

    def close(self) -> None:
        """Release pooled resources (no-op for serial)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ComputeBackend):
    """Everything on the caller's thread -- the default."""

    name = "serial"

    def msm_g1(self, points, scalars):
        return msm_g1(points, scalars)

    def msm_g1_multi(self, points_lists, scalars):
        return msm_g1_multi(points_lists, scalars)

    def msm_g2(self, points, scalars):
        return msm_g2(points, scalars)

    def prove_stream(self, ppk, cs, pairs, *, key_id=None):
        from ..snark.groth16 import prove_prepared

        # Pulling the iterator lazily keeps synthesis and proving
        # interleaved even without real parallelism: claim i+1 is not
        # synthesized until claim i has proved (bounded memory).
        return [
            prove_prepared(ppk, cs, assignment, seed=seed)
            for assignment, seed in pairs
        ]


class ProcessBackend(ComputeBackend):
    """Fan work out to ``multiprocessing`` pools.

    ``min_msm_chunk`` guards against paying pickling latency on MSMs too
    small to win from parallelism; below ``2 * min_msm_chunk`` pairs the
    call runs serially.  ``max_prove_pools`` bounds how many per-digest
    prove pools stay warm at once (each pins one prepared key per worker);
    the least recently used pool is torn down beyond that.
    """

    name = "process"

    def __init__(
        self,
        workers_count: Optional[int] = None,
        *,
        min_msm_chunk: int = 1024,
        min_miller_pairs: int = 8,
        max_prove_pools: int = 2,
    ):
        self.workers = workers_count or os.cpu_count() or 2
        self.min_msm_chunk = min_msm_chunk
        self.min_miller_pairs = min_miller_pairs
        self.max_prove_pools = max_prove_pools
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            self._ctx = multiprocessing.get_context("spawn")
        self._pool = None
        # Guarded by _pools_lock: scheduler threads sharing one backend
        # must not race pool creation, and eviction must never terminate
        # a pool with an in-flight batch (_prove_busy counts users).
        self._pools_lock = threading.Lock()
        self._prove_pools: "OrderedDict[str, object]" = OrderedDict()
        self._prove_busy: Dict[str, int] = {}

    # -- pool management ------------------------------------------------------

    def _msm_pool(self):
        if self._pool is None:
            # The initializer re-resolves the *field* backend inside each
            # worker (gmpy2 state never crosses fork; see field.backend).
            self._pool = self._ctx.Pool(
                self.workers, initializer=workers.init_msm_worker
            )
        return self._pool

    def _acquire_prove_pool(self, key_id: str, ppk, cs):
        """The persistent pool for one circuit digest, created on first use.

        The initializer ships (key id, prepared key, constraint system)
        into every worker exactly once; all later batches for this digest
        reuse the warm workers and ship only assignments.  The returned
        pool is pinned against eviction until :meth:`_release_prove_pool`;
        only *idle* LRU pools are torn down, so the cache can transiently
        exceed ``max_prove_pools`` while several shapes prove at once.
        """
        evict: List[object] = []
        with self._pools_lock:
            pool = self._prove_pools.get(key_id)
            if pool is None:
                for old_key in list(self._prove_pools):
                    if len(self._prove_pools) < self.max_prove_pools:
                        break
                    if self._prove_busy.get(old_key, 0) == 0:
                        evict.append(self._prove_pools.pop(old_key))
                        self._prove_busy.pop(old_key, None)
                pool = self._ctx.Pool(
                    self.workers,
                    initializer=workers.init_prove_worker,
                    initargs=(key_id, ppk, cs),
                )
                self._prove_pools[key_id] = pool
            else:
                self._prove_pools.move_to_end(key_id)
            self._prove_busy[key_id] = self._prove_busy.get(key_id, 0) + 1
        for old_pool in evict:
            old_pool.terminate()
            old_pool.join()
        return pool

    def _release_prove_pool(self, key_id: str) -> None:
        with self._pools_lock:
            count = self._prove_busy.get(key_id, 1) - 1
            if count > 0:
                self._prove_busy[key_id] = count
            else:
                self._prove_busy.pop(key_id, None)

    def prove_pool_keys(self) -> List[str]:
        """Digests with a warm prove pool (observability + tests)."""
        with self._pools_lock:
            return list(self._prove_pools)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        with self._pools_lock:
            pools = list(self._prove_pools.values())
            self._prove_pools.clear()
            self._prove_busy.clear()
        for pool in pools:
            pool.terminate()
            pool.join()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass

    # -- kernels --------------------------------------------------------------

    def msm_g1(self, points, scalars):
        n = len(points)
        if len(scalars) != n:
            raise ValueError("points and scalars must have equal length")
        if n < 2 * self.min_msm_chunk or self.workers < 2:
            return msm_g1(points, scalars)
        chunk = (n + self.workers - 1) // self.workers
        jobs = [
            (points[i : i + chunk], scalars[i : i + chunk])
            for i in range(0, n, chunk)
        ]
        total = G1_INFINITY_JAC
        for partial in self._msm_pool().map(workers.msm_chunk_g1, jobs):
            total = jac_add(total, partial)
        return total

    def msm_g1_multi(self, points_lists, scalars):
        # Small inputs: the serial shared-recoding kernel wins (no pickling,
        # shared GLV splits).  Large inputs: chunked fan-out per MSM keeps
        # all workers busy, which beats sharing the recoding serially.
        if len(scalars) < 2 * self.min_msm_chunk or self.workers < 2:
            return msm_g1_multi(points_lists, scalars)
        return [self.msm_g1(points, scalars) for points in points_lists]

    def msm_g2(self, points, scalars):
        # G2 MSMs in Groth16 are single-digit percent of prove time; the
        # Fp2-object pickling cost outweighs fan-out.
        return msm_g2(points, scalars)

    def multi_miller(self, pairs, variant="optimal"):
        """Chunked shared Miller loops; chunk products combine in the parent.

        Each worker runs one shared-squaring-chain loop over its chunk and
        returns the raw Miller value as 12 canonical ints; the parent
        multiplies the chunk values.  The squaring chain is re-run once
        per chunk (that part does not parallelize), so the fan-out pays
        off only for batches with enough line-evaluation work --
        ``min_miller_pairs`` guards the crossover.  Precomputed-G2 pairs
        carry captured coefficient lists whose pickling cost defeats the
        point of shipping them; any present routes the whole call to the
        serial kernel.
        """
        pairs = list(pairs)
        if (
            len(pairs) < self.min_miller_pairs
            or self.workers < 2
            or any(isinstance(q, G2Precomputed) for _, q in pairs)
        ):
            return multi_miller_loop(pairs, variant)
        # Infinity pairs contribute the factor 1; drop them before
        # chunking so no worker receives a coordinate-less point.
        live = [
            (p, q) for p, q in pairs
            if not (p.is_infinity() or q.is_infinity())
        ]
        if not live:
            return Fp12Element.one()
        chunk = (len(live) + self.workers - 1) // self.workers
        jobs = [
            (
                [
                    (
                        (int(p.x), int(p.y)),
                        (int(q.x.c0), int(q.x.c1), int(q.y.c0), int(q.y.c1)),
                    )
                    for p, q in live[i : i + chunk]
                ],
                variant,
            )
            for i in range(0, len(live), chunk)
        ]
        total = Fp12Element.one()
        for part in self._msm_pool().map(workers.miller_chunk, jobs):
            total = total * fp12_from_ints(part)
        return total

    def prove_stream(self, ppk, cs, pairs, *, key_id=None):
        pairs_iter: Iterator[ProvePair] = iter(pairs)
        if self.workers < 2:
            return SerialBackend().prove_stream(ppk, cs, pairs_iter)
        if key_id is None:
            # No stable identity to cache under -- fall back to a dedicated
            # per-call pool (the pre-service behavior).  Tiny batches skip
            # the fork cost entirely.
            head = list(itertools.islice(pairs_iter, 2))
            if len(head) < 2:
                return SerialBackend().prove_stream(ppk, cs, head)
            anon = "anon"
            pool = self._ctx.Pool(
                self.workers,
                initializer=workers.init_prove_worker,
                initargs=(anon, ppk, cs),
            )
            try:
                return pool.map(
                    workers.prove_task,
                    [
                        (anon, assignment, seed)
                        for assignment, seed in itertools.chain(head, pairs_iter)
                    ],
                )
            finally:
                pool.terminate()
                pool.join()
        pool = self._acquire_prove_pool(key_id, ppk, cs)
        try:
            # imap's feeder thread pulls the (possibly lazy) pair iterator
            # while workers prove earlier claims: synthesis pipelines with
            # proving.  Order is preserved, so seeded proofs stay
            # deterministic.
            return list(
                pool.imap(
                    workers.prove_task,
                    ((key_id, assignment, seed) for assignment, seed in pairs_iter),
                )
            )
        finally:
            self._release_prove_pool(key_id)

    def __repr__(self) -> str:
        return f"ProcessBackend(workers={self.workers})"


def get_backend(
    name: Optional[str] = None, workers_count: Optional[int] = None
) -> ComputeBackend:
    """Build a backend by name, falling back to environment then profile.

    Uniform knob precedence (see :mod:`repro.tuning.profile`): explicit
    argument > environment variable > tuned machine profile > static
    default.  ``name`` falls back ``$ZKROWNN_BACKEND`` -> profile
    ``compute_backend`` -> ``"serial"``; ``workers_count`` falls back
    ``$ZKROWNN_WORKERS`` -> profile ``workers`` -> CPU count; the
    process backend's ``min_msm_chunk`` falls back profile -> 1024.
    """
    from ..tuning.profile import (
        profile_compute_backend,
        profile_min_msm_chunk,
        profile_workers,
    )

    name = (
        name
        or os.environ.get("ZKROWNN_BACKEND")
        or profile_compute_backend()
        or "serial"
    ).lower()
    if workers_count is None:
        env_workers = os.environ.get("ZKROWNN_WORKERS")
        workers_count = (
            int(env_workers) if env_workers else profile_workers()
        )
    if name == "serial":
        return SerialBackend()
    if name == "process":
        chunk = profile_min_msm_chunk()
        if chunk is not None:
            return ProcessBackend(workers_count, min_msm_chunk=chunk)
        return ProcessBackend(workers_count)
    raise ValueError(
        f"unknown backend {name!r}: expected 'serial' or 'process'"
    )
