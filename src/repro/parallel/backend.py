"""Executor abstraction over the prover's parallelizable kernels.

Two implementations:

* :class:`SerialBackend` -- direct calls on the caller's thread; the
  default, and the reference the process backend must match bit-for-bit.
* :class:`ProcessBackend` -- ``multiprocessing`` pool using the ``fork``
  start method where available (cheap, copy-on-write key material) and
  falling back to ``spawn`` elsewhere; MSMs are split into per-worker
  chunks whose Jacobian partial sums are reduced in the parent, and
  multi-claim proving ships the prepared key once per worker via the pool
  initializer.

Proofs and MSM results are *identical* across backends: chunking only
changes the Jacobian representative, which normalization collapses, and
per-claim randomness comes from per-claim seeds, not worker state.

Selection: pass a backend to :class:`~repro.engine.engine.ProvingEngine`,
or set ``ZKROWNN_BACKEND=process`` (and optionally ``ZKROWNN_WORKERS=N``)
and call :func:`get_backend`.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Sequence

from ..curves.g1 import G1_INFINITY_JAC, JacobianPoint, jac_add
from ..curves.msm import msm_g1, msm_g2
from . import workers

__all__ = ["ComputeBackend", "SerialBackend", "ProcessBackend", "get_backend"]


class ComputeBackend:
    """Interface for the prover's parallelizable operations."""

    name: str = "abstract"

    def msm_g1(self, points: Sequence, scalars: Sequence[int]) -> JacobianPoint:
        raise NotImplementedError

    def msm_g2(self, points: Sequence, scalars: Sequence[int]):
        raise NotImplementedError

    def prove_batch(
        self,
        ppk,
        cs,
        assignments: Sequence[Sequence[int]],
        seeds: Sequence[Optional[int]],
    ) -> List:
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled resources (no-op for serial)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ComputeBackend):
    """Everything on the caller's thread -- the default."""

    name = "serial"

    def msm_g1(self, points, scalars):
        return msm_g1(points, scalars)

    def msm_g2(self, points, scalars):
        return msm_g2(points, scalars)

    def prove_batch(self, ppk, cs, assignments, seeds):
        from ..snark.groth16 import prove_prepared

        return [
            prove_prepared(ppk, cs, assignment, seed=seed)
            for assignment, seed in zip(assignments, seeds)
        ]


class ProcessBackend(ComputeBackend):
    """Fan work out to a ``multiprocessing`` pool.

    ``min_msm_chunk`` guards against paying pickling latency on MSMs too
    small to win from parallelism; below ``2 * min_msm_chunk`` pairs the
    call runs serially.
    """

    name = "process"

    def __init__(self, workers_count: Optional[int] = None, *, min_msm_chunk: int = 1024):
        self.workers = workers_count or os.cpu_count() or 2
        self.min_msm_chunk = min_msm_chunk
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            self._ctx = multiprocessing.get_context("spawn")
        self._pool = None

    # -- pool management ------------------------------------------------------

    def _msm_pool(self):
        if self._pool is None:
            self._pool = self._ctx.Pool(self.workers)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass

    # -- kernels --------------------------------------------------------------

    def msm_g1(self, points, scalars):
        n = len(points)
        if len(scalars) != n:
            raise ValueError("points and scalars must have equal length")
        if n < 2 * self.min_msm_chunk or self.workers < 2:
            return msm_g1(points, scalars)
        chunk = (n + self.workers - 1) // self.workers
        jobs = [
            (points[i : i + chunk], scalars[i : i + chunk])
            for i in range(0, n, chunk)
        ]
        total = G1_INFINITY_JAC
        for partial in self._msm_pool().map(workers.msm_chunk_g1, jobs):
            total = jac_add(total, partial)
        return total

    def msm_g2(self, points, scalars):
        # G2 MSMs in Groth16 are single-digit percent of prove time; the
        # Fp2-object pickling cost outweighs fan-out.
        return msm_g2(points, scalars)

    def prove_batch(self, ppk, cs, assignments, seeds):
        if len(assignments) < 2 or self.workers < 2:
            return SerialBackend().prove_batch(ppk, cs, assignments, seeds)
        # Dedicated pool per batch: the initializer pickles the prepared key
        # once per worker, after which each task ships only its assignment.
        pool = self._ctx.Pool(
            min(self.workers, len(assignments)),
            initializer=workers.init_prove_worker,
            initargs=(ppk, cs),
        )
        try:
            return pool.map(workers.prove_task, list(zip(assignments, seeds)))
        finally:
            pool.terminate()
            pool.join()

    def __repr__(self) -> str:
        return f"ProcessBackend(workers={self.workers})"


def get_backend(
    name: Optional[str] = None, workers_count: Optional[int] = None
) -> ComputeBackend:
    """Build a backend by name, falling back to the environment.

    ``name`` defaults to ``$ZKROWNN_BACKEND`` (then ``"serial"``);
    ``workers_count`` defaults to ``$ZKROWNN_WORKERS`` (then CPU count).
    """
    name = (name or os.environ.get("ZKROWNN_BACKEND") or "serial").lower()
    if workers_count is None:
        env_workers = os.environ.get("ZKROWNN_WORKERS")
        workers_count = int(env_workers) if env_workers else None
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return ProcessBackend(workers_count)
    raise ValueError(
        f"unknown backend {name!r}: expected 'serial' or 'process'"
    )
