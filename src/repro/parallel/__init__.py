"""Compute backends: serial by default, multi-process for large workloads.

The prover's inner loops (MSM, batched claim proving) are embarrassingly
parallel; this package abstracts *where* they run.  :class:`SerialBackend`
is the zero-dependency default; :class:`ProcessBackend` fans chunks out to
a ``multiprocessing`` pool.  Selection is explicit (engine config) or via
the ``ZKROWNN_BACKEND`` / ``ZKROWNN_WORKERS`` environment variables.
"""

from .backend import (
    ComputeBackend,
    ProcessBackend,
    SerialBackend,
    get_backend,
)

__all__ = [
    "ComputeBackend",
    "SerialBackend",
    "ProcessBackend",
    "get_backend",
]
