"""Tests for the R1CS -> QAP reduction.

The central identity: for a satisfying assignment,
``u(X) v(X) - w(X) = h(X) t(X)`` as polynomials, where u, v, w are the
witness-weighted QAP polynomials.  These tests verify it directly with the
reference Polynomial class.
"""

import random

import pytest

from repro.field.ntt import EvaluationDomain
from repro.field.poly import Polynomial
from repro.field.prime import BN254_R as R
from repro.snark.qap import _lagrange_basis_at, compute_h, evaluate_qap_at, qap_domain
from repro.snark.r1cs import ConstraintSystem, LinearCombination as LC


def cubic_cs():
    cs = ConstraintSystem()
    y = cs.allocate_public("y")
    x = cs.allocate_private("x")
    x2 = cs.allocate_private("x2")
    x3 = cs.allocate_private("x3")
    cs.enforce(LC.variable(x), LC.variable(x), LC.variable(x2))
    cs.enforce(LC.variable(x2), LC.variable(x), LC.variable(x3))
    cs.enforce(
        LC.variable(x3) + LC.variable(x) + LC.constant(5),
        LC.constant(1),
        LC.variable(y),
    )
    assignment = [1, 35, 3, 9, 27]
    return cs, assignment


class TestLagrangeBasis:
    def test_partition_of_unity(self):
        domain = EvaluationDomain(8)
        tau = 123456789
        basis = _lagrange_basis_at(domain, tau)
        assert sum(basis) % R == 1

    def test_matches_reference_interpolation(self):
        domain = EvaluationDomain(4)
        tau = 987654321
        basis = _lagrange_basis_at(domain, tau)
        points = domain.elements()
        for k in range(4):
            values = [1 if i == k else 0 for i in range(4)]
            reference = Polynomial.interpolate(points, values)
            assert basis[k] == reference(tau)

    def test_degenerate_tau_on_domain(self):
        domain = EvaluationDomain(4)
        tau = domain.elements()[2]
        basis = _lagrange_basis_at(domain, tau)
        assert basis == [0, 0, 1, 0]


class TestQapEvaluation:
    def test_qap_identity_at_tau(self):
        """u(tau) v(tau) - w(tau) == h(tau) t(tau) for a valid witness."""
        cs, assignment = cubic_cs()
        tau = 0xDEADBEEF
        qap = evaluate_qap_at(cs, tau)
        u = sum(z * uj for z, uj in zip(assignment, qap.u)) % R
        v = sum(z * vj for z, vj in zip(assignment, qap.v)) % R
        w = sum(z * wj for z, wj in zip(assignment, qap.w)) % R
        h_coeffs = compute_h(cs, assignment)
        h_at_tau = Polynomial(h_coeffs)(tau)
        assert (u * v - w) % R == h_at_tau * qap.t_at_tau % R

    def test_identity_fails_for_invalid_witness(self):
        cs, assignment = cubic_cs()
        bad = list(assignment)
        bad[2] = 4  # x = 4 but y still 35
        tau = 12345
        qap = evaluate_qap_at(cs, tau)
        u = sum(z * uj for z, uj in zip(bad, qap.u)) % R
        v = sum(z * vj for z, vj in zip(bad, qap.v)) % R
        w = sum(z * wj for z, wj in zip(bad, qap.w)) % R
        h_coeffs = compute_h(cs, bad)
        h_at_tau = Polynomial(h_coeffs)(tau)
        assert (u * v - w) % R != h_at_tau * qap.t_at_tau % R

    def test_domain_size_power_of_two(self):
        cs, _ = cubic_cs()
        assert qap_domain(cs).size == 4

    def test_h_degree_bound(self):
        cs, assignment = cubic_cs()
        h = compute_h(cs, assignment)
        # deg h <= |H| - 2, so top coefficient vanishes.
        assert h[-1] == 0

    def test_qap_matches_polynomial_interpolation(self):
        """Spot-check one variable's u_j(tau) against direct interpolation."""
        cs, _ = cubic_cs()
        domain = qap_domain(cs)
        tau = 55555
        qap = evaluate_qap_at(cs, tau)
        # Variable x (index 2) appears in A of constraints 0, and B of 0/1...
        target = 2
        values = []
        for k in range(domain.size):
            if k < cs.num_constraints:
                values.append(cs.constraints[k][0].terms.get(target, 0))
            else:
                values.append(0)
        reference = Polynomial.interpolate(domain.elements(), values)
        assert qap.u[target] == reference(tau)


class TestComputeHProperties:
    def test_quotient_is_exact_polynomial_division(self):
        """h from the coset trick equals the honest polynomial division."""
        cs, assignment = cubic_cs()
        domain = qap_domain(cs)
        pts = domain.elements()
        ua = [c[0].evaluate(assignment) if i < 3 else 0 for i, c in
              enumerate(cs.constraints + [None] * (domain.size - 3))][: domain.size]
        # Build u, v, w polynomials by interpolation.
        def combined(selector):
            vals = []
            for k in range(domain.size):
                if k < cs.num_constraints:
                    vals.append(cs.constraints[k][selector].evaluate(assignment))
                else:
                    vals.append(0)
            return Polynomial.interpolate(pts, vals)

        u, v, w = combined(0), combined(1), combined(2)
        t = Polynomial([-1] + [0] * (domain.size - 1) + [1])  # X^n - 1
        quotient, remainder = (u * v - w).divmod(t)
        assert remainder.is_zero()
        assert Polynomial(compute_h(cs, assignment)) == quotient
