"""Tests for neural-network layers, including finite-difference gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import (
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Sigmoid,
    col2im,
    im2col,
)

EPS = 1e-5
TOL = 1e-4


def numeric_grad_wrt_input(layer, x, grad_out):
    """Finite-difference gradient of sum(out * grad_out) wrt x."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + EPS
        plus = float((layer.forward(x) * grad_out).sum())
        flat[i] = orig - EPS
        minus = float((layer.forward(x) * grad_out).sum())
        flat[i] = orig
        gflat[i] = (plus - minus) / (2 * EPS)
    return grad


def numeric_grad_wrt_param(layer, x, grad_out, pname):
    param = layer.params[pname]
    grad = np.zeros_like(param)
    flat = param.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + EPS
        plus = float((layer.forward(x) * grad_out).sum())
        flat[i] = orig - EPS
        minus = float((layer.forward(x) * grad_out).sum())
        flat[i] = orig
        gflat[i] = (plus - minus) / (2 * EPS)
    return grad


class TestDense:
    def test_forward_shape(self, nprng):
        layer = Dense(4, 3, rng=nprng)
        assert layer.forward(nprng.normal(size=(5, 4))).shape == (5, 3)

    def test_forward_matches_numpy(self, nprng):
        layer = Dense(4, 3, rng=nprng)
        x = nprng.normal(size=(2, 4))
        np.testing.assert_allclose(
            layer.forward(x), x @ layer.params["W"].T + layer.params["b"]
        )

    def test_input_gradient(self, nprng):
        layer = Dense(4, 3, rng=nprng)
        x = nprng.normal(size=(2, 4))
        grad_out = nprng.normal(size=(2, 3))
        layer.forward(x, training=True)
        layer.grads.clear()
        got = layer.backward(grad_out)
        np.testing.assert_allclose(
            got, numeric_grad_wrt_input(layer, x, grad_out), atol=TOL
        )

    @pytest.mark.parametrize("pname", ["W", "b"])
    def test_param_gradients(self, pname, nprng):
        layer = Dense(4, 3, rng=nprng)
        x = nprng.normal(size=(2, 4))
        grad_out = nprng.normal(size=(2, 3))
        layer.forward(x, training=True)
        layer.grads.clear()
        layer.backward(grad_out)
        np.testing.assert_allclose(
            layer.grads[pname],
            numeric_grad_wrt_param(layer, x, grad_out, pname),
            atol=TOL,
        )

    def test_gradients_accumulate(self, nprng):
        layer = Dense(3, 2, rng=nprng)
        x = nprng.normal(size=(2, 3))
        grad_out = nprng.normal(size=(2, 2))
        layer.forward(x, training=True)
        layer.grads.clear()
        layer.backward(grad_out)
        first = layer.grads["W"].copy()
        layer.forward(x, training=True)
        layer.backward(grad_out)
        np.testing.assert_allclose(layer.grads["W"], 2 * first)

    def test_backward_without_forward_raises(self, nprng):
        layer = Dense(3, 2, rng=nprng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))


class TestActivations:
    def test_relu_forward(self):
        layer = ReLU()
        x = np.array([[-1.0, 0.0, 2.0]])
        np.testing.assert_allclose(layer.forward(x), [[0, 0, 2]])

    def test_relu_gradient(self, nprng):
        layer = ReLU()
        x = nprng.normal(size=(3, 5)) + 0.1  # avoid the kink
        grad_out = nprng.normal(size=(3, 5))
        layer.forward(x, training=True)
        got = layer.backward(grad_out)
        np.testing.assert_allclose(
            got, numeric_grad_wrt_input(layer, x, grad_out), atol=TOL
        )

    def test_sigmoid_forward_range(self, nprng):
        layer = Sigmoid()
        out = layer.forward(nprng.normal(size=(4, 4)) * 3)
        assert ((out > 0) & (out < 1)).all()

    def test_sigmoid_gradient(self, nprng):
        layer = Sigmoid()
        x = nprng.normal(size=(2, 3))
        grad_out = nprng.normal(size=(2, 3))
        layer.forward(x, training=True)
        got = layer.backward(grad_out)
        np.testing.assert_allclose(
            got, numeric_grad_wrt_input(layer, x, grad_out), atol=TOL
        )


class TestIm2Col:
    def test_round_trip_counts_overlaps(self, nprng):
        x = nprng.normal(size=(2, 3, 4, 4))
        cols, _ = im2col(x, kernel=2, stride=2)  # non-overlapping
        back = col2im(cols, x.shape, kernel=2, stride=2)
        np.testing.assert_allclose(back, x)

    def test_shapes(self, nprng):
        cols, (oh, ow) = im2col(nprng.normal(size=(1, 2, 5, 5)), 3, 1)
        assert (oh, ow) == (3, 3)
        assert cols.shape == (1, 9, 18)


class TestConv2D:
    def test_forward_shape(self, nprng):
        layer = Conv2D(3, 8, kernel=3, stride=2, rng=nprng)
        out = layer.forward(nprng.normal(size=(2, 3, 9, 9)))
        assert out.shape == (2, 8, 4, 4)

    def test_input_gradient(self, nprng):
        layer = Conv2D(2, 3, kernel=2, stride=1, rng=nprng)
        x = nprng.normal(size=(2, 2, 4, 4))
        grad_out = nprng.normal(size=(2, 3, 3, 3))
        layer.forward(x, training=True)
        layer.grads.clear()
        got = layer.backward(grad_out)
        np.testing.assert_allclose(
            got, numeric_grad_wrt_input(layer, x, grad_out), atol=TOL
        )

    @pytest.mark.parametrize("pname", ["W", "b"])
    def test_param_gradients(self, pname, nprng):
        layer = Conv2D(2, 3, kernel=2, stride=1, rng=nprng)
        x = nprng.normal(size=(2, 2, 4, 4))
        grad_out = nprng.normal(size=(2, 3, 3, 3))
        layer.forward(x, training=True)
        layer.grads.clear()
        layer.backward(grad_out)
        np.testing.assert_allclose(
            layer.grads[pname],
            numeric_grad_wrt_param(layer, x, grad_out, pname),
            atol=TOL,
        )

    def test_strided_gradient(self, nprng):
        layer = Conv2D(1, 2, kernel=3, stride=2, rng=nprng)
        x = nprng.normal(size=(1, 1, 7, 7))
        grad_out = nprng.normal(size=(1, 2, 3, 3))
        layer.forward(x, training=True)
        layer.grads.clear()
        got = layer.backward(grad_out)
        np.testing.assert_allclose(
            got, numeric_grad_wrt_input(layer, x, grad_out), atol=TOL
        )


class TestMaxPool:
    def test_forward_matches_reference(self, nprng):
        layer = MaxPool2D(pool=2, stride=2)
        x = nprng.normal(size=(1, 1, 4, 4))
        out = layer.forward(x)
        expected = x.reshape(1, 1, 2, 2, 2, 2).max(axis=(3, 5))
        np.testing.assert_allclose(out, expected)

    def test_gradient_routes_to_argmax(self, nprng):
        layer = MaxPool2D(pool=2, stride=2)
        x = nprng.normal(size=(2, 2, 4, 4))
        grad_out = nprng.normal(size=(2, 2, 2, 2))
        layer.forward(x, training=True)
        got = layer.backward(grad_out)
        np.testing.assert_allclose(
            got, numeric_grad_wrt_input(layer, x, grad_out), atol=TOL
        )

    def test_overlapping_windows_gradient(self, nprng):
        layer = MaxPool2D(pool=2, stride=1)
        x = nprng.normal(size=(1, 1, 4, 4))
        grad_out = nprng.normal(size=(1, 1, 3, 3))
        layer.forward(x, training=True)
        got = layer.backward(grad_out)
        np.testing.assert_allclose(
            got, numeric_grad_wrt_input(layer, x, grad_out), atol=TOL
        )


class TestFlatten:
    def test_round_trip(self, nprng):
        layer = Flatten()
        x = nprng.normal(size=(2, 3, 4, 4))
        out = layer.forward(x, training=True)
        assert out.shape == (2, 48)
        back = layer.backward(out)
        np.testing.assert_allclose(back, x)
