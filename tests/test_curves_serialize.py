"""Tests for compressed point serialization."""

import pytest

from repro.curves.g1 import G1Point
from repro.curves.g2 import G2Point
from repro.curves.serialize import (
    G1_COMPRESSED_BYTES,
    G2_COMPRESSED_BYTES,
    PointDecodingError,
    _fp2_sqrt,
    g1_from_bytes,
    g1_to_bytes,
    g2_from_bytes,
    g2_to_bytes,
)
from repro.field.tower import Fp2Element

G = G1Point.generator()
H = G2Point.generator()


class TestG1Serialization:
    @pytest.mark.parametrize("k", [1, 2, 3, 7919, 123456789])
    def test_round_trip(self, k):
        p = G * k
        assert g1_from_bytes(g1_to_bytes(p)) == p

    def test_round_trip_negative(self):
        p = -(G * 5)
        assert g1_from_bytes(g1_to_bytes(p)) == p

    def test_infinity(self):
        data = g1_to_bytes(G1Point.infinity())
        assert len(data) == G1_COMPRESSED_BYTES
        assert g1_from_bytes(data).is_infinity()

    def test_size(self):
        assert len(g1_to_bytes(G)) == 32

    def test_wrong_length_rejected(self):
        with pytest.raises(PointDecodingError):
            g1_from_bytes(b"\x00" * 31)

    def test_not_on_curve_rejected(self):
        # x = 0 -> y^2 = 3, and 3 is a non-residue mod p for this curve.
        with pytest.raises(PointDecodingError):
            g1_from_bytes(bytes(32))

    def test_malformed_infinity_rejected(self):
        data = bytearray(g1_to_bytes(G1Point.infinity()))
        data[5] = 1
        with pytest.raises(PointDecodingError):
            g1_from_bytes(bytes(data))

    def test_x_out_of_range_rejected(self):
        data = bytearray(32)
        data[0] = 0x3F
        for i in range(1, 32):
            data[i] = 0xFF
        with pytest.raises(PointDecodingError):
            g1_from_bytes(bytes(data))

    def test_sign_bit_distinguishes_roots(self):
        p = G * 11
        q = -p
        assert g1_to_bytes(p) != g1_to_bytes(q)


class TestG2Serialization:
    @pytest.mark.parametrize("k", [1, 2, 5, 99991])
    def test_round_trip(self, k):
        p = H * k
        assert g2_from_bytes(g2_to_bytes(p)) == p

    def test_round_trip_negative(self):
        p = -(H * 3)
        assert g2_from_bytes(g2_to_bytes(p)) == p

    def test_infinity(self):
        data = g2_to_bytes(G2Point.infinity())
        assert len(data) == G2_COMPRESSED_BYTES
        assert g2_from_bytes(data).is_infinity()

    def test_size(self):
        assert len(g2_to_bytes(H)) == 64

    def test_wrong_length_rejected(self):
        with pytest.raises(PointDecodingError):
            g2_from_bytes(b"\x00" * 63)

    def test_subgroup_check_accepts_valid(self):
        assert g2_from_bytes(g2_to_bytes(H * 7), check_subgroup=True) == H * 7

    def test_malformed_infinity_rejected(self):
        data = bytearray(g2_to_bytes(G2Point.infinity()))
        data[40] = 9
        with pytest.raises(PointDecodingError):
            g2_from_bytes(bytes(data))


class TestFp2Sqrt:
    def test_sqrt_of_squares(self, rng):
        from repro.field.prime import BN254_P as P

        for _ in range(10):
            a = Fp2Element(rng.randrange(P), rng.randrange(P))
            sq = a.square()
            root = _fp2_sqrt(sq)
            assert root == a or root == -a

    def test_sqrt_of_zero(self):
        assert _fp2_sqrt(Fp2Element.zero()).is_zero()

    def test_sqrt_of_real_square(self):
        a = Fp2Element(49, 0)
        root = _fp2_sqrt(a)
        assert root.square() == a

    def test_non_square_rejected(self):
        # Find an Fp2 non-square deterministically: x is a square iff
        # norm(x)^((p-1)/2) == 1.
        from repro.field.prime import BN254_P as P

        for c0 in range(1, 50):
            cand = Fp2Element(c0, 1)
            norm = (c0 * c0 + 1) % P
            if pow(norm, (P - 1) // 2, P) != 1:
                with pytest.raises(PointDecodingError):
                    _fp2_sqrt(cand)
                return
        pytest.skip("no small non-square found")
