"""Tests for G2 arithmetic, the psi endomorphism, and the Jacobian path."""

import pytest

from repro.curves.bn254 import G2_COFACTOR, R
from repro.curves.g2 import (
    G2_INFINITY_JAC,
    G2Point,
    g2_from_jacobian,
    g2_jac_add,
    g2_jac_double,
    g2_jac_is_infinity,
    g2_jac_scalar_mul,
    g2_to_jacobian,
    psi,
)
from repro.field.tower import Fp2Element

H = G2Point.generator()


class TestGroupLaw:
    def test_generator_on_curve(self):
        assert H.is_on_curve()

    def test_generator_in_subgroup(self):
        assert H.in_subgroup()

    def test_identity(self):
        inf = G2Point.infinity()
        assert H + inf == H
        assert inf + H == H

    def test_add_commutes(self):
        assert H * 3 + H * 5 == H * 5 + H * 3

    def test_add_associative(self):
        a, b, c = H * 2, H * 3, H * 7
        assert (a + b) + c == a + (b + c)

    def test_double(self):
        assert H.double() == H + H

    def test_neg_cancels(self):
        assert (H * 4 + (-(H * 4))).is_infinity()

    def test_sub(self):
        assert H * 9 - H * 2 == H * 7

    def test_order_annihilates(self):
        assert (H * R).is_infinity()

    def test_negative_scalar(self):
        assert H * (-3) == -(H * 3)

    def test_small_multiples(self):
        acc = G2Point.infinity()
        for k in range(1, 8):
            acc = acc + H
            assert H * k == acc


class TestPsi:
    def test_psi_stays_on_curve(self):
        assert psi(H).is_on_curve()

    def test_psi_of_infinity(self):
        assert psi(G2Point.infinity()).is_infinity()

    def test_psi_commutes_with_scalar(self):
        # psi is an endomorphism: psi(kQ) == k psi(Q).
        assert psi(H * 17) == psi(H) * 17

    def test_psi_eigenvalue_is_p_on_subgroup(self):
        # On the order-r subgroup, psi acts as multiplication by p mod r.
        from repro.curves.bn254 import P

        assert psi(H) == H * (P % R)


class TestCofactor:
    def test_clear_cofactor_lands_in_subgroup(self):
        # Take a curve point NOT in the subgroup: scale x until on-curve.
        from repro.curves.bn254 import TWIST_B
        from repro.field.prime import BN254_P as p
        from repro.field.prime import tonelli_shanks

        # Deterministic search for an off-subgroup point.
        x = Fp2Element(1, 1)
        point = None
        for offset in range(50):
            candidate_x = Fp2Element(1 + offset, 1)
            rhs = candidate_x.square() * candidate_x + TWIST_B
            # Try to take an Fp2 sqrt via the serializer's helper.
            from repro.curves.serialize import _fp2_sqrt, PointDecodingError

            try:
                y = _fp2_sqrt(rhs)
            except (PointDecodingError, ValueError):
                continue
            point = G2Point(candidate_x, y)
            break
        assert point is not None, "no twist point found"
        assert point.is_on_curve()
        cleared = point.clear_cofactor()
        assert cleared.in_subgroup()


class TestJacobianFastPath:
    def test_round_trip(self):
        assert g2_from_jacobian(g2_to_jacobian(H * 5)) == H * 5

    def test_add_matches_affine(self):
        got = g2_from_jacobian(
            g2_jac_add(g2_to_jacobian(H * 3), g2_to_jacobian(H * 4))
        )
        assert got == H * 7

    def test_double_matches_affine(self):
        got = g2_from_jacobian(g2_jac_double(g2_to_jacobian(H * 6)))
        assert got == H * 12

    def test_add_with_infinity(self):
        assert g2_from_jacobian(
            g2_jac_add(G2_INFINITY_JAC, g2_to_jacobian(H))
        ) == H

    def test_add_inverse_is_infinity(self):
        a = g2_to_jacobian(H * 2)
        b = g2_to_jacobian(-(H * 2))
        assert g2_jac_is_infinity(g2_jac_add(a, b))

    def test_add_equal_doubles(self):
        a = g2_to_jacobian(H * 5)
        assert g2_from_jacobian(g2_jac_add(a, a)) == H * 10

    def test_scalar_mul_matches_class(self):
        for k in (1, 2, 100, 987654321):
            assert g2_from_jacobian(
                g2_jac_scalar_mul(g2_to_jacobian(H), k)
            ) == H * k

    def test_scalar_zero(self):
        assert g2_jac_is_infinity(g2_jac_scalar_mul(g2_to_jacobian(H), 0))


class TestValidation:
    def test_off_curve_detected(self):
        bad = G2Point(Fp2Element(1, 0), Fp2Element(1, 0))
        assert not bad.is_on_curve()
        assert not bad.in_subgroup()

    def test_repr(self):
        assert "G2Point" in repr(H)
        assert "infinity" in repr(G2Point.infinity())
