"""Metrics registry, Prometheus exposition, and structured-log tests.

The exposition contract matters more than the internals: every line of
``render()`` (and of a live ``GET /metrics`` scrape) must parse as
Prometheus text, histogram buckets must be cumulative and monotone, and
counters must never decrease between scrapes.
"""

import io
import json
import math
import re
import urllib.request

import pytest

from repro.obs import (
    configure_logging,
    get_logger,
    get_metrics,
    reinit_metrics_after_fork,
    set_kernel_profiling,
    set_obs_enabled,
)
from repro.obs.logging import LOG_LEVEL_ENV, Logger
from repro.obs.metrics import (
    KERNEL_BUCKETS,
    MetricsRegistry,
    kernel_profiling_enabled,
    obs_enabled,
    observe_kernel,
    size_bucket,
)

# -- exposition-format helpers -------------------------------------------------

_HELP_RE = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$")
_TYPE_RE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|untyped)$"
)
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (?P<value>[^ ]+)$"
)


def parse_exposition(text):
    """Strict parse: every line must be HELP, TYPE, or a sample.

    Returns ``{(name, labels_str): float_value}``.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    samples = {}
    for line in text.splitlines():
        if line.startswith("# HELP"):
            assert _HELP_RE.match(line), f"bad HELP line: {line!r}"
            continue
        if line.startswith("# TYPE"):
            assert _TYPE_RE.match(line), f"bad TYPE line: {line!r}"
            continue
        match = _SAMPLE_RE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        value = match.group("value")
        parsed = math.inf if value == "+Inf" else float(value)
        key = (match.group("name"), match.group("labels") or "")
        assert key not in samples, f"duplicate series: {line!r}"
        samples[key] = parsed
    return samples


def assert_histogram_wellformed(samples, family):
    """Cumulative-bucket and sum/count invariants for one histogram."""
    by_labelset = {}
    for (name, labels), value in samples.items():
        if name == f"{family}_bucket":
            le = re.search(r'le="([^"]*)"', labels).group(1)
            rest = re.sub(r',?le="[^"]*"', "", labels).replace("{}", "")
            bound = math.inf if le == "+Inf" else float(le)
            by_labelset.setdefault(rest, []).append((bound, value))
    assert by_labelset, f"no bucket series for {family}"
    for rest, buckets in by_labelset.items():
        buckets.sort()
        assert buckets[-1][0] == math.inf, "histogram must end at le=+Inf"
        counts = [count for _, count in buckets]
        assert counts == sorted(counts), (
            f"buckets of {family}{rest} are not cumulative: {buckets}"
        )
        count_key = (f"{family}_count", rest)
        assert samples[count_key] == counts[-1]
        assert (f"{family}_sum", rest) in samples


@pytest.fixture()
def obs_on():
    previous = set_obs_enabled(True)
    try:
        yield
    finally:
        set_obs_enabled(previous)


# -- registry units ------------------------------------------------------------


class TestCounter:
    def test_inc_and_labels(self, obs_on):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", "jobs")
        counter.inc()
        counter.inc(2, state="done")
        counter.inc(state="done")
        assert counter.value() == 1
        assert counter.value(state="done") == 3

    def test_negative_increment_rejected(self, obs_on):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_disabled_is_a_no_op(self):
        counter = MetricsRegistry().counter("c_total")
        previous = set_obs_enabled(False)
        try:
            counter.inc(5)
        finally:
            set_obs_enabled(previous)
        assert counter.value() == 0


class TestGauge:
    def test_set_inc_dec(self, obs_on):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(7)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 8


class TestHistogram:
    def test_snapshot_is_cumulative(self, obs_on):
        hist = MetricsRegistry().histogram(
            "lat_seconds", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 5
        assert snap["buckets"][0.1] == 1
        assert snap["buckets"][1.0] == 3
        assert snap["buckets"][10.0] == 4
        assert snap["buckets"][math.inf] == 5
        assert snap["sum"] == pytest.approx(56.05)

    def test_conflicting_family_rejected(self, obs_on):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.histogram("thing")

    def test_get_or_create_is_idempotent(self, obs_on):
        registry = MetricsRegistry()
        assert registry.counter("x_total") is registry.counter("x_total")


class TestRender:
    def test_every_line_parses(self, obs_on):
        registry = MetricsRegistry()
        registry.counter("a_total", "a counter").inc(3, kind="x")
        registry.gauge("b", "a gauge").set(1.5)
        hist = registry.histogram("c_seconds", "a histogram",
                                  buckets=(0.1, 1.0))
        hist.observe(0.05, stage="s")
        hist.observe(2.0, stage="s")
        samples = parse_exposition(registry.render())
        assert samples[("a_total", '{kind="x"}')] == 3
        assert samples[("b", "")] == 1.5
        assert_histogram_wellformed(samples, "c_seconds")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == "\n"


# -- kernel profiling ----------------------------------------------------------


class TestKernelProfiling:
    def test_size_bucket(self):
        assert size_bucket(0) == "0"
        assert size_bucket(1) == "2^0"
        assert size_bucket(2) == "2^1"
        assert size_bucket(1000) == "2^10"
        assert size_bucket(1024) == "2^10"
        assert size_bucket(1025) == "2^11"

    def test_requires_both_flags(self, obs_on):
        prev_kernel = set_kernel_profiling(True)
        try:
            assert kernel_profiling_enabled()
            prev_obs = set_obs_enabled(False)
            try:
                assert not kernel_profiling_enabled()
            finally:
                set_obs_enabled(prev_obs)
        finally:
            set_kernel_profiling(prev_kernel)

    def test_observe_kernel_buckets_by_size(self, obs_on):
        reinit_metrics_after_fork()  # fresh process registry
        observe_kernel("msm", 1000, 0.02, group="g1")
        hist = get_metrics().histogram(
            "zkrownn_msm_seconds", buckets=KERNEL_BUCKETS
        )
        assert hist.snapshot(n="2^10", group="g1")["count"] == 1

    def test_msm_lands_in_histogram_when_enabled(self, obs_on):
        from repro.curves.bn254 import G1_GENERATOR
        from repro.curves.msm import msm_g1

        reinit_metrics_after_fork()
        prev = set_kernel_profiling(True)
        try:
            msm_g1([G1_GENERATOR] * 4, [1, 2, 3, 4])
        finally:
            set_kernel_profiling(prev)
        hist = get_metrics().histogram(
            "zkrownn_msm_seconds", buckets=KERNEL_BUCKETS
        )
        assert hist.snapshot(n="2^2", group="g1")["count"] == 1

    def test_ntt_profiled_fwd_and_inv(self, obs_on):
        from repro.field.ntt import get_domain, intt, ntt

        reinit_metrics_after_fork()
        omega = get_domain(8).omega
        prev = set_kernel_profiling(True)
        try:
            evals = ntt([1, 2, 3, 4, 5, 6, 7, 8], omega)
            intt(evals, omega)  # runs a nested forward transform
        finally:
            set_kernel_profiling(prev)
        hist = get_metrics().histogram(
            "zkrownn_ntt_seconds", buckets=KERNEL_BUCKETS
        )
        assert hist.snapshot(n="2^3", direction="fwd")["count"] == 2
        assert hist.snapshot(n="2^3", direction="inv")["count"] == 1


class TestForkAwareness:
    def test_reinit_discards_registry(self, obs_on):
        first = get_metrics()
        first.counter("stale_total").inc()
        reinit_metrics_after_fork()
        second = get_metrics()
        assert second is not first
        assert "stale_total" not in second.names()
        assert second is get_metrics()


# -- live /metrics scrapes -----------------------------------------------------


class TestMetricsEndpoint:
    def test_scrapes_parse_and_counters_never_decrease(
        self, tmp_path, obs_on
    ):
        from repro.service import ClaimRegistry, ProofServer, ProofService

        reinit_metrics_after_fork()
        server = ProofServer(
            ProofService(ClaimRegistry(tmp_path / "reg"))
        ).start()
        try:
            def scrape():
                with urllib.request.urlopen(
                    f"{server.url}/metrics", timeout=10
                ) as response:
                    assert response.headers["Content-Type"].startswith(
                        "text/plain; version=0.0.4"
                    )
                    return parse_exposition(response.read().decode())

            first = scrape()
            # Work between scrapes: more HTTP traffic, a 404.
            for path in ("/healthz", "/stats", "/vks"):
                urllib.request.urlopen(f"{server.url}{path}", timeout=10).read()
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"{server.url}/claims/{'0' * 64}", timeout=10
                )
            second = scrape()

            assert ("zkrownn_http_requests_total",
                    '{code="200",method="GET"}') in second
            assert ("zkrownn_uptime_seconds", "") in second
            for (name, labels), value in first.items():
                if name.endswith("_total") or name.endswith("_count") \
                        or name.endswith("_bucket"):
                    assert second.get((name, labels), 0) >= value, (
                        f"{name}{labels} decreased between scrapes"
                    )
        finally:
            server.stop()


# -- structured logging --------------------------------------------------------


class TestStructuredLogging:
    def test_level_gating_and_json_lines(self):
        stream = io.StringIO()
        configure_logging(level="info", stream=stream)
        try:
            log = get_logger("test-component")
            log.debug("too.quiet", detail=1)
            log.info("loud.enough", claim_id="abc", n=2)
            log.error("very.loud")
        finally:
            import sys

            configure_logging(level="warning", stream=sys.stderr)
        lines = [l for l in stream.getvalue().splitlines() if l]
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["level"] == "info"
        assert first["component"] == "test-component"
        assert first["event"] == "loud.enough"
        assert first["claim_id"] == "abc"
        assert json.loads(lines[1])["level"] == "error"

    def test_off_silences_everything(self):
        stream = io.StringIO()
        configure_logging(level="off", stream=stream)
        try:
            get_logger("quiet").error("should.not.appear")
        finally:
            import sys

            configure_logging(level="warning", stream=sys.stderr)
        assert stream.getvalue() == ""

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging(level="verbose")

    def test_broken_stream_never_raises(self):
        class Broken:
            def write(self, data):
                raise OSError("stream gone")

            def flush(self):
                raise OSError("stream gone")

        import sys

        configure_logging(level="info", stream=Broken())
        try:
            get_logger("resilient").info("still.fine")
        finally:
            configure_logging(level="warning", stream=sys.stderr)

    def test_env_name_documented(self):
        assert LOG_LEVEL_ENV == "ZKROWNN_LOG_LEVEL"
        assert isinstance(get_logger("x"), Logger)
