"""Tests for zk max pooling."""

import numpy as np
import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.fixedpoint import FixedPointFormat
from repro.gadgets.conv import wire_tensor3
from repro.gadgets.pooling import zk_max, zk_max_of, zk_maxpool2d

FMT = FixedPointFormat(frac_bits=16, total_bits=48)


def maxpool_reference(x, pool, stride):
    c, h, w = x.shape
    oh = (h - pool) // stride + 1
    ow = (w - pool) // stride + 1
    out = np.zeros((c, oh, ow))
    for ch in range(c):
        for i in range(oh):
            for j in range(ow):
                out[ch, i, j] = x[
                    ch, i * stride : i * stride + pool, j * stride : j * stride + pool
                ].max()
    return out


class TestZkMax:
    @pytest.mark.parametrize("a,b_val", [(1.0, 2.0), (2.0, 1.0), (-1.5, -1.4), (0.0, 0.0)])
    def test_pairwise(self, a, b_val):
        builder = CircuitBuilder("max")
        wa = builder.private_input("a", FMT.encode(a))
        wb = builder.private_input("b", FMT.encode(b_val))
        out = zk_max(builder, FMT, wa, wb)
        builder.check()
        assert FMT.decode(out.value) == pytest.approx(max(a, b_val), abs=FMT.resolution())

    def test_max_of_sequence(self, nprng):
        values = nprng.uniform(-3, 3, 7)
        builder = CircuitBuilder("max")
        ws = [builder.private_input(f"x{i}", FMT.encode(v)) for i, v in enumerate(values)]
        out = zk_max_of(builder, FMT, ws)
        builder.check()
        assert FMT.decode(out.value) == pytest.approx(values.max(), abs=FMT.resolution())

    def test_max_of_empty_rejected(self):
        builder = CircuitBuilder("max")
        with pytest.raises(ValueError):
            zk_max_of(builder, FMT, [])

    def test_max_of_single(self):
        builder = CircuitBuilder("max")
        w = builder.private_input("x", FMT.encode(5.0))
        assert zk_max_of(builder, FMT, [w]) is w


class TestMaxPool:
    @pytest.mark.parametrize("pool,stride", [(2, 1), (2, 2), (3, 1)])
    def test_matches_reference(self, pool, stride, nprng):
        x = nprng.uniform(-2, 2, (2, 5, 5))
        builder = CircuitBuilder("mp")
        wx = wire_tensor3(builder, "x", x, FMT)
        out = zk_maxpool2d(builder, FMT, wx, pool, stride)
        builder.check()
        got = np.array(
            [[[FMT.decode(w.value) for w in row] for row in ch] for ch in out]
        )
        np.testing.assert_allclose(
            got, maxpool_reference(x, pool, stride), atol=FMT.resolution()
        )

    def test_table2_pooling_config(self, nprng):
        """MP(2,1), the CIFAR-10 architecture's pooling."""
        x = nprng.uniform(0, 1, (1, 4, 4))
        builder = CircuitBuilder("mp")
        wx = wire_tensor3(builder, "x", x, FMT)
        out = zk_maxpool2d(builder, FMT, wx, 2, 1)
        assert len(out[0]) == 3 and len(out[0][0]) == 3
