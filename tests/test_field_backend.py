"""Field-arithmetic backend tests.

Covers the three backends' agreement on element-level arithmetic (edge
values and random residues), the Montgomery machinery against plain
modular arithmetic, the Montgomery MSM kernels against the stdlib ones,
backend selection/fork semantics, and -- the system-level guarantee
everything else exists to protect -- Groth16 proof byte-identity across
field backends x compute backends.

gmpy2-specific cases run only when the library is importable (the CI
field-backend matrix installs it; the stdlib path needs no dependency).
"""

import importlib.machinery
import random
import sys
import types

import pytest

from repro.curves.bn254 import P, R
from repro.curves.g1 import G1Point, jac_add, jac_to_affine_many
from repro.curves.g2 import G2Point
from repro.curves.msm import (
    _batch_affine_add,
    _batch_affine_add_mont,
    msm_g1,
    msm_g1_multi,
    msm_g2,
    msm_g2_unsigned,
    naive_msm_g2,
)
from repro.field.backend import (
    FIELD_BACKEND_ENV,
    Gmpy2FieldOps,
    MontgomeryFieldOps,
    PythonFieldOps,
    active_field_backend,
    available_field_backends,
    get_field_ops,
    gmpy2_available,
    numpy_available,
    reinit_field_backend_after_fork,
    resolve_field_backend,
    set_field_backend,
)
from repro.field.ntt import get_domain, ntt
from repro.field.prime import Fp, Fr, batch_inverse_ints

EDGE_VALUES = [0, 1, 2, 3, P - 1, P - 2, P // 2, 1 << 255]


@pytest.fixture(autouse=True)
def _unpin_backend_after_test():
    yield
    set_field_backend(None)


def _random_residues(count, seed=1234):
    rng = random.Random(seed)
    return [rng.randrange(P) for _ in range(count)]


def _all_ops(modulus):
    ops = [PythonFieldOps(modulus), MontgomeryFieldOps(modulus)]
    if gmpy2_available():
        ops.append(Gmpy2FieldOps(modulus))
    return ops


# ---------------------------------------------------------------- selection --


class TestSelection:
    def test_default_resolution_prefers_gmpy2_when_importable(self, monkeypatch):
        monkeypatch.delenv(FIELD_BACKEND_ENV, raising=False)
        expected = "gmpy2" if gmpy2_available() else "python"
        assert resolve_field_backend() == expected
        assert resolve_field_backend("auto") == expected

    def test_env_variable_selects_backend(self, monkeypatch):
        monkeypatch.setenv(FIELD_BACKEND_ENV, "montgomery")
        set_field_backend(None)  # drop any pin so the env is consulted
        assert active_field_backend() == "montgomery"
        assert get_field_ops(P).montgomery_kernels

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown field backend"):
            resolve_field_backend("cuda")

    def test_gmpy2_without_library_is_an_error_not_a_downgrade(self):
        if gmpy2_available():
            pytest.skip("gmpy2 installed: explicit selection is valid here")
        with pytest.raises(ValueError, match="gmpy2 is not importable"):
            resolve_field_backend("gmpy2")

    def test_set_and_restore_roundtrip(self):
        previous = set_field_backend("montgomery")
        assert active_field_backend() == "montgomery"
        set_field_backend(previous)
        assert active_field_backend() in available_field_backends()

    def test_ops_cached_per_modulus_and_swapped_on_switch(self):
        set_field_backend("python")
        first = get_field_ops(P)
        assert get_field_ops(P) is first
        set_field_backend("montgomery")
        assert get_field_ops(P) is not first
        assert get_field_ops(P).name == "montgomery"

    def test_reinit_after_fork_drops_pin(self, monkeypatch):
        monkeypatch.delenv(FIELD_BACKEND_ENV, raising=False)
        set_field_backend("montgomery")
        reinit_field_backend_after_fork()
        # Back to environment resolution, as a worker process would be.
        assert active_field_backend() == resolve_field_backend()

    def test_prime_field_ops_property_tracks_active_backend(self):
        set_field_backend("montgomery")
        assert Fp.ops.name == "montgomery"
        assert Fr.ops.modulus == R


# --------------------------------------------------------------- arithmetic --


class TestOpsAgreement:
    @pytest.mark.parametrize("modulus", [P, R])
    def test_mulmod_inverse_exp_agree_across_backends(self, modulus):
        all_ops = _all_ops(modulus)
        values = [v % modulus for v in EDGE_VALUES] + _random_residues(16)
        rng = random.Random(99)
        for a in values:
            b = rng.randrange(modulus)
            e = rng.randrange(1 << 64)
            expected_mul = a * b % modulus
            expected_exp = pow(a, e, modulus)
            for ops in all_ops:
                na, nb = ops.wrap(a), ops.wrap(b)
                assert ops.unwrap(ops.mulmod(na, nb)) == expected_mul
                assert ops.unwrap(ops.addmod(na, nb)) == (a + b) % modulus
                assert ops.unwrap(ops.submod(na, nb)) == (a - b) % modulus
                assert ops.unwrap(ops.exp(na, e)) == expected_exp
                if a % modulus:
                    assert ops.unwrap(ops.inv(na)) == pow(a, -1, modulus)
                else:
                    with pytest.raises(ZeroDivisionError):
                        ops.inv(na)

    def test_batch_inverse_agrees_and_rejects_zero(self):
        values = _random_residues(50, seed=5)
        expected = [pow(v, -1, P) for v in values]
        for ops in _all_ops(P):
            out = ops.batch_inverse(ops.wrap_many(values))
            assert ops.unwrap_many(out) == expected
            with pytest.raises(ZeroDivisionError):
                ops.batch_inverse(ops.wrap_many(values + [0]))

    def test_batch_inverse_ints_routed_through_backend(self):
        values = _random_residues(10, seed=7)
        out = batch_inverse_ints(values, P)
        assert [int(v) for v in out] == [pow(v, -1, P) for v in values]

    def test_wrap_unwrap_canonicalize(self):
        for ops in _all_ops(P):
            assert ops.unwrap(ops.wrap(-1)) == P - 1
            assert ops.unwrap(ops.wrap(P)) == 0
            assert ops.unwrap_many(ops.wrap_many([P + 5, -3])) == [5, P - 3]


class TestMontgomeryMachinery:
    def test_constants(self):
        ops = PythonFieldOps(P)
        assert ops.mont_r > 4 * P  # lazy-sum REDC input window
        assert ops.mont_r * pow(ops.mont_r, -1, P) % P == 1
        assert (P * ops.mont_nprime + 1) % ops.mont_r == 0
        assert ops.mont_r2 == ops.mont_r * ops.mont_r % P
        assert ops.mont_one == ops.to_mont(1)

    def test_roundtrip_and_mul_on_edges_and_random(self):
        ops = PythonFieldOps(P)
        values = [v % P for v in EDGE_VALUES] + _random_residues(32, seed=3)
        rng = random.Random(17)
        for a in values:
            assert ops.from_mont(ops.to_mont(a)) == a
            b = rng.randrange(P)
            ma, mb = ops.to_mont(a), ops.to_mont(b)
            assert ops.from_mont(ops.mont_mul(ma, mb)) == a * b % P
            assert ops.from_mont(ops.mont_exp(ma, 12345)) == pow(a, 12345, P)
            if a:
                assert (
                    ops.from_mont(ops.mont_inv(ma)) == pow(a, -1, P)
                )
        with pytest.raises(ZeroDivisionError):
            ops.mont_inv(ops.to_mont(0))

    def test_redc_handles_negative_inputs_canonically(self):
        ops = PythonFieldOps(P)
        rng = random.Random(23)
        r_inv = pow(ops.mont_r, -1, P)
        for _ in range(64):
            # Chord numerators in the MSM kernel reach (-p^2, p^2).
            t = rng.randrange(P * P) - P * P // 2
            out = ops.redc(t)
            assert 0 <= out < P
            assert out == t * r_inv % P

    def test_montgomery_batch_affine_add_matches_plain(self):
        g = G1Point.generator()
        jacs, acc = [], (g.x, g.y, 1)
        for _ in range(64):
            jacs.append(acc)
            acc = jac_add(acc, (g.x, g.y, 1))
        pts = jac_to_affine_many(jacs)
        # Distinct pairs, doublings (P == Q) and cancellations (P == -Q).
        ps = pts[:32]
        qs = pts[32:]
        ps += [pts[0], pts[1]]
        qs += [pts[0], (pts[1][0], P - pts[1][1])]
        plain = _batch_affine_add(ps, qs)
        ops = MontgomeryFieldOps(P)
        to_m = ops.to_mont
        from_m = ops.from_mont
        mont = _batch_affine_add_mont(
            [(to_m(x), to_m(y)) for x, y in ps],
            [(to_m(x), to_m(y)) for x, y in qs],
            ops,
        )
        assert len(plain) == len(mont)
        for a, b in zip(plain, mont):
            if a is None:
                assert b is None
            else:
                assert a == (from_m(b[0]), from_m(b[1]))


# ------------------------------------------------------------------ kernels --


def _g1_inputs(n, seed=7):
    rng = random.Random(seed)
    g = G1Point.generator()
    jacs, acc = [], (g.x, g.y, 1)
    for _ in range(n):
        jacs.append(acc)
        acc = jac_add(acc, (g.x, g.y, 1))
    points = jac_to_affine_many(jacs)
    return points, [rng.randrange(R) for _ in range(n)]


class TestKernelParityAcrossBackends:
    def test_msm_g1_identical_across_backends(self):
        points, scalars = _g1_inputs(96)
        # Edge cases inside one MSM: infinities, zero scalars, negatives.
        points[3] = None
        scalars[5] = 0
        scalars[7] = R - 1
        reference = None
        for name in available_field_backends():
            set_field_backend(name)
            ops = get_field_ops(P)
            native = [
                None if p is None else (ops.wrap(p[0]), ops.wrap(p[1]))
                for p in points
            ]
            result = jac_to_affine_many([msm_g1(native, scalars)])[0]
            result = None if result is None else (int(result[0]), int(result[1]))
            if reference is None:
                reference = result
            else:
                assert result == reference, f"backend {name} diverged"

    def test_msm_g1_multi_identical_across_backends(self):
        points, scalars = _g1_inputs(64, seed=21)
        lists = [points, points[::-1]]
        reference = None
        for name in available_field_backends():
            set_field_backend(name)
            outs = msm_g1_multi(lists, scalars)
            outs = [
                None if a is None else (int(a[0]), int(a[1]))
                for a in jac_to_affine_many(outs)
            ]
            if reference is None:
                reference = outs
            else:
                assert outs == reference, f"backend {name} diverged"

    def test_ntt_identical_across_backends(self):
        values = [random.Random(4).randrange(R) for _ in range(64)]
        domain = get_domain(64)
        reference = [int(v) for v in domain.fft(values)]
        for name in available_field_backends():
            set_field_backend(name)
            d = get_domain(64)
            assert d.backend == name
            assert [int(v) for v in d.fft(values)] == reference
            assert [int(v) for v in d.ifft(d.fft(values))] == [
                v % R for v in values
            ]

    def test_domain_registry_keyed_by_backend(self):
        set_field_backend("python")
        d_py = get_domain(32)
        set_field_backend("montgomery")
        d_mont = get_domain(32)
        assert d_py is not d_mont
        assert (d_py.backend, d_mont.backend) == ("python", "montgomery")
        set_field_backend("python")
        assert get_domain(32) is d_py


# ------------------------------------------------------------ numpy backend --


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
class TestNumpyBackend:
    """Selection, fork semantics and kernel routing of the numpy backend.

    The generic parity/byte-identity loops above already include numpy
    via ``available_field_backends()``, but at their small sizes the
    routing floors keep the vectorized kernels cold; these tests pin the
    floors down so the limb paths demonstrably run and agree.
    """

    def test_selection_and_kernel_flags(self):
        set_field_backend("numpy")
        ops = get_field_ops(P)
        assert ops.name == "numpy"
        assert ops.numpy_kernels and not ops.montgomery_kernels
        # Element-level semantics are the stdlib backend's: plain ints.
        assert ops.wrap(P + 7) == 7
        assert ops.mulmod(ops.wrap(3), ops.wrap(5)) == 15
        assert "numpy" in available_field_backends()

    def test_env_variable_selects_numpy(self, monkeypatch):
        monkeypatch.setenv(FIELD_BACKEND_ENV, "numpy")
        set_field_backend(None)
        assert active_field_backend() == "numpy"

    def test_numpy_without_library_is_an_error_not_a_downgrade(
        self, monkeypatch
    ):
        import repro.field.backend as backend_mod

        monkeypatch.setattr(backend_mod, "numpy_available", lambda: False)
        monkeypatch.setitem(
            backend_mod._IMPORT_GATES, "numpy", lambda: False
        )
        assert "numpy" not in available_field_backends()
        with pytest.raises(ValueError, match="numpy is not importable"):
            resolve_field_backend("numpy")

    def test_reinit_after_fork_drops_limb_contexts(self):
        from repro.field.limb import get_limb_context

        set_field_backend("numpy")
        ctx = get_limb_context(P)
        assert get_limb_context(P) is ctx
        reinit_field_backend_after_fork()
        assert get_limb_context(P) is not ctx

    def test_msm_vectorized_path_matches_python(self, monkeypatch):
        import repro.curves.msm as msm_mod

        points, scalars = _g1_inputs(48, seed=33)
        points[2] = None
        scalars[3] = 0
        scalars[5] = R - 1
        set_field_backend("python")
        expected = jac_to_affine_many([msm_g1(points, scalars)])[0]

        calls = []
        real = msm_mod._signed_window_msm_numpy
        monkeypatch.setattr(
            msm_mod,
            "_signed_window_msm_numpy",
            lambda *a: calls.append(1) or real(*a),
        )
        monkeypatch.setattr(msm_mod, "NUMPY_MSM_MIN_PAIRS", 1)
        set_field_backend("numpy")
        got = jac_to_affine_many([msm_g1(points, scalars)])[0]
        assert calls, "vectorized MSM path did not run"
        assert got == expected

    def test_msm_tail_handoff_matches_pure_vectorized(self, monkeypatch):
        # Force the python-tail handoff on the very first bucket round
        # (NUMPY_ROUND_MIN_PAIRS above any round width) and compare with
        # the fully vectorized reduction.
        import repro.curves.msm as msm_mod

        points, scalars = _g1_inputs(64, seed=35)
        set_field_backend("numpy")
        monkeypatch.setattr(msm_mod, "NUMPY_MSM_MIN_PAIRS", 1)
        monkeypatch.setattr(msm_mod, "NUMPY_ROUND_MIN_PAIRS", 0)
        pure = jac_to_affine_many([msm_g1(points, scalars)])[0]
        monkeypatch.setattr(msm_mod, "NUMPY_ROUND_MIN_PAIRS", 1 << 30)
        handed_off = jac_to_affine_many([msm_g1(points, scalars)])[0]
        assert handed_off == pure

    def test_msm_multi_vectorized_path_matches_python(self, monkeypatch):
        import repro.curves.msm as msm_mod

        points, scalars = _g1_inputs(40, seed=37)
        lists = [points, points[::-1]]
        set_field_backend("python")
        expected = [
            None if a is None else (int(a[0]), int(a[1]))
            for a in jac_to_affine_many(msm_g1_multi(lists, scalars))
        ]

        calls = []
        real = msm_mod._msm_g1_multi_numpy
        monkeypatch.setattr(
            msm_mod,
            "_msm_g1_multi_numpy",
            lambda *a: calls.append(1) or real(*a),
        )
        monkeypatch.setattr(msm_mod, "NUMPY_MSM_MIN_PAIRS", 1)
        set_field_backend("numpy")
        got = [
            None if a is None else (int(a[0]), int(a[1]))
            for a in jac_to_affine_many(msm_g1_multi(lists, scalars))
        ]
        assert calls, "vectorized multi-MSM path did not run"
        assert got == expected

    def test_ntt_vectorized_path_matches_python(self, monkeypatch):
        import importlib

        nttmod = importlib.import_module("repro.field.ntt")
        values = [random.Random(8).randrange(R) for _ in range(128)]
        set_field_backend("python")
        domain = get_domain(128)
        expected = [int(v) for v in domain.fft(values)]

        calls = []
        real = nttmod._ntt_numpy
        monkeypatch.setattr(
            nttmod,
            "_ntt_numpy",
            lambda *a: calls.append(1) or real(*a),
        )
        monkeypatch.setattr(nttmod, "NUMPY_NTT_MIN_SIZE", 1)
        set_field_backend("numpy")
        d = get_domain(128)
        assert d.backend == "numpy"
        assert [int(v) for v in d.fft(values)] == expected
        assert calls, "vectorized NTT path did not run"
        assert [int(v) for v in d.ifft(d.fft(values))] == [
            v % R for v in values
        ]

    def test_proofs_byte_identical_with_vectorized_kernels_forced(
        self, monkeypatch
    ):
        # The generic byte-identity matrix runs numpy at sizes below the
        # routing floors; here the floors drop to 1 so the limb MSM and
        # NTT paths carry a real Groth16 prove end to end.
        import importlib

        import repro.curves.msm as msm_mod

        from repro.engine import ProvingEngine

        nttmod = importlib.import_module("repro.field.ntt")
        set_field_backend("python")
        engine = ProvingEngine()
        compiled, synthesis = engine.synthesize("chain-16", _mul_chain(16))
        reference = engine.prove(
            compiled, synthesis, seed=5, setup_seed=6
        ).to_bytes()

        monkeypatch.setattr(msm_mod, "NUMPY_MSM_MIN_PAIRS", 1)
        monkeypatch.setattr(nttmod, "NUMPY_NTT_MIN_SIZE", 1)
        set_field_backend("numpy")
        engine2 = ProvingEngine()
        compiled2, synthesis2 = engine2.synthesize("chain-16", _mul_chain(16))
        proof = engine2.prove(compiled2, synthesis2, seed=5, setup_seed=6)
        assert proof.to_bytes() == reference
        assert engine2.verify(compiled2, synthesis2.public_values, proof)


class TestSignedG2MSM:
    def test_matches_naive_and_unsigned(self):
        rng = random.Random(31)
        g2 = G2Point.generator()
        points, acc = [], g2
        for _ in range(24):
            points.append(acc)
            acc = acc + g2
        scalars = [rng.randrange(R) for _ in range(24)]
        expected = naive_msm_g2(points, scalars)
        assert msm_g2(points, scalars) == expected
        assert msm_g2_unsigned(points, scalars) == expected

    def test_edge_cases(self):
        g2 = G2Point.generator()
        assert msm_g2([], []).is_infinity()
        assert msm_g2([g2], [0]).is_infinity()
        assert msm_g2([G2Point.infinity()], [5]).is_infinity()
        assert msm_g2([g2], [1]) == g2
        assert msm_g2([g2, g2], [3, R - 3]).is_infinity()
        # Duplicate points exercise the shared-x (doubling) branch of the
        # batched Fp2 affine addition.
        assert msm_g2([g2, g2, g2], [7, 7, 1]) == g2 * 15
        assert msm_g2([g2], [R - 1]) == -g2
        with pytest.raises(ValueError):
            msm_g2([g2], [1, 2])


# ------------------------------------------------------- proof byte-identity --


class _FakeMpz(int):
    """Stand-in for ``gmpy2.mpz``: an int subclass (operator-compatible)."""


def _install_fake_gmpy2(monkeypatch):
    mod = types.ModuleType("gmpy2")
    mod.__spec__ = importlib.machinery.ModuleSpec("gmpy2", loader=None)
    mod.mpz = _FakeMpz
    mod.powmod = lambda a, e, m: _FakeMpz(pow(int(a), int(e), int(m)))
    mod.invert = lambda a, m: _FakeMpz(pow(int(a), -1, int(m)))
    mod.version = lambda: "fake-0"
    monkeypatch.setitem(sys.modules, "gmpy2", mod)


@pytest.mark.skipif(
    gmpy2_available(), reason="real gmpy2 installed; stub would shadow it"
)
class TestGmpy2PlumbingViaStub:
    """Exercise the exact Gmpy2FieldOps code paths the CI matrix runs,
    without the dependency: a stub gmpy2 whose mpz is an int subclass.

    This cannot test GMP performance, but it does pin the boundary
    plumbing -- wrap/unwrap placement, native flow through MSM/NTT/
    pairing, serialization canonicalization -- that real-mpz runs rely
    on.
    """

    def test_backend_resolves_and_ops_agree(self, monkeypatch):
        monkeypatch.delenv(FIELD_BACKEND_ENV, raising=False)
        _install_fake_gmpy2(monkeypatch)
        assert gmpy2_available()
        assert resolve_field_backend() == "gmpy2"  # auto prefers gmpy2
        set_field_backend("gmpy2")
        ops = get_field_ops(P)
        assert ops.name == "gmpy2"
        a, b = 1234567, P - 3
        assert ops.unwrap(ops.mulmod(ops.wrap(a), ops.wrap(b))) == a * b % P
        assert ops.unwrap(ops.inv(ops.wrap(a))) == pow(a, -1, P)
        assert ops.unwrap(ops.exp(ops.wrap(a), 77)) == pow(a, 77, P)

    def test_proofs_byte_identical_vs_python_backend(self, monkeypatch):
        from repro.engine import ProvingEngine

        set_field_backend("python")
        engine = ProvingEngine()
        compiled, synthesis = engine.synthesize("chain-12", _mul_chain(12))
        reference = engine.prove(
            compiled, synthesis, seed=5, setup_seed=6
        ).to_bytes()

        _install_fake_gmpy2(monkeypatch)
        set_field_backend("gmpy2")
        engine2 = ProvingEngine()
        compiled2, synthesis2 = engine2.synthesize("chain-12", _mul_chain(12))
        proof = engine2.prove(compiled2, synthesis2, seed=5, setup_seed=6)
        assert proof.to_bytes() == reference
        assert engine2.verify(compiled2, synthesis2.public_values, proof)


def _mul_chain(depth, x=3):
    def synthesize(b):
        out = b.public_output("y")
        w = b.private_input("x", x)
        acc = w
        for _ in range(depth):
            acc = b.mul(acc, w)
        b.bind_output(out, acc + 1)

    return synthesize


class TestProofByteIdentity:
    """Groth16 proofs must be byte-identical across field backends x
    compute backends -- the acceptance bar for the whole refactor."""

    def _proofs_under(self, field_backend, compute_backend):
        from repro.engine import ProvingEngine

        set_field_backend(field_backend)
        engine = ProvingEngine(backend=compute_backend)
        compiled, synthesis = engine.synthesize("chain-16", _mul_chain(16))
        proofs = engine.prove_batch(
            compiled, [synthesis] * 2, seeds=[11, 12], setup_seed=42
        )
        assert engine.verify(compiled, synthesis.public_values, proofs[0])
        vk = engine.setup(compiled).verifying_key.to_bytes()
        return [p.to_bytes() for p in proofs], vk

    def test_byte_identical_across_field_and_compute_backends(self):
        from repro.parallel import ProcessBackend, SerialBackend

        reference_proofs, reference_vk = self._proofs_under(
            "python", SerialBackend()
        )
        for field_backend in available_field_backends():
            process = ProcessBackend(2)
            try:
                for compute in (SerialBackend(), process):
                    proofs, vk = self._proofs_under(field_backend, compute)
                    assert proofs == reference_proofs, (
                        f"proof bytes diverged under field={field_backend} "
                        f"compute={compute.name}"
                    )
                    assert vk == reference_vk
            finally:
                process.close()

    def test_setup_keys_byte_identical_across_field_backends(self):
        from repro.snark.groth16 import setup
        from repro.circuit.builder import CircuitBuilder

        def build():
            b = CircuitBuilder("k")
            out = b.public_output("y")
            w = b.private_input("x", 5)
            b.bind_output(out, b.mul(w, w) + 1)
            return b.cs

        reference = None
        for name in available_field_backends():
            set_field_backend(name)
            keypair = setup(build(), seed=9)
            blob = (
                keypair.verifying_key.to_bytes(),
                keypair.proving_key.alpha_g1.x,
                keypair.proving_key.alpha_g1.y,
            )
            blob = (blob[0], int(blob[1]), int(blob[2]))
            if reference is None:
                reference = blob
            else:
                assert blob == reference, f"setup diverged under {name}"
