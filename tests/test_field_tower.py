"""Unit and property tests for the Fp2/Fp6/Fp12 tower."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.field.prime import BN254_P as P
from repro.field.tower import FROB_GAMMA, XI, Fp2Element, Fp6Element, Fp12Element

fp_ints = st.integers(min_value=0, max_value=P - 1)


def fp2(rng: random.Random) -> Fp2Element:
    return Fp2Element(rng.randrange(P), rng.randrange(P))


def fp6(rng: random.Random) -> Fp6Element:
    return Fp6Element(fp2(rng), fp2(rng), fp2(rng))


def fp12(rng: random.Random) -> Fp12Element:
    return Fp12Element(fp6(rng), fp6(rng))


class TestFp2:
    def test_u_squared_is_minus_one(self):
        u = Fp2Element(0, 1)
        assert u * u == Fp2Element(P - 1, 0)

    @given(a0=fp_ints, a1=fp_ints, b0=fp_ints, b1=fp_ints)
    def test_mul_matches_schoolbook(self, a0, a1, b0, b1):
        a, b = Fp2Element(a0, a1), Fp2Element(b0, b1)
        expected = Fp2Element(a0 * b0 - a1 * b1, a0 * b1 + a1 * b0)
        assert a * b == expected

    @given(a0=fp_ints, a1=fp_ints)
    def test_square_matches_mul(self, a0, a1):
        a = Fp2Element(a0, a1)
        assert a.square() == a * a

    def test_inverse(self, rng):
        a = fp2(rng)
        assert a * a.inverse() == Fp2Element.one()

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Fp2Element.zero().inverse()

    def test_conjugate_is_frobenius(self, rng):
        a = fp2(rng)
        assert a.conjugate() == a.pow(P)

    def test_mul_by_xi_matches_mul(self, rng):
        a = fp2(rng)
        assert a.mul_by_xi() == a * XI

    def test_scale(self, rng):
        a = fp2(rng)
        assert a.scale(3) == a + a + a

    def test_pow_zero_is_one(self, rng):
        assert fp2(rng).pow(0) == Fp2Element.one()

    def test_add_neg_cancels(self, rng):
        a = fp2(rng)
        assert (a + (-a)).is_zero()

    def test_hash_and_eq(self):
        assert hash(Fp2Element(1, 2)) == hash(Fp2Element(1, 2))
        assert Fp2Element(1, 2) != Fp2Element(2, 1)


class TestFp6:
    def test_v_cubed_is_xi(self):
        v = Fp6Element(Fp2Element.zero(), Fp2Element.one(), Fp2Element.zero())
        v3 = v * v * v
        assert v3 == Fp6Element(XI, Fp2Element.zero(), Fp2Element.zero())

    def test_mul_associative(self, rng):
        a, b, c = fp6(rng), fp6(rng), fp6(rng)
        assert (a * b) * c == a * (b * c)

    def test_mul_distributive(self, rng):
        a, b, c = fp6(rng), fp6(rng), fp6(rng)
        assert a * (b + c) == a * b + a * c

    def test_inverse(self, rng):
        a = fp6(rng)
        assert a * a.inverse() == Fp6Element.one()

    def test_mul_by_v_matches_explicit(self, rng):
        a = fp6(rng)
        v = Fp6Element(Fp2Element.zero(), Fp2Element.one(), Fp2Element.zero())
        assert a.mul_by_v() == a * v

    def test_mul_sparse_matches_general(self, rng):
        a = fp6(rng)
        b0, b1 = fp2(rng), fp2(rng)
        sparse = Fp6Element(b0, b1, Fp2Element.zero())
        assert a.mul_sparse(b0, b1) == a * sparse

    def test_frobenius_is_pth_power_on_basis(self, rng):
        # phi is additive and multiplicative; verifying on random elements
        # against x -> x^p via Fp12 embedding is done in TestFp12.
        a = fp6(rng)
        b = fp6(rng)
        assert (a + b).frobenius() == a.frobenius() + b.frobenius()
        assert (a * b).frobenius() == a.frobenius() * b.frobenius()

    def test_scale_fp2(self, rng):
        a = fp6(rng)
        k = fp2(rng)
        scaled = a.scale_fp2(k)
        assert scaled.a0 == a.a0 * k
        assert scaled.a1 == a.a1 * k


class TestFp12:
    def test_w_squared_is_v(self):
        w = Fp12Element(Fp6Element.zero(), Fp6Element.one())
        w2 = w * w
        v = Fp6Element(Fp2Element.zero(), Fp2Element.one(), Fp2Element.zero())
        assert w2 == Fp12Element(v, Fp6Element.zero())

    def test_w_to_the_sixth_is_xi(self):
        w = Fp12Element(Fp6Element.zero(), Fp6Element.one())
        w6 = w.pow(6)
        xi6 = Fp6Element(XI, Fp2Element.zero(), Fp2Element.zero())
        assert w6 == Fp12Element(xi6, Fp6Element.zero())

    def test_mul_associative(self, rng):
        a, b, c = fp12(rng), fp12(rng), fp12(rng)
        assert (a * b) * c == a * (b * c)

    def test_square_matches_mul(self, rng):
        a = fp12(rng)
        assert a.square() == a * a

    def test_inverse(self, rng):
        a = fp12(rng)
        assert a * a.inverse() == Fp12Element.one()

    def test_pow_negative_exponent(self, rng):
        a = fp12(rng)
        assert a.pow(-3) == a.inverse().pow(3)

    def test_frobenius_is_pth_power(self, rng):
        a = fp12(rng)
        assert a.frobenius() == a.pow(P)

    def test_frobenius_n_composition(self, rng):
        a = fp12(rng)
        assert a.frobenius_n(2) == a.frobenius().frobenius()

    def test_frobenius_order_twelve(self, rng):
        a = fp12(rng)
        assert a.frobenius_n(12) == a

    def test_conjugate_is_p6_frobenius(self, rng):
        a = fp12(rng)
        assert a.conjugate() == a.frobenius_n(6)

    def test_mul_by_line_matches_general(self, rng):
        a = fp12(rng)
        c0, c3, c4 = fp2(rng), fp2(rng), fp2(rng)
        zero = Fp2Element.zero()
        line = Fp12Element(
            Fp6Element(c0, zero, zero),
            Fp6Element(c3, c4, zero),
        )
        assert a.mul_by_line(c0, c3, c4) == a * line

    def test_is_one(self):
        assert Fp12Element.one().is_one()
        assert not Fp12Element.zero().is_one()


class TestFrobeniusConstants:
    def test_gamma_zero_is_one(self):
        assert FROB_GAMMA[0] == Fp2Element.one()

    def test_gamma_multiplicativity(self):
        # gamma_i * gamma_j == gamma_{i+j} whenever i + j <= 5.
        for i in range(3):
            for j in range(3):
                assert FROB_GAMMA[i] * FROB_GAMMA[j] == FROB_GAMMA[i + j]

    def test_gamma_one_is_sixth_root_factor(self):
        assert FROB_GAMMA[1].pow(6) == XI.pow(P - 1)
