"""Tests for zk convolution gadgets against numpy references."""

import numpy as np
import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.fixedpoint import FixedPointFormat
from repro.gadgets.conv import (
    conv_output_shape,
    flatten_input_patches,
    wire_tensor3,
    wire_tensor4,
    zk_conv1d,
    zk_conv3d,
)

FMT = FixedPointFormat(frac_bits=16, total_bits=48)


def conv3d_reference(x, kernels, bias, stride):
    channels, height, width = x.shape
    out_ch, _, k, _ = kernels.shape
    oh = (height - k) // stride + 1
    ow = (width - k) // stride + 1
    out = np.zeros((out_ch, oh, ow))
    for o in range(out_ch):
        for i in range(oh):
            for j in range(ow):
                patch = x[:, i * stride : i * stride + k, j * stride : j * stride + k]
                out[o, i, j] = float((patch * kernels[o]).sum() + bias[o])
    return out


class TestOutputShape:
    @pytest.mark.parametrize(
        "h,w,k,s,expected",
        [(8, 8, 3, 1, (6, 6)), (8, 8, 3, 2, (3, 3)), (5, 7, 3, 2, (2, 3))],
    )
    def test_valid_shapes(self, h, w, k, s, expected):
        assert conv_output_shape(h, w, k, s) == expected

    def test_kernel_too_large(self):
        with pytest.raises(ValueError):
            conv_output_shape(2, 2, 3, 1)


class TestPatches:
    def test_patch_count_and_length(self, nprng):
        b = CircuitBuilder("p")
        x = wire_tensor3(b, "x", nprng.uniform(0, 1, (2, 5, 5)), FMT)
        patches, (oh, ow) = flatten_input_patches(x, kernel=3, stride=1)
        assert (oh, ow) == (3, 3)
        assert len(patches) == 9
        assert all(len(p) == 2 * 3 * 3 for p in patches)

    def test_patches_cost_no_constraints(self, nprng):
        b = CircuitBuilder("p")
        x = wire_tensor3(b, "x", nprng.uniform(0, 1, (1, 4, 4)), FMT)
        before = b.cs.num_constraints
        flatten_input_patches(x, kernel=2, stride=2)
        assert b.cs.num_constraints == before


class TestConv1d:
    def test_matches_numpy_correlate(self, nprng):
        sig = nprng.uniform(-1, 1, 10)
        ker = nprng.uniform(-1, 1, 3)
        b = CircuitBuilder("c1")
        ws = [b.private_input(f"s{i}", FMT.encode(v)) for i, v in enumerate(sig)]
        wk = [b.private_input(f"k{i}", FMT.encode(v)) for i, v in enumerate(ker)]
        out = zk_conv1d(b, FMT, ws, wk)
        b.check()
        got = np.array([FMT.decode(w.value) for w in out])
        expected = np.correlate(sig, ker, mode="valid")
        np.testing.assert_allclose(got, expected, atol=1e-3)

    def test_stride(self, nprng):
        sig = nprng.uniform(-1, 1, 9)
        ker = nprng.uniform(-1, 1, 3)
        b = CircuitBuilder("c1")
        ws = [b.private_input(f"s{i}", FMT.encode(v)) for i, v in enumerate(sig)]
        wk = [b.private_input(f"k{i}", FMT.encode(v)) for i, v in enumerate(ker)]
        out = zk_conv1d(b, FMT, ws, wk, stride=2)
        assert len(out) == 4

    def test_kernel_longer_than_signal(self):
        b = CircuitBuilder("c1")
        ws = [b.private_input("s", FMT.encode(1.0))]
        wk = [b.private_input(f"k{i}", FMT.encode(1.0)) for i in range(2)]
        with pytest.raises(ValueError):
            zk_conv1d(b, FMT, ws, wk)


class TestConv3d:
    @pytest.mark.parametrize("stride", [1, 2])
    def test_matches_reference(self, stride, nprng):
        x = nprng.uniform(-1, 1, (2, 5, 5))
        k = nprng.uniform(-1, 1, (3, 2, 3, 3))
        bias = nprng.uniform(-1, 1, 3)
        b = CircuitBuilder("c3")
        wx = wire_tensor3(b, "x", x, FMT)
        wk = wire_tensor4(b, "k", k, FMT)
        wb = [b.private_input(f"b{i}", FMT.encode(v)) for i, v in enumerate(bias)]
        out = zk_conv3d(b, FMT, wx, wk, wb, stride=stride)
        b.check()
        got = np.array([[[FMT.decode(w.value) for w in row] for row in ch] for ch in out])
        np.testing.assert_allclose(
            got, conv3d_reference(x, k, bias, stride), atol=1e-3
        )

    def test_bias_per_channel_required(self, nprng):
        b = CircuitBuilder("c3")
        wx = wire_tensor3(b, "x", np.zeros((1, 4, 4)), FMT)
        wk = wire_tensor4(b, "k", np.zeros((2, 1, 2, 2)), FMT)
        wb = [b.private_input("b0", 0)]
        with pytest.raises(ValueError):
            zk_conv3d(b, FMT, wx, wk, wb)

    def test_tensor_shape_validation(self):
        b = CircuitBuilder("c3")
        with pytest.raises(ValueError):
            wire_tensor3(b, "x", np.zeros((4, 4)), FMT)
        with pytest.raises(ValueError):
            wire_tensor4(b, "k", np.zeros((2, 2, 2)), FMT)

    def test_public_kernels(self, nprng):
        """Model weights public (the e2e setting): conv must still work."""
        x = nprng.uniform(0, 1, (1, 4, 4))
        k = nprng.uniform(-1, 1, (1, 1, 2, 2))
        b = CircuitBuilder("c3")
        wk = wire_tensor4(b, "k", k, FMT, private=False)
        wb = [b.public_input("b0", FMT.encode(0.0))]
        wx = wire_tensor3(b, "x", x, FMT)
        out = zk_conv3d(b, FMT, wx, wk, wb, stride=1)
        b.check()
        got = np.array([[[FMT.decode(w.value) for w in row] for row in ch] for ch in out])
        np.testing.assert_allclose(
            got, conv3d_reference(x, k, np.zeros(1), 1), atol=1e-3
        )
