"""Tests for zk linear algebra gadgets against numpy references."""

import numpy as np
import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.fixedpoint import FixedPointFormat
from repro.gadgets.linalg import (
    wire_matrix,
    wire_vector,
    zk_average2d,
    zk_average_rows,
    zk_dense,
    zk_matmul,
    zk_matvec,
)

FMT = FixedPointFormat(frac_bits=16, total_bits=48)


def decode_matrix(fmt, rows):
    return np.array([[fmt.decode(w.value) for w in row] for row in rows])


def decode_vector(fmt, vec):
    return np.array([fmt.decode(w.value) for w in vec])


class TestWireConversion:
    def test_wire_vector_private(self, nprng):
        b = CircuitBuilder("wv")
        v = nprng.uniform(-1, 1, 5)
        ws = wire_vector(b, "v", v, FMT)
        np.testing.assert_allclose(decode_vector(FMT, ws), v, atol=FMT.resolution())
        assert b.cs.num_public == 0

    def test_wire_vector_public(self, nprng):
        b = CircuitBuilder("wv")
        ws = wire_vector(b, "v", nprng.uniform(-1, 1, 5), FMT, private=False)
        assert b.cs.num_public == 5

    def test_wire_matrix_shape_validated(self):
        b = CircuitBuilder("wm")
        with pytest.raises(ValueError):
            wire_matrix(b, "m", np.zeros(3), FMT)


class TestMatMul:
    @pytest.mark.parametrize("m,n,l", [(2, 3, 4), (1, 1, 1), (4, 2, 3)])
    def test_matches_numpy(self, m, n, l, nprng):
        a = nprng.uniform(-2, 2, (m, n))
        c = nprng.uniform(-2, 2, (n, l))
        b = CircuitBuilder("mm")
        wa = wire_matrix(b, "A", a, FMT)
        wc = wire_matrix(b, "B", c, FMT)
        result = zk_matmul(b, FMT, wa, wc)
        b.check()
        np.testing.assert_allclose(decode_matrix(FMT, result), a @ c, atol=1e-3)

    def test_public_private_mix(self, nprng):
        """Paper: 'A or B can be public or private'."""
        a = nprng.uniform(-1, 1, (2, 2))
        c = nprng.uniform(-1, 1, (2, 2))
        b = CircuitBuilder("mm")
        wa = wire_matrix(b, "A", a, FMT, private=False)  # public
        wc = wire_matrix(b, "B", c, FMT, private=True)
        result = zk_matmul(b, FMT, wa, wc)
        b.check()
        np.testing.assert_allclose(decode_matrix(FMT, result), a @ c, atol=1e-3)

    def test_dimension_mismatch(self):
        b = CircuitBuilder("mm")
        wa = wire_matrix(b, "A", np.zeros((2, 3)), FMT)
        wc = wire_matrix(b, "B", np.zeros((2, 2)), FMT)
        with pytest.raises(ValueError):
            zk_matmul(b, FMT, wa, wc)

    def test_empty_rejected(self):
        b = CircuitBuilder("mm")
        with pytest.raises(ValueError):
            zk_matmul(b, FMT, [], [])


class TestMatVec:
    def test_matches_numpy(self, nprng):
        m = nprng.uniform(-1, 1, (3, 4))
        v = nprng.uniform(-1, 1, 4)
        b = CircuitBuilder("mv")
        wm = wire_matrix(b, "M", m, FMT)
        wv = wire_vector(b, "v", v, FMT)
        out = zk_matvec(b, FMT, wm, wv)
        b.check()
        np.testing.assert_allclose(decode_vector(FMT, out), m @ v, atol=1e-3)

    def test_dimension_mismatch(self):
        b = CircuitBuilder("mv")
        wm = wire_matrix(b, "M", np.zeros((2, 3)), FMT)
        wv = wire_vector(b, "v", np.zeros(2), FMT)
        with pytest.raises(ValueError):
            zk_matvec(b, FMT, wm, wv)


class TestDense:
    def test_matches_numpy_with_bias(self, nprng):
        w = nprng.uniform(-1, 1, (3, 5))
        x = nprng.uniform(-1, 1, 5)
        bias = nprng.uniform(-1, 1, 3)
        b = CircuitBuilder("dense")
        ww = wire_matrix(b, "W", w, FMT)
        wx = wire_vector(b, "x", x, FMT)
        wb = wire_vector(b, "b", bias, FMT)
        out = zk_dense(b, FMT, wx, ww, wb)
        b.check()
        np.testing.assert_allclose(decode_vector(FMT, out), w @ x + bias, atol=1e-3)

    def test_bias_length_mismatch(self):
        b = CircuitBuilder("dense")
        ww = wire_matrix(b, "W", np.zeros((2, 2)), FMT)
        wx = wire_vector(b, "x", np.zeros(2), FMT)
        wb = wire_vector(b, "b", np.zeros(3), FMT)
        with pytest.raises(ValueError):
            zk_dense(b, FMT, wx, ww, wb)

    def test_bias_is_free(self, nprng):
        """Folding the bias must not add constraints over the biasless case."""

        def build(with_bias):
            b = CircuitBuilder("dense")
            ww = wire_matrix(b, "W", np.ones((2, 3)), FMT)
            wx = wire_vector(b, "x", np.ones(3), FMT)
            wb = wire_vector(b, "b", np.ones(2) * with_bias, FMT)
            zk_dense(b, FMT, wx, ww, wb)
            return b.cs.num_constraints

        assert build(0.0) == build(1.0)


class TestAverage:
    @pytest.mark.parametrize("rows", [2, 3, 4, 5, 8])
    def test_matches_numpy_mean(self, rows, nprng):
        data = nprng.uniform(-2, 2, (rows, 4))
        b = CircuitBuilder("avg")
        wm = wire_matrix(b, "M", data, FMT)
        out = zk_average_rows(b, FMT, wm)
        b.check()
        got = decode_vector(FMT, out)
        # Floor division in fixed point: error below one resolution step.
        np.testing.assert_allclose(got, data.mean(axis=0), atol=2e-4)

    def test_average2d_alias(self, nprng):
        data = nprng.uniform(-1, 1, (4, 4))
        b = CircuitBuilder("avg2d")
        out = zk_average2d(b, FMT, wire_matrix(b, "M", data, FMT))
        b.check()
        np.testing.assert_allclose(
            decode_vector(FMT, out), data.mean(axis=0), atol=2e-4
        )

    def test_empty_rejected(self):
        b = CircuitBuilder("avg")
        with pytest.raises(ValueError):
            zk_average_rows(b, FMT, [])

    def test_single_row_is_identity(self, nprng):
        data = nprng.uniform(-1, 1, (1, 3))
        b = CircuitBuilder("avg")
        out = zk_average_rows(b, FMT, wire_matrix(b, "M", data, FMT))
        np.testing.assert_allclose(decode_vector(FMT, out), data[0], atol=1e-4)
