"""Tests for the staged pipeline's split: trace recording + witness replay.

The contract under test: a full CircuitBuilder pass records structure and
a synthesis trace; WitnessSynthesizer replays the trace with new input
values and produces an assignment *identical* to what a fresh full build
with those values would produce -- without constructing any constraints.
"""

import numpy as np
import pytest

from repro.circuit import CircuitBuilder, TraceDivergence, WitnessSynthesizer
from repro.circuit.fixedpoint import FixedPointFormat
from repro.engine import CompiledCircuit, compile_circuit, resynthesize
from repro.nn import cifar10_cnn_scaled, mnist_mlp_scaled
from repro.snark.errors import ConstraintViolation
from repro.snark.serialize import serialize_r1cs
from repro.watermark.keys import WatermarkKeys
from repro.zkrownn import (
    CircuitConfig,
    build_extraction_circuit,
    resynthesize_extraction_witness,
    extraction_structure_key,
    extraction_synthesizer,
)


def _gadget_rich(builder, x_val: int, y_val: int):
    """A circuit touching every builder helper the gadget library uses."""
    out = builder.public_output("o")
    x = builder.private_input("x", x_val)
    y = builder.private_input("y", y_val)
    p = builder.mul(x, y)
    q = builder.mul(p, builder.constant(3))  # constant fold
    builder.to_bits(q, 16)
    ge = builder.greater_equal(x, y, 20)
    z = builder.is_zero(x - y)
    d = builder.div_floor_const(q, 10, 24)
    builder.truncate(q, 2, 24)
    sel = builder.select(ge, x, y)
    builder.assert_boolean(z)
    builder.bind_output(out, sel + z + d - d)
    return out


class TestTraceRecording:
    def test_full_build_records_trace(self):
        b = CircuitBuilder("t")
        _gadget_rich(b, 7, 5)
        assert len(b.trace) > 0
        # One event per allocated variable beyond ONE, plus one per folded mul.
        from repro.circuit.builder import EV_MUL_FOLD

        folds = sum(1 for e in b.trace if e == EV_MUL_FOLD)
        assert len(b.trace) - folds == b.cs.num_variables - 1

    def test_same_values_same_trace(self):
        b1, b2 = CircuitBuilder("t"), CircuitBuilder("t")
        _gadget_rich(b1, 7, 5)
        _gadget_rich(b2, 9, 9)
        assert bytes(b1.trace) == bytes(b2.trace)
        assert b1.structure_digest() == b2.structure_digest()


class TestWitnessReplay:
    def test_replay_matches_fresh_full_build(self):
        full = CircuitBuilder("t")
        _gadget_rich(full, 7, 5)

        reference = CircuitBuilder("t")
        _gadget_rich(reference, 9, 4)

        replay = WitnessSynthesizer(bytes(full.trace), "t")
        _gadget_rich(replay, 9, 4)
        replay.finish()

        assert replay.assignment == reference.assignment
        assert replay.public_values() == reference.public_values()
        # The replayed witness satisfies the *compiled* constraints.
        full.cs.check_satisfied(replay.assignment)

    def test_replay_builds_no_constraints(self):
        full = CircuitBuilder("t")
        _gadget_rich(full, 7, 5)
        replay = WitnessSynthesizer(bytes(full.trace), "t")
        _gadget_rich(replay, 2, 3)
        assert replay.cs.num_constraints == 0
        assert replay.cs.num_variables == full.cs.num_variables
        assert replay.cs.num_public == full.cs.num_public

    def test_replay_detects_structural_divergence(self):
        full = CircuitBuilder("t")
        _gadget_rich(full, 7, 5)
        replay = WitnessSynthesizer(bytes(full.trace), "t")
        with pytest.raises(TraceDivergence):
            # public_output first in the recorded trace, private here.
            replay.private_input("x", 1)

    def test_replay_detects_truncated_synthesis(self):
        full = CircuitBuilder("t")
        _gadget_rich(full, 7, 5)
        replay = WitnessSynthesizer(bytes(full.trace), "t")
        replay.public_output("o")  # stop early
        with pytest.raises(TraceDivergence):
            replay.finish()

    def test_replay_detects_overlong_synthesis(self):
        full = CircuitBuilder("t")
        full.public_input("a", 1)
        replay = WitnessSynthesizer(bytes(full.trace), "t")
        replay.public_input("a", 2)
        with pytest.raises(TraceDivergence):
            replay.private_input("extra", 3)

    def test_replay_keeps_value_checks(self):
        full = CircuitBuilder("t")
        full.to_bits(full.private_input("x", 5), 8)
        replay = WitnessSynthesizer(bytes(full.trace), "t")
        with pytest.raises(ConstraintViolation):
            replay.to_bits(replay.private_input("x", 1 << 20), 8)

    def test_structure_apis_are_blocked(self):
        replay = WitnessSynthesizer(b"", "t")
        with pytest.raises(TypeError):
            replay.structure_digest()
        with pytest.raises(TypeError):
            replay.check()


class TestCompiledCircuit:
    def test_compile_returns_first_witness(self):
        compiled, result = compile_circuit(lambda b: _gadget_rich(b, 7, 5), "t")
        assert not result.resynthesized
        assert len(result.assignment) == compiled.num_variables
        compiled.cs.check_satisfied(result.assignment)
        assert compiled.digest
        assert compiled.public_layout[0] == "o"
        assert compiled.domain_size >= compiled.num_constraints

    def test_resynthesize_roundtrip(self):
        compiled, _ = compile_circuit(lambda b: _gadget_rich(b, 7, 5), "t")
        result = resynthesize(compiled, lambda b: _gadget_rich(b, 11, 2))
        assert result.resynthesized
        compiled.cs.check_satisfied(result.assignment)

    def test_from_builder_matches_compile(self):
        builder = CircuitBuilder("t")
        _gadget_rich(builder, 7, 5)
        frozen = CompiledCircuit.from_builder(builder)
        compiled, _ = compile_circuit(lambda b: _gadget_rich(b, 1, 2), "t")
        assert frozen.digest == compiled.digest
        assert frozen.trace == compiled.trace


# ----------------------------------------------------- extraction circuits --


FMT = FixedPointFormat(frac_bits=12, total_bits=32)


def _mlp_fixture(model_seed: int = 0, key_seed: int = 1):
    rng = np.random.default_rng(model_seed)
    model = mnist_mlp_scaled(input_dim=8, hidden=4, rng=rng)
    krng = np.random.default_rng(key_seed)
    triggers = krng.uniform(0, 1, (2, 8))
    keys = WatermarkKeys(
        embed_layer=1,
        target_class=0,
        trigger_inputs=triggers,
        projection=krng.standard_normal((4, 4)),
        signature=krng.integers(0, 2, 4).astype(np.int64),
    )
    return model, keys, CircuitConfig(theta=1.0, fixed_point=FMT)


def _cnn_fixture(model_seed: int = 0, key_seed: int = 1):
    rng = np.random.default_rng(model_seed)
    model = cifar10_cnn_scaled(image_size=9, channels=2, rng=rng)
    krng = np.random.default_rng(key_seed)
    triggers = krng.uniform(0, 1, (1, 3, 9, 9))
    probe = model.forward_to(triggers[:1], 1)
    feature_dim = int(np.prod(probe.shape[1:]))
    keys = WatermarkKeys(
        embed_layer=1,
        target_class=0,
        trigger_inputs=triggers,
        projection=krng.standard_normal((feature_dim, 4)),
        signature=krng.integers(0, 2, 4).astype(np.int64),
    )
    return model, keys, CircuitConfig(theta=1.0, fixed_point=FMT)


class TestExtractionResynthesis:
    def test_same_digest_means_byte_identical_r1cs(self):
        """Same structure digest => byte-identical serialized constraint
        system, across synthesis runs with different weight values."""
        model_a, keys, config = _mlp_fixture(model_seed=0)
        model_b, _, _ = _mlp_fixture(model_seed=42)
        circuit_a = build_extraction_circuit(model_a, keys, config)
        circuit_b = build_extraction_circuit(model_b, keys, config)
        assert (
            circuit_a.builder.structure_digest()
            == circuit_b.builder.structure_digest()
        )
        assert serialize_r1cs(circuit_a.constraint_system) == serialize_r1cs(
            circuit_b.constraint_system
        )

    def test_mlp_resynthesis_matches_full_build(self):
        model, keys, config = _mlp_fixture()
        compiled, _ = compile_circuit(
            extraction_synthesizer(model, keys, config), "mlp"
        )
        other_model, _, _ = _mlp_fixture(model_seed=7)
        result = resynthesize_extraction_witness(compiled, other_model, keys, config)
        reference = build_extraction_circuit(other_model, keys, config)
        assert result.assignment == reference.assignment
        assert result.public_values == reference.public_inputs
        assert result.aux.extracted_bits == reference.extracted_bits
        compiled.cs.check_satisfied(result.assignment)

    def test_cnn_resynthesis_matches_full_build(self):
        model, keys, config = _cnn_fixture()
        compiled, _ = compile_circuit(
            extraction_synthesizer(model, keys, config), "cnn"
        )
        other_model, _, _ = _cnn_fixture(model_seed=7)
        result = resynthesize_extraction_witness(compiled, other_model, keys, config)
        reference = build_extraction_circuit(other_model, keys, config)
        assert result.assignment == reference.assignment
        assert result.public_values == reference.public_inputs
        compiled.cs.check_satisfied(result.assignment)

    def test_shape_mismatch_diverges(self):
        model, keys, config = _mlp_fixture()
        compiled, _ = compile_circuit(
            extraction_synthesizer(model, keys, config), "mlp"
        )
        wider = mnist_mlp_scaled(input_dim=8, hidden=6,
                                 rng=np.random.default_rng(3))
        krng = np.random.default_rng(1)
        wider_keys = WatermarkKeys(
            embed_layer=1,
            target_class=0,
            trigger_inputs=krng.uniform(0, 1, (2, 8)),
            projection=krng.standard_normal((6, 4)),
            signature=krng.integers(0, 2, 4).astype(np.int64),
        )
        with pytest.raises(TraceDivergence):
            resynthesize_extraction_witness(compiled, wider, wider_keys, config)

    def test_structure_key_tracks_shape_and_config(self):
        model, keys, config = _mlp_fixture()
        other_model, _, _ = _mlp_fixture(model_seed=9)
        assert extraction_structure_key(model, keys, config) == \
            extraction_structure_key(other_model, keys, config)
        changed = CircuitConfig(theta=1.0, fixed_point=FMT, sigmoid_degree=7)
        assert extraction_structure_key(model, keys, config) != \
            extraction_structure_key(model, keys, changed)
