"""Unit and property tests for prime-field arithmetic."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.field.prime import (
    BN254_P,
    BN254_R,
    FieldElement,
    Fp,
    Fr,
    PrimeField,
    batch_inverse,
    tonelli_shanks,
)

fr_ints = st.integers(min_value=0, max_value=BN254_R - 1)
nonzero_fr = st.integers(min_value=1, max_value=BN254_R - 1)


class TestFieldElementBasics:
    def test_construction_reduces_mod_p(self):
        assert Fr(BN254_R + 5).value == 5

    def test_negative_values_wrap(self):
        assert Fr(-1).value == BN254_R - 1

    def test_equality_with_int(self):
        assert Fr(7) == 7
        assert Fr(7) == 7 + BN254_R

    def test_equality_between_elements(self):
        assert Fr(3) == Fr(3)
        assert Fr(3) != Fr(4)

    def test_cross_field_mixing_rejected(self):
        with pytest.raises(ValueError):
            Fr(1) + Fp(1)

    def test_repr_contains_field_name(self):
        assert "Fr" in repr(Fr(12))

    def test_int_conversion(self):
        assert int(Fr(9)) == 9

    def test_bool(self):
        assert Fr(1)
        assert not Fr(0)

    def test_hash_consistent_with_eq(self):
        assert hash(Fr(5)) == hash(Fr(5 + BN254_R))


class TestArithmetic:
    def test_add_sub(self):
        assert Fr(10) + Fr(20) == 30
        assert Fr(10) - Fr(20) == Fr(-10)

    def test_radd_rsub(self):
        assert 5 + Fr(3) == 8
        assert 5 - Fr(3) == 2

    def test_mul_and_rmul(self):
        assert Fr(6) * Fr(7) == 42
        assert 6 * Fr(7) == 42

    def test_neg(self):
        assert -Fr(1) == BN254_R - 1

    def test_division(self):
        assert (Fr(10) / Fr(5)) == 2
        assert (10 / Fr(5)) == 2

    def test_pow(self):
        assert Fr(2) ** 10 == 1024

    def test_fermat_little_theorem(self):
        a = Fr(123456789)
        assert a ** (BN254_R - 1) == 1

    def test_inverse(self):
        a = Fr(987654321)
        assert a * a.inverse() == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Fr(0).inverse()

    def test_square(self):
        assert Fr(11).square() == 121

    def test_signed_lift(self):
        assert Fr(-5).signed() == -5
        assert Fr(5).signed() == 5


class TestFieldProperties:
    @given(a=fr_ints, b=fr_ints)
    def test_commutative_add(self, a, b):
        assert Fr(a) + Fr(b) == Fr(b) + Fr(a)

    @given(a=fr_ints, b=fr_ints)
    def test_commutative_mul(self, a, b):
        assert Fr(a) * Fr(b) == Fr(b) * Fr(a)

    @given(a=fr_ints, b=fr_ints, c=fr_ints)
    def test_associative(self, a, b, c):
        assert (Fr(a) + Fr(b)) + Fr(c) == Fr(a) + (Fr(b) + Fr(c))
        assert (Fr(a) * Fr(b)) * Fr(c) == Fr(a) * (Fr(b) * Fr(c))

    @given(a=fr_ints, b=fr_ints, c=fr_ints)
    def test_distributive(self, a, b, c):
        assert Fr(a) * (Fr(b) + Fr(c)) == Fr(a) * Fr(b) + Fr(a) * Fr(c)

    @given(a=nonzero_fr)
    def test_inverse_roundtrip(self, a):
        assert Fr(a).inverse().inverse() == Fr(a)

    @given(a=fr_ints)
    def test_additive_identity(self, a):
        assert Fr(a) + Fr(0) == Fr(a)

    @given(a=fr_ints)
    def test_signed_roundtrip(self, a):
        assert Fr(Fr(a).signed()) == Fr(a)

    @given(a=nonzero_fr)
    def test_legendre_of_square_is_one(self, a):
        assert Fr(a).square().legendre() == 1


class TestSqrt:
    def test_sqrt_of_square(self):
        a = Fr(123456)
        root = a.square().sqrt()
        assert root == a or root == -a

    def test_sqrt_non_residue_raises(self):
        # Find a non-residue deterministically.
        for candidate in range(2, 100):
            if Fr(candidate).legendre() == -1:
                with pytest.raises(ValueError):
                    Fr(candidate).sqrt()
                return
        pytest.fail("no non-residue found in range")

    def test_tonelli_shanks_zero(self):
        assert tonelli_shanks(0, BN254_R) == 0

    def test_tonelli_shanks_none_for_non_residue(self):
        for candidate in range(2, 100):
            if pow(candidate, (BN254_P - 1) // 2, BN254_P) == BN254_P - 1:
                assert tonelli_shanks(candidate, BN254_P) is None
                return
        pytest.fail("no non-residue found in range")

    def test_tonelli_shanks_p_equals_3_mod_4(self):
        p = 23  # 23 % 4 == 3
        for n in range(1, p):
            root = tonelli_shanks(n, p)
            if root is not None:
                assert root * root % p == n


class TestBatchInverse:
    def test_matches_individual_inverses(self, rng):
        elements = [Fr(rng.randrange(1, BN254_R)) for _ in range(20)]
        batched = batch_inverse(elements)
        for e, inv in zip(elements, batched):
            assert e * inv == 1

    def test_empty(self):
        assert batch_inverse([]) == []

    def test_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            batch_inverse([Fr(1), Fr(0)])

    def test_single(self):
        assert batch_inverse([Fr(2)])[0] == Fr(2).inverse()


class TestPrimeFieldStructure:
    def test_two_adicity_of_fr(self):
        # BN254's scalar field famously has 2-adicity 28.
        assert Fr.two_adicity() == 28

    def test_root_of_unity_has_exact_order(self):
        for order in (2, 4, 256, 1024):
            w = Fr.root_of_unity(order)
            assert w**order == 1
            assert w ** (order // 2) != 1

    def test_root_of_unity_non_power_rejected(self):
        with pytest.raises(ValueError):
            Fr.root_of_unity(3)

    def test_root_of_unity_too_large_rejected(self):
        with pytest.raises(ValueError):
            Fr.root_of_unity(1 << 60)

    def test_multiplicative_generator_is_non_residue(self):
        g = Fr.multiplicative_generator()
        assert g.legendre() == -1

    def test_random_in_range(self, rng):
        for _ in range(10):
            assert 0 <= Fr.random(rng).value < BN254_R

    def test_random_nonzero(self, rng):
        assert not Fr.random_nonzero(rng).is_zero()

    def test_hash_to_field_deterministic(self):
        assert Fr.hash_to_field(b"abc") == Fr.hash_to_field(b"abc")
        assert Fr.hash_to_field(b"abc") != Fr.hash_to_field(b"abd")

    def test_element_byte_length(self):
        assert Fr.element_byte_length() == 32

    def test_contains(self):
        assert Fr(1) in Fr
        assert Fp(1) not in Fr

    def test_call_coerces_own_elements(self):
        e = Fr(5)
        assert Fr(e) is e

    def test_call_rejects_foreign_elements(self):
        with pytest.raises(ValueError):
            Fr(Fp(5))

    def test_from_bytes(self):
        assert Fr.from_bytes((42).to_bytes(32, "big")) == 42
