"""End-to-end protocol tests: prover, verifier, claims, setup party.

These are the integration tests of the whole stack -- slow (pure-Python
pairings), so they share the session-scoped circuit/keypair fixtures.
"""

import numpy as np
import pytest

from repro.snark import prove
from repro.zkrownn import (
    OwnershipClaim,
    OwnershipProver,
    OwnershipVerifier,
    ProverError,
    model_digest,
)


@pytest.fixture(scope="module")
def claim_and_parts(watermarked_mlp, ownership_setup):
    model, keys, _ = watermarked_mlp
    config, circuit, keypair = ownership_setup
    prover = OwnershipProver(model, keys, config)
    claim = prover.prove_ownership(keypair.proving_key, seed=5)
    return model, keys, config, keypair, claim


class TestProver:
    def test_claim_verifies(self, claim_and_parts):
        model, _, _, keypair, claim = claim_and_parts
        verifier = OwnershipVerifier(keypair.verifying_key)
        report = verifier.verify(model, claim)
        assert report.accepted, report.reason

    def test_proof_is_128_bytes(self, claim_and_parts):
        *_, claim = claim_and_parts
        assert len(claim.proof_bytes) == 128

    def test_refuses_non_owned_model(self, watermarked_mlp, ownership_setup):
        from repro.nn import mnist_mlp_scaled

        _, keys, _ = watermarked_mlp
        config, _, keypair = ownership_setup
        fresh = mnist_mlp_scaled(input_dim=16, hidden=16,
                                 rng=np.random.default_rng(99))
        prover = OwnershipProver(fresh, keys, config)
        with pytest.raises(ProverError, match="does not extract"):
            prover.prove_ownership(keypair.proving_key, seed=5)

    def test_claim_metadata(self, claim_and_parts):
        model, keys, config, _, claim = claim_and_parts
        assert claim.theta == config.theta
        assert claim.wm_bits == keys.num_bits
        assert claim.embed_layer == keys.embed_layer
        assert claim.model_sha256 == model_digest(model, keys.embed_layer)


class TestVerifier:
    def test_rejects_different_model(self, claim_and_parts):
        model, _, _, keypair, claim = claim_and_parts
        tampered = model.copy()
        tampered.layers[0].params["W"][0, 0] += 0.5
        verifier = OwnershipVerifier(keypair.verifying_key)
        report = verifier.verify(tampered, claim)
        assert not report.accepted
        assert "different model" in report.reason

    def test_rejects_tampered_proof(self, claim_and_parts):
        model, _, _, keypair, claim = claim_and_parts
        corrupted = bytearray(claim.proof_bytes)
        corrupted[40] ^= 0xFF
        bad_claim = OwnershipClaim(
            proof_bytes=bytes(corrupted),
            theta=claim.theta,
            wm_bits=claim.wm_bits,
            embed_layer=claim.embed_layer,
            model_sha256=claim.model_sha256,
            frac_bits=claim.frac_bits,
            total_bits=claim.total_bits,
        )
        verifier = OwnershipVerifier(keypair.verifying_key)
        report = verifier.verify(model, bad_claim)
        assert not report.accepted

    def test_rejects_wrong_theta_claim(self, claim_and_parts):
        """A prover cannot relax theta after the fact: the budget is a
        public input, so a doctored claim changes the instance."""
        model, _, _, keypair, claim = claim_and_parts
        relaxed = OwnershipClaim(
            proof_bytes=claim.proof_bytes,
            theta=0.5,
            wm_bits=claim.wm_bits,
            embed_layer=claim.embed_layer,
            model_sha256=claim.model_sha256,
            frac_bits=claim.frac_bits,
            total_bits=claim.total_bits,
        )
        verifier = OwnershipVerifier(keypair.verifying_key)
        assert not verifier.verify(model, relaxed).accepted

    def test_rejects_mismatched_vk_shape(self, claim_and_parts, cubic_keypair):
        model, _, _, _, claim = claim_and_parts
        verifier = OwnershipVerifier(cubic_keypair.verifying_key)
        report = verifier.verify(model, claim)
        assert not report.accepted
        assert "circuit shape" in report.reason


class TestClaimSerialization:
    def test_json_round_trip(self, claim_and_parts):
        *_, claim = claim_and_parts
        restored = OwnershipClaim.from_json(claim.to_json())
        assert restored == claim

    def test_file_round_trip(self, claim_and_parts, tmp_path):
        *_, claim = claim_and_parts
        path = tmp_path / "claim.json"
        claim.save(path)
        assert OwnershipClaim.load(path) == claim

    def test_round_tripped_claim_verifies(self, claim_and_parts):
        model, _, _, keypair, claim = claim_and_parts
        restored = OwnershipClaim.from_json(claim.to_json())
        verifier = OwnershipVerifier(keypair.verifying_key)
        assert verifier.verify(model, restored).accepted

    def test_size_is_small(self, claim_and_parts):
        *_, claim = claim_and_parts
        # Order of magnitude: a few hundred bytes (128 B proof + metadata).
        assert claim.size_bytes() < 1024


class TestModelDigest:
    def test_deterministic(self, claim_and_parts):
        model, keys, *_ = claim_and_parts
        assert model_digest(model, keys.embed_layer) == model_digest(
            model, keys.embed_layer
        )

    def test_sensitive_to_weights(self, claim_and_parts):
        model, keys, *_ = claim_and_parts
        other = model.copy()
        other.layers[0].params["b"][0] += 1e-9
        assert model_digest(model, keys.embed_layer) != model_digest(
            other, keys.embed_layer
        )

    def test_only_covers_prefix_layers(self, claim_and_parts):
        model, keys, *_ = claim_and_parts
        other = model.copy()
        other.layers[-1].params["W"][0, 0] += 1.0  # beyond embed layer
        assert model_digest(model, keys.embed_layer) == model_digest(
            other, keys.embed_layer
        )


class TestKeyReuseAcrossProofs:
    def test_second_proof_with_same_setup(self, claim_and_parts):
        """Setup once, prove twice (the amortization story)."""
        model, keys, config, keypair, _ = claim_and_parts
        prover = OwnershipProver(model, keys, config)
        claim2 = prover.prove_ownership(keypair.proving_key, seed=77)
        verifier = OwnershipVerifier(keypair.verifying_key)
        assert verifier.verify(model, claim2).accepted


class TestBatchAudit:
    def test_verify_many_accepts_valid_claims(self, claim_and_parts):
        model, keys, config, keypair, claim = claim_and_parts
        prover = OwnershipProver(model, keys, config)
        claim2 = prover.prove_ownership(keypair.proving_key, seed=88)
        verifier = OwnershipVerifier(keypair.verifying_key)
        reports = verifier.verify_many(
            [(model, claim), (model, claim2)], seed=5
        )
        assert all(r.accepted for r in reports)

    def test_verify_many_isolates_bad_claim(self, claim_and_parts):
        model, keys, config, keypair, claim = claim_and_parts
        corrupted = bytearray(claim.proof_bytes)
        corrupted[33] ^= 0x02
        bad = OwnershipClaim(
            proof_bytes=bytes(corrupted),
            theta=claim.theta,
            wm_bits=claim.wm_bits,
            embed_layer=claim.embed_layer,
            model_sha256=claim.model_sha256,
            frac_bits=claim.frac_bits,
            total_bits=claim.total_bits,
        )
        verifier = OwnershipVerifier(keypair.verifying_key)
        reports = verifier.verify_many([(model, claim), (model, bad)], seed=5)
        assert [r.accepted for r in reports] == [True, False]

    def test_verify_many_precheck_failure_reported(self, claim_and_parts):
        model, keys, config, keypair, claim = claim_and_parts
        other = model.copy()
        other.layers[0].params["W"][0, 0] += 0.25
        verifier = OwnershipVerifier(keypair.verifying_key)
        reports = verifier.verify_many([(other, claim), (model, claim)], seed=5)
        assert [r.accepted for r in reports] == [False, True]
        assert "precheck" in reports[0].reason

    def test_verify_many_empty(self, claim_and_parts):
        *_, keypair, _ = claim_and_parts
        verifier = OwnershipVerifier(keypair.verifying_key)
        assert verifier.verify_many([]) == []
